//! Integration tests for the Type-II pipeline: forbidden classification →
//! shattering → Möbius formula → block structure, crossing the safety and
//! core crates.

use gfomc::core::ccp::{ccp_counts, pp2cnf_from_ccp, CcpInstance};
use gfomc::core::reduction_type2::{
    mobius_formula_probability, theorem_c19_holds, type_ii_lattices,
};
use gfomc::core::shattering;
use gfomc::core::type2_block::{type2_block, y_alpha_beta};
use gfomc::core::ConstAlloc;
use gfomc::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn pipeline_classification_consistency() {
    // C.15 is forbidden; C.9 is final Type II-II but NOT forbidden (its
    // left clause has the non-ubiquitous symbol S1 missing from C1), which
    // is exactly why the paper shatters it (Example C.14) rather than
    // running the Appendix C machinery on it directly.
    let c15 = catalog::example_c15();
    let c9 = catalog::example_c9();
    assert!(is_forbidden_type_ii(&c15));
    assert!(is_unsafe(&c9));
    assert!(is_final(&c9));
    assert!(!is_forbidden_type_ii(&c9));
    let shattered = shattering::shattered_query();
    assert!(is_unsafe(&shattered));
    assert_eq!(shattered.query_type().map(|t| t.left), Some(PartType::I));
}

#[test]
fn ubiquitous_symbols_do_not_appear_on_inner_path_clauses() {
    // Lemma C.12 (2) through the public API.
    let q = catalog::example_c15();
    let ubiq = left_ubiquitous_symbols(&q);
    assert!(!ubiq.is_empty());
    for path in gfomc::safety::all_minimal_left_right_paths(&q) {
        let c1 = &q.clauses()[path[1]];
        for s in &ubiq {
            assert!(!c1.mentions(Pred::S(*s)));
        }
    }
}

#[test]
fn mobius_formula_with_randomized_cells() {
    // Theorem C.19 under randomized {0,½,1} cell probabilities, several
    // seeds, both Type-II catalog queries.
    let mut rng = StdRng::seed_from_u64(0xC19);
    for q in [catalog::example_c15(), catalog::example_c9()] {
        for _ in 0..2 {
            let seed: u64 = rng.gen();
            let prob = move |s: u32, u: u32, v: u32| -> Rational {
                let h = seed
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add((s as u64) << 20 | (u as u64) << 10 | v as u64);
                match (h >> 30) % 5 {
                    0 => Rational::one(),
                    _ => Rational::one_half(),
                }
            };
            assert!(theorem_c19_holds(&q, 2, 2, &prob));
        }
    }
}

#[test]
fn mobius_formula_value_is_probability() {
    let q = catalog::example_c15();
    let half = |_: u32, _: u32, _: u32| Rational::one_half();
    let p = mobius_formula_probability(&q, 2, 2, &half);
    assert!(p.is_probability());
    assert!(p.is_positive());
}

#[test]
fn shattering_composes_with_mobius_source() {
    // The shattering source is exactly Example C.9; its lattices have the
    // sizes the Type-II reduction needs (m̄, n̄ ≥ 3 for unsafe queries).
    let q = shattering::source_query();
    let lats = type_ii_lattices(&q);
    assert!(lats.left.strict_support().len() >= 3);
    assert!(lats.right.strict_support().len() >= 3);
}

#[test]
fn type2_block_scales_with_parameters() {
    let q = catalog::example_c15();
    let mut alloc = ConstAlloc::new(10, 10);
    let small = type2_block(&q, 0, 0, 1, 1, &mut alloc);
    let mut alloc = ConstAlloc::new(10, 10);
    let large = type2_block(&q, 0, 0, 3, 2, &mut alloc);
    assert!(large.tid.uncertain_tuples().len() > small.tid.uncertain_tuples().len());
    assert!(large.tid.is_fomc_instance());
}

#[test]
fn type2_block_lineage_distinguishes_lattice_corners() {
    // Y_{1̂-adjacent} vs Y_{bottom} must have different probabilities on a
    // nontrivial block (monotonicity: stronger α ⇒ smaller probability).
    let q = catalog::example_c15();
    let lats = type_ii_lattices(&q);
    let mut alloc = ConstAlloc::new(10, 10);
    let block = type2_block(&q, 0, 0, 1, 1, &mut alloc);
    let supports = lats.left.strict_support();
    // Find a singleton and the bottom (full) element.
    let singleton = supports.iter().find(|e| e.set.len() == 1).unwrap();
    let bottom = supports.iter().max_by_key(|e| e.set.len()).unwrap();
    let h = lats.right.strict_support()[0].formula.clone();
    let (cnf_s, vars_s) = y_alpha_beta(&q, &block, &singleton.formula, &h);
    let (cnf_b, vars_b) = y_alpha_beta(&q, &block, &bottom.formula, &h);
    let p_s = gfomc::logic::wmc(&cnf_s, vars_s.weights());
    let p_b = gfomc::logic::wmc(&cnf_b, vars_b.weights());
    assert!(p_b <= p_s, "stronger G_α must not increase probability");
    assert!(
        p_b < p_s,
        "corners should be strictly separated on this block"
    );
}

#[test]
fn ccp_counts_respect_node_totals() {
    let phi = Pp2Cnf::new(2, 2, vec![(0, 0), (1, 1)]);
    let counts = ccp_counts(&CcpInstance::from_pp2cnf(&phi), 2, 3);
    for sig in counts.keys() {
        assert_eq!(sig.left.iter().sum::<usize>(), 2);
        assert_eq!(sig.right.iter().sum::<usize>(), 2);
        let edge_total: usize = sig.edge.iter().flatten().sum();
        assert_eq!(edge_total, 2);
    }
    assert_eq!(pp2cnf_from_ccp(&counts), phi.count_models());
}

#[test]
fn zigzag_then_type_ii_classification() {
    // zg of a Type II-II query is Type II-II with doubled length; the
    // lattices of the rewritten query still build (sanity of the composed
    // pipeline Lemma 2.6 → Appendix C).
    let q = catalog::example_c15();
    let zq = gfomc::core::zigzag::zg_query(&q);
    let t = zq.query.query_type().unwrap();
    assert_eq!((t.left, t.right), (PartType::II, PartType::II));
    let lats = type_ii_lattices(&zq.query);
    assert!(lats.left.strict_support().len() >= 3);
}
