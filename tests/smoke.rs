//! Smoke test: the documented quickstart (README / `src/lib.rs` doctest /
//! `examples/quickstart.rs`) end-to-end, as a plain integration test so the
//! flow stays covered even if the doctest is ever downgraded to `no_run`.

use gfomc::prelude::*;

/// The all-½ FOMC instance over `U = {0}`, `V = {100}` for a query's
/// vocabulary.
fn all_half_db(q: &BipartiteQuery) -> Tid {
    let mut db = Tid::all_present([0], [100]);
    db.set_prob(Tuple::R(0), Rational::one_half());
    for s in q.binary_symbols() {
        db.set_prob(Tuple::S(s, 0, 100), Rational::one_half());
    }
    db.set_prob(Tuple::T(100), Rational::one_half());
    db
}

#[test]
fn quickstart_h1_classification_and_probability() {
    // H1 = ∀x∀y (R(x) ∨ S(x,y)) ∧ (S(x,y) ∨ T(y)) is the paper's running
    // unsafe query: already final, so its hardness needs no simplification.
    let q = catalog::h1();
    let report = classify(&q);
    assert!(!report.safe, "H1 must classify unsafe");
    assert!(report.is_final, "H1 must classify final");
    assert!(is_unsafe(&q) && !is_safe(&q));

    // On the single-cell all-½ instance: Pr(H1) = 5/8. (Of the 8 worlds
    // over {R(0), S(0,100), T(100)}, exactly 5 satisfy both clauses.)
    let db = all_half_db(&q);
    assert!(db.is_fomc_instance());
    let p = probability(&q, &db);
    assert_eq!(p, Rational::from_ints(5, 8));

    // The exact engine agrees with the possible-world brute force.
    assert_eq!(p, probability_brute_force(&q, &db));
}

#[test]
fn quickstart_lifted_evaluator_side_of_the_dichotomy() {
    // The easy side: every safe catalog query evaluates in PTIME via the
    // lifted plan, and the lifted result matches the generic WMC engine.
    for (name, q) in catalog::safe_catalog() {
        let report = classify(&q);
        assert!(report.safe, "{name} must classify safe");
        let db = all_half_db(&q);
        let lifted = lifted_probability(&q, &db)
            .unwrap_or_else(|e| panic!("lifted evaluation refused safe query {name}: {e:?}"));
        assert_eq!(lifted, probability(&q, &db), "lifted vs WMC on {name}");
    }

    // And it refuses the unsafe H1 rather than answering incorrectly.
    let q = catalog::h1();
    assert!(lifted_probability(&q, &all_half_db(&q)).is_err());
}
