//! Integration tests for the Type-I Cook reduction (Theorem 3.1) on
//! randomized formulas and multiple target queries, including composition
//! with the zig-zag rewriting.

use gfomc::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random P2CNF with `n` variables and up to `max_m` clauses, honoring the
/// at-most-one-orientation edge convention.
fn random_p2cnf(n: usize, max_m: usize, rng: &mut StdRng) -> P2Cnf {
    let mut pairs: Vec<(usize, usize)> = (0..n)
        .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
        .collect();
    // Shuffle and take a prefix.
    for i in (1..pairs.len()).rev() {
        let j = rng.gen_range(0..=i);
        pairs.swap(i, j);
    }
    let m = rng.gen_range(1..=max_m.min(pairs.len()));
    let edges = pairs[..m]
        .iter()
        .map(|&(i, j)| if rng.gen_bool(0.5) { (i, j) } else { (j, i) })
        .collect();
    P2Cnf::new(n, edges)
}

#[test]
fn reduction_on_random_formulas_h1() {
    let mut rng = StdRng::seed_from_u64(0x2C4F);
    for trial in 0..6 {
        let phi = random_p2cnf(4, 4, &mut rng);
        let out = reduce_p2cnf(&catalog::h1(), &phi, OracleMode::Factorized);
        assert_eq!(
            out.model_count,
            phi.count_models(),
            "trial {trial}: {phi:?}"
        );
        assert_eq!(
            out.signature_counts,
            signature_counts(&phi),
            "trial {trial}"
        );
    }
}

#[test]
fn reduction_on_random_formulas_h2() {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for trial in 0..3 {
        let phi = random_p2cnf(4, 3, &mut rng);
        let out = reduce_p2cnf(&catalog::hk(2), &phi, OracleMode::Factorized);
        assert_eq!(out.model_count, phi.count_models(), "trial {trial}");
    }
}

#[test]
fn reduction_composes_with_zigzag() {
    // zg(H1) is a final Type-I query over a fresh vocabulary; Theorem 3.1
    // applies to it verbatim. This is the composition used in the paper's
    // master proof (Theorem 2.2 via Lemma 2.6 + Theorem 2.9).
    let zq = zg_query(&catalog::h1());
    assert!(is_final_type_i(&zq.query));
    let mut rng = StdRng::seed_from_u64(0x216);
    for _ in 0..2 {
        let phi = random_p2cnf(3, 2, &mut rng);
        let out = reduce_p2cnf(&zq.query, &phi, OracleMode::Factorized);
        assert_eq!(out.model_count, phi.count_models());
    }
}

#[test]
fn factorized_and_full_oracles_agree() {
    // Theorem 3.4 (E15), exercised through the public API on a full
    // reduction run rather than a single database.
    let phi = P2Cnf::new(3, vec![(0, 1), (1, 2)]);
    let a = reduce_p2cnf(&catalog::h1(), &phi, OracleMode::FullWmc);
    let b = reduce_p2cnf(&catalog::h1(), &phi, OracleMode::Factorized);
    assert_eq!(a.model_count, b.model_count);
    assert_eq!(a.signature_counts, b.signature_counts);
}

#[test]
fn reduction_handles_disconnected_formulas() {
    // Two independent edges: counts multiply across components.
    let phi = P2Cnf::new(4, vec![(0, 1), (2, 3)]);
    let out = reduce_p2cnf(&catalog::h1(), &phi, OracleMode::Factorized);
    assert_eq!(out.model_count, Natural::from(9u64)); // 3 × 3
}

#[test]
fn reduction_certificate_totals() {
    // The recovered signature counts must always total 2^n.
    let mut rng = StdRng::seed_from_u64(0xACC);
    let phi = random_p2cnf(4, 4, &mut rng);
    let out = reduce_p2cnf(&catalog::h1(), &phi, OracleMode::Factorized);
    let total = out
        .signature_counts
        .values()
        .fold(Natural::zero(), |acc, c| &acc + c);
    assert_eq!(total, Natural::from(16u64));
}

#[test]
fn pp2cnf_instances_via_embedding() {
    // Provan–Ball instances run through the same pipeline.
    let phi = Pp2Cnf::new(2, 2, vec![(0, 0), (0, 1), (1, 1)]);
    let embedded = phi.to_p2cnf();
    let out = reduce_p2cnf(&catalog::h1(), &embedded, OracleMode::Factorized);
    assert_eq!(out.model_count, phi.count_models());
}
