//! Cross-crate integration tests for the dichotomy: static classification,
//! the lifted PTIME evaluator, and the exact WMC engine must tell one
//! consistent story on randomized databases.

use gfomc::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random GFOMC database (probabilities in {0, ½, 1}) for a query over
/// `nu × nv` with the given zero/one bias.
fn random_gfomc_db(q: &BipartiteQuery, nu: u32, nv: u32, rng: &mut StdRng) -> Tid {
    let left: Vec<u32> = (0..nu).collect();
    let right: Vec<u32> = (500..500 + nv).collect();
    let mut tid = Tid::all_present(left.clone(), right.clone());
    let pick = |rng: &mut StdRng| match rng.gen_range(0..4) {
        0 => Rational::zero(),
        1 => Rational::one(),
        _ => Rational::one_half(),
    };
    for &u in &left {
        let p = pick(rng);
        tid.set_prob(Tuple::R(u), p);
        for &v in &right {
            for s in q.binary_symbols() {
                let p = pick(rng);
                tid.set_prob(Tuple::S(s, u, v), p);
            }
        }
    }
    for &v in &right {
        let p = pick(rng);
        tid.set_prob(Tuple::T(v), p);
    }
    tid
}

#[test]
fn classification_is_stable_under_catalog() {
    // The published classification of every catalog query.
    let expectations = [
        ("h0", false, Some(0)),
        ("h1", false, Some(1)),
        ("h2", false, Some(2)),
        ("h3", false, Some(3)),
        ("type_i_wide", false, Some(2)),
        ("type_i_braided", false, Some(1)),
        ("example_c9", false, Some(2)),
        ("example_c15", false, Some(2)),
        ("example_a3", false, Some(2)),
        ("example_c18", false, Some(2)),
    ];
    let cat = catalog::unsafe_catalog();
    for (name, safe, length) in expectations {
        let q = &cat.iter().find(|(n, _)| *n == name).unwrap().1;
        let c = classify(q);
        assert_eq!(c.safe, safe, "{name}");
        assert_eq!(c.length, length, "{name}");
    }
}

#[test]
fn wmc_matches_brute_force_on_random_gfomc_instances() {
    let mut rng = StdRng::seed_from_u64(0xD1C407);
    for (name, q) in catalog::unsafe_catalog() {
        for trial in 0..3 {
            let tid = random_gfomc_db(&q, 2, 2, &mut rng);
            if tid.uncertain_tuples().len() > 16 {
                continue;
            }
            assert_eq!(
                probability(&q, &tid),
                probability_brute_force(&q, &tid),
                "{name} trial {trial}"
            );
        }
    }
}

#[test]
fn lifted_matches_wmc_on_random_safe_instances() {
    let mut rng = StdRng::seed_from_u64(0x5AFE);
    for (name, q) in catalog::safe_catalog() {
        for trial in 0..5 {
            let tid = random_gfomc_db(&q, 3, 3, &mut rng);
            let lifted = lifted_probability(&q, &tid).expect(name);
            let exact = probability(&q, &tid);
            assert_eq!(lifted, exact, "{name} trial {trial}");
        }
    }
}

#[test]
fn lifted_rejects_every_unsafe_catalog_query() {
    let mut rng = StdRng::seed_from_u64(7);
    for (name, q) in catalog::unsafe_catalog() {
        let tid = random_gfomc_db(&q, 2, 2, &mut rng);
        assert!(lifted_probability(&q, &tid).is_err(), "{name}");
    }
}

#[test]
fn rewriting_chain_terminates_at_final_queries() {
    // Lemma 2.7 / Definition 2.8: greedy simplification of every unsafe
    // catalog query reaches a final query whose every rewriting is safe.
    for (name, q) in catalog::unsafe_catalog() {
        if !q.is_bipartite_shape() {
            continue; // H0 is handled directly by Theorem 2.5.
        }
        let (f, _) = simplify_to_final(&q);
        assert!(is_final(&f), "{name}");
        for p in f.symbols() {
            assert!(is_safe(&f.set_symbol(p, false)), "{name}[{p}:=0]");
            assert!(is_safe(&f.set_symbol(p, true)), "{name}[{p}:=1]");
        }
    }
}

#[test]
fn duality_of_probability_values() {
    // §1.3: GFOMC is closed under duality because 1−p stays in {0,½,1}.
    // Observable shard: complement probabilities of a database remain a
    // valid GFOMC instance.
    let q = catalog::h1();
    let mut rng = StdRng::seed_from_u64(99);
    let tid = random_gfomc_db(&q, 2, 2, &mut rng);
    assert!(tid.is_gfomc_instance());
    let mut dual = Tid::all_present(
        tid.left_domain().iter().copied(),
        tid.right_domain().iter().copied(),
    );
    for (t, p) in tid.explicit_tuples() {
        dual.set_prob(*t, p.complement());
    }
    assert!(dual.is_gfomc_instance());
}

#[test]
fn generalized_model_count_scales_probability() {
    let q = catalog::hk(2);
    let mut rng = StdRng::seed_from_u64(0xC0DE);
    for _ in 0..3 {
        let tid = random_gfomc_db(&q, 2, 1, &mut rng);
        let count = generalized_model_count(&q, &tid);
        let halves = tid
            .uncertain_tuples()
            .iter()
            .filter(|t| tid.prob(t) == Rational::one_half())
            .count() as i32;
        let expect = &probability(&q, &tid) * &Rational::from_ints(2, 1).pow(halves);
        assert_eq!(Rational::from(Integer::from(count)), expect);
    }
}
