//! One integration test per constructive theorem/lemma of §3, run across
//! the final Type-I catalog — the experiment suite of EXPERIMENTS.md in
//! test form (E2–E6, E8, E9).

use gfomc::core::small_matrix::{
    block_small_matrix, corollary_3_18_constant, lemma_1_2_agrees, theorem_3_16_at_half,
};
use gfomc::core::transfer::{lemma_3_19_holds, proposition_3_20_holds};
use gfomc::prelude::*;

fn final_type_i_catalog() -> Vec<(&'static str, BipartiteQuery)> {
    vec![
        ("h1", catalog::h1()),
        ("h2", catalog::hk(2)),
        ("h3", catalog::hk(3)),
    ]
}

#[test]
fn e2_lemma_3_19_transfer_recurrence() {
    for (name, q) in final_type_i_catalog() {
        for p in 1..=4 {
            assert!(lemma_3_19_holds(&q, p), "{name} p={p}");
        }
    }
}

#[test]
fn e4_proposition_3_20_ordering() {
    for (name, q) in final_type_i_catalog() {
        let a1 = transfer_matrix(&q, 1);
        assert!(proposition_3_20_holds(&a1), "{name}");
    }
}

#[test]
fn e5_theorem_3_14_conditions_exact() {
    for (name, q) in final_type_i_catalog() {
        let e = EigenData::decompose(&transfer_matrix(&q, 1));
        assert!(e.theorem_3_14_conditions(), "{name}");
        // λ are irrational here (disc not a perfect square) — the exact
        // quadratic-field arithmetic is doing real work.
        assert!(
            !e.lambda1.is_rational() || !e.lambda2.is_rational(),
            "{name}"
        );
    }
}

#[test]
fn e6_big_system_nonsingular() {
    for (name, q) in final_type_i_catalog() {
        for m in 1..=3 {
            let z: Vec<Matrix<Rational>> = (1..=m + 1).map(|p| transfer_matrix(&q, p)).collect();
            let sys = big_system(&z, m);
            assert!(sys.matrix.is_invertible(), "{name} m={m}");
        }
    }
}

#[test]
fn e3_theorem_3_16_and_corollary_3_18() {
    for (name, q) in final_type_i_catalog() {
        assert!(theorem_3_16_at_half(&q), "{name}");
        if q.binary_symbols().len() <= 2 {
            // The symbolic product-form check is exponential in block size;
            // run it on the small-vocabulary queries.
            let c = corollary_3_18_constant(&q);
            assert!(c.is_some(), "{name}: f_A is not c·∏u(1-u)");
        }
    }
}

#[test]
fn e8_lemma_1_1_on_block_determinants() {
    // The determinant f_A of each catalog query admits a {0,½,1} non-root —
    // and Lemma 1.1's constructive search finds it.
    for (name, q) in final_type_i_catalog() {
        let det = block_small_matrix(&q).determinant();
        let (theta, value) = gfomc_nonroot(&det);
        assert!(!value.is_zero(), "{name}");
        assert_eq!(det.eval(&theta), value, "{name}");
    }
}

#[test]
fn e9_lemma_1_2_on_block_lineages() {
    // For final Type-I queries the p=1 block lineage connects R(u), R(v),
    // so the small matrix must be non-singular; conversely a disconnected
    // variant must be singular. Both via the generic Lemma 1.2 predicate.
    use gfomc::logic::{Clause as PClause, Cnf};
    for (name, q) in final_type_i_catalog() {
        let sm = block_small_matrix(&q);
        assert!(!sm.is_singular(), "{name}");
    }
    // A synthetic disconnected lineage.
    let f = Cnf::new([
        PClause::new([Var(0), Var(1)]),
        PClause::new([Var(2), Var(3)]),
    ]);
    assert!(lemma_1_2_agrees(&f, Var(0), Var(2)));
}

#[test]
fn e13_reduction_databases_are_model_counting_instances() {
    // Theorem 2.9 (1): hardness holds for FOMC, i.e. probabilities {½, 1}.
    let q = catalog::h1();
    let phi = P2Cnf::new(3, vec![(0, 1), (1, 2)]);
    for p1 in 1..=3 {
        for p2 in p1..=3 {
            let tid = block_database(&q, &phi, &[p1, p2]);
            assert!(tid.is_fomc_instance(), "({p1},{p2})");
            for t in tid.uncertain_tuples() {
                assert_eq!(tid.prob(&t), Rational::one_half());
            }
        }
    }
}

#[test]
fn eigenvalue_magnitudes_ordered() {
    // Theorem C.33's shape for the Type-I case: 0 < |λ2| < λ1 with our
    // ordering λ1 > λ2 (λ1 carries the trace's positive branch).
    for (name, q) in final_type_i_catalog() {
        let e = EigenData::decompose(&transfer_matrix(&q, 1));
        assert!(e.lambda1.is_positive(), "{name}");
        let diff = &e.lambda1 - &e.lambda2;
        assert!(diff.is_positive(), "{name}");
    }
}

#[test]
fn transfer_matrices_shrink_geometrically() {
    // A(p) entries decay with p (each link multiplies by probabilities <1):
    // z11(p+1) < z11(p) for the chain queries.
    let q = catalog::h1();
    let mut prev = transfer_matrix(&q, 1);
    for p in 2..=4 {
        let cur = transfer_matrix(&q, p);
        assert!(cur.get(1, 1) < prev.get(1, 1), "p={p}");
        prev = cur;
    }
}
