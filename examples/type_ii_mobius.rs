//! Type-II machinery: CNF lattices with Möbius functions (Definition C.6),
//! the block formula of Theorem C.19, and the Coloring Count Problem
//! (Theorem C.3).
//!
//! Run with `cargo run --example type_ii_mobius`.

use gfomc::core::ccp::{ccp_counts, pp2cnf_from_ccp, CcpInstance};
use gfomc::core::reduction_type2::{
    mobius_formula_probability, qab_map_is_invertible, theorem_c19_holds, type_ii_lattices,
};
use gfomc::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // 1. The Möbius lattice of Example C.7.
    // ------------------------------------------------------------------
    use gfomc::logic::{Clause as PClause, Cnf};
    let conj = |vars: &[u32]| -> Cnf { Cnf::new(vars.iter().map(|&v| PClause::new([Var(v)]))) };
    // Y1 = Z1Z2, Y2 = Z1Z3, Y3 = Z2Z3.
    let lat = MobiusLattice::build(&[conj(&[1, 2]), conj(&[1, 3]), conj(&[2, 3])]);
    println!("Example C.7 lattice (closed set -> µ):");
    for e in &lat.elements {
        println!("  {:?} -> {}", e.set, e.mobius);
    }
    println!("(matches the paper: µ(∅)=1, µ(i)=-1, µ(123)=2)\n");

    // ------------------------------------------------------------------
    // 2. The lattices of the forbidden Type-II query of Example C.15.
    // ------------------------------------------------------------------
    let q = catalog::example_c15();
    println!("Q = {q}");
    let lats = type_ii_lattices(&q);
    println!(
        "left lattice: {} elements, strict support m̄ = {}",
        lats.left.elements.len(),
        lats.left.strict_support().len()
    );
    println!(
        "right lattice: {} elements, strict support n̄ = {}",
        lats.right.elements.len(),
        lats.right.strict_support().len()
    );
    assert!(qab_map_is_invertible(&q));
    println!("(α,β) ↦ Q_αβ is invertible (Lemma C.10) ✓\n");

    // ------------------------------------------------------------------
    // 3. Theorem C.19: the signed Möbius sum over endpoint colorings
    //    equals the direct probability on a union of blocks.
    // ------------------------------------------------------------------
    let prob = |s: u32, u: u32, v: u32| -> Rational {
        if (s + u + v).is_multiple_of(5) {
            Rational::one()
        } else {
            Rational::one_half()
        }
    };
    for (nu, nv) in [(1u32, 1u32), (2, 1), (2, 2)] {
        let mobius = mobius_formula_probability(&q, nu, nv, &prob);
        assert!(theorem_c19_holds(&q, nu, nv, &prob));
        println!("Theorem C.19 at |U|={nu}, |V|={nv}: Pr(Q) = {mobius} ✓");
    }

    // ------------------------------------------------------------------
    // 4. Theorem C.3: #PP2CNF from a Coloring-Count oracle.
    // ------------------------------------------------------------------
    let phi = Pp2Cnf::new(2, 2, vec![(0, 0), (0, 1), (1, 1)]);
    let inst = CcpInstance::from_pp2cnf(&phi);
    println!("\nPP2CNF Φ with edges {:?}:", phi.edges());
    for (m, n) in [(2usize, 2usize), (3, 3)] {
        let counts = ccp_counts(&inst, m, n);
        let recovered = pp2cnf_from_ccp(&counts);
        println!(
            "  CCP({m},{n}): {} distinct signatures, #Φ = {recovered}",
            counts.len()
        );
        assert_eq!(recovered, phi.count_models());
    }
    println!("#PP2CNF recovered from coloring counts ✓");
}
