//! Quickstart: build a probabilistic database, classify a query with the
//! dichotomy, and evaluate it exactly three different ways.
//!
//! Run with `cargo run --example quickstart`.

use gfomc::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // 1. A query: the intro's running example
    //    H1 = ∀x∀y (R(x) ∨ S(x,y)) ∧ (S(x,y) ∨ T(y)).
    // ------------------------------------------------------------------
    let q = catalog::h1();
    println!("query Q = {q}");

    // ------------------------------------------------------------------
    // 2. The dichotomy (Theorems 2.1/2.2): static analysis of Q.
    // ------------------------------------------------------------------
    let report = classify(&q);
    println!(
        "classification: safe={}, length={:?}, final={}, type={:?}",
        report.safe, report.length, report.is_final, report.query_type
    );
    assert!(!report.safe, "H1 is the canonical unsafe bipartite query");

    // ------------------------------------------------------------------
    // 3. A tuple-independent database over U = {0,1}, V = {100,101} with
    //    all tuples at probability ½ — a model-counting (FOMC) instance.
    // ------------------------------------------------------------------
    let mut db = Tid::all_present([0, 1], [100, 101]);
    for u in [0u32, 1] {
        db.set_prob(Tuple::R(u), Rational::one_half());
        for v in [100u32, 101] {
            db.set_prob(Tuple::S(0, u, v), Rational::one_half());
        }
    }
    for v in [100u32, 101] {
        db.set_prob(Tuple::T(v), Rational::one_half());
    }
    println!(
        "database: |U|=2, |V|=2, {} uncertain tuples, FOMC instance: {}",
        db.uncertain_tuples().len(),
        db.is_fomc_instance()
    );

    // ------------------------------------------------------------------
    // 4. Exact evaluation, three ways.
    // ------------------------------------------------------------------
    // (a) lineage + weighted model counting (the workhorse engine)
    let p_fast = probability(&q, &db);
    // (b) brute-force possible-world enumeration (ground truth)
    let p_brute = probability_brute_force(&q, &db);
    // (c) the generalized model count (number of satisfying worlds)
    let count = generalized_model_count(&q, &db);

    println!(
        "Pr(Q)  via WMC         = {p_fast}  (~{:.6})",
        p_fast.to_f64()
    );
    println!("Pr(Q)  via brute force = {p_brute}");
    println!("#models over 2^10 worlds = {count}");
    assert_eq!(p_fast, p_brute);

    // ------------------------------------------------------------------
    // 5. Safe queries additionally admit a PTIME lifted plan.
    // ------------------------------------------------------------------
    let safe_q = catalog::safe_no_right();
    println!("\nsafe query Q' = {safe_q}");
    let mut db2 = Tid::all_present([0, 1, 2], [100, 101, 102]);
    for u in 0..3u32 {
        db2.set_prob(Tuple::R(u), Rational::one_half());
        for v in 100..103u32 {
            db2.set_prob(Tuple::S(0, u, v), Rational::one_half());
            db2.set_prob(Tuple::S(1, u, v), Rational::one_half());
        }
    }
    let lifted = lifted_probability(&safe_q, &db2).expect("Q' is safe");
    let exact = probability(&safe_q, &db2);
    println!("lifted Pr(Q') = {lifted}");
    assert_eq!(lifted, exact);
    println!("lifted evaluation agrees with exact WMC ✓");

    // The lifted evaluator refuses unsafe queries — the other side of the
    // dichotomy.
    assert!(lifted_probability(&q, &db).is_err());
    println!("lifted evaluation correctly refuses the unsafe H1 ✓");
}
