//! The dichotomy picture (Theorem 2.2): classify a catalog of queries, then
//! measure how the two sides scale — the PTIME lifted plan on safe queries
//! versus exact WMC on unsafe ones.
//!
//! Run with `cargo run --release --example dichotomy`.

use gfomc::prelude::*;
use std::time::Instant;

fn uniform_db(q: &BipartiteQuery, nu: u32, nv: u32) -> Tid {
    let left: Vec<u32> = (0..nu).collect();
    let right: Vec<u32> = (1000..1000 + nv).collect();
    let mut tid = Tid::all_present(left.clone(), right.clone());
    for &u in &left {
        tid.set_prob(Tuple::R(u), Rational::one_half());
        for &v in &right {
            for s in q.binary_symbols() {
                tid.set_prob(Tuple::S(s, u, v), Rational::one_half());
            }
        }
    }
    for &v in &right {
        tid.set_prob(Tuple::T(v), Rational::one_half());
    }
    tid
}

fn main() {
    // ------------------------------------------------------------------
    // 1. Static classification of the whole catalog.
    // ------------------------------------------------------------------
    println!(
        "{:<22} {:>6} {:>7} {:>6} {:>10}",
        "query", "safe", "length", "final", "type"
    );
    println!("{}", "-".repeat(56));
    let all: Vec<(&str, BipartiteQuery)> = catalog::unsafe_catalog()
        .into_iter()
        .chain(catalog::safe_catalog())
        .collect();
    for (name, q) in &all {
        let c = classify(q);
        let ty = match c.query_type {
            Some(t) => format!("{:?}-{:?}", t.left, t.right),
            None => "-".to_string(),
        };
        println!(
            "{:<22} {:>6} {:>7} {:>6} {:>10}",
            name,
            c.safe,
            c.length.map_or("-".into(), |l| l.to_string()),
            c.is_final,
            ty
        );
    }

    // ------------------------------------------------------------------
    // 2. Scaling: safe side (lifted, polynomial in the domain).
    // ------------------------------------------------------------------
    println!("\nsafe side: lifted evaluation of `safe_three_components`");
    println!("{:>6} {:>14} {:>12}", "n=|U|=|V|", "time", "Pr digits");
    let q_safe = catalog::safe_three_components();
    for n in [4u32, 8, 16, 32, 64] {
        let db = uniform_db(&q_safe, n, n);
        let t0 = Instant::now();
        let p = lifted_probability(&q_safe, &db).unwrap();
        let dt = t0.elapsed();
        println!(
            "{:>6} {:>14?} {:>12}",
            n,
            dt,
            p.numer().magnitude().bit_len()
        );
    }

    // ------------------------------------------------------------------
    // 3. Scaling: unsafe side (exact WMC — exponential-ish growth).
    // ------------------------------------------------------------------
    println!("\nunsafe side: exact WMC of H1 on n x n uniform databases");
    println!("{:>6} {:>14} {:>14}", "n", "time", "branchings");
    let q_hard = catalog::h1();
    for n in [1u32, 2, 3, 4, 5] {
        let db = uniform_db(&q_hard, n, n);
        let lin = lineage(&q_hard, &db);
        let t0 = Instant::now();
        let weights = lin.vars.weights();
        let mut counter = gfomc::logic::ModelCounter::new(weights);
        let p = counter.probability(&lin.cnf);
        let dt = t0.elapsed();
        println!("{:>6} {:>14?} {:>14}", n, dt, counter.branch_count);
        assert!(p.is_probability());
    }
    println!("\nThe contrast above *is* the dichotomy: the safe query scales");
    println!("polynomially in the domain, while the exact engine on the");
    println!("unsafe query does exponential Shannon branching — and by");
    println!("Theorem 2.2 no algorithm does better unless FP = #P, even with");
    println!("all probabilities in {{0, 1/2, 1}}.");
}
