//! One `Engine`, many threads: the serving setup.
//!
//! `Engine` is `Send + Sync` with every method on `&self`, so a single
//! engine — one compilation cache, one route ledger, one worker pool —
//! can sit behind a server and answer queries from as many threads as the
//! hardware offers. This example demonstrates the three pieces the
//! "Concurrency & serving" README section describes:
//!
//! 1. concurrent callers sharing one cache (the second thread to ask for
//!    a lineage gets the first thread's circuit);
//! 2. the batched front-end `evaluate_auto_batch`, which fans a mixed
//!    batch of routed queries across the engine's pool;
//! 3. the determinism guarantee: whatever the thread count, results are
//!    bit-identical to a serial run at the same seeds.

use gfomc_engine::workload::{random_block_tid, random_query, SafetyTarget};
use gfomc_engine::{Budget, Engine};
use gfomc_query::BipartiteQuery;
use gfomc_tid::Tid;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    // A mixed workload: safe and unsafe queries over random block TIDs.
    let mut rng = StdRng::seed_from_u64(0x5E4E);
    let mut workload: Vec<(BipartiteQuery, Tid)> = Vec::new();
    for i in 0..9 {
        let target = if i % 3 == 0 {
            SafetyTarget::Safe
        } else {
            SafetyTarget::Unsafe
        };
        let q = random_query(&mut rng, 2, 2, target);
        let tid = random_block_tid(&mut rng, &q, 2, 2);
        workload.push((q, tid));
    }
    let budget = Budget::default().with_threads(4);

    // The serial reference: one engine, one thread, one pass.
    let reference_engine = Engine::new();
    let reference: Vec<_> = workload
        .iter()
        .map(|(q, tid)| reference_engine.evaluate_auto(q, tid, &budget))
        .collect();

    // (1) Many OS threads drive ONE shared engine directly.
    let shared = Engine::new();
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let shared = &shared;
            let workload = &workload;
            let reference = &reference;
            let budget = &budget;
            scope.spawn(move || {
                for ((q, tid), expect) in workload.iter().zip(reference) {
                    let routed = shared.evaluate_auto(q, tid, budget);
                    assert_eq!(&routed, expect, "shared engine must match serial run");
                }
            });
        }
    });
    let stats = shared.cache_stats();
    println!("4 threads × {} queries through one engine:", workload.len());
    println!(
        "  cache: {} hits / {} misses (hit rate {:.2}) — {} circuits resident",
        stats.hits,
        stats.misses,
        stats.hit_rate(),
        stats.entries
    );
    println!("  routes: {:?}", shared.route_counts());
    assert!(
        stats.hits > 0,
        "concurrent repeats of one lineage share a single compilation"
    );

    // (2) + (3) The batched serving front-end: same results, same order,
    // for every worker count.
    let engine = Engine::new();
    let batched = engine.evaluate_auto_batch(&workload, &budget);
    assert_eq!(batched, reference, "batch ≡ serial, bit for bit");
    println!(
        "evaluate_auto_batch({} queries, 4 workers): bit-identical to the serial loop",
        workload.len()
    );
    for (i, routed) in batched.iter().enumerate().take(3) {
        println!(
            "  query {i}: route {:?}, Pr = {}",
            routed.route,
            routed.result.point()
        );
    }
}
