//! The engine's compile-once / evaluate-many workflow, end to end:
//! compile a query lineage into an arithmetic circuit, sweep tuple
//! probabilities without recompiling, and compare against the naive oracle.
//!
//! Run with `cargo run --example engine_batch`.

use gfomc::engine::workload::{random_block_tid, random_query, random_weightings, SafetyTarget};
use gfomc::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use std::time::Instant;

fn main() {
    // ------------------------------------------------------------------
    // 1. A block database for H1 over a 3×3 domain, every tuple at a
    //    random interior probability (seeded — reruns are identical).
    // ------------------------------------------------------------------
    let q = catalog::h1();
    let mut rng = StdRng::seed_from_u64(42);
    let tid = random_block_tid(&mut rng, &q, 3, 3);
    println!("query Q = {q}");

    // ------------------------------------------------------------------
    // 2. Compile once: lineage → d-DNNF-style arithmetic circuit.
    // ------------------------------------------------------------------
    let engine = Engine::new();
    let t0 = Instant::now();
    let compiled = engine.compile(&q, &tid);
    println!(
        "compiled lineage over {} uncertain tuples into {} gates in {:?}",
        compiled.tuples().len(),
        compiled.node_count(),
        t0.elapsed(),
    );
    assert_eq!(compiled.evaluate_db(), probability(&q, &tid));

    // ------------------------------------------------------------------
    // 3. Evaluate many: 12 random weight assignments, each priced by one
    //    bottom-up circuit pass — no re-grounding, no re-expansion.
    // ------------------------------------------------------------------
    let weightings = random_weightings(&mut rng, &compiled.tuples(), 12);
    let t1 = Instant::now();
    let batch = compiled.evaluate_batch(&weightings);
    let batched = t1.elapsed();
    println!("12 batched evaluations in {batched:?}");

    // The same 12 answers the legacy way: re-ground + re-expand per weight.
    let t2 = Instant::now();
    for (w, expected) in weightings.iter().zip(&batch) {
        let mut db = tid.clone();
        for (&t, p) in w.iter() {
            db.set_prob(t, p.clone());
        }
        assert_eq!(&probability(&q, &db), expected, "engine ≡ naive oracle");
    }
    let naive = t2.elapsed();
    println!("12 independent WMC runs in {naive:?} (same answers, exactly)");

    // ------------------------------------------------------------------
    // 4. Deterministic overrides need no recompilation: conditioning on
    //    R(0) present/absent is two more passes of the same circuit.
    // ------------------------------------------------------------------
    let present = compiled.evaluate(&TupleWeights::new().with(Tuple::R(0), Rational::one()));
    let absent = compiled.evaluate(&TupleWeights::new().with(Tuple::R(0), Rational::zero()));
    println!("Pr(Q | R(0) present) = {present}");
    println!("Pr(Q | R(0) absent)  = {absent}");
    assert!(absent <= present, "H1 is monotone in R(0)");

    // ------------------------------------------------------------------
    // 5. The workload generator also controls query safety — the bench
    //    suites draw from both sides of the dichotomy.
    // ------------------------------------------------------------------
    let safe = random_query(&mut rng, 3, 3, SafetyTarget::Safe);
    let unsafe_q = random_query(&mut rng, 3, 3, SafetyTarget::Unsafe);
    println!("random safe query:   {safe}");
    println!("random unsafe query: {unsafe_q}");
    assert!(is_safe(&safe) && is_unsafe(&unsafe_q));
}
