//! The dichotomy as a runtime routing decision, end to end: one entry
//! point (`Engine::evaluate_auto`) sends a safe query to the PTIME lifted
//! evaluator, a small unsafe query to the exact compiled circuit, and a
//! large unsafe query to the Karp–Luby sampler — the three regimes the
//! `gfomc-approx` subsystem completes.
//!
//! Run with `cargo run --example approx_sampling`.

use gfomc::approx::{lineage_sampler, AdaptiveConfig};
use gfomc::engine::workload::{random_block_tid, unsafe_block_preset};
use gfomc::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use std::time::Instant;

fn show(label: &str, routed: &Routed, elapsed: std::time::Duration) {
    match &routed.result {
        AutoResult::Exact(p) => {
            println!(
                "{label}: route {:?}, exact Pr = {p} ({elapsed:?})",
                routed.route
            );
        }
        AutoResult::Approx {
            estimate,
            ci,
            samples,
        } => {
            println!(
                "{label}: route {:?}, Pr ≈ {:.6} ∈ [{:.6}, {:.6}] at 95% ({samples} samples, {elapsed:?})",
                routed.route,
                estimate.to_f64(),
                ci.lo.to_f64(),
                ci.hi.to_f64(),
            );
        }
        AutoResult::Certified { le, threshold } => {
            let cmp = if *le { "≤" } else { ">" };
            println!(
                "{label}: route {:?}, certified Pr {cmp} {threshold} ({elapsed:?})",
                routed.route
            );
        }
    }
}

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let budget = Budget::default()
        .with_samples(20_000)
        .expect("positive sample budget");
    let engine = Engine::new();

    // ------------------------------------------------------------------
    // 1. A safe query: the router never grounds a lineage — the lifted
    //    evaluator answers exactly, in PTIME, however large the domain.
    // ------------------------------------------------------------------
    let safe = catalog::safe_three_components();
    let tid = random_block_tid(&mut rng, &safe, 12, 12);
    let t0 = Instant::now();
    let routed = engine.evaluate_auto(&safe, &tid, &budget);
    show("safe 12x12      ", &routed, t0.elapsed());
    assert_eq!(routed.route, Route::Lifted);
    assert_eq!(
        routed.result,
        AutoResult::Exact(lifted_probability(&safe, &tid).unwrap())
    );

    // ------------------------------------------------------------------
    // 2. A small unsafe query: #P-hard in general, but this instance's
    //    estimated circuit cost fits the budget — still exact.
    // ------------------------------------------------------------------
    let h1 = catalog::h1();
    let small = random_block_tid(&mut rng, &h1, 2, 2);
    let t0 = Instant::now();
    let routed = engine.evaluate_auto(&h1, &small, &budget);
    show("unsafe 2x2      ", &routed, t0.elapsed());
    assert_eq!(routed.route, Route::Compiled);
    assert_eq!(routed.result, AutoResult::Exact(probability(&h1, &small)));

    // ------------------------------------------------------------------
    // 3a. A 6×6 unsafe block: the monolithic worst-case bound (~8·10¹³
    //     gates) used to chase this to the sampler, but the refined cost
    //     descent proves the block structure compiles in ~10⁴ gates — so
    //     the router keeps it **exact**.
    // ------------------------------------------------------------------
    let (mq, mtid) = unsafe_block_preset(&mut rng, 2, 6);
    let mest = gfomc::safety::circuit_cost_estimate(&gfomc::tid::lineage(&mq, &mtid).cnf);
    println!(
        "unsafe preset   : query {mq}, 6x6 block, cost refined {} vs worst-case {}",
        mest.estimated_nodes, mest.worst_case_nodes,
    );
    let t0 = Instant::now();
    let routed = engine.evaluate_auto(&mq, &mtid, &budget);
    show("unsafe 6x6      ", &routed, t0.elapsed());
    assert_eq!(routed.route, Route::Compiled);

    // ------------------------------------------------------------------
    // 3b. A 12×12 unsafe block: here even the refined bound stays above
    //     the budget (the descent's work cap dries up before proving the
    //     decomposition), so the router falls back to the seeded
    //     Karp–Luby sampler — an anytime estimate with a confidence
    //     interval instead of a possibly-exponential compilation.
    // ------------------------------------------------------------------
    let mut prng = StdRng::seed_from_u64(0xD1CE);
    let (uq, utid) = unsafe_block_preset(&mut prng, 2, 12);
    println!(
        "unsafe preset   : query {uq}, 12x12 block, lineage cost estimate {}",
        gfomc::safety::circuit_cost_estimate(&gfomc::tid::lineage(&uq, &utid).cnf).estimated_nodes,
    );
    let t0 = Instant::now();
    let routed = engine.evaluate_auto(&uq, &utid, &budget);
    show("unsafe 12x12    ", &routed, t0.elapsed());
    assert_eq!(routed.route, Route::Sampled);

    // Same seed, same answer: the estimate is bit-reproducible.
    let again = Engine::new().evaluate_auto(&uq, &utid, &budget);
    assert_eq!(routed, again);

    // ------------------------------------------------------------------
    // 4. Anytime refinement: more samples tighten the interval (the
    //    Hoeffding half-width shrinks as 1/√N), against the same sampler.
    // ------------------------------------------------------------------
    let sampler = lineage_sampler(&uq, &utid);
    for samples in [1_000u64, 10_000, 100_000] {
        let mut rng = StdRng::seed_from_u64(7);
        let t0 = Instant::now();
        let est = sampler.estimate(&mut rng, samples, 0.05);
        println!(
            "  {samples:>7} samples: Pr ≈ {:.6}, CI width {:.6} ({:?})",
            est.estimate.to_f64(),
            est.ci.width().to_f64(),
            t0.elapsed(),
        );
    }

    // ------------------------------------------------------------------
    // 5. Adaptive stopping: instead of a fixed worst-case budget, sample
    //    in rounds and stop as soon as the empirical-Bernstein interval
    //    is within ±0.05 — never more draws than the fixed KLM budget,
    //    usually far fewer.
    // ------------------------------------------------------------------
    let adaptive = sampler.estimate_adaptive(&AdaptiveConfig::new(0.05, 0.05, 7));
    println!(
        "adaptive stop   : {} samples of a {}-sample fixed budget ({} rounds, converged: {})",
        adaptive.estimate.samples,
        sampler.fpras_samples(0.05, 0.05),
        adaptive.rounds,
        adaptive.converged,
    );
    assert!(adaptive.estimate.samples <= sampler.fpras_samples(0.05, 0.05));

    // ------------------------------------------------------------------
    // 6. Parallel sampling: the chunk-seeded plan makes the estimate a
    //    pure function of (seed, sample count) — threads only split the
    //    work, so 1, 2, and 4 threads agree bit-for-bit.
    // ------------------------------------------------------------------
    let serial = sampler.estimate_seeded(7, 20_000, 0.05, 1);
    for threads in [2usize, 4] {
        assert_eq!(serial, sampler.estimate_seeded(7, 20_000, 0.05, threads));
    }
    println!(
        "parallel plan   : 1t = 2t = 4t, bit-identical ({} hits)",
        serial.hits
    );

    // ------------------------------------------------------------------
    // 7. The compilation cache: asking the engine the same (compilable)
    //    query again skips compilation entirely — the canonical lineage
    //    is interned and the circuit comes back as a cache hit.
    // ------------------------------------------------------------------
    let again = engine.evaluate_auto(&h1, &small, &budget);
    assert_eq!(again.result, AutoResult::Exact(probability(&h1, &small)));
    let cache = engine.cache_stats();
    println!(
        "compile cache   : {} hits / {} misses after the repeat",
        cache.hits, cache.misses
    );
    assert!(cache.hits >= 1);

    let counts = engine.route_counts();
    println!(
        "routing tally: {} lifted, {} compiled, {} sampled",
        counts.lifted, counts.compiled, counts.sampled
    );
    assert_eq!(counts.lifted + counts.compiled + counts.sampled, 5);
}
