//! The dichotomy as a runtime routing decision, end to end: one entry
//! point (`Engine::evaluate_auto`) sends a safe query to the PTIME lifted
//! evaluator, a small unsafe query to the exact compiled circuit, and a
//! large unsafe query to the Karp–Luby sampler — the three regimes the
//! `gfomc-approx` subsystem completes.
//!
//! Run with `cargo run --example approx_sampling`.

use gfomc::approx::lineage_sampler;
use gfomc::engine::workload::{random_block_tid, unsafe_block_preset};
use gfomc::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use std::time::Instant;

fn show(label: &str, routed: &Routed, elapsed: std::time::Duration) {
    match &routed.result {
        AutoResult::Exact(p) => {
            println!(
                "{label}: route {:?}, exact Pr = {p} ({elapsed:?})",
                routed.route
            );
        }
        AutoResult::Approx {
            estimate,
            ci,
            samples,
        } => {
            println!(
                "{label}: route {:?}, Pr ≈ {:.6} ∈ [{:.6}, {:.6}] at 95% ({samples} samples, {elapsed:?})",
                routed.route,
                estimate.to_f64(),
                ci.lo.to_f64(),
                ci.hi.to_f64(),
            );
        }
    }
}

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let budget = Budget::default().with_samples(20_000);
    let mut engine = Engine::new();

    // ------------------------------------------------------------------
    // 1. A safe query: the router never grounds a lineage — the lifted
    //    evaluator answers exactly, in PTIME, however large the domain.
    // ------------------------------------------------------------------
    let safe = catalog::safe_three_components();
    let tid = random_block_tid(&mut rng, &safe, 12, 12);
    let t0 = Instant::now();
    let routed = engine.evaluate_auto(&safe, &tid, &budget);
    show("safe 12x12      ", &routed, t0.elapsed());
    assert_eq!(routed.route, Route::Lifted);
    assert_eq!(
        routed.result,
        AutoResult::Exact(lifted_probability(&safe, &tid).unwrap())
    );

    // ------------------------------------------------------------------
    // 2. A small unsafe query: #P-hard in general, but this instance's
    //    estimated circuit cost fits the budget — still exact.
    // ------------------------------------------------------------------
    let h1 = catalog::h1();
    let small = random_block_tid(&mut rng, &h1, 2, 2);
    let t0 = Instant::now();
    let routed = engine.evaluate_auto(&h1, &small, &budget);
    show("unsafe 2x2      ", &routed, t0.elapsed());
    assert_eq!(routed.route, Route::Compiled);
    assert_eq!(routed.result, AutoResult::Exact(probability(&h1, &small)));

    // ------------------------------------------------------------------
    // 3. The unsafe-query/large-block preset: the worst-case Shannon cost
    //    bound blows the budget, so the router falls back to the seeded
    //    Karp–Luby sampler — an anytime estimate with a confidence
    //    interval instead of an exponential compilation.
    // ------------------------------------------------------------------
    let (uq, utid) = unsafe_block_preset(&mut rng, 2, 6);
    println!(
        "unsafe preset   : query {uq}, 6x6 block, lineage cost estimate {}",
        gfomc::safety::circuit_cost_estimate(&gfomc::tid::lineage(&uq, &utid).cnf).estimated_nodes,
    );
    let t0 = Instant::now();
    let routed = engine.evaluate_auto(&uq, &utid, &budget);
    show("unsafe 6x6      ", &routed, t0.elapsed());
    assert_eq!(routed.route, Route::Sampled);

    // Same seed, same answer: the estimate is bit-reproducible.
    let again = Engine::new().evaluate_auto(&uq, &utid, &budget);
    assert_eq!(routed, again);

    // ------------------------------------------------------------------
    // 4. Anytime refinement: more samples tighten the interval (the
    //    Hoeffding half-width shrinks as 1/√N), against the same sampler.
    // ------------------------------------------------------------------
    let sampler = lineage_sampler(&uq, &utid);
    for samples in [1_000u64, 10_000, 100_000] {
        let mut rng = StdRng::seed_from_u64(7);
        let t0 = Instant::now();
        let est = sampler.estimate(&mut rng, samples, 0.05);
        println!(
            "  {samples:>7} samples: Pr ≈ {:.6}, CI width {:.6} ({:?})",
            est.estimate.to_f64(),
            est.ci.width().to_f64(),
            t0.elapsed(),
        );
    }

    let counts = engine.route_counts();
    println!(
        "routing tally: {} lifted, {} compiled, {} sampled",
        counts.lifted, counts.compiled, counts.sampled
    );
    assert_eq!(counts.lifted + counts.compiled + counts.sampled, 3);
}
