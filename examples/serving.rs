//! The engine as a network service, end to end in one process.
//!
//! This example walks the whole serving stack the `gfomc-serve` and
//! `gfomc-cli` crates add:
//!
//! 1. one shared [`Engine`] behind a loopback HTTP server, with an
//!    admission gate sized by `max_queue_depth`;
//! 2. the serializable [`EvalRequest`] — the *same type* the Rust API
//!    uses — shipped over the socket as text and answered with the
//!    verbatim [`Routed`] serialization;
//! 3. the bit-identity guarantee: the wire answer is byte-for-byte the
//!    direct `evaluate_auto` answer, exact and sampled routes alike;
//! 4. explicit backpressure: saturate the gate and the server answers
//!    429 + `Retry-After` immediately instead of queueing.

use gfomc_arith::Rational;
use gfomc_engine::{Budget, Engine, EvalRequest, Routed};
use gfomc_query::catalog;
use gfomc_serve::{Client, Connection, Server};
use gfomc_tid::{Tid, Tuple};
use std::sync::Arc;

fn main() {
    // ------------------------------------------------------------------
    // 1. One engine, one server, an OS-assigned loopback port.
    // ------------------------------------------------------------------
    let engine = Arc::new(Engine::builder().max_queue_depth(4).build());
    let server = Server::bind(Arc::clone(&engine), "127.0.0.1:0").expect("bind");
    let handle = server.spawn().expect("spawn");
    println!("serving on {}", handle.addr());

    // ------------------------------------------------------------------
    // 2. A request is data: query + database + budget, all in one
    //    serializable value with a stable text form.
    // ------------------------------------------------------------------
    let mut tid = Tid::all_present([0, 1], [1000, 1001]);
    tid.set_prob(Tuple::R(0), Rational::one_half());
    tid.set_prob(Tuple::S(0, 0, 1000), Rational::from_ints(3, 8));
    tid.set_prob(Tuple::T(1000), Rational::one_half());
    let exact = EvalRequest::new(catalog::h1(), tid).with_tenant("example");
    println!("--- request body ---\n{exact}");

    let mut conn = Connection::open(handle.addr()).expect("connect");
    let resp = conn
        .request("POST", "/eval", &exact.to_string())
        .expect("round trip");
    assert_eq!(resp.status, 200);
    println!("--- response body ---\n{}", resp.body);

    // ------------------------------------------------------------------
    // 3. Bit-identity: the wire text IS the direct answer's Display —
    //    and it parses back to the same `Routed` value.
    // ------------------------------------------------------------------
    let direct = engine.evaluate_request(&exact).expect("valid budget");
    assert_eq!(resp.body, direct.to_string());
    assert_eq!(resp.body.parse::<Routed>().unwrap(), direct);
    println!("wire == direct: bit-identical ({} route)", direct.route);

    // The same holds on the sampled route (zero circuit budget, seeded).
    let sampled = exact.clone().with_budget(
        Budget::default()
            .with_max_circuit_cost(0)
            .with_samples(2_000)
            .expect("positive sample budget")
            .with_seed(0xD15C),
    );
    let resp = conn
        .request("POST", "/eval", &sampled.to_string())
        .expect("round trip");
    let direct = engine.evaluate_request(&sampled).expect("valid budget");
    assert_eq!(resp.body, direct.to_string());
    println!("sampled route too: {}", resp.body.lines().last().unwrap());

    // ------------------------------------------------------------------
    // 4. Explicit backpressure: hold every permit, and the next request
    //    is refused immediately — a 429 with Retry-After, not a hang.
    // ------------------------------------------------------------------
    let gate = handle.gate();
    let permits: Vec<_> = std::iter::from_fn(|| gate.try_admit()).collect();
    println!("holding {} permits; gate saturated", permits.len());
    let client = Client::new(handle.addr().to_string());
    let refused = client
        .post("/eval", &exact.to_string())
        .expect("round trip");
    assert_eq!(refused.status, 429);
    println!(
        "overload -> {} (retry after {}s): {}",
        refused.status,
        refused.retry_after.unwrap(),
        refused.body.trim()
    );
    drop(permits);

    // ------------------------------------------------------------------
    // Introspection: the counters the CLI's status/routes/cache print.
    // ------------------------------------------------------------------
    let routes = client.get("/routes").expect("round trip");
    println!("--- /routes ---\n{}", routes.body.trim_end());
    let status = client.get("/status").expect("round trip");
    println!("--- /status ---\n{}", status.body.trim_end());

    handle.stop();
    println!("server stopped");
}
