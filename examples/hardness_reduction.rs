//! The paper's headline construction, end to end: counting the models of a
//! positive 2CNF formula using only an oracle for `Pr(Q)` on databases with
//! probabilities in `{½, 1}` (Theorem 3.1: `#P2CNF ≤ᴾ FOMC(Q)`).
//!
//! Run with `cargo run --example hardness_reduction`.

use gfomc::prelude::*;

fn main() {
    // Φ = (X0∨X1)(X1∨X2)(X0∨X2) — the triangle; #Φ = 4.
    let phi = P2Cnf::new(3, vec![(0, 1), (1, 2), (0, 2)]);
    println!(
        "Φ: positive 2CNF with n = {} variables, m = {} clauses",
        phi.n_vars(),
        phi.n_clauses()
    );

    // The target query: H1, a final Type-I query — by Theorem 2.9(1) even
    // FOMC(H1) (probabilities in {½,1}) is #P-hard, and the reduction below
    // is the proof, running.
    let q = catalog::h1();
    assert!(is_final_type_i(&q));
    println!("query Q = {q}  (final Type-I)");

    // Step 1: transfer matrices A(p) from path blocks B_p(u,v) (§3.3).
    println!("\ntransfer matrices A(p) = [[z00, z01],[z10, z11]]:");
    for p in 1..=phi.n_clauses() + 1 {
        let a = transfer_matrix(&q, p);
        println!(
            "  A({p}): z00={} z01={} z11={}",
            a.get(0, 0),
            a.get(0, 1),
            a.get(1, 1)
        );
    }

    // Step 2+3: oracle calls and the big linear system.
    let outcome = reduce_p2cnf(&q, &phi, OracleMode::FullWmc);
    println!(
        "\noracle calls: {} (databases all FOMC instances)",
        outcome.oracle_calls
    );
    println!("linear system dimension: {}", outcome.system_dim);

    // Step 4: recovered signature counts #k' and the model count.
    println!("\nrecovered undirected signature counts #k':");
    println!("  (k00, k01+10, k11) -> count");
    for (sig, count) in &outcome.signature_counts {
        println!("  ({}, {}, {}) -> {}", sig.k00, sig.k01_10, sig.k11, count);
    }
    println!("\n#Φ recovered by the reduction = {}", outcome.model_count);
    let direct = phi.count_models();
    println!("#Φ by brute-force enumeration = {direct}");
    assert_eq!(outcome.model_count, direct);
    println!("reduction is exact ✓");

    // The recovered table also matches brute-force signature counting.
    assert_eq!(outcome.signature_counts, signature_counts(&phi));
    println!("full signature table matches brute force ✓");

    // Run a few more formulas through the (faster) factorized oracle.
    println!("\nmore instances (factorized oracle):");
    let more = [
        ("path-4", P2Cnf::new(4, vec![(0, 1), (1, 2), (2, 3)])),
        ("star-4", P2Cnf::new(4, vec![(0, 1), (0, 2), (0, 3)])),
        (
            "cycle-4",
            P2Cnf::new(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]),
        ),
    ];
    for (name, phi) in more {
        let out = reduce_p2cnf(&q, &phi, OracleMode::Factorized);
        let expect = phi.count_models();
        println!(
            "  {name}: #Φ = {} (expected {expect}, {} oracle calls)",
            out.model_count, out.oracle_calls
        );
        assert_eq!(out.model_count, expect);
    }
    println!("\nall reductions exact ✓");
}
