//! The zig-zag rewriting `zg(Q)` of Lemma 2.6 / Appendix A (Figure 2):
//! type conversion `A–B → A–A` with a probability-preserving database map.
//!
//! Run with `cargo run --example zigzag_rewriting`.

use gfomc::prelude::*;

fn demo(name: &str, q: &BipartiteQuery, nu: u32, nv: u32, seed: u64) {
    use gfomc::core::zigzag::pseudo_random_delta;
    println!("== {name} ==");
    println!("Q        = {q}");
    let t = q.query_type().unwrap();
    println!(
        "type     = {:?}-{:?}, length = {}",
        t.left,
        t.right,
        query_length(q).unwrap()
    );
    let zq = zg_query(q);
    let zt = zq.query.query_type().unwrap();
    println!("zg(Q)    = {}", zq.query);
    println!(
        "zg type  = {:?}-{:?}, length = {}, branches n = {}",
        zt.left,
        zt.right,
        query_length(&zq.query).unwrap(),
        zq.vocab.n
    );

    // Lemma A.1: for any database ∆ for zg(Q), the mapped database zg(∆)
    // satisfies Pr_∆(zg(Q)) = Pr_{zg(∆)}(Q), with identical probability
    // values.
    let delta = pseudo_random_delta(&zq, nu, nv, seed);
    let lhs = probability(&zq.query, &delta);
    let zdb = zg_database(&zq, &delta);
    let rhs = probability(q, &zdb);
    println!("Pr_∆(zg(Q))    = {lhs}");
    println!("Pr_zg(∆)(Q)    = {rhs}");
    assert_eq!(lhs, rhs, "Lemma A.1 violated");
    println!(
        "Lemma A.1 holds ✓  (GFOMC instance preserved: {})\n",
        zdb.is_gfomc_instance()
    );
}

fn main() {
    // Type I–I stays I–I (and the length doubles-plus-one).
    demo("H1 (Type I-I)", &catalog::h1(), 2, 2, 42);

    // Type I–II becomes I–I: this is how Theorem 2.2's proof funnels every
    // Type-I-left query into the Type I reduction (§2, after Theorem 2.9).
    demo("Example A.3 (Type I-II)", &catalog::example_a3(), 1, 1, 7);

    // Type II–II stays II–II, feeding the Appendix C machinery.
    demo(
        "Example C.15 (Type II-II)",
        &catalog::example_c15(),
        1,
        2,
        3,
    );

    // Composition: zg(H1) is itself a final Type-I query, so the Type-I
    // reduction applies to it directly — the two halves of the pipeline
    // compose.
    let zq = zg_query(&catalog::h1());
    assert!(is_final_type_i(&zq.query));
    let phi = P2Cnf::new(2, vec![(0, 1)]);
    let out = reduce_p2cnf(&zq.query, &phi, OracleMode::Factorized);
    println!(
        "composition check: #Φ via reduction against zg(H1) = {} (expected {})",
        out.model_count,
        phi.count_models()
    );
    assert_eq!(out.model_count, phi.count_models());
    println!("pipeline composes ✓");
}
