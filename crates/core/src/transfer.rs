//! The 2×2 transfer matrix `A(p)` of the path block (§3.3).
//!
//! `z_ab(p)` is the probability of the block lineage `Y^{(p)}(u,v)` with the
//! endpoint tuples fixed to `R(u) := a`, `R(v) := b` and every other tuple
//! at ½ (Eq. (20)). The central recurrence is Lemma 3.19:
//!
//! ```text
//! A(p) = [[z00(p), z01(p)], [z10(p), z11(p)]] = A(1)^p / 2^{p-1}
//! ```
//!
//! and Proposition 3.20 pins the qualitative shape: `z00 < z01 = z10 < z11`
//! with all entries in `(0, 1]`.

use crate::block::{path_block, ConstAlloc};
use gfomc_arith::Rational;
use gfomc_linalg::Matrix;
use gfomc_logic::{Circuit, Var, WeightsFromFn};
use gfomc_query::BipartiteQuery;
use gfomc_tid::{lineage, Tuple};

/// Computes `A(p)` for a Type-I query: the block lineage of `B_p(u,v)` is
/// compiled **once**, then the four endpoint settings of Eq. (20) become
/// four *lanes* of one batch-kernel pass over the flattened circuit —
/// `z00, z01, z10, z11` priced in a single topological walk, with `R(u)`,
/// `R(v)` forced to 0/1 per lane (the Shannon gates degenerate to the
/// forced branch arithmetically).
pub fn transfer_matrix(q: &BipartiteQuery, p: usize) -> Matrix<Rational> {
    let mut alloc = ConstAlloc::new(2, 0);
    let tid = path_block(q, 0, 1, p, &mut alloc);
    let lin = lineage(q, &tid);
    let var_u = lin
        .vars
        .lookup(&Tuple::R(0))
        .expect("R(u) must appear in a Type-I block lineage");
    let var_v = lin
        .vars
        .lookup(&Tuple::R(1))
        .expect("R(v) must appear in a Type-I block lineage");
    let weights = lin.vars.weights();
    let flat = Circuit::compile(&lin.cnf).flatten();
    let endpoint = |on: bool| {
        if on {
            Rational::one()
        } else {
            Rational::zero()
        }
    };
    // Lane order (a, b) = row-major: z00, z01, z10, z11.
    let lanes: Vec<_> = [(false, false), (false, true), (true, false), (true, true)]
        .map(|(a, b)| {
            WeightsFromFn(move |v: Var| {
                if v == var_u {
                    endpoint(a)
                } else if v == var_v {
                    endpoint(b)
                } else {
                    weights[&v].clone()
                }
            })
        })
        .into_iter()
        .collect();
    let mut z = flat.evaluate_batch(&lanes).into_iter();
    let (z00, z01, z10, z11) = (
        z.next().unwrap(),
        z.next().unwrap(),
        z.next().unwrap(),
        z.next().unwrap(),
    );
    Matrix::from_rows(vec![vec![z00, z01], vec![z10, z11]])
}

/// Checks Lemma 3.19 for a given `p`: `A(p) · 2^{p-1} = A(1)^p`.
pub fn lemma_3_19_holds(q: &BipartiteQuery, p: usize) -> bool {
    let a1 = transfer_matrix(q, 1);
    let ap = transfer_matrix(q, p);
    let scale = Rational::from_ints(2, 1).pow(p as i32 - 1);
    ap.scale(&scale) == a1.pow(p as u32)
}

/// Checks Proposition 3.20 on `A(1)`:
/// `0 < z00 < z01 = z10 < z11 ≤ 1`.
pub fn proposition_3_20_holds(a1: &Matrix<Rational>) -> bool {
    let (z00, z01, z10, z11) = (a1.get(0, 0), a1.get(0, 1), a1.get(1, 0), a1.get(1, 1));
    z00.is_positive() && z01 == z10 && z00 < z01 && z01 < z11 && *z11 <= Rational::one()
}

/// `det A(1)` — nonzero for final Type-I queries by Theorem 3.16.
pub fn small_matrix_determinant(q: &BipartiteQuery) -> Rational {
    transfer_matrix(q, 1).det()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfomc_query::catalog;

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_ints(n, d)
    }

    #[test]
    fn h1_transfer_matrix_entries() {
        // H1 = (R∨S)(S∨T); block p=1 is u−t1−v.
        // Y(1) = (R(u)∨S(u,t))(S(u,t)∨T(t))(R(v)∨S(v,t))(S(v,t)∨T(t)).
        // z11 (both R true): Pr[(S_u∨T)(S_v∨T)] = Pr(T) + Pr(¬T)Pr(S_u)Pr(S_v)
        //   = 1/2 + 1/2·1/4 = 5/8.
        // z00: Pr[S_u ∧ S_v] = 1/4.
        // z10 = z01: Pr[S_v ∧ (S_u ∨ T)] = 1/2 · 3/4 = 3/8.
        let a1 = transfer_matrix(&catalog::h1(), 1);
        assert_eq!(*a1.get(0, 0), r(1, 4));
        assert_eq!(*a1.get(0, 1), r(3, 8));
        assert_eq!(*a1.get(1, 0), r(3, 8));
        assert_eq!(*a1.get(1, 1), r(5, 8));
    }

    #[test]
    fn lemma_3_19_on_catalog() {
        for (name, q) in [
            ("h1", catalog::h1()),
            ("h2", catalog::hk(2)),
            ("h3", catalog::hk(3)),
        ] {
            for p in 1..=4 {
                assert!(lemma_3_19_holds(&q, p), "{name}, p={p}");
            }
        }
    }

    #[test]
    fn proposition_3_20_on_catalog() {
        for (name, q) in [
            ("h1", catalog::h1()),
            ("h2", catalog::hk(2)),
            ("h3", catalog::hk(3)),
            ("type_i_braided", catalog::type_i_braided()),
        ] {
            let a1 = transfer_matrix(&q, 1);
            assert!(proposition_3_20_holds(&a1), "{name}: {a1}");
        }
    }

    #[test]
    fn small_matrix_nonsingular_for_final_queries() {
        // Theorem 3.16 instantiated at the all-½ point.
        for (name, q) in [
            ("h1", catalog::h1()),
            ("h2", catalog::hk(2)),
            ("h3", catalog::hk(3)),
        ] {
            assert!(
                !small_matrix_determinant(&q).is_zero(),
                "det A(1) = 0 for final query {name}"
            );
        }
    }

    #[test]
    fn transfer_entries_are_probabilities() {
        let a3 = transfer_matrix(&catalog::hk(2), 3);
        for i in 0..2 {
            for j in 0..2 {
                assert!(a3.get(i, j).is_probability());
            }
        }
    }

    #[test]
    fn symmetry_of_blocks() {
        // Symmetric blocks: z01 = z10 for every p (the reduction relies on
        // this to merge k01 + k10).
        for p in 1..=3 {
            let a = transfer_matrix(&catalog::hk(2), p);
            assert_eq!(a.get(0, 1), a.get(1, 0), "p={p}");
        }
    }
}
