//! Exact eigen-decomposition of the transfer matrix over `Q(√d)` and the
//! verification of Theorem 3.14's conditions (22)–(24).
//!
//! Writing `A(1)^p = [[a_ab·λ₁^p + b_ab·λ₂^p]]`, the coefficients solve the
//! two-point system given by `A(1)^0 = I` and `A(1)^1 = A(1)`:
//!
//! ```text
//! a_ab = (A(1)_ab − λ₂·I_ab) / (λ₁ − λ₂)
//! b_ab = (λ₁·I_ab − A(1)_ab) / (λ₁ − λ₂)
//! ```
//!
//! where `λ₁,₂ = (tr ± √disc)/2`, `disc = (z₁₁ − z₀₀)² + 4·z₀₁·z₁₀`. All
//! quantities live in the real quadratic field `Q(√disc)`, so every
//! condition is decided exactly.

use gfomc_arith::{QuadExt, Rational};
use gfomc_linalg::Matrix;

/// The exact eigen-data of a symmetric 2×2 transfer matrix.
#[derive(Clone, Debug)]
pub struct EigenData {
    /// The larger eigenvalue `λ₁ = (tr + √disc)/2` (paper's λ₂ ordering may
    /// differ; conditions are symmetric in the labels).
    pub lambda1: QuadExt,
    /// The smaller eigenvalue `λ₂ = (tr − √disc)/2`.
    pub lambda2: QuadExt,
    /// Coefficients `a_ab` of `λ₁^p`, indexed `[row][col]`.
    pub a: [[QuadExt; 2]; 2],
    /// Coefficients `b_ab` of `λ₂^p`.
    pub b: [[QuadExt; 2]; 2],
}

impl EigenData {
    /// Decomposes a 2×2 matrix with distinct eigenvalues.
    /// Panics if `disc = 0` (repeated eigenvalue; cannot happen for the
    /// blocks of final Type-I queries by Lemma 3.21).
    pub fn decompose(m: &Matrix<Rational>) -> Self {
        assert!(m.is_square() && m.nrows() == 2);
        let tr = m.get(0, 0) + m.get(1, 1);
        let det = m.det();
        let disc = &(&tr * &tr) - &(&Rational::from(4i64) * &det);
        assert!(
            disc.is_positive(),
            "transfer matrix must have distinct real eigenvalues"
        );
        let sqrt_disc = QuadExt::sqrt_d(disc.clone());
        let half = |x: &QuadExt| {
            let two = QuadExt::rational(Rational::from(2i64), disc.clone());
            x / &two
        };
        let tr_q = QuadExt::rational(tr, disc.clone());
        let lambda1 = half(&(&tr_q + &sqrt_disc));
        let lambda2 = half(&(&tr_q - &sqrt_disc));
        let denom = &lambda1 - &lambda2;
        let q = |r: &Rational| QuadExt::rational(r.clone(), disc.clone());
        let ident = |i: usize, j: usize| {
            if i == j {
                Rational::one()
            } else {
                Rational::zero()
            }
        };
        let mut a = std::array::from_fn(|_| {
            std::array::from_fn(|_| QuadExt::rational(Rational::zero(), disc.clone()))
        });
        let mut b = a.clone();
        for (i, row_a) in a.iter_mut().enumerate() {
            for (j, cell) in row_a.iter_mut().enumerate() {
                *cell = &(&q(m.get(i, j)) - &(&lambda2 * &q(&ident(i, j)))) / &denom;
            }
        }
        for (i, row_b) in b.iter_mut().enumerate() {
            for (j, cell) in row_b.iter_mut().enumerate() {
                *cell = &(&(&lambda1 * &q(&ident(i, j))) - &q(m.get(i, j))) / &denom;
            }
        }
        EigenData {
            lambda1,
            lambda2,
            a,
            b,
        }
    }

    /// Reconstructs `(A(1)^p)_ab = a_ab·λ₁^p + b_ab·λ₂^p`.
    pub fn power_entry(&self, i: usize, j: usize, p: u32) -> QuadExt {
        &(&self.a[i][j] * &self.lambda1.pow(p)) + &(&self.b[i][j] * &self.lambda2.pow(p))
    }

    /// Condition (22): `λ₁ ≠ ±λ₂` and both nonzero.
    pub fn condition_22(&self) -> bool {
        !self.lambda1.is_zero()
            && !self.lambda2.is_zero()
            && self.lambda1 != self.lambda2
            && self.lambda1 != (-&self.lambda2)
    }

    /// Condition (23): `b_i ≠ 0` for the three distinguishable indices
    /// `i ∈ {00, 10, 11}` (the matrix is symmetric, so 01 duplicates 10).
    pub fn condition_23(&self) -> bool {
        !self.b[0][0].is_zero() && !self.b[1][0].is_zero() && !self.b[1][1].is_zero()
    }

    /// Condition (24): `a_i·b_j ≠ a_j·b_i` for distinct `i, j ∈ {00,10,11}`.
    pub fn condition_24(&self) -> bool {
        let idx = [(0usize, 0usize), (1, 0), (1, 1)];
        for (p1, &(i1, j1)) in idx.iter().enumerate() {
            for &(i2, j2) in idx.iter().skip(p1 + 1) {
                let lhs = &self.a[i1][j1] * &self.b[i2][j2];
                let rhs = &self.a[i2][j2] * &self.b[i1][j1];
                if lhs == rhs {
                    return false;
                }
            }
        }
        true
    }

    /// All three conditions of Theorem 3.14 at once.
    pub fn theorem_3_14_conditions(&self) -> bool {
        self.condition_22() && self.condition_23() && self.condition_24()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transfer::transfer_matrix;
    use gfomc_query::catalog;

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_ints(n, d)
    }

    #[test]
    fn decompose_reconstructs_identity_and_matrix() {
        let m = Matrix::from_rows(vec![vec![r(1, 4), r(3, 8)], vec![r(3, 8), r(5, 8)]]);
        let e = EigenData::decompose(&m);
        // p = 0 gives the identity.
        assert_eq!(e.power_entry(0, 0, 0).to_rational(), Some(Rational::one()));
        assert_eq!(e.power_entry(0, 1, 0).to_rational(), Some(Rational::zero()));
        // p = 1 gives the matrix back.
        for i in 0..2 {
            for j in 0..2 {
                assert_eq!(
                    e.power_entry(i, j, 1).to_rational(),
                    Some(m.get(i, j).clone())
                );
            }
        }
    }

    #[test]
    fn power_entries_match_matrix_powers() {
        let m = transfer_matrix(&catalog::h1(), 1);
        let e = EigenData::decompose(&m);
        for p in 0..=5u32 {
            let mp = m.pow(p);
            for i in 0..2 {
                for j in 0..2 {
                    assert_eq!(
                        e.power_entry(i, j, p).to_rational(),
                        Some(mp.get(i, j).clone()),
                        "p={p} ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn eigenvalue_trace_and_det_identities() {
        let m = transfer_matrix(&catalog::hk(2), 1);
        let e = EigenData::decompose(&m);
        let sum = &e.lambda1 + &e.lambda2;
        let prod = &e.lambda1 * &e.lambda2;
        assert_eq!(sum.to_rational(), Some(m.get(0, 0) + m.get(1, 1)));
        assert_eq!(prod.to_rational(), Some(m.det()));
    }

    #[test]
    fn theorem_3_14_conditions_for_final_type_i_catalog() {
        for (name, q) in [
            ("h1", catalog::h1()),
            ("h2", catalog::hk(2)),
            ("h3", catalog::hk(3)),
        ] {
            let e = EigenData::decompose(&transfer_matrix(&q, 1));
            assert!(e.condition_22(), "{name}: condition (22)");
            assert!(e.condition_23(), "{name}: condition (23)");
            assert!(e.condition_24(), "{name}: condition (24)");
        }
    }

    #[test]
    fn a_plus_b_is_identity() {
        // Eq. (37): a₀₀+b₀₀ = 1, a₁₁+b₁₁ = 1, a₁₀+b₁₀ = 0.
        let m = transfer_matrix(&catalog::h1(), 1);
        let e = EigenData::decompose(&m);
        assert_eq!(
            (&e.a[0][0] + &e.b[0][0]).to_rational(),
            Some(Rational::one())
        );
        assert_eq!(
            (&e.a[1][1] + &e.b[1][1]).to_rational(),
            Some(Rational::one())
        );
        assert_eq!(
            (&e.a[1][0] + &e.b[1][0]).to_rational(),
            Some(Rational::zero())
        );
    }

    #[test]
    #[should_panic]
    fn repeated_eigenvalue_rejected() {
        // The identity matrix has a repeated eigenvalue.
        let m = Matrix::identity(2, &Rational::one());
        let _ = EigenData::decompose(&m);
    }
}
