//! The "big matrix" linear system of Theorem 3.6, in its effective form.
//!
//! Equation (10) expresses each oracle answer as a linear combination of the
//! undirected signature counts:
//!
//! ```text
//! 2^n · Pr_{∆(p,q)}(Q) = Σ_{k₀+k₁+k₂=m} #k′ · y₀₀^{k₀} y₁₀^{k₁} y₁₁^{k₂},
//! y_ab = z_ab(p) · z_ab(q)
//! ```
//!
//! Because the parallel-block probabilities are symmetric in `(p, q)`, the
//! parameter pairs `(p, q)` and `(q, p)` give *identical* equations, so the
//! informative rows are indexed by **multisets** `{p ≤ q} ⊆ {1,…,m+1}` —
//! exactly `C(m+2,2)` of them, matching the `C(m+2,2)` feasible signatures
//! `k₀+k₁+k₂ = m`. (The paper's Lemma 3.12 indexes a full `(m+1)²` grid of
//! rows and columns; the grid rows at permuted parameter pairs coincide, and
//! the grid columns with `k₁+k₂ > m` correspond to no signature, so the
//! square multiset system below is the substantive content. Its
//! non-singularity — which the reduction checks at runtime, exactly — rests
//! on the same coefficient conditions (11)–(13).)

use crate::signatures::UndirectedSignature;
use gfomc_arith::Rational;
use gfomc_linalg::Matrix;

/// The assembled linear system relating oracle answers to signature counts.
#[derive(Clone, Debug)]
pub struct BigSystem {
    /// The `N × N` coefficient matrix, `N = C(m+2,2)`.
    pub matrix: Matrix<Rational>,
    /// Row index → parameter multiset `(p, q)` with `p ≤ q` (1-based).
    pub rows: Vec<(usize, usize)>,
    /// Column index → undirected signature with `k₀₀+k₀₁,₁₀+k₁₁ = m`.
    pub cols: Vec<UndirectedSignature>,
}

/// Builds the system from the per-parameter transfer matrices
/// `z_tables[p−1] = A(p)`, `p = 1..=m+1`.
pub fn big_system(z_tables: &[Matrix<Rational>], m: usize) -> BigSystem {
    assert_eq!(z_tables.len(), m + 1, "need A(p) for p = 1..=m+1");
    let mut cols = Vec::new();
    for k1 in 0..=m {
        for k2 in 0..=m - k1 {
            cols.push(UndirectedSignature {
                k00: m - k1 - k2,
                k01_10: k1,
                k11: k2,
            });
        }
    }
    let mut rows = Vec::new();
    for p in 1..=m + 1 {
        for q in p..=m + 1 {
            rows.push((p, q));
        }
    }
    assert_eq!(rows.len(), cols.len());
    let n = rows.len();
    let matrix = Matrix::from_fn(n, n, |r, c| {
        let (p, q) = rows[r];
        let sig = &cols[c];
        let y = |a: usize, b: usize| -> Rational {
            z_tables[p - 1].get(a, b) * z_tables[q - 1].get(a, b)
        };
        &(&y(0, 0).pow(sig.k00 as i32) * &y(1, 0).pow(sig.k01_10 as i32))
            * &y(1, 1).pow(sig.k11 as i32)
    });
    BigSystem { matrix, rows, cols }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transfer::transfer_matrix;
    use gfomc_query::catalog;

    fn z_tables(q: &gfomc_query::BipartiteQuery, m: usize) -> Vec<Matrix<Rational>> {
        (1..=m + 1).map(|p| transfer_matrix(q, p)).collect()
    }

    #[test]
    fn dimensions_match_choose_function() {
        let q = catalog::h1();
        for m in 1..=3 {
            let sys = big_system(&z_tables(&q, m), m);
            let n = (m + 1) * (m + 2) / 2;
            assert_eq!(sys.matrix.nrows(), n, "m={m}");
            assert_eq!(sys.rows.len(), n);
            assert_eq!(sys.cols.len(), n);
        }
    }

    #[test]
    fn m1_system_is_invertible() {
        let q = catalog::h1();
        let sys = big_system(&z_tables(&q, 1), 1);
        assert!(sys.matrix.is_invertible());
    }

    #[test]
    fn m2_and_m3_systems_are_invertible() {
        for q in [catalog::h1(), catalog::hk(2)] {
            for m in 2..=3 {
                let sys = big_system(&z_tables(&q, m), m);
                assert!(sys.matrix.is_invertible(), "m={m}");
            }
        }
    }

    #[test]
    fn m4_system_is_invertible() {
        // Theorem 3.6's effective content at the next size.
        let q = catalog::h1();
        let sys = big_system(&z_tables(&q, 4), 4);
        assert_eq!(sys.matrix.nrows(), 15);
        assert!(sys.matrix.is_invertible());
    }

    #[test]
    fn signature_columns_are_feasible_and_complete() {
        let q = catalog::h1();
        let m = 3;
        let sys = big_system(&z_tables(&q, m), m);
        for sig in &sys.cols {
            assert_eq!(sig.total(), m);
        }
        let distinct: std::collections::BTreeSet<_> = sys.cols.iter().collect();
        assert_eq!(distinct.len(), sys.cols.len());
    }

    #[test]
    #[should_panic]
    fn wrong_table_count_rejected() {
        let q = catalog::h1();
        let _ = big_system(&z_tables(&q, 1), 2);
    }
}
