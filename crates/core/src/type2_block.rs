//! The Type-II zig-zag block `B^{(p)}(u,v)` of Definition C.21 (Figure 3).
//!
//! For Type-II queries the block endpoints live on opposite sides
//! (`u ∈ U` left, `v ∈ V` right) and the gadget is built from *elementary
//! blocks* `B(a,b) = {S₁(a,b), …, S_t(a,b)}`:
//!
//! * a **prefix** of `r` parallel branches `B(u, t_pref,i) ∪ B(r₀, t_pref,i)`;
//! * a **zig-zag** `B(r₀,t₀) ∪ B(r₁,t₀) ∪ B(r₁,t₁) ∪ … ∪ B(r_p,t_p)`;
//! * a **suffix** of `r` parallel branches `B(r_suff,i, t_p) ∪ B(r_suff,i, v)`;
//! * `m−2` **dead-end** branches per interior node (`m` = the largest
//!   subclause count of a left/right clause), which keep the grounded
//!   clauses of Eq. (45) non-redundant (Example A.3's phenomenon).
//!
//! All elementary-block tuples take probability ½ (the consistent
//! assignment of Theorem C.31); everything else is 1. The structural
//! facts verified in tests: the lineages `Y^{(p)}_{αβ}` are connected
//! (Lemma C.23), the map `(α,β) ↦ Y^{(p)}_{αβ}` is injective (Lemma C.22),
//! and the probabilities `y_{αβ}(p)` obey a single order-2 linear
//! recurrence shared across all `(α,β)` — the rank-2 transfer structure of
//! §C.8 (Eq. (79)).

use crate::block::ConstAlloc;
use crate::reduction_type2::type_ii_lattices;
use gfomc_arith::Rational;
use gfomc_logic::{Clause as PClause, Cnf, ModelCounter, Var};
use gfomc_query::{BipartiteQuery, ClauseShape};
use gfomc_tid::{lineage, Tid, Tuple, VarTable};

/// The materialized Type-II block with its distinguished endpoints.
#[derive(Clone, Debug)]
pub struct Type2Block {
    /// The block database (all probabilities in {½, 1}).
    pub tid: Tid,
    /// The left endpoint `u`.
    pub u: u32,
    /// The right endpoint `v`.
    pub v: u32,
}

/// The largest subclause count of any left/right clause — the paper's `m`
/// (number of dead-end branches is `m − 2`).
pub fn max_subclause_count(q: &BipartiteQuery) -> usize {
    q.clauses()
        .iter()
        .map(|c| match c.shape() {
            ClauseShape::LeftII(subs) | ClauseShape::RightII(subs) => subs.len(),
            _ => 1,
        })
        .max()
        .unwrap_or(1)
}

/// Builds `B^{(p)}(u,v)` with `r` prefix/suffix branches.
pub fn type2_block(
    q: &BipartiteQuery,
    u: u32,
    v: u32,
    p: usize,
    r: usize,
    alloc: &mut ConstAlloc,
) -> Type2Block {
    let symbols: Vec<u32> = q.binary_symbols().into_iter().collect();
    let m = max_subclause_count(q);
    let dead_ends = m.saturating_sub(2);
    let half = Rational::one_half();
    let mut left_nodes = vec![u];
    let mut right_nodes = vec![v];
    let mut cells: Vec<(u32, u32)> = Vec::new();
    // Zig-zag spine nodes r_0..r_p (left) and t_0..t_p (right).
    let r_spine: Vec<u32> = (0..=p).map(|_| alloc.fresh_left()).collect();
    let t_spine: Vec<u32> = (0..=p).map(|_| alloc.fresh_right()).collect();
    left_nodes.extend(&r_spine);
    right_nodes.extend(&t_spine);
    // Prefix branches: u — t_pref,i — r_0.
    for _ in 0..r {
        let t_pref = alloc.fresh_right();
        right_nodes.push(t_pref);
        cells.push((u, t_pref));
        cells.push((r_spine[0], t_pref));
    }
    // Zig-zag: B(r_0,t_0), then B(r_i,t_{i-1}) ∪ B(r_i,t_i).
    cells.push((r_spine[0], t_spine[0]));
    for i in 1..=p {
        cells.push((r_spine[i], t_spine[i - 1]));
        cells.push((r_spine[i], t_spine[i]));
    }
    // Suffix branches: t_p — r_suff,i — v.
    for _ in 0..r {
        let r_suff = alloc.fresh_left();
        left_nodes.push(r_suff);
        cells.push((r_suff, t_spine[p]));
        cells.push((r_suff, v));
    }
    // Dead ends: per r_i, `dead_ends` fresh right nodes; per t_i, fresh left.
    for &ri in &r_spine {
        for _ in 0..dead_ends {
            let e = alloc.fresh_right();
            right_nodes.push(e);
            cells.push((ri, e));
        }
    }
    for &ti in &t_spine {
        for _ in 0..dead_ends {
            let f = alloc.fresh_left();
            left_nodes.push(f);
            cells.push((f, ti));
        }
    }
    let mut tid = Tid::all_present(left_nodes, right_nodes);
    for (a, b) in cells {
        for &s in &symbols {
            tid.set_prob(Tuple::S(s, a, b), half.clone());
        }
    }
    Type2Block { tid, u, v }
}

/// Grounds a per-cell CNF over symbols at a concrete cell, mapped into the
/// block's variable table (extending it with any missing ½-tuples).
fn ground_at_cell(cnf: &Cnf, a: u32, b: u32, tid: &Tid, vars: &mut VarTable) -> Cnf {
    Cnf::new(cnf.clauses().iter().filter_map(|c| {
        let mut lits = Vec::new();
        for &Var(s) in c.vars() {
            let t = Tuple::S(s, a, b);
            let p = tid.prob(&t);
            if p.is_one() {
                return None; // satisfied clause
            }
            if p.is_zero() {
                continue;
            }
            lits.push(vars.var_for(t, &p));
        }
        Some(PClause::new(lits))
    }))
}

/// The lineage `Y^{(p)}_{αβ}(u,v) = Φ_B(G_α(u) ∧ Q ∧ H_β(v))` over the
/// block, as a pair (CNF, weights). `g_alpha`/`h_beta` are per-cell CNFs
/// over symbol variables (from the lattices).
pub fn y_alpha_beta(
    q: &BipartiteQuery,
    block: &Type2Block,
    g_alpha: &Cnf,
    h_beta: &Cnf,
) -> (Cnf, VarTable) {
    // Q's lineage over the block.
    let lin = lineage(q, &block.tid);
    let mut vars = lin.vars;
    let mut parts = vec![lin.cnf];
    // G_α(u) = ∀y G_α(u, y): ground at every right node.
    for &b in block.tid.right_domain() {
        parts.push(ground_at_cell(g_alpha, block.u, b, &block.tid, &mut vars));
    }
    // H_β(v) = ∀x H_β(x, v): ground at every left node.
    for &a in block.tid.left_domain() {
        parts.push(ground_at_cell(h_beta, a, block.v, &block.tid, &mut vars));
    }
    (Cnf::and_all(parts), vars)
}

/// The probability table `y_{αβ}(p)` over the strict lattice supports, at
/// the all-½ assignment.
pub fn y_table(q: &BipartiteQuery, p: usize, r: usize) -> Vec<Vec<Rational>> {
    let lats = type_ii_lattices(q);
    let mut alloc = ConstAlloc::new(10, 10);
    let block = type2_block(q, 0, 0, p, r, &mut alloc);
    let left0 = lats.left.strict_support();
    let right0 = lats.right.strict_support();
    let mut out = Vec::with_capacity(left0.len());
    for a in &left0 {
        let mut row = Vec::with_capacity(right0.len());
        for b in &right0 {
            let (cnf, vars) = y_alpha_beta(q, &block, &a.formula, &b.formula);
            let mut mc = ModelCounter::new(vars.weights());
            row.push(mc.probability(&cnf));
        }
        out.push(row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfomc_query::catalog;

    #[test]
    fn block_shape_counts() {
        let q = catalog::example_c15();
        let mut alloc = ConstAlloc::new(10, 10);
        let b = type2_block(&q, 0, 0, 2, 1, &mut alloc);
        // m = 2 for C.15, so no dead ends; spine 3+3, prefix 1 right node +
        // suffix 1 left node, endpoints u,v.
        assert_eq!(b.tid.left_domain().len(), 1 + 3 + 1);
        assert_eq!(b.tid.right_domain().len(), 1 + 3 + 1);
        assert!(b.tid.is_fomc_instance());
    }

    #[test]
    fn dead_ends_appear_for_wider_queries() {
        // A Type-II query with a 3-subclause right clause gets m−2 = 1
        // dead-end branch per spine node.
        let q = BipartiteQuery::new([
            gfomc_query::Clause::left_ii(&[&[0], &[1]]),
            gfomc_query::Clause::middle([0, 2]),
            gfomc_query::Clause::right_ii(&[&[2], &[3], &[4]]),
        ]);
        assert_eq!(max_subclause_count(&q), 3);
        let mut alloc = ConstAlloc::new(10, 10);
        let b = type2_block(&q, 0, 0, 1, 1, &mut alloc);
        // Spine: 2 left + 2 right; dead ends: 2 right (for r_i), 2 left
        // (for t_i); prefix/suffix 1 each; endpoints 2.
        assert_eq!(b.tid.left_domain().len(), 1 + 2 + 1 + 2);
        assert_eq!(b.tid.right_domain().len(), 1 + 2 + 1 + 2);
    }

    #[test]
    fn lemma_c23_lineages_connected() {
        // For the forbidden query C.15 every Y_αβ is connected.
        let q = catalog::example_c15();
        let lats = type_ii_lattices(&q);
        let mut alloc = ConstAlloc::new(10, 10);
        let block = type2_block(&q, 0, 0, 1, 1, &mut alloc);
        for a in lats.left.strict_support() {
            for b in lats.right.strict_support() {
                let (cnf, _) = y_alpha_beta(&q, &block, &a.formula, &b.formula);
                assert!(!cnf.is_false());
                assert!(
                    cnf.is_connected(),
                    "Y_αβ disconnected for α={:?}, β={:?}",
                    a.set,
                    b.set
                );
            }
        }
    }

    #[test]
    fn lemma_c22_injectivity() {
        // Distinct (α,β) give distinct lineages over the same block.
        let q = catalog::example_c15();
        let lats = type_ii_lattices(&q);
        let mut alloc = ConstAlloc::new(10, 10);
        let block = type2_block(&q, 0, 0, 1, 1, &mut alloc);
        let mut seen: Vec<Cnf> = Vec::new();
        for a in lats.left.strict_support() {
            for b in lats.right.strict_support() {
                let (cnf, _) = y_alpha_beta(&q, &block, &a.formula, &b.formula);
                assert!(!seen.contains(&cnf), "duplicate lineage");
                seen.push(cnf);
            }
        }
    }

    #[test]
    fn y_values_are_probabilities_and_monotone_in_alpha() {
        let q = catalog::example_c15();
        let table = y_table(&q, 1, 1);
        for row in &table {
            for y in row {
                assert!(y.is_probability());
                assert!(y.is_positive());
            }
        }
    }

    #[test]
    fn rank_two_recurrence_shared_across_pairs() {
        // §C.8 (Eq. 79): every y_αβ(p) is a·λ₁^p + b·λ₂^p with λ's
        // independent of (α,β), so all sequences satisfy one order-2 linear
        // recurrence y(p+2) = c1·y(p+1) + c2·y(p). Fit c1, c2 from the first
        // pair and check every other pair, exactly.
        let q = catalog::example_c15();
        let tables: Vec<Vec<Vec<Rational>>> = (1..=4).map(|p| y_table(&q, p, 1)).collect();
        let seq = |ai: usize, bi: usize| -> Vec<Rational> {
            tables.iter().map(|t| t[ai][bi].clone()).collect()
        };
        // Solve the 2×2 system from pair (0,0):
        //   y3 = c1 y2 + c2 y1 ; y4 = c1 y3 + c2 y2.
        let s = seq(0, 0);
        let det = &(&s[1] * &s[1]) - &(&s[2] * &s[0]);
        assert!(!det.is_zero(), "degenerate base sequence");
        let c1 = &(&(&s[2] * &s[1]) - &(&s[3] * &s[0])) / &det;
        let c2 = &(&(&s[3] * &s[1]) - &(&s[2] * &s[2])) / &det;
        let n_left = tables[0].len();
        let n_right = tables[0][0].len();
        for ai in 0..n_left {
            for bi in 0..n_right {
                let s = seq(ai, bi);
                for p in 0..2 {
                    let predicted = &(&c1 * &s[p + 1]) + &(&c2 * &s[p]);
                    assert_eq!(
                        predicted,
                        s[p + 2],
                        "recurrence broken at pair ({ai},{bi}), step {p}"
                    );
                }
            }
        }
    }
}
