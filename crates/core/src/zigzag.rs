//! The zig-zag rewriting `zg(Q)` of Lemma 2.6 / Appendix A (Figure 2).
//!
//! Given a bipartite unsafe query `Q` of type `A–B` and length `k`, `zg(Q)`
//! is a bipartite unsafe query of type `A–A` and length `≥ 2k` over a new
//! vocabulary of `n` *branches*, such that `GFOMC(zg(Q)) ≤ᴾₘ GFOMC(Q)`:
//! every database `∆` for `zg(Q)` maps to a database `zg(∆)` for `Q` with
//! `Pr_∆(zg(Q)) = Pr_{zg(∆)}(Q)` (Lemma A.1) — with identical probability
//! *values*, so the reduction stays within `{0, ½, 1}`.
//!
//! Branch count: `n = 2` when `Q_right` is Type I, else
//! `n = max(3, largest subclause count of a right clause)`.
//!
//! Vocabulary mapping (Appendix A): each original binary `S_j` gets copies
//! `S_j^{(1..n)}`; if `Q` has `R` then `R^{(1)}` stays unary-left (our `R`),
//! `R^{(n)}` becomes unary-right (our `T`), and `R^{(2..n−1)}` become binary;
//! if `Q` has `T` it becomes the binary `T^{(12)}`.

use gfomc_arith::Rational;
use gfomc_query::{BipartiteQuery, Clause, ClauseShape, Pred};
use gfomc_tid::{Tid, Tuple};
use std::collections::{BTreeMap, BTreeSet};

/// A symbol of the zig-zag vocabulary.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum ZgSym {
    /// Branch copy `S_j^{(i)}` of original binary symbol `j` (`1 ≤ i ≤ n`).
    S { orig: u32, branch: usize },
    /// The binary middle copies `R^{(i)}`, `2 ≤ i ≤ n−1`.
    RMid { branch: usize },
    /// The binary image `T^{(12)}` of the original `T`.
    T12,
}

/// The vocabulary registry of a zig-zag query.
#[derive(Clone, Debug)]
pub struct ZgVocab {
    /// Branch count `n`.
    pub n: usize,
    /// True iff the original query had `R` (then zg has unary `R`, `T`).
    pub has_r: bool,
    /// True iff the original query had `T` (then zg has `T^{(12)}`).
    pub has_t: bool,
    index: BTreeMap<ZgSym, u32>,
}

impl ZgVocab {
    fn build(orig_syms: &BTreeSet<u32>, n: usize, has_r: bool, has_t: bool) -> Self {
        let mut index = BTreeMap::new();
        let mut next = 0u32;
        for &j in orig_syms {
            for i in 1..=n {
                index.insert(ZgSym::S { orig: j, branch: i }, next);
                next += 1;
            }
        }
        if has_r {
            for i in 2..n {
                index.insert(ZgSym::RMid { branch: i }, next);
                next += 1;
            }
        }
        if has_t {
            index.insert(ZgSym::T12, next);
        }
        ZgVocab {
            n,
            has_r,
            has_t,
            index,
        }
    }

    /// The binary index of a zig-zag symbol in the rewritten query.
    pub fn code(&self, sym: ZgSym) -> u32 {
        *self
            .index
            .get(&sym)
            .unwrap_or_else(|| panic!("symbol {sym:?} not in zg vocabulary"))
    }

    fn branch_set(&self, j: &BTreeSet<u32>, branch: usize) -> Vec<u32> {
        j.iter()
            .map(|&s| self.code(ZgSym::S { orig: s, branch }))
            .collect()
    }
}

/// The rewritten query together with its vocabulary.
#[derive(Clone, Debug)]
pub struct ZigzagQuery {
    /// `zg(Q)`.
    pub query: BipartiteQuery,
    /// The symbol registry.
    pub vocab: ZgVocab,
}

/// Constructs `zg(Q)`. Requires `Q` to be of bipartite shape with both left
/// and right clauses (a type `A–B` query).
pub fn zg_query(q: &BipartiteQuery) -> ZigzagQuery {
    assert!(
        q.is_bipartite_shape() && q.query_type().is_some(),
        "zg requires a typed bipartite query"
    );
    // Branch count (Appendix A).
    let right_shapes: Vec<ClauseShape> = q.right_clauses().iter().map(|c| c.shape()).collect();
    let right_is_type_i = right_shapes
        .iter()
        .all(|s| matches!(s, ClauseShape::RightI(_)));
    let n = if right_is_type_i {
        2
    } else {
        right_shapes
            .iter()
            .map(|s| match s {
                ClauseShape::RightII(subs) => subs.len(),
                _ => 0,
            })
            .max()
            .unwrap()
            .max(3)
    };
    let has_r = q.symbols().contains(&Pred::R);
    let has_t = q.symbols().contains(&Pred::T);
    let vocab = ZgVocab::build(&q.binary_symbols(), n, has_r, has_t);
    let mut clauses: Vec<Clause> = Vec::new();
    for c in q.clauses() {
        match c.shape() {
            // Left Type I: (38)–(39).
            ClauseShape::LeftI(j) => {
                clauses.push(Clause::left_i(vocab.branch_set(&j, 1)));
                for i in 2..n {
                    let mut js = vocab.branch_set(&j, i);
                    js.push(vocab.code(ZgSym::RMid { branch: i }));
                    clauses.push(Clause::middle(js));
                }
                clauses.push(Clause::right_i(vocab.branch_set(&j, n)));
            }
            // Left Type II: (40)–(41).
            ClauseShape::LeftII(subs) => {
                let branch_subs = |branch: usize| -> Vec<Vec<u32>> {
                    subs.iter().map(|j| vocab.branch_set(j, branch)).collect()
                };
                let s1 = branch_subs(1);
                clauses.push(Clause::left_ii(
                    &s1.iter().map(Vec::as_slice).collect::<Vec<_>>(),
                ));
                for i in 2..n {
                    let union: Vec<u32> = branch_subs(i).into_iter().flatten().collect();
                    clauses.push(Clause::middle(union));
                }
                let sn = branch_subs(n);
                clauses.push(Clause::right_ii(
                    &sn.iter().map(Vec::as_slice).collect::<Vec<_>>(),
                ));
            }
            // Middle: (42).
            ClauseShape::Middle(j) => {
                for i in 1..=n {
                    clauses.push(Clause::middle(vocab.branch_set(&j, i)));
                }
            }
            // Right Type I: (43)–(44), with n = 2.
            ClauseShape::RightI(j) => {
                debug_assert_eq!(n, 2);
                for i in 1..=2 {
                    let mut js = vocab.branch_set(&j, i);
                    js.push(vocab.code(ZgSym::T12));
                    clauses.push(Clause::middle(js));
                }
            }
            // Right Type II: (45) — one middle clause per φ : [ℓ] → [n].
            ClauseShape::RightII(subs) => {
                let l = subs.len();
                let mut phi = vec![1usize; l];
                loop {
                    let union: Vec<u32> = subs
                        .iter()
                        .zip(phi.iter())
                        .flat_map(|(j, &b)| vocab.branch_set(j, b))
                        .collect();
                    clauses.push(Clause::middle(union));
                    // Advance φ in mixed radix over [1..n].
                    let mut pos = 0;
                    loop {
                        if pos == l {
                            break;
                        }
                        phi[pos] += 1;
                        if phi[pos] <= n {
                            break;
                        }
                        phi[pos] = 1;
                        pos += 1;
                    }
                    if pos == l {
                        break;
                    }
                }
            }
            ClauseShape::Other => panic!("zg cannot rewrite clause {c}"),
        }
    }
    ZigzagQuery {
        query: BipartiteQuery::new(clauses),
        vocab,
    }
}

/// Maps a database for `zg(Q)` to the database `zg(∆)` for `Q`
/// (Appendix A; Figure 2). Constant layout in `zg(∆)`:
///
/// * left: original left constants `u` (unchanged), original right
///   constants `v` (offset), and dead-end constants `f^{(i)}_{uv}`;
/// * right: one `e_{uv}` per pair.
///
/// Probability values are copied 1-to-1, so `{0, ½, 1}`-ness is preserved.
pub fn zg_database(zq: &ZigzagQuery, delta: &Tid) -> Tid {
    let n = zq.vocab.n;
    let v1: Vec<u32> = delta.left_domain().to_vec();
    let v2: Vec<u32> = delta.right_domain().to_vec();
    // Fresh constant layout.
    let left_u = |u: u32| u; // assume original ids < 10_000
    let base_v = 10_000u32;
    let left_v = |v: u32| base_v + v;
    let mut next_left = 20_000u32;
    let mut f_ids: BTreeMap<(usize, u32, u32), u32> = BTreeMap::new();
    for &u in &v1 {
        for &v in &v2 {
            for i in 2..n {
                f_ids.insert((i, u, v), next_left);
                next_left += 1;
            }
        }
    }
    let mut e_ids: BTreeMap<(u32, u32), u32> = BTreeMap::new();
    let mut next_right = 0u32;
    for &u in &v1 {
        for &v in &v2 {
            e_ids.insert((u, v), next_right);
            next_right += 1;
        }
    }
    let mut lefts: Vec<u32> = v1.iter().map(|&u| left_u(u)).collect();
    lefts.extend(v2.iter().map(|&v| left_v(v)));
    lefts.extend(f_ids.values().copied());
    let mut out = Tid::all_present(lefts, e_ids.values().copied());
    let code = |sym: ZgSym| zq.vocab.code(sym);
    // Unary tuples.
    if zq.vocab.has_r {
        for &u in &v1 {
            out.set_prob(Tuple::R(left_u(u)), delta.prob(&Tuple::R(u)));
        }
        for &v in &v2 {
            out.set_prob(Tuple::R(left_v(v)), delta.prob(&Tuple::T(v)));
        }
        for (&(i, u, v), &f) in &f_ids {
            out.set_prob(
                Tuple::R(f),
                delta.prob(&Tuple::S(code(ZgSym::RMid { branch: i }), u, v)),
            );
        }
    }
    if zq.vocab.has_t {
        for (&(u, v), &e) in &e_ids {
            out.set_prob(Tuple::T(e), delta.prob(&Tuple::S(code(ZgSym::T12), u, v)));
        }
    }
    // Binary tuples: branch 1 at u, branches 2..n−1 at f's, branch n at v̄.
    let orig_syms: BTreeSet<u32> = zq
        .vocab
        .index
        .keys()
        .filter_map(|s| match s {
            ZgSym::S { orig, .. } => Some(*orig),
            _ => None,
        })
        .collect();
    for &u in &v1 {
        for &v in &v2 {
            let e = e_ids[&(u, v)];
            for &j in &orig_syms {
                out.set_prob(
                    Tuple::S(j, left_u(u), e),
                    delta.prob(&Tuple::S(code(ZgSym::S { orig: j, branch: 1 }), u, v)),
                );
                for i in 2..n {
                    out.set_prob(
                        Tuple::S(j, f_ids[&(i, u, v)], e),
                        delta.prob(&Tuple::S(code(ZgSym::S { orig: j, branch: i }), u, v)),
                    );
                }
                out.set_prob(
                    Tuple::S(j, left_v(v), e),
                    delta.prob(&Tuple::S(code(ZgSym::S { orig: j, branch: n }), u, v)),
                );
            }
        }
    }
    out
}

/// Convenience for tests: a database for `zg(Q)` with probabilities chosen
/// by a deterministic pseudo-random pick from `{0, ½, 1}` (biased toward ½
/// and 1 to keep lineages satisfiable and small).
pub fn pseudo_random_delta(zq: &ZigzagQuery, nu: u32, nv: u32, seed: u64) -> Tid {
    let left: Vec<u32> = (0..nu).collect();
    let right: Vec<u32> = (0..nv).collect();
    let mut tid = Tid::all_present(left.clone(), right.clone());
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut pick = || -> Rational {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        match (state >> 33) % 4 {
            0 => Rational::one(),
            _ => Rational::one_half(),
        }
    };
    let zg_syms: Vec<u32> = zq.query.binary_symbols().into_iter().collect();
    if zq.vocab.has_r {
        for &u in &left {
            tid.set_prob(Tuple::R(u), pick());
        }
        for &v in &right {
            tid.set_prob(Tuple::T(v), pick());
        }
    }
    for &u in &left {
        for &v in &right {
            for &s in &zg_syms {
                tid.set_prob(Tuple::S(s, u, v), pick());
            }
        }
    }
    tid
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfomc_query::{catalog, PartType};
    use gfomc_safety::{is_unsafe, query_length};
    use gfomc_tid::probability;

    #[test]
    fn zg_h1_is_a_chain_of_length_three() {
        // zg(H1) = (R∨S⁽¹⁾)(S⁽¹⁾∨T¹²)(T¹²∨S⁽²⁾)(S⁽²⁾∨T): length 3 = 2k+1.
        let zq = zg_query(&catalog::h1());
        assert_eq!(zq.vocab.n, 2);
        assert!(is_unsafe(&zq.query));
        assert_eq!(query_length(&zq.query), Some(3));
        let t = zq.query.query_type().unwrap();
        assert_eq!((t.left, t.right), (PartType::I, PartType::I));
    }

    #[test]
    fn zg_type_mapping_i_ii_to_i_i() {
        // Example A.3 is Type I–II; zg makes it I–I with n = 3.
        let q = catalog::example_a3();
        let t = q.query_type().unwrap();
        assert_eq!((t.left, t.right), (PartType::I, PartType::II));
        let zq = zg_query(&q);
        assert_eq!(zq.vocab.n, 3);
        let zt = zq.query.query_type().unwrap();
        assert_eq!((zt.left, zt.right), (PartType::I, PartType::I));
        assert!(is_unsafe(&zq.query));
    }

    #[test]
    fn zg_type_mapping_ii_ii_stays_ii_ii() {
        let q = catalog::example_c15();
        let zq = zg_query(&q);
        let zt = zq.query.query_type().unwrap();
        assert_eq!((zt.left, zt.right), (PartType::II, PartType::II));
        assert!(is_unsafe(&zq.query));
    }

    #[test]
    fn zg_length_at_least_doubles() {
        for (name, q) in [
            ("h1", catalog::h1()),
            ("h2", catalog::hk(2)),
            ("c15", catalog::example_c15()),
        ] {
            let k = query_length(&q).unwrap();
            let zk = query_length(&zg_query(&q).query).unwrap();
            assert!(zk >= 2 * k, "{name}: k={k}, zg length={zk}");
        }
    }

    #[test]
    fn lemma_a1_h1_small_domains() {
        let zq = zg_query(&catalog::h1());
        for seed in 0..4u64 {
            let delta = pseudo_random_delta(&zq, 2, 2, seed);
            let lhs = probability(&zq.query, &delta);
            let zdb = zg_database(&zq, &delta);
            let rhs = probability(&catalog::h1(), &zdb);
            assert_eq!(lhs, rhs, "seed {seed}");
        }
    }

    #[test]
    fn lemma_a1_h2() {
        let q = catalog::hk(2);
        let zq = zg_query(&q);
        let delta = pseudo_random_delta(&zq, 2, 1, 7);
        assert_eq!(
            probability(&zq.query, &delta),
            probability(&q, &zg_database(&zq, &delta)),
        );
    }

    #[test]
    fn lemma_a1_type_ii() {
        let q = catalog::example_c15();
        let zq = zg_query(&q);
        for seed in 0..3u64 {
            let delta = pseudo_random_delta(&zq, 1, 2, seed);
            assert_eq!(
                probability(&zq.query, &delta),
                probability(&q, &zg_database(&zq, &delta)),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn lemma_a1_type_i_ii_with_dead_ends() {
        // Example A.3: n = 3, so the construction exercises the dead-end
        // branches f⁽²⁾ and the middle R⁽²⁾ copies.
        let q = catalog::example_a3();
        let zq = zg_query(&q);
        let delta = pseudo_random_delta(&zq, 1, 1, 3);
        assert_eq!(
            probability(&zq.query, &delta),
            probability(&q, &zg_database(&zq, &delta)),
        );
    }

    #[test]
    fn zg_preserves_gfomc_probability_values() {
        let zq = zg_query(&catalog::h1());
        let delta = pseudo_random_delta(&zq, 2, 2, 11);
        assert!(delta.is_gfomc_instance());
        let zdb = zg_database(&zq, &delta);
        assert!(zdb.is_gfomc_instance());
    }
}
