//! Shattering (Lemma C.16 / Example C.14): simplifying a non-forbidden
//! Type-II query by converting a non-ubiquitous symbol into a unary one.
//!
//! Example C.9's query `Q = ∀x(∀yS₀ ∨ ∀yS₁) ∧ ∀x∀y(S₀∨S₂) ∧
//! ∀y(∀xS₂ ∨ ∀xS₃)` is final but not forbidden: the symbol `S₁` occurs
//! only in the left clause, in just one subclause, and not in `C₁`. Shattering replaces
//! the subclause `∀y S₁(x,y)` by a fresh unary symbol `R(x)`, producing the
//! Type I–II query `Q′ = ∀x∀y(R(x) ∨ S₀) ∧ (S₀∨S₂) ∧ ∀y(∀xS₂ ∨ ∀xS₃)`
//! with `GFOMC(Q′) ≤ᴾₘ GFOMC(Q)`: a database `∆′` for `Q′` maps to a
//! database `∆` for `Q` over one extra right constant `b₁` where
//! `S₁(a, b₁)` carries `R(a)`'s probability and `S₁` is 1 elsewhere, while
//! the other symbols are 1 at `b₁` and unchanged elsewhere — then
//! `∀y S₁(a,y)` collapses to `R(a)` and the rest of `Q` is untouched.
//!
//! This module implements that worked example and its database map; the
//! fully general shattering of Claim 1 in Lemma C.16's proof is not needed
//! by the experiments (DESIGN.md §6).

use gfomc_arith::Rational;
use gfomc_query::{catalog, BipartiteQuery, Clause};
use gfomc_tid::{Tid, Tuple};

/// The source query of Example C.14: Example C.9's Type II–II query.
pub fn source_query() -> BipartiteQuery {
    catalog::example_c9()
}

/// The shattered query `Q′` of Example C.14 (Type I–II): `S₁` replaced by
/// the unary `R`.
pub fn shattered_query() -> BipartiteQuery {
    BipartiteQuery::new([
        Clause::left_i([0]),
        Clause::middle([0, 2]),
        Clause::right_ii(&[&[2], &[3]]),
    ])
}

/// Maps a database `∆′` for `Q′` to a database `∆ = shatter(∆′)` for `Q`
/// such that `Pr_∆(Q) = Pr_{∆′}(Q′)`, with identical probability values
/// (so GFOMC instances map to GFOMC instances).
///
/// Fresh right constant: `b₁` (chosen above `∆′`'s right domain).
pub fn shatter_database(delta_prime: &Tid) -> Tid {
    let left: Vec<u32> = delta_prime.left_domain().to_vec();
    let right: Vec<u32> = delta_prime.right_domain().to_vec();
    let b1 = right.iter().max().map_or(0, |m| m + 1);
    let mut out = Tid::all_present(left.iter().copied(), right.iter().copied().chain([b1]));
    for &a in &left {
        // S₁(a, b₁) carries R(a); S₁ is 1 elsewhere (the TID default).
        out.set_prob(Tuple::S(1, a, b1), delta_prime.prob(&Tuple::R(a)));
        // S₀, S₂, S₃ are 1 at b₁ (default) and copied elsewhere.
        for &b in &right {
            for s in [0u32, 2, 3] {
                out.set_prob(Tuple::S(s, a, b), delta_prime.prob(&Tuple::S(s, a, b)));
            }
        }
    }
    out
}

/// A pseudo-random GFOMC database for `Q′` (probabilities in {½, 1}).
pub fn random_delta_prime(nu: u32, nv: u32, seed: u64) -> Tid {
    let left: Vec<u32> = (0..nu).collect();
    let right: Vec<u32> = (0..nv).collect();
    let mut tid = Tid::all_present(left.clone(), right.clone());
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut pick = || -> Rational {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        if (state >> 33).is_multiple_of(3) {
            Rational::one()
        } else {
            Rational::one_half()
        }
    };
    for &a in &left {
        tid.set_prob(Tuple::R(a), pick());
        for &b in &right {
            for s in [0u32, 2, 3] {
                tid.set_prob(Tuple::S(s, a, b), pick());
            }
        }
    }
    tid
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfomc_query::{PartType, Pred};
    use gfomc_safety::{is_unsafe, query_length};
    use gfomc_tid::probability;

    #[test]
    fn shattered_query_is_type_i_ii() {
        let qp = shattered_query();
        let t = qp.query_type().unwrap();
        assert_eq!((t.left, t.right), (PartType::I, PartType::II));
        assert!(is_unsafe(&qp));
        // Shattering does not shorten the left-right path.
        assert!(query_length(&qp) >= query_length(&source_query()));
    }

    #[test]
    fn shattered_query_drops_s1() {
        let qp = shattered_query();
        assert!(!qp.symbols().contains(&Pred::S(1)));
        assert!(qp.symbols().contains(&Pred::R));
    }

    #[test]
    fn example_c14_probability_preserved() {
        let q = source_query();
        let qp = shattered_query();
        for seed in 0..5u64 {
            let dp = random_delta_prime(2, 2, seed);
            let d = shatter_database(&dp);
            assert_eq!(probability(&qp, &dp), probability(&q, &d), "seed {seed}");
        }
    }

    #[test]
    fn shattering_preserves_gfomc_instances() {
        let dp = random_delta_prime(2, 2, 9);
        assert!(dp.is_gfomc_instance());
        let d = shatter_database(&dp);
        assert!(d.is_gfomc_instance());
        // The mapped database has exactly one extra right constant.
        assert_eq!(d.right_domain().len(), dp.right_domain().len() + 1);
    }

    #[test]
    fn works_on_larger_domains() {
        let q = source_query();
        let qp = shattered_query();
        let dp = random_delta_prime(3, 2, 1);
        let d = shatter_database(&dp);
        assert_eq!(probability(&qp, &dp), probability(&q, &d));
    }

    #[test]
    fn deterministic_extremes() {
        // All R absent: Q' needs ∀y S₀ per x; the mapped database sets
        // S₁(·,b₁) = 0 so Q's left clause also forces ∀y S₀.
        let qp = shattered_query();
        let q = source_query();
        let mut dp = Tid::all_present([0], [0]);
        dp.set_prob(Tuple::R(0), Rational::zero());
        dp.set_prob(Tuple::S(0, 0, 0), Rational::one_half());
        dp.set_prob(Tuple::S(2, 0, 0), Rational::one_half());
        dp.set_prob(Tuple::S(3, 0, 0), Rational::one_half());
        let d = shatter_database(&dp);
        assert_eq!(probability(&qp, &dp), probability(&q, &d));
    }
}
