//! Lemma 1.1: non-root assignments for low-degree polynomials.
//!
//! If `f(x₁,…,x_n) ≢ 0` has degree ≤ 2 in every variable, then for any three
//! distinct constants `c₁, c₂, c₃` there is an assignment with values among
//! them on which `f` does not vanish. This is the paper's sole source of
//! probability values: it lets every probability used by the hardness proof
//! be chosen from `{0, ½, 1}` (or `{0, c, 1}` for any fixed `c ∈ (0,1)`).
//!
//! The constructive proof *is* the algorithm: writing `f = g·x² + h·x + k`,
//! a degree-2 polynomial in `x` vanishes identically for at most two of the
//! three candidate substitutions, so a non-vanishing branch always exists.

use gfomc_arith::Rational;
use gfomc_poly::{PVar, Poly};
use std::collections::BTreeMap;

/// Finds an assignment `θ : Vars(f) → {c₁, c₂, c₃}` with `f[θ] ≠ 0`.
/// Requires `f ≢ 0`, degree ≤ 2 in every variable, and distinct constants.
/// The existence is Lemma 1.1; this function also *returns* the witness.
pub fn nonroot_assignment(f: &Poly, candidates: &[Rational; 3]) -> BTreeMap<PVar, Rational> {
    assert!(!f.is_zero(), "Lemma 1.1 requires f ≢ 0");
    assert!(
        candidates[0] != candidates[1]
            && candidates[0] != candidates[2]
            && candidates[1] != candidates[2],
        "candidates must be distinct"
    );
    let mut assignment = BTreeMap::new();
    let mut current = f.clone();
    while let Some(&v) = current.vars().iter().next() {
        assert!(
            current.degree_in(v) <= 2,
            "Lemma 1.1 requires degree ≤ 2 in every variable"
        );
        let mut found = false;
        for c in candidates {
            let restricted = current.substitute(v, c);
            if !restricted.is_zero() {
                assignment.insert(v, c.clone());
                current = restricted;
                found = true;
                break;
            }
        }
        // A univariate degree-≤2 slice vanishing at three distinct points is
        // identically zero, contradicting `current ≢ 0`.
        assert!(found, "degree-2 polynomial vanished at 3 distinct points");
    }
    debug_assert!(!current.is_zero());
    // Variables can drop out when a substitution cancels all their terms;
    // their values are then irrelevant — complete the assignment so the
    // witness covers all of Vars(f).
    for v in f.vars() {
        assignment.entry(v).or_insert_with(|| candidates[0].clone());
    }
    assignment
}

/// The paper's standard candidate set `{0, ½, 1}`.
pub fn gfomc_candidates() -> [Rational; 3] {
    [Rational::zero(), Rational::one_half(), Rational::one()]
}

/// Convenience: a witness with values in `{0, ½, 1}` plus the verified
/// nonzero value `f[θ]`.
pub fn gfomc_nonroot(f: &Poly) -> (BTreeMap<PVar, Rational>, Rational) {
    let theta = nonroot_assignment(f, &gfomc_candidates());
    let value = f.eval(&theta);
    assert!(!value.is_zero());
    (theta, value)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x(i: u32) -> Poly {
        Poly::var(PVar(i))
    }

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_ints(n, d)
    }

    #[test]
    fn single_variable_with_two_roots() {
        // f = x(1-x) vanishes at 0 and 1 but not at ½.
        let f = &x(0) * &(&Poly::one() - &x(0));
        let (theta, value) = gfomc_nonroot(&f);
        assert_eq!(theta[&PVar(0)], r(1, 2));
        assert_eq!(value, r(1, 4));
    }

    #[test]
    fn multivariate_product_form() {
        // f = ∏_i x_i(1-x_i) — the shape of Corollary 3.18's f_A.
        let mut f = Poly::one();
        for i in 0..4 {
            f = &f * &(&x(i) * &(&Poly::one() - &x(i)));
        }
        let (theta, value) = gfomc_nonroot(&f);
        for i in 0..4 {
            assert_eq!(theta[&PVar(i)], r(1, 2));
        }
        assert_eq!(value, r(1, 256));
    }

    #[test]
    fn polynomial_vanishing_at_half() {
        // f = (2x - 1): vanishes at ½, not at 0 or 1.
        let f = &x(0).scale(&r(2, 1)) - &Poly::one();
        let (theta, value) = gfomc_nonroot(&f);
        assert!(theta[&PVar(0)] == Rational::zero() || theta[&PVar(0)].is_one());
        assert!(!value.is_zero());
    }

    #[test]
    fn constant_polynomial_needs_no_assignment() {
        let f = Poly::constant(r(7, 3));
        let (theta, value) = gfomc_nonroot(&f);
        assert!(theta.is_empty());
        assert_eq!(value, r(7, 3));
    }

    #[test]
    #[should_panic]
    fn zero_polynomial_rejected() {
        let _ = gfomc_nonroot(&Poly::zero());
    }

    #[test]
    #[should_panic]
    fn degree_three_rejected() {
        let f = &(&x(0) * &x(0)) * &x(0);
        let _ = gfomc_nonroot(&f);
    }

    #[test]
    fn works_with_alternative_constants() {
        // Theorem 2.2's final claim: any {0, c, 1} works. Use c = 1/3.
        let f = &x(0) * &(&Poly::one() - &x(0));
        let theta = nonroot_assignment(&f, &[Rational::zero(), r(1, 3), Rational::one()]);
        assert_eq!(f.eval(&theta), r(2, 9));
    }

    #[test]
    fn randomized_degree_two_polynomials() {
        // Deterministic pseudo-random family: f = Σ coefficients x_i x_j +
        // quadratic terms; verify the witness on many instances.
        let mut seed = 0x12345u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) % 7) as i64 - 3
        };
        for _ in 0..50 {
            let mut f = Poly::zero();
            for i in 0..3u32 {
                for j in 0..3u32 {
                    let c = next();
                    if c != 0 {
                        f = &f + &(&x(i) * &x(j)).scale(&Rational::from(c));
                    }
                }
            }
            if f.is_zero() {
                continue;
            }
            let (theta, value) = gfomc_nonroot(&f);
            assert_eq!(f.eval(&theta), value);
            assert!(!value.is_zero());
        }
    }
}
