//! The headline construction: the Cook reduction `#P2CNF ≤ᴾ FOMC(Q)` for
//! final Type-I queries (Theorem 3.1), executable end-to-end.
//!
//! Given a P2CNF `Φ` with `m` clauses over `n` variables and a final Type-I
//! query `Q`:
//!
//! 1. build the transfer matrices `A(p)` for `p = 1..=m+1` from the path
//!    blocks of §3.3;
//! 2. for every parameter multiset `{p ≤ q}` construct the block database
//!    with parallel blocks `B_{(p,q)}` on each clause edge and query the
//!    `Pr(Q)` oracle — `C(m+2,2)` oracle calls, on databases whose
//!    probabilities all lie in `{½, 1}`;
//! 3. assemble the big system (Theorem 3.6 / [`crate::big_matrix`]) and
//!    solve `M · x = 2^n · Pr` for the undirected signature counts `#k′`;
//! 4. read off `#Φ = Σ_{k′ : k₀₀ = 0} #k′`.
//!
//! The implementation recovers not just `#Φ` but the entire signature-count
//! table, which tests compare against brute-force enumeration.

use crate::big_matrix::big_system;
use crate::block_tid::{block_database, probability_via_factorization};
use crate::p2cnf::P2Cnf;
use crate::signatures::UndirectedSignature;
use crate::transfer::transfer_matrix;
use gfomc_arith::{Natural, Rational, Sign};
use gfomc_linalg::Matrix;
use gfomc_query::BipartiteQuery;
use gfomc_tid::probability;
use std::collections::BTreeMap;

/// How the reduction obtains `Pr_∆(Q)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OracleMode {
    /// Materialize the full block database and run the exact oracle (which
    /// compiles the lineage and evaluates the circuit) — the literal oracle
    /// of the reduction. Use for small instances.
    FullWmc,
    /// Evaluate via the factorization of Theorem 3.4 (Eq. (8)) using the
    /// precomputed transfer matrices. Verified equal to `FullWmc` by the
    /// `block_tid` tests (E15).
    Factorized,
}

/// Result of a reduction run.
#[derive(Clone, Debug)]
pub struct ReductionOutcome {
    /// The recovered model count `#Φ`.
    pub model_count: Natural,
    /// The full table of undirected signature counts `#k′`.
    pub signature_counts: BTreeMap<UndirectedSignature, Natural>,
    /// Number of oracle invocations (`C(m+2,2)`).
    pub oracle_calls: usize,
    /// Dimension of the linear system solved.
    pub system_dim: usize,
}

/// Runs the reduction. `q` must be a final Type-I query (the caller can
/// check with `gfomc_safety::is_final_type_i`); the big system is verified
/// non-singular at runtime, which is what Theorem 3.6 guarantees under the
/// coefficient conditions established by Theorem 3.14.
pub fn reduce_p2cnf(q: &BipartiteQuery, phi: &P2Cnf, mode: OracleMode) -> ReductionOutcome {
    let m = phi.n_clauses();
    let n = phi.n_vars();
    if m == 0 {
        // No clauses: every assignment satisfies Φ.
        let mut counts = BTreeMap::new();
        counts.insert(
            UndirectedSignature {
                k00: 0,
                k01_10: 0,
                k11: 0,
            },
            Natural::from(2u64).pow(n as u32),
        );
        return ReductionOutcome {
            model_count: Natural::from(2u64).pow(n as u32),
            signature_counts: counts,
            oracle_calls: 0,
            system_dim: 0,
        };
    }
    // Step 1: transfer matrices A(p), p = 1..=m+1.
    let z_tables: Vec<Matrix<Rational>> = (1..=m + 1).map(|p| transfer_matrix(q, p)).collect();
    // Step 2 + 3: the big system and one oracle call per row.
    let sys = big_system(&z_tables, m);
    let two_pow_n = Rational::from_ints(2, 1).pow(n as i32);
    let mut rhs = Vec::with_capacity(sys.rows.len());
    for &(p1, p2) in &sys.rows {
        let pr = match mode {
            OracleMode::FullWmc => {
                let tid = block_database(q, phi, &[p1, p2]);
                debug_assert!(tid.is_fomc_instance());
                probability(q, &tid)
            }
            OracleMode::Factorized => probability_via_factorization(
                phi,
                &[z_tables[p1 - 1].clone(), z_tables[p2 - 1].clone()],
            ),
        };
        rhs.push(&pr * &two_pow_n);
    }
    let oracle_calls = rhs.len();
    let x = sys
        .matrix
        .solve(&rhs)
        .expect("big system is singular — query is not a final Type-I query");
    // Step 4: extract integer counts.
    let mut signature_counts = BTreeMap::new();
    let mut model_count = Natural::zero();
    for (sig, value) in sys.cols.iter().zip(x.iter()) {
        let count = rational_to_count(value);
        if count.is_zero() {
            continue;
        }
        if sig.k00 == 0 {
            model_count = &model_count + &count;
        }
        signature_counts.insert(*sig, count);
    }
    ReductionOutcome {
        model_count,
        signature_counts,
        oracle_calls,
        system_dim: sys.rows.len(),
    }
}

/// Converts an exactly-recovered count to a natural number, validating that
/// it is a nonnegative integer (any deviation indicates a broken reduction).
fn rational_to_count(r: &Rational) -> Natural {
    assert!(r.denom().is_one(), "recovered count is not integral: {r}");
    assert!(
        r.numer().sign() != Sign::Negative,
        "recovered count is negative: {r}"
    );
    r.numer().magnitude().clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signatures::signature_counts;
    use gfomc_query::catalog;

    fn check_reduction(q: &BipartiteQuery, phi: &P2Cnf, mode: OracleMode) {
        let outcome = reduce_p2cnf(q, phi, mode);
        assert_eq!(
            outcome.model_count,
            phi.count_models(),
            "model count mismatch"
        );
        assert_eq!(
            outcome.signature_counts,
            signature_counts(phi),
            "signature table mismatch"
        );
        let m = phi.n_clauses();
        assert_eq!(outcome.oracle_calls, (m + 1) * (m + 2) / 2);
    }

    #[test]
    fn single_edge_full_wmc() {
        // The smallest nontrivial instance, with the literal WMC oracle.
        let phi = P2Cnf::new(2, vec![(0, 1)]);
        check_reduction(&catalog::h1(), &phi, OracleMode::FullWmc);
    }

    #[test]
    fn single_edge_factorized() {
        let phi = P2Cnf::new(2, vec![(0, 1)]);
        check_reduction(&catalog::h1(), &phi, OracleMode::Factorized);
    }

    #[test]
    fn path_of_three_vars() {
        let phi = P2Cnf::new(3, vec![(0, 1), (1, 2)]);
        check_reduction(&catalog::h1(), &phi, OracleMode::Factorized);
    }

    #[test]
    fn triangle() {
        let phi = P2Cnf::new(3, vec![(0, 1), (1, 2), (0, 2)]);
        check_reduction(&catalog::h1(), &phi, OracleMode::Factorized);
    }

    #[test]
    fn star_graph() {
        let phi = P2Cnf::new(4, vec![(0, 1), (0, 2), (0, 3)]);
        check_reduction(&catalog::h1(), &phi, OracleMode::Factorized);
    }

    #[test]
    fn longer_query_h2() {
        // The reduction works for every final Type-I query, not just H1.
        let phi = P2Cnf::new(3, vec![(0, 1), (1, 2)]);
        check_reduction(&catalog::hk(2), &phi, OracleMode::Factorized);
    }

    #[test]
    fn longer_query_h3_single_edge() {
        let phi = P2Cnf::new(2, vec![(0, 1)]);
        check_reduction(&catalog::hk(3), &phi, OracleMode::Factorized);
    }

    #[test]
    fn empty_formula() {
        let phi = P2Cnf::new(3, vec![]);
        let outcome = reduce_p2cnf(&catalog::h1(), &phi, OracleMode::Factorized);
        assert_eq!(outcome.model_count, Natural::from(8u64));
        assert_eq!(outcome.oracle_calls, 0);
    }

    #[test]
    fn full_wmc_path_small() {
        // Full-WMC oracle on a 2-edge path: exercises real databases.
        let phi = P2Cnf::new(3, vec![(0, 1), (1, 2)]);
        check_reduction(&catalog::h1(), &phi, OracleMode::FullWmc);
    }

    #[test]
    fn four_cycle() {
        let phi = P2Cnf::new(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
        check_reduction(&catalog::h1(), &phi, OracleMode::Factorized);
    }

    #[test]
    fn bipartite_instance() {
        // A PP2CNF embedded as P2CNF: K_{2,2} minus an edge.
        let phi = P2Cnf::new(4, vec![(0, 2), (0, 3), (1, 2)]);
        check_reduction(&catalog::h1(), &phi, OracleMode::Factorized);
    }

    #[test]
    fn five_edges() {
        let phi = P2Cnf::new(4, vec![(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        check_reduction(&catalog::h1(), &phi, OracleMode::Factorized);
    }
}
