//! The symbolic "small matrix" and Lemma 1.2: connecting logic and algebra.
//!
//! For a Boolean formula `Y` with distinguished variables `r, t`, the small
//! matrix is `y = [[y₀₀, y₀₁], [y₁₀, y₁₁]]` where `y_ab` is the
//! arithmetization of `Y[r:=a, t:=b]`. Lemma 1.2: `det(y) ≡ 0` iff `Y`
//! disconnects `r` from `t` (i.e. `Y ≡ F ∧ G` with `r ∈ Vars(F)`,
//! `t ∈ Vars(G)`, disjoint variables). Theorem 3.16 strengthens this for
//! final Type-I queries: `f_A = det(y)` is a nonzero constant multiple of
//! `∏ uᵢ(1−uᵢ)` (Corollary 3.18), hence nonzero on all of `(0,1)^N`.

use crate::block::{path_block, ConstAlloc};
use gfomc_arith::Rational;
use gfomc_logic::{decompose, Cnf, Var};
use gfomc_poly::{arithmetize, det2, PVar, Poly};
use gfomc_query::BipartiteQuery;
use gfomc_tid::{lineage, Tuple};
use std::collections::BTreeSet;

/// The four restricted arithmetizations of a formula at two distinguished
/// variables, as polynomials over the remaining variables.
#[derive(Clone, Debug)]
pub struct SmallMatrix {
    /// `y[r:=0, t:=0]`.
    pub y00: Poly,
    /// `y[r:=0, t:=1]`.
    pub y01: Poly,
    /// `y[r:=1, t:=0]`.
    pub y10: Poly,
    /// `y[r:=1, t:=1]`.
    pub y11: Poly,
}

impl SmallMatrix {
    /// Builds the small matrix of `f` at the distinguished variables `r, t`.
    pub fn of_formula(f: &Cnf, r: Var, t: Var) -> Self {
        let y = arithmetize(f);
        let sub = |a: i64, b: i64| {
            y.substitute(PVar(r.0), &Rational::from(a))
                .substitute(PVar(t.0), &Rational::from(b))
        };
        SmallMatrix {
            y00: sub(0, 0),
            y01: sub(0, 1),
            y10: sub(1, 0),
            y11: sub(1, 1),
        }
    }

    /// The determinant polynomial `f_A = y₀₀y₁₁ − y₀₁y₁₀` (Eq. (28)).
    pub fn determinant(&self) -> Poly {
        det2(&self.y00, &self.y01, &self.y10, &self.y11)
    }

    /// Lemma 1.2, algebraic side: true iff `det ≡ 0`.
    pub fn is_singular(&self) -> bool {
        self.determinant().is_zero()
    }
}

/// Lemma 1.2, both directions, as a checkable predicate: the small matrix
/// of `f` at `(r, t)` is singular iff `f` disconnects `{r}` from `{t}`.
pub fn lemma_1_2_agrees(f: &Cnf, r: Var, t: Var) -> bool {
    let singular = SmallMatrix::of_formula(f, r, t).is_singular();
    let disconnected = decompose::disconnects(f, &BTreeSet::from([r]), &BTreeSet::from([t]));
    singular == disconnected
}

/// The small matrix of a query's `p = 1` block lineage at the endpoint
/// variables `R(u)`, `R(v)` — the `A(1)` of Eq. (27), symbolically.
pub fn block_small_matrix(q: &BipartiteQuery) -> SmallMatrix {
    let mut alloc = ConstAlloc::new(2, 0);
    let tid = path_block(q, 0, 1, 1, &mut alloc);
    let lin = lineage(q, &tid);
    let r = lin.vars.lookup(&Tuple::R(0)).expect("R(u) in lineage");
    let t = lin.vars.lookup(&Tuple::R(1)).expect("R(v) in lineage");
    SmallMatrix::of_formula(&lin.cnf, r, t)
}

/// Corollary 3.18: for a final Type-I query, `f_A = c·∏ uᵢ(1−uᵢ)` for some
/// constant `c ≠ 0`. Returns `Some(c)` if the determinant has exactly this
/// shape, `None` otherwise.
pub fn corollary_3_18_constant(q: &BipartiteQuery) -> Option<Rational> {
    let det = block_small_matrix(q).determinant();
    if det.is_zero() {
        return None;
    }
    let vars: Vec<PVar> = det.vars().into_iter().collect();
    let mut shape = Poly::one();
    for &v in &vars {
        shape = &shape * &(&Poly::var(v) * &(&Poly::one() - &Poly::var(v)));
    }
    // det = c · shape iff the quotient at any non-root point matches and the
    // difference c·shape − det ≡ 0.
    let half_point: std::collections::BTreeMap<PVar, Rational> =
        vars.iter().map(|&v| (v, Rational::one_half())).collect();
    let denom = shape.eval(&half_point);
    if denom.is_zero() {
        return None;
    }
    let c = &det.eval(&half_point) / &denom;
    if (&shape.scale(&c) - &det).is_zero() {
        Some(c)
    } else {
        None
    }
}

/// Theorem 3.16 at the uniform-½ point: `f_A(½,…,½) ≠ 0`.
pub fn theorem_3_16_at_half(q: &BipartiteQuery) -> bool {
    let det = block_small_matrix(q).determinant();
    if det.is_zero() {
        return false;
    }
    let point = det
        .vars()
        .into_iter()
        .map(|v| (v, Rational::one_half()))
        .collect();
    !det.eval(&point).is_zero()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfomc_logic::Clause;
    use gfomc_query::catalog;

    fn cl(vs: &[u32]) -> Clause {
        Clause::new(vs.iter().map(|&i| Var(i)))
    }

    #[test]
    fn paper_intro_small_matrix() {
        // Y = (R ∨ S) ∧ (S ∨ T); R=0, S=1, T=2.
        // y = rt + s − rst; y00 = s, y01 = s, y10 = s, y11 = 1.
        let f = Cnf::new([cl(&[0, 1]), cl(&[1, 2])]);
        let sm = SmallMatrix::of_formula(&f, Var(0), Var(2));
        let s = Poly::var(PVar(1));
        assert_eq!(sm.y00, s);
        assert_eq!(sm.y01, s);
        assert_eq!(sm.y10, s);
        assert_eq!(sm.y11, Poly::one());
        // det = s − s² = s(1−s) ≠ 0: Y connects R and T.
        assert!(!sm.is_singular());
    }

    #[test]
    fn disconnected_formula_is_singular() {
        // Y = R ∧ T: disconnects {R},{T}; det must vanish.
        let f = Cnf::new([cl(&[0]), cl(&[2])]);
        let sm = SmallMatrix::of_formula(&f, Var(0), Var(2));
        assert!(sm.is_singular());
        assert!(lemma_1_2_agrees(&f, Var(0), Var(2)));
    }

    #[test]
    fn lemma_1_2_both_directions_on_fixed_formulas() {
        let cases = [
            // connected through a chain
            Cnf::new([cl(&[0, 1]), cl(&[1, 2]), cl(&[2, 3])]),
            // product form
            Cnf::new([cl(&[0, 1]), cl(&[2, 3])]),
            // direct co-occurrence
            Cnf::new([cl(&[0, 3])]),
            // disconnected via constants after minimization
            Cnf::new([cl(&[0]), cl(&[3]), cl(&[1, 2])]),
        ];
        for f in &cases {
            assert!(lemma_1_2_agrees(f, Var(0), Var(3)), "{f:?}");
        }
    }

    #[test]
    fn corollary_3_18_for_h1() {
        // For H1 the block-1 lineage has det f_A = c·∏ u(1−u) with c ≠ 0.
        let c = corollary_3_18_constant(&catalog::h1());
        assert!(c.is_some());
        assert!(!c.unwrap().is_zero());
    }

    #[test]
    fn corollary_3_18_for_chains() {
        for k in 1..=2 {
            let c = corollary_3_18_constant(&catalog::hk(k));
            assert!(c.is_some(), "h{k}");
        }
    }

    #[test]
    fn theorem_3_16_on_final_catalog() {
        for (name, q) in [
            ("h1", catalog::h1()),
            ("h2", catalog::hk(2)),
            ("h3", catalog::hk(3)),
        ] {
            assert!(theorem_3_16_at_half(&q), "{name}");
        }
    }

    #[test]
    fn symbolic_half_point_matches_numeric_transfer() {
        // Evaluating the symbolic small matrix at the all-½ point must equal
        // the numeric transfer matrix A(1).
        let q = catalog::h1();
        let sm = block_small_matrix(&q);
        let a1 = crate::transfer::transfer_matrix(&q, 1);
        for (poly, (i, j)) in [
            (&sm.y00, (0, 0)),
            (&sm.y01, (0, 1)),
            (&sm.y10, (1, 0)),
            (&sm.y11, (1, 1)),
        ] {
            let point = poly
                .vars()
                .into_iter()
                .map(|v| (v, Rational::one_half()))
                .collect();
            assert_eq!(&poly.eval(&point), a1.get(i, j), "entry ({i},{j})");
        }
    }

    #[test]
    fn rank_one_product_direction() {
        // (1) ⇒ (2) of Lemma 1.2: a formula that disconnects r,t has a
        // product-form arithmetization, hence singular small matrix.
        // F = (r ∨ a) ∧ (t ∨ b).
        let f = Cnf::new([cl(&[0, 1]), cl(&[2, 3])]);
        let sm = SmallMatrix::of_formula(&f, Var(0), Var(2));
        assert!(sm.is_singular());
    }
}
