//! Positive 2CNF formulas and their model counts — the #P-hard source
//! problems of the paper's reductions (§1.5).
//!
//! `#P2CNF` counts satisfying assignments of `Φ = ∧_{(i,j)∈E} (X_i ∨ X_j)`;
//! `#PP2CNF` is the restriction to bipartite graphs `E ⊆ U × V` (both
//! #P-hard by Provan & Ball). Here: brute-force counting (ground truth for
//! the reduction experiments), an independent-set reformulation, and a
//! linear-time dynamic program for path graphs used to sanity-check larger
//! instances.

use gfomc_arith::Natural;

/// A positive 2CNF `Φ = ∧_{(i,j) ∈ E} (X_i ∨ X_j)` over variables
/// `X_0, …, X_{n-1}`. Edges are ordered pairs with `i ≠ j`; at most one of
/// `(i,j)`, `(j,i)` may appear (the paper's convention for directed
/// signatures).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct P2Cnf {
    n_vars: usize,
    edges: Vec<(usize, usize)>,
}

impl P2Cnf {
    /// Builds a formula; validates the edge conventions.
    pub fn new(n_vars: usize, edges: Vec<(usize, usize)>) -> Self {
        for &(i, j) in &edges {
            assert!(i < n_vars && j < n_vars, "variable out of range");
            assert!(i != j, "self-loop clause (X v X) not allowed");
        }
        for a in 0..edges.len() {
            for b in (a + 1)..edges.len() {
                assert!(
                    edges[a] != edges[b] && (edges[a].1, edges[a].0) != edges[b],
                    "duplicate or reversed duplicate edge"
                );
            }
        }
        P2Cnf { n_vars, edges }
    }

    /// Number of variables `n`.
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// The clause edges `E` (directed per the paper's convention).
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Number of clauses `m`.
    pub fn n_clauses(&self) -> usize {
        self.edges.len()
    }

    /// True iff the assignment (bit `i` = value of `X_i`) satisfies `Φ`.
    pub fn satisfied_by(&self, assignment: u64) -> bool {
        self.edges
            .iter()
            .all(|&(i, j)| assignment >> i & 1 == 1 || assignment >> j & 1 == 1)
    }

    /// `#Φ` by brute-force enumeration (requires `n ≤ 26`).
    pub fn count_models(&self) -> Natural {
        assert!(self.n_vars <= 26, "brute force limited to 26 variables");
        let mut count = 0u64;
        for mask in 0u64..(1u64 << self.n_vars) {
            if self.satisfied_by(mask) {
                count += 1;
            }
        }
        Natural::from(count)
    }

    /// The path formula `(X_0 ∨ X_1)(X_1 ∨ X_2)…(X_{n-2} ∨ X_{n-1})`.
    pub fn path(n_vars: usize) -> Self {
        assert!(n_vars >= 2);
        P2Cnf::new(n_vars, (0..n_vars - 1).map(|i| (i, i + 1)).collect())
    }

    /// `#Φ` for a path via the Fibonacci-style DP: the number of vertex
    /// covers... more precisely, of assignments where no clause has both
    /// endpoints false. Linear in `n`, exact for any size.
    pub fn count_models_path(n_vars: usize) -> Natural {
        // DP over positions: states (last var = 0) and (last var = 1).
        // A clause (X_{i} ∨ X_{i+1}) forbids 0 followed by 0.
        let mut zero = Natural::one(); // assignments ending in X_i = 0
        let mut one = Natural::one(); // assignments ending in X_i = 1
        for _ in 1..n_vars {
            let new_zero = one.clone(); // previous must be 1
            let new_one = &zero + &one;
            zero = new_zero;
            one = new_one;
        }
        &zero + &one
    }

    /// True iff the underlying graph is bipartite with parts given by a
    /// 2-coloring of the variables — i.e. `Φ` is a PP2CNF instance.
    pub fn is_bipartite(&self) -> bool {
        // Standard BFS 2-coloring on the undirected clause graph.
        let mut color = vec![-1i8; self.n_vars];
        let mut adj = vec![Vec::new(); self.n_vars];
        for &(i, j) in &self.edges {
            adj[i].push(j);
            adj[j].push(i);
        }
        for start in 0..self.n_vars {
            if color[start] != -1 {
                continue;
            }
            color[start] = 0;
            let mut queue = std::collections::VecDeque::from([start]);
            while let Some(v) = queue.pop_front() {
                for &w in &adj[v] {
                    if color[w] == -1 {
                        color[w] = 1 - color[v];
                        queue.push_back(w);
                    } else if color[w] == color[v] {
                        return false;
                    }
                }
            }
        }
        true
    }
}

/// A PP2CNF instance `Φ = ∧_{(u,v) ∈ E} (X_u ∨ Y_v)` over disjoint variable
/// sets `X_0..X_{nu-1}`, `Y_0..Y_{nv-1}` (Provan–Ball).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pp2Cnf {
    nu: usize,
    nv: usize,
    edges: Vec<(usize, usize)>,
}

impl Pp2Cnf {
    /// Builds a bipartite positive 2CNF.
    pub fn new(nu: usize, nv: usize, edges: Vec<(usize, usize)>) -> Self {
        for &(u, v) in &edges {
            assert!(u < nu && v < nv, "variable out of range");
        }
        let mut sorted = edges.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), edges.len(), "duplicate edge");
        Pp2Cnf { nu, nv, edges }
    }

    /// Number of `X` variables.
    pub fn nu(&self) -> usize {
        self.nu
    }

    /// Number of `Y` variables.
    pub fn nv(&self) -> usize {
        self.nv
    }

    /// The edges.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// `#Φ` by brute force over both sides (requires `nu + nv ≤ 26`).
    pub fn count_models(&self) -> Natural {
        assert!(self.nu + self.nv <= 26);
        let mut count = 0u64;
        for xmask in 0u64..(1u64 << self.nu) {
            for ymask in 0u64..(1u64 << self.nv) {
                if self
                    .edges
                    .iter()
                    .all(|&(u, v)| xmask >> u & 1 == 1 || ymask >> v & 1 == 1)
                {
                    count += 1;
                }
            }
        }
        Natural::from(count)
    }

    /// Embeds into a general [`P2Cnf`] (Y-variables shifted by `nu`).
    pub fn to_p2cnf(&self) -> P2Cnf {
        P2Cnf::new(
            self.nu + self.nv,
            self.edges.iter().map(|&(u, v)| (u, self.nu + v)).collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_clause_count() {
        // (X0 ∨ X1): 3 satisfying assignments.
        let f = P2Cnf::new(2, vec![(0, 1)]);
        assert_eq!(f.count_models(), Natural::from(3u64));
    }

    #[test]
    fn triangle_count() {
        // (X0∨X1)(X1∨X2)(X0∨X2): assignments with ≤1 false var = 4.
        let f = P2Cnf::new(3, vec![(0, 1), (1, 2), (0, 2)]);
        assert_eq!(f.count_models(), Natural::from(4u64));
        assert!(!f.is_bipartite());
    }

    #[test]
    fn no_clauses_counts_all() {
        let f = P2Cnf::new(3, vec![]);
        assert_eq!(f.count_models(), Natural::from(8u64));
    }

    #[test]
    fn path_dp_matches_brute_force() {
        for n in 2..=10 {
            assert_eq!(
                P2Cnf::path(n).count_models(),
                P2Cnf::count_models_path(n),
                "path of {n}"
            );
        }
    }

    #[test]
    fn path_counts_are_fibonacci() {
        // #paths(n) = F(n+2) with F(1)=F(2)=1: n=2 → 3, n=3 → 5, n=4 → 8.
        assert_eq!(P2Cnf::count_models_path(2), Natural::from(3u64));
        assert_eq!(P2Cnf::count_models_path(3), Natural::from(5u64));
        assert_eq!(P2Cnf::count_models_path(4), Natural::from(8u64));
        assert_eq!(P2Cnf::count_models_path(5), Natural::from(13u64));
    }

    #[test]
    fn bipartite_detection() {
        assert!(P2Cnf::path(5).is_bipartite());
        let square = P2Cnf::new(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert!(square.is_bipartite());
    }

    #[test]
    #[should_panic]
    fn self_loop_rejected() {
        let _ = P2Cnf::new(2, vec![(1, 1)]);
    }

    #[test]
    #[should_panic]
    fn reversed_duplicate_rejected() {
        let _ = P2Cnf::new(2, vec![(0, 1), (1, 0)]);
    }

    #[test]
    fn pp2cnf_count_matches_embedding() {
        let f = Pp2Cnf::new(2, 2, vec![(0, 0), (0, 1), (1, 1)]);
        assert_eq!(f.count_models(), f.to_p2cnf().count_models());
    }

    #[test]
    fn pp2cnf_single_edge() {
        let f = Pp2Cnf::new(1, 1, vec![(0, 0)]);
        assert_eq!(f.count_models(), Natural::from(3u64));
    }
}
