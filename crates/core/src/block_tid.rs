//! Block databases over a graph and the factorization of Theorem 3.4.
//!
//! Given a P2CNF `Φ` over directed edges `E ⊆ U × U` and block parameters
//! `p = (p₁, p₂)`, the reduction instantiates a parallel block
//! `B_{(p₁,p₂)}(u_i, u_j)` for every edge and nothing for non-edges (whose
//! trivial all-probability-1 blocks are implicit in the TID default).
//! Theorem 3.4 then factorizes the query probability:
//!
//! ```text
//! Pr_∆(Q) = 2^{-n} Σ_{θ : U → {0,1}} ∏_{(u,v) ∈ E} z_{θ(u)θ(v)}(p₁)·z_{θ(u)θ(v)}(p₂)
//! ```

use crate::block::{parallel_block, ConstAlloc};
use crate::p2cnf::P2Cnf;
use gfomc_arith::Rational;
use gfomc_linalg::Matrix;
use gfomc_query::BipartiteQuery;
use gfomc_tid::{Tid, Tuple};

/// The block database `∆ = ∪_{(u,v) ∈ E} B_{(p₁,p₂)}(u,v)`.
///
/// Endpoint constants are `0..n`; interiors are fresh. All probabilities are
/// in `{½, 1}` (an `FOMC` instance).
pub fn block_database(q: &BipartiteQuery, phi: &P2Cnf, params: &[usize]) -> Tid {
    let n = phi.n_vars() as u32;
    let mut alloc = ConstAlloc::new(n, 0);
    let mut tid = Tid::all_present(0..n, std::iter::empty::<u32>());
    // Endpoint R tuples at ½ (already covered by each block, but nodes
    // without incident edges need them too for the 2^{-n} accounting).
    for u in 0..n {
        tid.set_prob(Tuple::R(u), Rational::one_half());
    }
    for &(i, j) in phi.edges() {
        let block = parallel_block(q, i as u32, j as u32, params, &mut alloc);
        tid = tid.union(&block);
    }
    tid
}

/// `Pr_∆(Q)` by the factorization formula (Eq. (8)): exponential in `n` but
/// *linear* in the block sizes, using the per-parameter transfer matrices.
pub fn probability_via_factorization(phi: &P2Cnf, transfer: &[Matrix<Rational>]) -> Rational {
    let n = phi.n_vars();
    assert!(n <= 26);
    let mut total = Rational::zero();
    for theta in 0u64..(1u64 << n) {
        let mut prod = Rational::one();
        for &(i, j) in phi.edges() {
            let a = (theta >> i & 1) as usize;
            let b = (theta >> j & 1) as usize;
            for t in transfer {
                prod = &prod * t.get(a, b);
                if prod.is_zero() {
                    break;
                }
            }
        }
        total = &total + &prod;
    }
    &total * &Rational::one_half().pow(n as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transfer::transfer_matrix;
    use gfomc_query::catalog;
    use gfomc_tid::probability;

    #[test]
    fn theorem_3_4_factorization_single_edge() {
        // One edge, p = (1): Pr by full WMC equals the factorized sum.
        let q = catalog::h1();
        let phi = P2Cnf::new(2, vec![(0, 1)]);
        let tid = block_database(&q, &phi, &[1]);
        let direct = probability(&q, &tid);
        let t1 = transfer_matrix(&q, 1);
        let factored = probability_via_factorization(&phi, &[t1]);
        assert_eq!(direct, factored);
    }

    #[test]
    fn theorem_3_4_factorization_parallel_blocks() {
        let q = catalog::h1();
        let phi = P2Cnf::new(2, vec![(0, 1)]);
        let tid = block_database(&q, &phi, &[1, 2]);
        let direct = probability(&q, &tid);
        let t = [transfer_matrix(&q, 1), transfer_matrix(&q, 2)];
        let factored = probability_via_factorization(&phi, &t);
        assert_eq!(direct, factored);
    }

    #[test]
    fn theorem_3_4_factorization_path_graph() {
        // Φ = (X0∨X1)(X1∨X2): two edges sharing endpoint 1.
        let q = catalog::h1();
        let phi = P2Cnf::new(3, vec![(0, 1), (1, 2)]);
        let tid = block_database(&q, &phi, &[1]);
        let direct = probability(&q, &tid);
        let t1 = transfer_matrix(&q, 1);
        let factored = probability_via_factorization(&phi, &[t1]);
        assert_eq!(direct, factored);
    }

    #[test]
    fn theorem_3_4_factorization_h2() {
        // A longer query exercises multi-symbol blocks.
        let q = catalog::hk(2);
        let phi = P2Cnf::new(2, vec![(0, 1)]);
        let tid = block_database(&q, &phi, &[2]);
        let direct = probability(&q, &tid);
        let t = transfer_matrix(&q, 2);
        let factored = probability_via_factorization(&phi, &[t]);
        assert_eq!(direct, factored);
    }

    #[test]
    fn block_databases_are_fomc_instances() {
        // E13 audit: the whole reduction uses only probabilities {½, 1}.
        let q = catalog::h1();
        let phi = P2Cnf::new(3, vec![(0, 1), (1, 2), (0, 2)]);
        for params in [vec![1], vec![1, 2], vec![3, 2]] {
            let tid = block_database(&q, &phi, &params);
            assert!(tid.is_fomc_instance(), "params {params:?}");
        }
    }

    #[test]
    fn isolated_vertices_halve_probability_independently() {
        // A formula with an isolated vertex: its R tuple contributes a
        // factor that cancels in the normalized sum (z tables don't see it).
        let q = catalog::h1();
        let phi_iso = P2Cnf::new(3, vec![(0, 1)]); // X2 isolated
        let phi = P2Cnf::new(2, vec![(0, 1)]);
        let t1 = transfer_matrix(&q, 1);
        // Factorized values agree (the isolated variable sums to 2·½ = 1).
        assert_eq!(
            probability_via_factorization(&phi_iso, std::slice::from_ref(&t1)),
            probability_via_factorization(&phi, std::slice::from_ref(&t1)),
        );
        // And both match the direct WMC on the database with the isolated
        // vertex present.
        let tid = block_database(&q, &phi_iso, &[1]);
        assert_eq!(
            probability(&q, &tid),
            probability_via_factorization(&phi_iso, &[t1]),
        );
    }
}
