//! Assignment signatures and their counts (§3, Eqs. (2)–(3)).
//!
//! For a P2CNF `Φ` over directed edges `E` and an assignment `θ`, the
//! signature `k(θ) = (k₀₀, k₀₁, k₁₀, k₁₁)` counts the edges whose endpoints
//! take each truth-value pair; the undirected signature merges `k₀₁ + k₁₀`.
//! The reduction recovers all undirected counts `#k′` and reads off
//! `#Φ = Σ_{k′: k₀₀ = 0} #k′`.

use crate::p2cnf::P2Cnf;
use gfomc_arith::Natural;
use std::collections::BTreeMap;

/// An undirected signature `(k₀₀, k₀₁+k₁₀, k₁₁)` with `Σ = m`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct UndirectedSignature {
    /// Edges with both endpoints false.
    pub k00: usize,
    /// Edges with exactly one endpoint true.
    pub k01_10: usize,
    /// Edges with both endpoints true.
    pub k11: usize,
}

impl UndirectedSignature {
    /// The total `k₀₀ + k₀₁,₁₀ + k₁₁` (must equal `m`).
    pub fn total(&self) -> usize {
        self.k00 + self.k01_10 + self.k11
    }
}

/// Computes the undirected signature of one assignment.
pub fn signature_of(phi: &P2Cnf, assignment: u64) -> UndirectedSignature {
    let mut sig = UndirectedSignature {
        k00: 0,
        k01_10: 0,
        k11: 0,
    };
    for &(i, j) in phi.edges() {
        let a = assignment >> i & 1 == 1;
        let b = assignment >> j & 1 == 1;
        match (a, b) {
            (false, false) => sig.k00 += 1,
            (true, true) => sig.k11 += 1,
            _ => sig.k01_10 += 1,
        }
    }
    sig
}

/// All undirected signature counts `#k′`, by brute-force enumeration of the
/// `2^n` assignments. Ground truth for the reduction (requires `n ≤ 26`).
pub fn signature_counts(phi: &P2Cnf) -> BTreeMap<UndirectedSignature, Natural> {
    assert!(phi.n_vars() <= 26);
    let mut counts: BTreeMap<UndirectedSignature, u64> = BTreeMap::new();
    for mask in 0u64..(1u64 << phi.n_vars()) {
        *counts.entry(signature_of(phi, mask)).or_insert(0) += 1;
    }
    counts
        .into_iter()
        .map(|(k, c)| (k, Natural::from(c)))
        .collect()
}

/// `#Φ` from signature counts: the satisfying assignments are exactly those
/// with `k₀₀ = 0`.
pub fn model_count_from_signatures(counts: &BTreeMap<UndirectedSignature, Natural>) -> Natural {
    counts
        .iter()
        .filter(|(k, _)| k.k00 == 0)
        .fold(Natural::zero(), |acc, (_, c)| &acc + c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signature_totals_equal_m() {
        let phi = P2Cnf::new(3, vec![(0, 1), (1, 2)]);
        for mask in 0u64..8 {
            assert_eq!(signature_of(&phi, mask).total(), 2);
        }
    }

    #[test]
    fn signature_of_specific_assignments() {
        let phi = P2Cnf::new(3, vec![(0, 1), (1, 2)]);
        // All false: both clauses have both endpoints false.
        assert_eq!(
            signature_of(&phi, 0b000),
            UndirectedSignature {
                k00: 2,
                k01_10: 0,
                k11: 0
            }
        );
        // All true.
        assert_eq!(
            signature_of(&phi, 0b111),
            UndirectedSignature {
                k00: 0,
                k01_10: 0,
                k11: 2
            }
        );
        // Only X1 true: both clauses have exactly one true endpoint.
        assert_eq!(
            signature_of(&phi, 0b010),
            UndirectedSignature {
                k00: 0,
                k01_10: 2,
                k11: 0
            }
        );
    }

    #[test]
    fn counts_sum_to_all_assignments() {
        let phi = P2Cnf::new(4, vec![(0, 1), (1, 2), (2, 3)]);
        let counts = signature_counts(&phi);
        let total = counts.values().fold(Natural::zero(), |acc, c| &acc + c);
        assert_eq!(total, Natural::from(16u64));
    }

    #[test]
    fn model_count_via_signatures_matches_direct() {
        let cases = [
            P2Cnf::new(2, vec![(0, 1)]),
            P2Cnf::new(3, vec![(0, 1), (1, 2), (0, 2)]),
            P2Cnf::path(5),
            P2Cnf::new(4, vec![(0, 2), (1, 3), (0, 3)]),
        ];
        for phi in &cases {
            let counts = signature_counts(phi);
            assert_eq!(model_count_from_signatures(&counts), phi.count_models());
        }
    }

    #[test]
    fn nonzero_signature_count_is_small() {
        // At most (m+1)² of the possible signatures are nonzero
        // (k₀₀ + k₀₁,₁₀ + k₁₁ = m).
        let phi = P2Cnf::path(6);
        let m = phi.n_clauses();
        assert!(signature_counts(&phi).len() <= (m + 1) * (m + 1));
    }
}
