//! The Coloring Count Problem `CCP(m,n)` (Definition C.2) and the reduction
//! `#PP2CNF ≤ᴾ CCP(m,n)` (Theorem C.3).
//!
//! For a bipartite graph `(U, V, E)` a coloring is a pair of functions
//! `σ : U → [m]`, `τ : V → [n]`. Its *signature* counts, for every color
//! pair `(α, β)`, the edges with endpoint colors `(α, β)`, plus per-color
//! node counts (indexed by the reserved symbol `1̂` in the paper). `CCP`
//! asks for the number of colorings realizing each signature. The Type-II
//! hardness proof reduces `CCP(m̄, n̄)` to `GFOMC(Q)`; here we provide the
//! problem itself, brute-force counting, and the extraction of `#PP2CNF`
//! from a `CCP` oracle.

use crate::p2cnf::Pp2Cnf;
use gfomc_arith::Natural;
use std::collections::BTreeMap;

/// A bipartite graph instance for `CCP`.
#[derive(Clone, Debug)]
pub struct CcpInstance {
    /// Number of left nodes `|U|`.
    pub nu: usize,
    /// Number of right nodes `|V|`.
    pub nv: usize,
    /// Edges `E ⊆ U × V`.
    pub edges: Vec<(usize, usize)>,
}

impl CcpInstance {
    /// Builds an instance; validates ranges and deduplicates nothing
    /// (duplicate edges are rejected).
    pub fn new(nu: usize, nv: usize, edges: Vec<(usize, usize)>) -> Self {
        let mut sorted = edges.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), edges.len(), "duplicate edge");
        for &(u, v) in &edges {
            assert!(u < nu && v < nv, "edge endpoint out of range");
        }
        CcpInstance { nu, nv, edges }
    }

    /// The instance underlying a PP2CNF formula.
    pub fn from_pp2cnf(phi: &Pp2Cnf) -> Self {
        CcpInstance::new(phi.nu(), phi.nv(), phi.edges().to_vec())
    }
}

/// The signature of a coloring (Definition C.2): `edge[α][β]` edge counts,
/// `left[α]` / `right[β]` node counts (the paper's `k_{α,1̂}` / `k_{1̂,β}`).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CcpSignature {
    /// `k_{αβ}`: edges with colors `(α, β)`, as an `m × n` table.
    pub edge: Vec<Vec<usize>>,
    /// `k_{α,1̂}`: left nodes colored `α`.
    pub left: Vec<usize>,
    /// `k_{1̂,β}`: right nodes colored `β`.
    pub right: Vec<usize>,
}

/// Computes the signature of one coloring.
pub fn ccp_signature(
    inst: &CcpInstance,
    m: usize,
    n: usize,
    sigma: &[usize],
    tau: &[usize],
) -> CcpSignature {
    assert_eq!(sigma.len(), inst.nu);
    assert_eq!(tau.len(), inst.nv);
    let mut edge = vec![vec![0usize; n]; m];
    for &(u, v) in &inst.edges {
        edge[sigma[u]][tau[v]] += 1;
    }
    let mut left = vec![0usize; m];
    for &c in sigma {
        left[c] += 1;
    }
    let mut right = vec![0usize; n];
    for &c in tau {
        right[c] += 1;
    }
    CcpSignature { edge, left, right }
}

/// Solves `CCP(m,n)` by brute-force enumeration of all `m^|U| · n^|V|`
/// colorings. The "oracle" of Theorem C.3's reduction in our experiments.
pub fn ccp_counts(inst: &CcpInstance, m: usize, n: usize) -> BTreeMap<CcpSignature, Natural> {
    assert!(
        (inst.nu as f64) * (m as f64).log2() + (inst.nv as f64) * (n as f64).log2() <= 24.0,
        "coloring enumeration too large"
    );
    let mut counts: BTreeMap<CcpSignature, u64> = BTreeMap::new();
    let mut sigma = vec![0usize; inst.nu];
    loop {
        let mut tau = vec![0usize; inst.nv];
        loop {
            *counts
                .entry(ccp_signature(inst, m, n, &sigma, &tau))
                .or_insert(0) += 1;
            if !increment(&mut tau, n) {
                break;
            }
        }
        if !increment(&mut sigma, m) {
            break;
        }
    }
    counts
        .into_iter()
        .map(|(k, c)| (k, Natural::from(c)))
        .collect()
}

fn increment(digits: &mut [usize], radix: usize) -> bool {
    for d in digits.iter_mut() {
        *d += 1;
        if *d < radix {
            return true;
        }
        *d = 0;
    }
    false
}

/// Theorem C.3: computes `#Φ` for a PP2CNF from a `CCP(m,n)` count table
/// (`m, n ≥ 2`). Valid colorings use only colors `{0, 1}`; interpreting
/// color 0 as *false*, a clause fails iff its edge is colored `(0,0)`, so
/// `#Φ = Σ { #k : k valid, k_edge[0][0] = 0 }`.
pub fn pp2cnf_from_ccp(counts: &BTreeMap<CcpSignature, Natural>) -> Natural {
    let mut total = Natural::zero();
    for (sig, count) in counts {
        let m = sig.left.len();
        let n = sig.right.len();
        let valid_nodes =
            sig.left.iter().skip(2).all(|&c| c == 0) && sig.right.iter().skip(2).all(|&c| c == 0);
        let valid_edges = (0..m).all(|a| (0..n).all(|b| a < 2 && b < 2 || sig.edge[a][b] == 0));
        if valid_nodes && valid_edges && sig.edge[0][0] == 0 {
            total = &total + count;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signature_shapes() {
        let inst = CcpInstance::new(2, 2, vec![(0, 0), (1, 1)]);
        let sig = ccp_signature(&inst, 2, 3, &[0, 1], &[2, 0]);
        assert_eq!(sig.edge[0][2], 1); // edge (0,0): colors (0, 2)
        assert_eq!(sig.edge[1][0], 1); // edge (1,1): colors (1, 0)
        assert_eq!(sig.left, vec![1, 1]);
        assert_eq!(sig.right, vec![1, 0, 1]);
    }

    #[test]
    fn counts_total_all_colorings() {
        let inst = CcpInstance::new(2, 2, vec![(0, 0), (0, 1), (1, 0)]);
        let counts = ccp_counts(&inst, 2, 2);
        let total = counts.values().fold(Natural::zero(), |a, c| &a + c);
        assert_eq!(total, Natural::from(16u64)); // 2² · 2²
    }

    #[test]
    fn theorem_c3_single_edge() {
        let phi = Pp2Cnf::new(1, 1, vec![(0, 0)]);
        let inst = CcpInstance::from_pp2cnf(&phi);
        let counts = ccp_counts(&inst, 2, 2);
        assert_eq!(pp2cnf_from_ccp(&counts), phi.count_models());
    }

    #[test]
    fn theorem_c3_matches_brute_force() {
        let cases = [
            Pp2Cnf::new(2, 2, vec![(0, 0), (1, 1)]),
            Pp2Cnf::new(2, 2, vec![(0, 0), (0, 1), (1, 0), (1, 1)]),
            Pp2Cnf::new(3, 2, vec![(0, 0), (1, 0), (2, 1)]),
            Pp2Cnf::new(2, 3, vec![(0, 0), (0, 1), (1, 2)]),
        ];
        for phi in &cases {
            let inst = CcpInstance::from_pp2cnf(phi);
            let counts = ccp_counts(&inst, 2, 2);
            assert_eq!(pp2cnf_from_ccp(&counts), phi.count_models(), "{phi:?}");
        }
    }

    #[test]
    fn theorem_c3_with_more_colors() {
        // The reduction works from CCP(m,n) for any m,n ≥ 2 — extra colors
        // are filtered by validity.
        let phi = Pp2Cnf::new(2, 2, vec![(0, 0), (1, 1)]);
        let inst = CcpInstance::from_pp2cnf(&phi);
        for (m, n) in [(2, 3), (3, 2), (3, 3)] {
            let counts = ccp_counts(&inst, m, n);
            assert_eq!(pp2cnf_from_ccp(&counts), phi.count_models(), "CCP({m},{n})");
        }
    }

    #[test]
    fn empty_graph_counts_everything() {
        let phi = Pp2Cnf::new(2, 1, vec![]);
        let inst = CcpInstance::from_pp2cnf(&phi);
        let counts = ccp_counts(&inst, 2, 2);
        assert_eq!(pp2cnf_from_ccp(&counts), Natural::from(8u64));
    }

    #[test]
    #[should_panic]
    fn duplicate_edge_rejected() {
        let _ = CcpInstance::new(1, 1, vec![(0, 0), (0, 0)]);
    }
}
