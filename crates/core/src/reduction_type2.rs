//! Type-II machinery: the Möbius block formula of Theorem C.19 and the
//! `Q_αβ` family (Eqs. (51)–(53), Lemma C.10).
//!
//! For Type-II queries there are no unary atoms to Shannon-expand on;
//! instead the proof rewrites `Q_left` as `∀x (G₁(x) ∨ … ∨ G_m(x))`
//! (Eq. (47)) and applies the Möbius inversion formula over the CNF lattice
//! of `{Gᵢ ∧ C}` (Definition C.8) — and symmetrically on the right. Over a
//! disjoint union of blocks the probability becomes a signed sum over
//! lattice-colorings of the endpoints (Theorem C.19):
//!
//! ```text
//! Pr(Q) = (−1)^{|U|+|V|} Σ_{σ: U→L₀(G), τ: V→L₀(H)}
//!         (∏_u µ(σ(u))) (∏_v µ(τ(v))) ∏_{u,v} Pr(Y_{σ(u)τ(v)}(u,v))
//! ```
//!
//! This module instantiates the formula with *elementary* blocks (a single
//! `S`-cell per endpoint pair, probabilities in `{0, ½, 1}`) and verifies it
//! against the direct lineage probability — the computational content of the
//! Type-II hardness pipeline short of the (existential) prefix/suffix branch
//! choices of Theorem C.38.

use gfomc_arith::Rational;
use gfomc_logic::{Cnf, Compiler, NodeId, Valuation, Var, WeightsFromFn};
use gfomc_query::{cnf_implies, BipartiteQuery, ClauseShape, MobiusLattice};
use gfomc_tid::{probability, Tid, Tuple};
use std::collections::HashMap;

/// The two lattices of a Type-II query: `L(G)` over `{Gᵢ ∧ C}` and `L(H)`
/// over `{C ∧ Hⱼ}` (Definition C.8).
#[derive(Clone, Debug)]
pub struct TypeIiLattices {
    /// The left lattice `L̂(G)`.
    pub left: MobiusLattice,
    /// The right lattice `L̂(H)`.
    pub right: MobiusLattice,
}

/// Builds both lattices for a Type-II query.
pub fn type_ii_lattices(q: &BipartiteQuery) -> TypeIiLattices {
    let c = q.middle_cnf();
    let left_formulas: Vec<Cnf> = q.left_dnf().into_iter().map(|g| g.and(&c)).collect();
    let right_formulas: Vec<Cnf> = q.right_dnf().into_iter().map(|h| c.and(&h)).collect();
    TypeIiLattices {
        left: MobiusLattice::build(&left_formulas),
        right: MobiusLattice::build(&right_formulas),
    }
}

/// The grounding of a Type-II query at a single cell `(u, v)`: every clause
/// collapses to the union of its subclause symbol sets (over variables
/// `Var(symbol index)`).
pub fn cell_cnf_of_query(q: &BipartiteQuery) -> Cnf {
    Cnf::new(q.clauses().iter().map(|c| {
        let j: std::collections::BTreeSet<u32> = match c.shape() {
            ClauseShape::Middle(j) => j,
            ClauseShape::LeftII(subs) | ClauseShape::RightII(subs) => {
                subs.into_iter().flatten().collect()
            }
            other => panic!("cell grounding requires a Type II-II query, got {other:?}"),
        };
        gfomc_logic::Clause::new(j.into_iter().map(Var))
    }))
}

/// The cell formula of `Q_αβ = G_α(x) ∧ Q ∧ H_β(y)` (Eq. (53)) at one cell:
/// `α`/`β` formulas come from the lattices (the top `1̂` contributes nothing
/// beyond `Q` itself, per Eq. (55)).
pub fn qab_cell_cnf(q_cell: &Cnf, g_alpha: &Cnf, h_beta: &Cnf) -> Cnf {
    g_alpha.and(q_cell).and(h_beta)
}

/// Lemma C.10-style invertibility of `(α, β) ↦ Q_αβ` at the cell level:
/// distinct lattice-element pairs give distinct cell CNFs, and implication
/// between them respects the lattice orders.
pub fn qab_map_is_invertible(q: &BipartiteQuery) -> bool {
    let lats = type_ii_lattices(q);
    let q_cell = cell_cnf_of_query(q);
    let mut seen: Vec<(usize, usize, Cnf)> = Vec::new();
    for (ai, a) in lats.left.elements.iter().enumerate() {
        for (bi, b) in lats.right.elements.iter().enumerate() {
            let f = qab_cell_cnf(&q_cell, &a.formula, &b.formula);
            for (aj, bj, g) in &seen {
                if g == &f && (*aj, *bj) != (ai, bi) {
                    return false;
                }
                // Implication must respect the (reverse-inclusion) orders:
                // Q_{α1β1} ⇒ Q_{α2β2} requires α1 ≤ α2 and β1 ≤ β2, i.e.
                // set2 ⊆ set1 on both coordinates.
                if cnf_implies(&f, g)
                    && !(lats.left.elements[*aj].set.is_subset(&a.set)
                        && lats.right.elements[*bj].set.is_subset(&b.set))
                {
                    return false;
                }
            }
            seen.push((ai, bi, f));
        }
    }
    true
}

/// A database of elementary blocks: one `S`-cell per `(u,v) ∈ U × V`, with
/// per-cell symbol probabilities supplied by `prob(sym, u, v)`.
pub fn elementary_block_tid(
    q: &BipartiteQuery,
    nu: u32,
    nv: u32,
    prob: &impl Fn(u32, u32, u32) -> Rational,
) -> Tid {
    let left: Vec<u32> = (0..nu).collect();
    let right: Vec<u32> = (1000..1000 + nv).collect();
    let mut tid = Tid::all_present(left.clone(), right.clone());
    for &u in &left {
        for &v in &right {
            for s in q.binary_symbols() {
                tid.set_prob(Tuple::S(s, u, v), prob(s, u, v - 1000));
            }
        }
    }
    tid
}

/// The right-hand side of Theorem C.19 over elementary blocks: the signed
/// Möbius sum over lattice colorings of the endpoints.
pub fn mobius_formula_probability(
    q: &BipartiteQuery,
    nu: u32,
    nv: u32,
    prob: &impl Fn(u32, u32, u32) -> Rational,
) -> Rational {
    let lats = type_ii_lattices(q);
    let q_cell = cell_cnf_of_query(q);
    let left0 = lats.left.strict_support();
    let right0 = lats.right.strict_support();
    // Compile every cell formula `Q_αβ` once, into one shared pool — the
    // cells are conjunctions over the same symbol variables, so their
    // cofactors overlap heavily. One bottom-up pass per `(u, v)` then
    // prices *all* of them under that cell's probabilities, instead of one
    // Shannon expansion per (pair, α, β).
    let mut compiler = Compiler::new();
    let roots: Vec<Vec<NodeId>> = left0
        .iter()
        .map(|a| {
            right0
                .iter()
                .map(|b| compiler.compile(&qab_cell_cnf(&q_cell, &a.formula, &b.formula)))
                .collect()
        })
        .collect();
    // All cells are compiled; flatten the frozen pool once, then price it
    // under *every* (u, v) cell's probabilities in one batch-kernel pass —
    // each Möbius cell is one lane of the gate walk.
    let flat = compiler.finish_flat();
    let cells: Vec<(u32, u32)> = (0..nu).flat_map(|u| (0..nv).map(move |v| (u, v))).collect();
    let lanes: Vec<_> = cells
        .iter()
        .map(|&(u, v)| WeightsFromFn(move |var: Var| prob(var.0, u, v)))
        .collect();
    let valuations: HashMap<(u32, u32), Valuation> = cells
        .iter()
        .copied()
        .zip(flat.evaluate_all_batch(&lanes))
        .collect();
    let y = |u: u32, v: u32, ai: usize, bi: usize| -> Rational {
        valuations[&(u, v)].value(roots[ai][bi]).clone()
    };
    let mut total = Rational::zero();
    let mut sigma = vec![0usize; nu as usize];
    loop {
        let mut tau = vec![0usize; nv as usize];
        loop {
            let mut term = Rational::one();
            for &ai in &sigma {
                term = &term * &Rational::from(left0[ai].mobius.clone());
            }
            for &bi in &tau {
                term = &term * &Rational::from(right0[bi].mobius.clone());
            }
            if !term.is_zero() {
                'pairs: for u in 0..nu {
                    for v in 0..nv {
                        term = &term * &y(u, v, sigma[u as usize], tau[v as usize]);
                        if term.is_zero() {
                            break 'pairs;
                        }
                    }
                }
                total = &total + &term;
            }
            if !increment(&mut tau, right0.len()) {
                break;
            }
        }
        if !increment(&mut sigma, left0.len()) {
            break;
        }
    }
    // (−1)^{|U| + |V|}.
    if (nu + nv) % 2 == 1 {
        total = -total;
    }
    total
}

fn increment(digits: &mut [usize], radix: usize) -> bool {
    for d in digits.iter_mut() {
        *d += 1;
        if *d < radix {
            return true;
        }
        *d = 0;
    }
    false
}

/// Theorem C.19 as a checkable equation: direct lineage probability equals
/// the Möbius formula on elementary blocks.
pub fn theorem_c19_holds(
    q: &BipartiteQuery,
    nu: u32,
    nv: u32,
    prob: &impl Fn(u32, u32, u32) -> Rational,
) -> bool {
    let tid = elementary_block_tid(q, nu, nv, prob);
    let direct = probability(q, &tid);
    let mobius = mobius_formula_probability(q, nu, nv, prob);
    direct == mobius
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfomc_arith::Integer;
    use gfomc_query::catalog;

    fn uniform_half(_s: u32, _u: u32, _v: u32) -> Rational {
        Rational::one_half()
    }

    #[test]
    fn lattices_of_c15() {
        // One left clause with two subclauses: G-formulas = {G1∧C, G2∧C},
        // strict support of size 3 ({0}, {1}, {0,1}); same on the right.
        let lats = type_ii_lattices(&catalog::example_c15());
        assert_eq!(lats.left.strict_support().len(), 3);
        assert_eq!(lats.right.strict_support().len(), 3);
        // µ values: −1, −1, +1.
        let mus: Vec<Integer> = lats
            .left
            .strict_support()
            .iter()
            .map(|e| e.mobius.clone())
            .collect();
        assert_eq!(
            mus.iter().filter(|m| **m == Integer::from(-1i64)).count(),
            2
        );
        assert_eq!(mus.iter().filter(|m| **m == Integer::one()).count(), 1);
    }

    #[test]
    fn cell_cnf_shape_c15() {
        // Left clause → (S0∨S1∨S2); middle → (S1∨S2∨S3∨S4);
        // right → (S3∨S4∨S5). The middle clause is absorbed by neither.
        let cell = cell_cnf_of_query(&catalog::example_c15());
        assert_eq!(cell.len(), 3);
    }

    #[test]
    fn qab_map_invertible_for_c15() {
        assert!(qab_map_is_invertible(&catalog::example_c15()));
    }

    #[test]
    fn theorem_c19_uniform_1x1() {
        assert!(theorem_c19_holds(
            &catalog::example_c15(),
            1,
            1,
            &uniform_half
        ));
    }

    #[test]
    fn theorem_c19_uniform_2x1_and_1x2() {
        assert!(theorem_c19_holds(
            &catalog::example_c15(),
            2,
            1,
            &uniform_half
        ));
        assert!(theorem_c19_holds(
            &catalog::example_c15(),
            1,
            2,
            &uniform_half
        ));
    }

    #[test]
    fn theorem_c19_uniform_2x2() {
        assert!(theorem_c19_holds(
            &catalog::example_c15(),
            2,
            2,
            &uniform_half
        ));
    }

    #[test]
    fn theorem_c19_nonuniform_gfomc_probs() {
        // Probabilities in {0, ½, 1} varying per cell — the GFOMC setting.
        let prob = |s: u32, u: u32, v: u32| -> Rational {
            match (s + 2 * u + 3 * v) % 4 {
                0 => Rational::one(),
                1 | 2 => Rational::one_half(),
                _ => Rational::one_half(),
            }
        };
        assert!(theorem_c19_holds(&catalog::example_c15(), 2, 2, &prob));
        let prob_with_zero = |s: u32, u: u32, v: u32| -> Rational {
            // Zeroing a non-critical symbol still must satisfy the identity.
            if s == 1 && u == 0 && v == 0 {
                Rational::zero()
            } else {
                Rational::one_half()
            }
        };
        assert!(theorem_c19_holds(
            &catalog::example_c15(),
            2,
            2,
            &prob_with_zero
        ));
    }

    #[test]
    fn theorem_c19_on_example_c9() {
        // Example C.9 is unsafe Type II (not forbidden); the Möbius identity
        // holds for any Type-II query over disjoint blocks.
        assert!(theorem_c19_holds(
            &catalog::example_c9(),
            2,
            2,
            &uniform_half
        ));
    }
}
