//! # gfomc-core
//!
//! The executable hardness machinery of Kenig & Suciu, *A Dichotomy for the
//! Generalized Model Counting Problem for Unions of Conjunctive Queries*
//! (PODS 2021):
//!
//! * [`p2cnf`] / [`signatures`] — the #P-hard source problems `#P2CNF` /
//!   `#PP2CNF` and assignment-signature counting;
//! * [`nonroot`] — Lemma 1.1 (non-root assignments in `{0, ½, 1}`);
//! * [`small_matrix`] — Lemma 1.2, Theorem 3.16, Corollary 3.18;
//! * [`block`] — the path gadgets `B_p(u,v)` of §3.3 (Figure 1);
//! * [`transfer`] — `A(p)` with Lemma 3.19 and Proposition 3.20;
//! * [`eigen`] — exact eigen-decomposition over `Q(√d)`, conditions
//!   (22)–(24) of Theorem 3.14;
//! * [`block_tid`] — block databases over a graph, Theorem 3.4;
//! * [`big_matrix`] — Theorem 3.6's linear system;
//! * [`reduction_type1`] — the end-to-end Cook reduction
//!   `#P2CNF ≤ᴾ FOMC(Q)` (Theorem 3.1);
//! * [`zigzag`] — the `zg(Q)` rewriting of Lemma 2.6 / Appendix A
//!   (Figure 2);
//! * [`ccp`] — the Coloring Count Problem and `#PP2CNF ≤ᴾ CCP(m,n)`
//!   (Theorem C.3);
//! * [`shattering`] — the shattering simplification of Lemma C.16
//!   (Example C.14), with its probability-preserving database map;
//! * [`reduction_type2`] — the Type-II Möbius machinery (Theorem C.19,
//!   Corollary C.20, Lemma C.10);
//! * [`type2_block`] — the Type-II zig-zag block of Definition C.21
//!   (Figure 3) with prefix/suffix branches and dead ends.

pub mod big_matrix;
pub mod block;
pub mod block_tid;
pub mod ccp;
pub mod eigen;
pub mod nonroot;
pub mod p2cnf;
pub mod reduction_type1;
pub mod reduction_type2;
pub mod shattering;
pub mod signatures;
pub mod small_matrix;
pub mod transfer;
pub mod type2_block;
pub mod zigzag;

pub use big_matrix::{big_system, BigSystem};
pub use block::{parallel_block, path_block, ConstAlloc};
pub use block_tid::{block_database, probability_via_factorization};
pub use eigen::EigenData;
pub use nonroot::{gfomc_nonroot, nonroot_assignment};
pub use p2cnf::{P2Cnf, Pp2Cnf};
pub use reduction_type1::{reduce_p2cnf, OracleMode, ReductionOutcome};
pub use signatures::{
    model_count_from_signatures, signature_counts, signature_of, UndirectedSignature,
};
pub use small_matrix::{block_small_matrix, SmallMatrix};
pub use transfer::{lemma_3_19_holds, proposition_3_20_holds, transfer_matrix};
