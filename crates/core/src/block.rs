//! The path gadget blocks `B_p(u,v)` of §3.3 and their parallel composition
//! (Figure 1).
//!
//! A block `B_p(u,v)` is a bipartite TID shaped like the path
//! `u = r₀ − t₁ − r₁ − ⋯ − r_{p−1} − t_p − r_p = v`: tuples on path edges
//! (for *every* binary symbol) have probability ½, as do all unary tuples
//! `R(rᵢ)`, `T(tᵢ)`; every other tuple has probability 1. The composite
//! block `B_{(p₁,p₂)}(u,v)` runs two such paths in parallel between the same
//! endpoints, giving `y_ab(p₁,p₂) = z_ab(p₁)·z_ab(p₂)` (Eq. (25)).

use gfomc_arith::Rational;
use gfomc_query::BipartiteQuery;
use gfomc_tid::{Tid, Tuple};

/// Allocates fresh constants for block interiors, keeping left and right
/// namespaces disjoint across blocks.
#[derive(Clone, Debug)]
pub struct ConstAlloc {
    next_left: u32,
    next_right: u32,
}

impl ConstAlloc {
    /// Starts allocating above the given bounds.
    pub fn new(first_left: u32, first_right: u32) -> Self {
        ConstAlloc {
            next_left: first_left,
            next_right: first_right,
        }
    }

    /// A fresh left constant.
    pub fn fresh_left(&mut self) -> u32 {
        let c = self.next_left;
        self.next_left += 1;
        c
    }

    /// A fresh right constant.
    pub fn fresh_right(&mut self) -> u32 {
        let c = self.next_right;
        self.next_right += 1;
        c
    }
}

/// Builds the block `B_p(u,v)` for the binary vocabulary of `q`.
/// Both endpoints `u ≠ v` are left constants; interior constants are drawn
/// from `alloc`. All tuple probabilities are in `{½, 1}` — block databases
/// are `FOMC` instances (Theorem 2.9 (1)).
pub fn path_block(q: &BipartiteQuery, u: u32, v: u32, p: usize, alloc: &mut ConstAlloc) -> Tid {
    assert!(p >= 1, "block parameter must be ≥ 1");
    assert_ne!(u, v, "block endpoints must differ");
    let symbols: Vec<u32> = q.binary_symbols().into_iter().collect();
    let half = Rational::one_half();
    // Path nodes: r_0 = u, r_1..r_{p-1} fresh, r_p = v; t_1..t_p fresh.
    let mut r_nodes = vec![u];
    for _ in 1..p {
        r_nodes.push(alloc.fresh_left());
    }
    r_nodes.push(v);
    let t_nodes: Vec<u32> = (0..p).map(|_| alloc.fresh_right()).collect();
    let mut tid = Tid::all_present(r_nodes.iter().copied(), t_nodes.iter().copied());
    // Unary tuples at ½ (endpoints included; the reduction fixes them via
    // the Shannon expansion of Theorem 3.4).
    for &r in &r_nodes {
        tid.set_prob(Tuple::R(r), half.clone());
    }
    for &t in &t_nodes {
        tid.set_prob(Tuple::T(t), half.clone());
    }
    // Path edges: each t_k (1-based k = index+1) connects r_{k-1} and r_k.
    for (k, &t) in t_nodes.iter().enumerate() {
        for &s in &symbols {
            tid.set_prob(Tuple::S(s, r_nodes[k], t), half.clone());
            tid.set_prob(Tuple::S(s, r_nodes[k + 1], t), half.clone());
        }
    }
    tid
}

/// The parallel block `B_{(p₁,p₂)}(u,v)` of Figure 1: the union of
/// `B_{p₁}(u,v)` and `B_{p₂}(u,v)` sharing only the endpoints.
pub fn parallel_block(
    q: &BipartiteQuery,
    u: u32,
    v: u32,
    params: &[usize],
    alloc: &mut ConstAlloc,
) -> Tid {
    assert!(!params.is_empty());
    let mut tid = path_block(q, u, v, params[0], alloc);
    for &p in &params[1..] {
        tid = tid.union(&path_block(q, u, v, p, alloc));
    }
    tid
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfomc_query::catalog;

    #[test]
    fn block_shape_p1() {
        let q = catalog::h1();
        let mut alloc = ConstAlloc::new(100, 1000);
        let tid = path_block(&q, 0, 1, 1, &mut alloc);
        // p=1: left {u, v}, right {t1}.
        assert_eq!(tid.left_domain().len(), 2);
        assert_eq!(tid.right_domain().len(), 1);
        // Uncertain: R(u), R(v), T(t1), S(u,t1), S(v,t1) = 5.
        assert_eq!(tid.uncertain_tuples().len(), 5);
    }

    #[test]
    fn block_shape_general_p() {
        let q = catalog::h1();
        for p in 1..=4 {
            let mut alloc = ConstAlloc::new(100, 1000);
            let tid = path_block(&q, 0, 1, p, &mut alloc);
            assert_eq!(tid.left_domain().len(), p + 1, "p={p}");
            assert_eq!(tid.right_domain().len(), p, "p={p}");
            // Uncertain tuples: (p+1) R + p T + 2p edges × 1 symbol.
            assert_eq!(tid.uncertain_tuples().len(), (p + 1) + p + 2 * p);
        }
    }

    #[test]
    fn blocks_are_fomc_instances() {
        // Theorem 2.9 (1): the Type-I reduction needs only {½, 1}.
        let q = catalog::hk(2);
        let mut alloc = ConstAlloc::new(100, 1000);
        let tid = path_block(&q, 0, 1, 3, &mut alloc);
        assert!(tid.is_fomc_instance());
        assert!(tid.is_gfomc_instance());
    }

    #[test]
    fn multi_symbol_vocabulary_covered() {
        let q = catalog::hk(3); // S0, S1, S2
        let mut alloc = ConstAlloc::new(100, 1000);
        let tid = path_block(&q, 0, 1, 2, &mut alloc);
        // Edges: 2p = 4 cells × 3 symbols = 12, plus 3 R + 2 T.
        assert_eq!(tid.uncertain_tuples().len(), 12 + 3 + 2);
    }

    #[test]
    fn parallel_block_shares_only_endpoints() {
        let q = catalog::h1();
        let mut alloc = ConstAlloc::new(100, 1000);
        let tid = parallel_block(&q, 0, 1, &[2, 3], &mut alloc);
        // Left: endpoints + (2-1) + (3-1) interiors = 5; right: 2 + 3 = 5.
        assert_eq!(tid.left_domain().len(), 5);
        assert_eq!(tid.right_domain().len(), 5);
    }

    #[test]
    fn alloc_never_reuses() {
        let mut alloc = ConstAlloc::new(0, 0);
        let a = alloc.fresh_left();
        let b = alloc.fresh_left();
        let c = alloc.fresh_right();
        let d = alloc.fresh_right();
        assert_ne!(a, b);
        assert_ne!(c, d);
    }
}
