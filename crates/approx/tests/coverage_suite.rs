//! Statistical acceptance suite for the Karp–Luby sampler.
//!
//! Two kinds of guarantees are checked, both at **fixed seeds** so the
//! suite is deterministic (it either always passes or always fails — no
//! flaky CI):
//!
//! * *empirical CI coverage*: over 100 random (formula, weights) instances
//!   the 95%-confidence interval must contain the brute-force probability
//!   at least 95 times. The Hoeffding interval is conservative, so the
//!   observed coverage sits well above the nominal level — but the assert
//!   pins exactly the advertised bar;
//! * *reproducibility*: a fixed seed yields a bit-identical [`Estimate`],
//!   and the estimate is exact-rational-arithmetic all the way through.

use gfomc_approx::{CnfSampler, Estimate};
use gfomc_arith::Rational;
use gfomc_logic::{wmc_brute_force, Clause, Cnf, Var};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::HashMap;

/// A random monotone CNF over ≤ `max_vars` variables with ≤ `max_clauses`
/// clauses, plus strictly-interior random weights — the same shape the
/// logic-crate property suites use, but driven by an explicit seed.
fn random_instance(seed: u64, max_vars: u32, max_clauses: usize) -> (Cnf, HashMap<Var, Rational>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_clauses = rng.gen_range(1..=max_clauses);
    let cnf = Cnf::new((0..n_clauses).map(|_| {
        let len = rng.gen_range(1..=3usize);
        Clause::new((0..len).map(|_| Var(rng.gen_range(0..max_vars))))
    }));
    let weights: HashMap<Var, Rational> = (0..max_vars)
        .map(|i| (Var(i), Rational::from_ints(rng.gen_range(1..=7i64), 8)))
        .collect();
    (cnf, weights)
}

#[test]
fn empirical_ci_coverage_is_at_least_95_percent() {
    const INSTANCES: u64 = 100;
    const SAMPLES: u64 = 800;
    let mut covered = 0usize;
    for seed in 0..INSTANCES {
        let (cnf, weights) = random_instance(seed, 8, 6);
        let truth = wmc_brute_force(&cnf, &weights);
        let sampler = CnfSampler::new(&cnf, &weights);
        let mut rng = StdRng::seed_from_u64(0xC0E0 + seed);
        let est = sampler.estimate(&mut rng, SAMPLES, 0.05);
        if est.ci.contains(&truth) {
            covered += 1;
        }
    }
    assert!(
        covered as f64 >= 0.95 * INSTANCES as f64,
        "coverage {covered}/{INSTANCES} below the 95% bar"
    );
}

#[test]
fn estimates_are_bit_identical_per_seed() {
    for seed in 0..20u64 {
        let (cnf, weights) = random_instance(seed, 8, 6);
        let sampler = CnfSampler::new(&cnf, &weights);
        let run = |rng_seed: u64| -> Estimate {
            let mut rng = StdRng::seed_from_u64(rng_seed);
            sampler.estimate(&mut rng, 400, 0.05)
        };
        assert_eq!(run(seed), run(seed), "instance {seed}");
    }
}

#[test]
fn exact_arithmetic_ties_estimate_to_hit_count() {
    // The point estimate must be exactly S·hits/samples — no float in the
    // value path.
    let (cnf, weights) = random_instance(3, 8, 6);
    let sampler = CnfSampler::new(&cnf, &weights);
    let mut rng = StdRng::seed_from_u64(17);
    let est = sampler.estimate(&mut rng, 640, 0.05);
    let lin_dnf = gfomc_logic::Dnf::complement_of(&cnf);
    let flipped = gfomc_logic::WeightsFromFn(|v: Var| weights[&v].complement());
    let s = lin_dnf.union_bound(&flipped);
    let raw = (&s * &Rational::from_ints(est.hits as i64, est.samples as i64)).complement();
    // The reported point is the raw value clamped into [0, 1].
    let reconstructed = if raw.is_negative() {
        Rational::zero()
    } else {
        raw
    };
    assert_eq!(est.estimate, reconstructed);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn ci_brackets_brute_force(seed in 0u64..100_000) {
        let (cnf, weights) = random_instance(seed, 8, 6);
        let truth = wmc_brute_force(&cnf, &weights);
        let sampler = CnfSampler::new(&cnf, &weights);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
        let est = sampler.estimate(&mut rng, 1_000, 0.05);
        prop_assert!(est.ci.contains(&truth), "{:?} misses {}", est, truth);
        prop_assert!(est.ci.lo >= Rational::zero());
        prop_assert!(est.ci.hi <= Rational::one());
    }

    #[test]
    fn more_samples_never_widen_the_interval(seed in 0u64..100_000) {
        let (cnf, weights) = random_instance(seed, 6, 4);
        let sampler = CnfSampler::new(&cnf, &weights);
        prop_assume!(!sampler.is_exact());
        let mut rng = StdRng::seed_from_u64(seed);
        let coarse = sampler.estimate(&mut rng, 200, 0.05);
        let mut rng = StdRng::seed_from_u64(seed);
        let fine = sampler.estimate(&mut rng, 3_200, 0.05);
        // Hoeffding half-width scales as 1/√N (up to [0,1] clamping).
        prop_assert!(fine.ci.width() <= coarse.ci.width());
    }
}
