//! Property suite for the parallel sampling plan and the adaptive stopper.
//!
//! The contracts under test (the acceptance bar of this PR's perf work):
//!
//! * **thread-count invariance** — `estimate_seeded` returns a
//!   bit-identical [`Estimate`] on 1, 2, and 4 threads for any fixed seed:
//!   parallelism may only change wall-clock, never the answer;
//! * **adaptive ≤ fixed** — the adaptive stopper never draws more samples
//!   than the fixed Karp–Luby–Madras budget it replaces, and when it
//!   reports convergence its outward-rounded CI is within the requested
//!   accuracy;
//! * **coverage** — both the seeded-parallel and the adaptive estimates
//!   keep their confidence intervals honest against exhaustive
//!   [`wmc_brute_force`] ground truth.

use gfomc_approx::{AdaptiveConfig, CnfSampler};
use gfomc_arith::Rational;
use gfomc_logic::{wmc_brute_force, Clause, Cnf, UniformWeight, Var};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// A random small monotone CNF driven by an explicit seed (the same shape
/// the coverage suite uses): 2–5 clauses over ≤ 8 variables, each clause
/// 1–3 variables.
fn random_cnf(seed: u64) -> Cnf {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF0F0_1234);
    let n_clauses = rng.gen_range(2..=5usize);
    Cnf::new((0..n_clauses).map(|_| {
        let len = rng.gen_range(1..=3usize);
        Clause::new((0..len).map(|_| Var(rng.gen_range(0..8u32))))
    }))
}

fn half() -> UniformWeight {
    UniformWeight(Rational::one_half())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn seeded_estimates_are_thread_count_invariant(seed in 0u64..1_000_000) {
        let f = random_cnf(seed);
        let s = CnfSampler::new(&f, &half());
        let base = s.estimate_seeded(seed, 2_000, 0.05, 1);
        for threads in [2usize, 4] {
            prop_assert_eq!(
                &base,
                &s.estimate_seeded(seed, 2_000, 0.05, threads),
                "threads = {}", threads
            );
        }
    }

    #[test]
    fn seeded_ci_covers_brute_force(case in 0u64..1_000) {
        let f = random_cnf(case);
        let truth = wmc_brute_force(&f, &half());
        let s = CnfSampler::new(&f, &half());
        let e = s.estimate_seeded(0xC0FFEE ^ case, 3_000, 0.05, 4);
        prop_assert!(e.ci.contains(&truth), "{:?} misses {}", e, truth);
    }

    #[test]
    fn adaptive_never_exceeds_the_fixed_budget(seed in 0u64..1_000_000) {
        let f = random_cnf(seed);
        let s = CnfSampler::new(&f, &half());
        let eps = 0.05;
        let delta = 0.05;
        let a = s.estimate_adaptive(&AdaptiveConfig::new(eps, delta, seed));
        if !s.is_exact() {
            let fixed = s.fpras_samples(eps, delta);
            prop_assert!(
                a.estimate.samples <= fixed,
                "adaptive {} > fixed {}", a.estimate.samples, fixed
            );
            prop_assert_eq!(a.budget, fixed);
        }
        // When the accuracy target fired, the interval obeys it.
        if a.converged && !a.estimate.exact {
            let width = a.estimate.ci.width().to_f64();
            prop_assert!(width <= 2.0 * eps + 1e-12, "width {} vs 2ε", width);
        }
    }

    #[test]
    fn adaptive_ci_covers_brute_force(case in 0u64..1_000) {
        let f = random_cnf(case);
        let truth = wmc_brute_force(&f, &half());
        let s = CnfSampler::new(&f, &half());
        let a = s.estimate_adaptive(&AdaptiveConfig::new(0.04, 0.05, 0xAA ^ case));
        prop_assert!(
            a.estimate.ci.contains(&truth),
            "{:?} misses {}", a, truth
        );
    }

    #[test]
    fn adaptive_is_thread_count_invariant(seed in 0u64..1_000_000) {
        let f = random_cnf(seed);
        let s = CnfSampler::new(&f, &half());
        let base = s.estimate_adaptive(&AdaptiveConfig::new(0.05, 0.05, seed));
        for threads in [2usize, 4] {
            let par = s.estimate_adaptive(
                &AdaptiveConfig::new(0.05, 0.05, seed).with_threads(threads),
            );
            prop_assert_eq!(&base, &par, "threads = {}", threads);
        }
    }
}

#[test]
fn different_seeds_move_the_seeded_estimate() {
    let f = Cnf::new([
        Clause::new([Var(1), Var(2)]),
        Clause::new([Var(2), Var(3)]),
        Clause::new([Var(1), Var(3)]),
    ]);
    let s = CnfSampler::new(&f, &half());
    let a = s.estimate_seeded(1, 2_000, 0.05, 4);
    let b = s.estimate_seeded(2, 2_000, 0.05, 4);
    assert_ne!(a.hits, b.hits);
}

#[test]
fn empirical_coverage_of_seeded_parallel_cis() {
    // 40 independent seeds on one formula: the 95% intervals must cover
    // ground truth essentially always (Hoeffding is conservative).
    let f = Cnf::new([
        Clause::new([Var(1), Var(2)]),
        Clause::new([Var(3), Var(4)]),
        Clause::new([Var(2), Var(4), Var(5)]),
    ]);
    let truth = wmc_brute_force(&f, &half());
    let s = CnfSampler::new(&f, &half());
    let covered = (0..40u64)
        .filter(|&seed| s.estimate_seeded(seed, 1_500, 0.05, 2).ci.contains(&truth))
        .count();
    assert!(covered >= 38, "coverage {covered}/40 below the 95% bar");
}
