//! Adaptive stopping: sample in rounds, exit as soon as the interval is
//! tight enough.
//!
//! The fixed Karp–Luby–Madras budget `⌈3·m·ln(2/δ)/ε²⌉` is a *worst-case*
//! number: it substitutes the indicator-mean lower bound `μ ≥ 1/m`, so it
//! massively oversamples whenever the instance is easier than the worst
//! case — which, on lineages dominated by a few heavy clauses, is almost
//! always. The AA-style fix (Dagum–Karp–Luby–Ross) is to *look at the data
//! while sampling*: draw in geometrically growing rounds, maintain an
//! anytime-valid confidence interval, and stop the moment the interval
//! meets the accuracy target.
//!
//! The interval here is **empirical Bernstein** (Audibert–Munos–
//! Szepesvári): for a Bernoulli indicator with empirical mean `p̂` after
//! `N` draws, the half-width
//!
//! ```text
//! h = √(2·p̂(1−p̂)·ln(3/δ_t)/N) + 3·ln(3/δ_t)/N
//! ```
//!
//! holds with probability `1 − δ_t`. Unlike Hoeffding, `h` collapses when
//! the empirical variance `p̂(1−p̂)` is small — exactly the easy instances
//! the fixed budget wastes its samples on. Validity across the repeated
//! looks is bought with a geometric failure-budget split `δ_t = δ/2^t`
//! (`Σ_t δ_t ≤ δ`), so the *returned* interval is conservative at the
//! caller's `δ` no matter when the rule fired.
//!
//! Two hard guarantees, by construction:
//!
//! * the stopper never draws more than the fixed KLM budget
//!   [`KarpLuby::fpras_samples`]`(ε, δ)` — on instances where it cannot
//!   converge early it degrades *exactly* to the fixed path, never worse;
//! * when it reports [`AdaptiveEstimate::converged`], the outward-rounded
//!   CI half-width is at most `ε` (as an absolute error on the estimated
//!   probability).
//!
//! Rounds draw from the same chunk-seeded plan as
//! [`KarpLuby::estimate_seeded`], so adaptive estimates are bit-identical
//! for every thread count at a fixed seed.

use crate::estimate::{rational_lower_bound, rational_upper_bound, Estimate};
use crate::sampler::{validate_unit_open, CnfSampler, KarpLuby, SAMPLE_CHUNK};
use gfomc_pool::WorkerPool;

/// Parameters of the adaptive stopping rule.
#[derive(Clone, Debug, PartialEq)]
pub struct AdaptiveConfig {
    /// Absolute accuracy target: stop once the outward-rounded CI
    /// half-width is at most `epsilon`.
    pub epsilon: f64,
    /// Overall failure probability `δ` (split geometrically across looks).
    pub delta: f64,
    /// Seed of the chunked sampling plan.
    pub seed: u64,
    /// OS threads per round (1 = serial; never changes the estimate).
    pub threads: usize,
    /// Sample count of the first round (later rounds double). Rounded up
    /// to a whole number of [`SAMPLE_CHUNK`]s.
    pub first_round: u64,
    /// Optional extra cap on top of the fixed KLM budget.
    pub max_samples: Option<u64>,
}

impl AdaptiveConfig {
    /// A config with the default round schedule (512, doubling) on one
    /// thread.
    pub fn new(epsilon: f64, delta: f64, seed: u64) -> Self {
        validate_unit_open("epsilon", epsilon);
        validate_unit_open("delta", delta);
        AdaptiveConfig {
            epsilon,
            delta,
            seed,
            threads: 1,
            first_round: 2 * SAMPLE_CHUNK,
            max_samples: None,
        }
    }

    /// Builder-style override of the thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Builder-style override of the first round's sample count.
    pub fn with_first_round(mut self, first_round: u64) -> Self {
        self.first_round = first_round.max(1);
        self
    }

    /// Builder-style extra sample cap.
    pub fn with_max_samples(mut self, cap: u64) -> Self {
        self.max_samples = Some(cap.max(1));
        self
    }
}

/// The outcome of an adaptive run: the estimate plus the stopping record.
#[derive(Clone, Debug, PartialEq)]
pub struct AdaptiveEstimate {
    /// The estimate at the stopping time (its `samples` field is the
    /// *actual* number of draws, the quantity the fixed budget bounds).
    pub estimate: Estimate,
    /// Number of rounds (interval evaluations) before stopping.
    pub rounds: u32,
    /// True iff the accuracy target fired (as opposed to the budget cap).
    pub converged: bool,
    /// The sample cap the run was held to — the fixed KLM budget, or the
    /// configured `max_samples` if smaller.
    pub budget: u64,
}

impl AdaptiveEstimate {
    /// The adaptive estimate of `1 − p` given the one of `p` (absolute
    /// accuracy is complement-invariant).
    pub fn complement(&self) -> AdaptiveEstimate {
        AdaptiveEstimate {
            estimate: self.estimate.complement(),
            rounds: self.rounds,
            converged: self.converged,
            budget: self.budget,
        }
    }
}

/// The empirical-Bernstein half-width on the indicator mean: `N` draws,
/// `H` hits, failure probability `delta_t` for this look.
fn bernstein_half_width(hits: u64, samples: u64, delta_t: f64) -> f64 {
    let n = samples as f64;
    let p = hits as f64 / n;
    let variance = p * (1.0 - p);
    let l = (3.0 / delta_t).ln();
    (2.0 * variance * l / n).sqrt() + 3.0 * l / n
}

impl KarpLuby {
    /// Draws in geometrically growing rounds until the outward-rounded
    /// empirical-Bernstein CI half-width on `Pr(D)` is at most
    /// `cfg.epsilon`, capped at the fixed KLM budget
    /// [`KarpLuby::fpras_samples`]`(ε, δ)`.
    ///
    /// Bit-identical for every `cfg.threads` at a fixed `cfg.seed`.
    /// Rounds draw from the process-wide shared [`WorkerPool`].
    pub fn estimate_adaptive(&self, cfg: &AdaptiveConfig) -> AdaptiveEstimate {
        self.estimate_adaptive_on(WorkerPool::global(), cfg)
    }

    /// [`KarpLuby::estimate_adaptive`] on a caller-provided pool — the
    /// engine's router runs its stopping rounds on the engine's own pool.
    pub fn estimate_adaptive_on(
        &self,
        pool: &WorkerPool,
        cfg: &AdaptiveConfig,
    ) -> AdaptiveEstimate {
        // `AdaptiveConfig`'s fields are public, so re-validate here: a
        // config mutated after `AdaptiveConfig::new` must not smuggle a
        // NaN/out-of-range ε or δ past the constructor's checks.
        validate_unit_open("epsilon", cfg.epsilon);
        validate_unit_open("delta", cfg.delta);
        if let Some(value) = self.exact_value() {
            return AdaptiveEstimate {
                estimate: Estimate::exact(value.clone(), cfg.delta),
                rounds: 0,
                converged: true,
                budget: 0,
            };
        }
        let fixed = self.fpras_samples(cfg.epsilon, cfg.delta);
        let cap = cfg.max_samples.map_or(fixed, |m| m.min(fixed)).max(1);
        // Conservative rational image of the target: stopping only when the
        // half-width is ≤ a *lower* bound of ε can never overshoot ε.
        let target = rational_lower_bound(cfg.epsilon);
        let first = cfg
            .first_round
            .div_ceil(SAMPLE_CHUNK)
            .saturating_mul(SAMPLE_CHUNK)
            .min(cap)
            .max(1);
        let mut total: u64 = 0;
        let mut hits: u64 = 0;
        let mut next = first;
        let mut rounds: u32 = 0;
        loop {
            rounds += 1;
            hits += self.hits_in_range_on(pool, cfg.seed, total, next, cfg.threads);
            total = next;
            let delta_t = cfg.delta / 2f64.powi(rounds.min(1000) as i32);
            let h = bernstein_half_width(hits, total, delta_t);
            let half = self.union_bound() * &rational_upper_bound(h);
            let converged = half <= target;
            if converged || total >= cap {
                let estimate = self.estimate_with_half_width(hits, total, &half, cfg.delta);
                return AdaptiveEstimate {
                    estimate,
                    rounds,
                    converged,
                    budget: cap,
                };
            }
            next = total.saturating_mul(2).min(cap);
        }
    }
}

impl CnfSampler {
    /// Adaptive estimation of `Pr(f)`: the stopper runs on `Pr(¬f)` and the
    /// result is complemented (absolute accuracy carries over unchanged).
    pub fn estimate_adaptive(&self, cfg: &AdaptiveConfig) -> AdaptiveEstimate {
        self.karp_luby().estimate_adaptive(cfg).complement()
    }

    /// [`CnfSampler::estimate_adaptive`] on a caller-provided pool.
    pub fn estimate_adaptive_on(
        &self,
        pool: &WorkerPool,
        cfg: &AdaptiveConfig,
    ) -> AdaptiveEstimate {
        self.karp_luby()
            .estimate_adaptive_on(pool, cfg)
            .complement()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfomc_arith::Rational;
    use gfomc_logic::{Clause, Cnf, Dnf, UniformWeight, Var};

    fn cl(vs: &[u32]) -> Clause {
        Clause::new(vs.iter().map(|&i| Var(i)))
    }

    fn half() -> UniformWeight {
        UniformWeight(Rational::one_half())
    }

    #[test]
    fn degenerate_formulas_converge_without_sampling() {
        let kl = KarpLuby::new(&Dnf::top(), &half());
        let a = kl.estimate_adaptive(&AdaptiveConfig::new(0.1, 0.05, 1));
        assert!(a.converged);
        assert_eq!(a.rounds, 0);
        assert_eq!(a.estimate.samples, 0);
        assert_eq!(a.estimate.estimate, Rational::one());
    }

    #[test]
    fn adaptive_never_exceeds_the_fixed_budget() {
        let d = Dnf::new([cl(&[1, 2]), cl(&[2, 3]), cl(&[1, 3]), cl(&[4])]);
        let kl = KarpLuby::new(&d, &half());
        for (eps, delta) in [(0.05, 0.05), (0.02, 0.1), (0.1, 0.01)] {
            let a = kl.estimate_adaptive(&AdaptiveConfig::new(eps, delta, 9));
            assert!(
                a.estimate.samples <= kl.fpras_samples(eps, delta),
                "ε={eps} δ={delta}: {} > fixed budget",
                a.estimate.samples
            );
            assert_eq!(a.budget, kl.fpras_samples(eps, delta));
        }
    }

    #[test]
    fn converged_interval_is_within_epsilon() {
        let d = Dnf::new([cl(&[1, 2]), cl(&[2, 3]), cl(&[1, 3])]);
        let kl = KarpLuby::new(&d, &half());
        let eps = 0.05;
        let a = kl.estimate_adaptive(&AdaptiveConfig::new(eps, 0.05, 4));
        assert!(a.converged, "easy instance must converge: {a:?}");
        // Full width ≤ 2ε (half-width ≤ ε on each side of the raw point).
        let width = a.estimate.ci.width().to_f64();
        assert!(width <= 2.0 * eps + 1e-12, "width {width} vs 2ε");
        assert!(a.estimate.samples < a.budget, "should stop early");
    }

    #[test]
    fn low_variance_instances_stop_very_early() {
        // A single live term: the indicator is constantly 1, variance 0 —
        // only the ln-term of the Bernstein bound remains and the stopper
        // exits on a tiny fraction of the fixed budget.
        let d = Dnf::new([cl(&[1, 2])]);
        let kl = KarpLuby::new(&d, &half());
        let a = kl.estimate_adaptive(&AdaptiveConfig::new(0.05, 0.05, 11));
        assert!(a.converged);
        assert_eq!(a.estimate.estimate, Rational::from_ints(1, 4));
        assert!(a.estimate.samples * 4 < a.budget, "{a:?}");
    }

    #[test]
    fn adaptive_is_thread_count_invariant() {
        let f = Cnf::new([cl(&[1, 2]), cl(&[2, 3]), cl(&[3, 4]), cl(&[1, 4])]);
        let s = CnfSampler::new(&f, &half());
        let base = s.estimate_adaptive(&AdaptiveConfig::new(0.04, 0.05, 77));
        for threads in [2usize, 4] {
            let par =
                s.estimate_adaptive(&AdaptiveConfig::new(0.04, 0.05, 77).with_threads(threads));
            assert_eq!(base, par, "threads={threads}");
        }
    }

    #[test]
    fn adaptive_config_rejects_endpoint_and_nan_parameters() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        for eps in [0.0, 1.0, f64::NAN] {
            assert!(
                catch_unwind(AssertUnwindSafe(|| AdaptiveConfig::new(eps, 0.05, 1))).is_err(),
                "ε = {eps} must be rejected"
            );
        }
        for delta in [0.0, 1.0, f64::NAN] {
            assert!(
                catch_unwind(AssertUnwindSafe(|| AdaptiveConfig::new(0.1, delta, 1))).is_err(),
                "δ = {delta} must be rejected"
            );
        }
        // Public fields mutated past the constructor are re-validated at
        // the estimation entry point.
        let d = Dnf::new([cl(&[1, 2])]);
        let kl = KarpLuby::new(&d, &half());
        let mut cfg = AdaptiveConfig::new(0.1, 0.05, 1);
        cfg.delta = f64::NAN;
        assert!(catch_unwind(AssertUnwindSafe(|| kl.estimate_adaptive(&cfg))).is_err());
    }

    #[test]
    fn adaptive_agrees_across_pools() {
        let f = Cnf::new([cl(&[1, 2]), cl(&[2, 3]), cl(&[3, 4]), cl(&[1, 4])]);
        let s = CnfSampler::new(&f, &half());
        let cfg = AdaptiveConfig::new(0.04, 0.05, 77).with_threads(3);
        let base = s.estimate_adaptive(&cfg);
        let own = gfomc_pool::WorkerPool::new(2);
        assert_eq!(base, s.estimate_adaptive_on(&own, &cfg));
    }

    #[test]
    fn max_samples_caps_below_the_klm_budget() {
        let d = Dnf::new([cl(&[1, 2]), cl(&[3, 4]), cl(&[5, 6])]);
        let kl = KarpLuby::new(&d, &half());
        let a = kl.estimate_adaptive(&AdaptiveConfig::new(0.001, 0.05, 3).with_max_samples(1_000));
        assert_eq!(a.budget, 1_000);
        assert!(a.estimate.samples <= 1_000);
        assert!(!a.converged, "ε=0.001 cannot converge in 1000 samples");
    }
}
