//! # gfomc-approx
//!
//! Approximate inference for the **unsafe** side of the dichotomy: a
//! Karp–Luby importance sampler over the complement-DNF of a query lineage,
//! with (ε, δ) guarantees, conservative confidence intervals, and
//! bit-reproducible estimates under a fixed seed.
//!
//! The exact stack (lifted evaluation for safe queries, compiled WMC
//! circuits for everything else) answers every query — but on the unsafe
//! side its cost can grow exponentially with the lineage, which is exactly
//! what the #P-hardness theorems predict. This crate closes the gap: query
//! probability over a TID is the weighted count of a monotone DNF union
//! (via De Morgan on the lineage CNF), and DNF counting admits an FPRAS
//! (Karp–Luby–Madras). The result is a third evaluation regime —
//! randomized, budgeted, anytime — that the `gfomc-engine` router
//! dispatches to when the dichotomy verdict and circuit-size estimate rule
//! out the exact paths.
//!
//! ```
//! use gfomc_approx::lineage_sampler;
//! use gfomc_arith::Rational;
//! use gfomc_query::catalog;
//! use gfomc_tid::{probability, Tid, Tuple};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // H1 is unsafe — exact evaluation is #P-hard in general…
//! let q = catalog::h1();
//! let mut tid = Tid::all_present([0, 1], [10]);
//! for u in [0u32, 1] {
//!     tid.set_prob(Tuple::R(u), Rational::one_half());
//!     tid.set_prob(Tuple::S(0, u, 10), Rational::one_half());
//! }
//! tid.set_prob(Tuple::T(10), Rational::one_half());
//!
//! // …but the sampler brackets Pr(Q) with a 95% confidence interval.
//! let sampler = lineage_sampler(&q, &tid);
//! let mut rng = StdRng::seed_from_u64(42);
//! let est = sampler.estimate(&mut rng, 2_000, 0.05);
//! assert!(est.ci.contains(&probability(&q, &tid)));
//! ```
//!
//! The sampler's point estimate is computed in **exact rational
//! arithmetic** (the Karp–Luby indicator is 0/1-valued); only the
//! Hoeffding interval half-width touches floating point, and it is rounded
//! outward so reported coverage is never optimistic. Property suites check
//! empirical CI coverage against [`gfomc_logic::wmc_brute_force`] ground
//! truth at fixed seeds.
//!
//! Two performance layers sit on top of the plain estimator, neither
//! giving up determinism:
//!
//! * [`CnfSampler::estimate_seeded`] executes a **chunk-seeded sampling
//!   plan** across OS threads — the estimate is a pure function of
//!   `(seed, samples)`, bit-identical for every thread count;
//! * [`CnfSampler::estimate_adaptive`] replaces the fixed worst-case
//!   budget with **empirical-Bernstein stopping rounds** ([`adaptive`](crate::AdaptiveConfig)):
//!   it never draws more than the fixed Karp–Luby–Madras budget and exits
//!   as soon as the outward-rounded interval meets the accuracy target.

mod adaptive;
mod estimate;
mod sampler;

pub use adaptive::{AdaptiveConfig, AdaptiveEstimate};
pub use estimate::{ConfidenceInterval, Estimate};
pub use sampler::{samples_drawn_total, CnfSampler, KarpLuby, SAMPLE_CHUNK};

use gfomc_logic::Dnf;
use gfomc_query::BipartiteQuery;
use gfomc_tid::{lineage, Tid, VarTable};
use rand::{rngs::StdRng, SeedableRng};

/// The monotone complement-DNF of the lineage `Φ_∆(Q)` together with the
/// tuple ↔ variable table: one term per falsifiable ground clause, read
/// over complemented variables (see [`gfomc_logic::dnf`]).
pub fn lineage_dnf(q: &BipartiteQuery, tid: &Tid) -> (Dnf, VarTable) {
    let lin = lineage(q, tid);
    (Dnf::complement_of(&lin.cnf), lin.vars)
}

/// A prepared [`CnfSampler`] over the lineage of `q` on `tid`, weighted by
/// the database's own tuple probabilities.
pub fn lineage_sampler(q: &BipartiteQuery, tid: &Tid) -> CnfSampler {
    let lin = lineage(q, tid);
    CnfSampler::new(&lin.cnf, lin.vars.weights())
}

/// One-shot convenience: estimate `Pr_∆(Q)` from `samples` draws of a
/// sampler seeded with `seed`, at confidence `1 − δ`.
pub fn sample_probability(
    q: &BipartiteQuery,
    tid: &Tid,
    seed: u64,
    samples: u64,
    delta: f64,
) -> Estimate {
    let mut rng = StdRng::seed_from_u64(seed);
    lineage_sampler(q, tid).estimate(&mut rng, samples, delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfomc_arith::Rational;
    use gfomc_query::catalog;
    use gfomc_tid::{probability, Tuple};

    fn small_tid(q: &BipartiteQuery) -> Tid {
        let mut tid = Tid::all_present([0, 1], [10]);
        for u in [0u32, 1] {
            tid.set_prob(Tuple::R(u), Rational::one_half());
            for s in q.binary_symbols() {
                tid.set_prob(Tuple::S(s, u, 10), Rational::one_half());
            }
        }
        tid.set_prob(Tuple::T(10), Rational::one_half());
        tid
    }

    #[test]
    fn lineage_dnf_mirrors_lineage_clauses() {
        let q = catalog::h1();
        let tid = small_tid(&q);
        let (d, vars) = lineage_dnf(&q, &tid);
        let lin = gfomc_tid::lineage(&q, &tid);
        assert_eq!(d.len(), lin.cnf.len());
        assert_eq!(vars.len(), lin.vars.len());
    }

    #[test]
    fn sample_probability_brackets_exact_h1() {
        let q = catalog::h1();
        let tid = small_tid(&q);
        let exact = probability(&q, &tid);
        let est = sample_probability(&q, &tid, 0xA99C, 2_000, 0.05);
        assert!(est.ci.contains(&exact), "{est:?} vs {exact}");
        assert_eq!(est.samples, 2_000);
    }

    #[test]
    fn sample_probability_is_seed_deterministic() {
        let q = catalog::hk(2);
        let tid = small_tid(&q);
        let a = sample_probability(&q, &tid, 7, 300, 0.05);
        let b = sample_probability(&q, &tid, 7, 300, 0.05);
        assert_eq!(a, b);
    }
}
