//! Estimates and confidence intervals returned by the samplers.
//!
//! The point estimate is an **exact** [`Rational`]: the Karp–Luby indicator
//! is 0/1-valued, so `Ŝ·hits/samples` is computed in exact arithmetic and
//! two runs with the same seed produce *bit-identical* estimates. Only the
//! confidence-interval half-width involves floating point (a square root),
//! and it is rounded **outward** on the dyadic grid `k/2^53`, so the
//! reported interval is always at least as wide as the analytic one —
//! float rounding can never silently shrink coverage.

use gfomc_arith::Rational;

/// A two-sided confidence interval `[lo, hi]` for a probability, valid at
/// confidence level `1 − δ`.
#[derive(Clone, Debug, PartialEq)]
pub struct ConfidenceInterval {
    /// Lower endpoint, clamped to `[0, 1]`.
    pub lo: Rational,
    /// Upper endpoint, clamped to `[0, 1]`.
    pub hi: Rational,
    /// The failure probability `δ` the interval was built for.
    pub delta: f64,
}

impl ConfidenceInterval {
    /// Builds an interval, clamping both endpoints into `[0, 1]` and
    /// asserting `lo ≤ hi` after clamping.
    pub fn new(lo: Rational, hi: Rational, delta: f64) -> Self {
        let lo = clamp_unit(lo);
        let hi = clamp_unit(hi);
        assert!(lo <= hi, "confidence interval with lo > hi");
        ConfidenceInterval { lo, hi, delta }
    }

    /// The degenerate interval `[p, p]` (an exact answer).
    pub fn point(p: Rational, delta: f64) -> Self {
        ConfidenceInterval {
            lo: p.clone(),
            hi: p,
            delta,
        }
    }

    /// True iff `p` lies inside the interval (inclusive).
    pub fn contains(&self, p: &Rational) -> bool {
        &self.lo <= p && p <= &self.hi
    }

    /// The interval width `hi − lo`.
    pub fn width(&self) -> Rational {
        &self.hi - &self.lo
    }

    /// The interval reflected through 1: the CI of `1 − p` given the CI of
    /// `p` (used to turn a `Pr(¬F)` interval into a `Pr(F)` interval).
    pub fn complement(&self) -> ConfidenceInterval {
        ConfidenceInterval {
            lo: self.hi.complement(),
            hi: self.lo.complement(),
            delta: self.delta,
        }
    }
}

/// The outcome of a sampling run: a point estimate with its confidence
/// interval and the sampling effort that produced it.
#[derive(Clone, Debug, PartialEq)]
pub struct Estimate {
    /// The point estimate (exact rational arithmetic, clamped into
    /// `[0, 1]`; seeded-deterministic).
    pub estimate: Rational,
    /// Two-sided Hoeffding interval at confidence `1 − delta`.
    pub ci: ConfidenceInterval,
    /// Number of Monte-Carlo samples drawn (0 for exact short-circuits).
    pub samples: u64,
    /// Number of samples whose canonical-term indicator fired.
    pub hits: u64,
    /// True iff the value is exact (degenerate formula — no sampling done).
    pub exact: bool,
}

impl Estimate {
    /// An exact value wearing the `Estimate` interface: zero-width interval,
    /// zero samples.
    pub fn exact(value: Rational, delta: f64) -> Self {
        Estimate {
            ci: ConfidenceInterval::point(value.clone(), delta),
            estimate: value,
            samples: 0,
            hits: 0,
            exact: true,
        }
    }

    /// The estimate of `1 − p` given the estimate of `p`.
    pub fn complement(&self) -> Estimate {
        Estimate {
            estimate: self.estimate.complement(),
            ci: self.ci.complement(),
            samples: self.samples,
            hits: self.hits,
            exact: self.exact,
        }
    }
}

/// Clamps a rational into `[0, 1]`.
pub(crate) fn clamp_unit(p: Rational) -> Rational {
    if p.is_negative() {
        Rational::zero()
    } else if p > Rational::one() {
        Rational::one()
    } else {
        p
    }
}

/// The largest dyadic `k/2^53 ≤ x` for `x ∈ [0, 1]` — the inward-rounded
/// rational image of a float accuracy target. Comparing an outward-rounded
/// half-width against this can only *under*-report convergence, never
/// over-report it.
pub(crate) fn rational_lower_bound(x: f64) -> Rational {
    assert!((0.0..=1.0).contains(&x), "target must be in [0, 1]");
    let scale = (1u64 << 53) as f64;
    Rational::from_ints((x * scale).floor() as i64, 1i64 << 53)
}

/// The smallest dyadic `k/2^53 ≥ x` for `x ∈ [0, ∞)` — the outward-rounded
/// rational image of a float half-width.
pub(crate) fn rational_upper_bound(x: f64) -> Rational {
    assert!(
        x.is_finite() && x >= 0.0,
        "half-width must be finite and ≥ 0"
    );
    if x >= 1.0 {
        // CI will be clamped to [0, 1] anyway; 1 is a safe upper bound.
        return Rational::one();
    }
    let scale = (1u64 << 53) as f64;
    Rational::from_ints((x * scale).ceil() as i64, 1i64 << 53)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_ints(n, d)
    }

    #[test]
    fn interval_clamps_and_contains() {
        let ci = ConfidenceInterval::new(r(-1, 4), r(5, 4), 0.05);
        assert_eq!(ci.lo, Rational::zero());
        assert_eq!(ci.hi, Rational::one());
        assert!(ci.contains(&r(1, 2)));
        assert_eq!(ci.width(), Rational::one());
    }

    #[test]
    fn interval_complement_reflects() {
        let ci = ConfidenceInterval::new(r(1, 4), r(1, 2), 0.1);
        let c = ci.complement();
        assert_eq!(c.lo, r(1, 2));
        assert_eq!(c.hi, r(3, 4));
        assert!(c.contains(&r(2, 3)));
    }

    #[test]
    fn exact_estimate_is_zero_width() {
        let e = Estimate::exact(r(3, 8), 0.05);
        assert!(e.exact);
        assert_eq!(e.samples, 0);
        assert_eq!(e.ci.width(), Rational::zero());
        assert!(e.ci.contains(&r(3, 8)));
        let c = e.complement();
        assert_eq!(c.estimate, r(5, 8));
        assert!(c.exact);
    }

    #[test]
    fn upper_bound_never_rounds_down() {
        for x in [0.0, 1e-18, 0.3, 0.9999999, 1.0, 7.5] {
            let ub = rational_upper_bound(x);
            assert!(ub.to_f64() >= x || ub == Rational::one(), "{x}");
            assert!(ub.is_probability() || ub == Rational::one());
        }
        assert_eq!(rational_upper_bound(0.0), Rational::zero());
    }
}
