//! The Karp–Luby FPRAS for monotone DNF probability, and its CNF wrapper.
//!
//! Given a monotone DNF `D = T_1 ∨ … ∨ T_m` over independent variables,
//! the Karp–Luby estimator samples from the *union space*: pick a term
//! `T_j` with probability `Pr(T_j)/S` (importance sampling against the
//! union bound `S = Σ_i Pr(T_i)`), then a world conditioned on `T_j`
//! holding, and score 1 iff `T_j` is the **canonical** (first-in-order)
//! satisfied term of that world. The indicator's mean is
//! `μ = Pr(D)/S ∈ [1/m, 1]`, so `Ŝ·hits/N` is an unbiased estimate of
//! `Pr(D)` whose relative error is controlled with only
//! `N = ⌈3·m·ln(2/δ)/ε²⌉` samples — a fully polynomial randomized
//! approximation scheme (Karp–Luby–Madras 1989).
//!
//! Everything except the confidence-interval square root runs in exact
//! rational arithmetic: term selection and every Bernoulli draw compare a
//! 53-bit dyadic draw against exact rational quantities (cumulative term
//! weights, variable probabilities) folded at construction time into
//! integer thresholds — one u64 comparison per draw, deciding identically
//! to the rational comparison, with no per-sample allocation. Under the
//! workspace's deterministic [`rand`] stand-in, a fixed seed therefore
//! yields a bit-identical [`Estimate`] on every platform.
//!
//! [`CnfSampler`] adapts the estimator to the workspace's native
//! representation: the probability of a monotone CNF `F` (a query lineage)
//! is `1 − Pr(D)` for the complement-DNF `D` of `F` under flipped weights
//! (see [`gfomc_logic::dnf`]).

use crate::estimate::{rational_upper_bound, ConfidenceInterval, Estimate};
use gfomc_arith::Rational;
use gfomc_logic::{Cnf, Dnf, Var, WeightFn, WeightsFromFn};
use gfomc_pool::WorkerPool;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};

/// Samples per deterministic chunk of the seeded sampling plan (see
/// [`KarpLuby::estimate_seeded`]).
///
/// A sampling run at seed `s` is partitioned into fixed-size chunks; chunk
/// `k` draws all of its samples from its own RNG stream seeded with
/// `chunk_seed(s, k)`. Hit counts are integers and addition commutes, so
/// the merged estimate depends only on `(seed, sample count)` — never on
/// how many threads executed the chunks or in which order.
pub const SAMPLE_CHUNK: u64 = 256;

/// Process-wide count of Monte-Carlo samples drawn by the seeded chunked
/// sampler (telemetry only — never read on the sampling path).
static SAMPLES_DRAWN: AtomicU64 = AtomicU64::new(0);

/// Total Monte-Carlo samples drawn across the process so far.
pub fn samples_drawn_total() -> u64 {
    SAMPLES_DRAWN.load(Ordering::Relaxed)
}

/// Debug-asserts `0 < value < 1` — NaN included. Range checking moved to
/// the typed `BudgetError` validation in `gfomc-engine`'s `Budget`
/// builders (the public front door, which a network request can reach);
/// by the time a parameter gets here it has already been validated, so
/// this is a debug-build tripwire against new call paths that skip the
/// builders, not a release-build gate.
pub(crate) fn validate_unit_open(name: &str, value: f64) {
    debug_assert!(
        value > 0.0 && value < 1.0,
        "{name} must lie strictly inside (0, 1), got {value}"
    );
}

/// The SplitMix64 finalizer: a bijective avalanche mix.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The per-chunk RNG seed: a double avalanche of (seed, chunk index) so
/// chunk streams are decorrelated even for adjacent indices.
fn chunk_seed(seed: u64, chunk: u64) -> u64 {
    mix64(
        seed ^ mix64(
            chunk
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(0xD1B5_4A32_D192_ED03),
        ),
    )
}

/// A prepared Karp–Luby sampler for `Pr(D)` of a monotone DNF under
/// independent variable probabilities.
///
/// Construction precomputes the term weights and their cumulative sums;
/// each [`KarpLuby::estimate`] call is then `O(samples · (vars + scan))`
/// with no allocation beyond one world bitset, reused across every draw
/// of the call (and, in the chunked plan, across every chunk a worker
/// executes).
///
/// Worlds are word-packed: a sampled world is a `[u64]` bitset, one bit
/// per variable position, and the canonical-term scan runs in whole-word
/// AND/compare steps against per-term masks instead of per-variable
/// `bool` loads.
#[derive(Clone, Debug)]
pub struct KarpLuby {
    /// Position → Bernoulli threshold on the 53-bit dyadic grid:
    /// `u < p ⇔ r < ceil(p·2^53)` for `u = r/2^53`, so each conditional
    /// draw is a single u64 comparison yet decides exactly like the
    /// rational comparison would.
    thresholds: Vec<u64>,
    /// Term → sorted positions of its variables (zero-probability terms are
    /// dropped: they hold in no world and cannot affect the canonical scan).
    terms: Vec<Vec<usize>>,
    /// Term → sparse word masks `(word, bits)` over the packed world: term
    /// `i` holds in `world` iff `world[word] & bits == bits` for every
    /// entry. Positions are sorted, so entries are grouped per word and the
    /// canonical scan touches each 64-variable window at most once.
    term_masks: Vec<Vec<(u32, u64)>>,
    /// Cumulative term weights on the dyadic grid:
    /// `cum_thresholds[j] = ceil((Σ_{i ≤ j} Pr(T_i))·2^53 / S)`. Term
    /// selection is then a u64 binary search deciding identically to the
    /// exact-rational comparison `u·S < Σ_{i ≤ j} Pr(T_i)`.
    cum_thresholds: Vec<u64>,
    /// The union bound `S = Σ_i Pr(T_i)`.
    total: Rational,
    /// Exact short-circuit for degenerate formulas (`⊤`, `⊥`, all terms
    /// impossible): no sampling needed.
    exact: Option<Rational>,
}

/// Words in the packed world bitset for `n` variable positions.
fn world_words(n: usize) -> usize {
    n.div_ceil(64)
}

impl KarpLuby {
    /// Prepares a sampler for `Pr(d)` under `w`. Weights must be
    /// probabilities; variables not occurring in `d` are never queried.
    pub fn new<W: WeightFn>(d: &Dnf, w: &W) -> Self {
        if d.is_true() {
            return KarpLuby::trivial(Rational::one());
        }
        if d.is_false() {
            return KarpLuby::trivial(Rational::zero());
        }
        let vars: Vec<Var> = d.vars().into_iter().collect();
        let mut thresholds = Vec::with_capacity(vars.len());
        for &v in &vars {
            let p = w.weight(v);
            assert!(p.is_probability(), "weight out of [0,1] for {v:?}");
            thresholds.push(dyadic_threshold(&p));
        }
        let position = |v: Var| vars.binary_search(&v).expect("term var in support");
        let mut terms: Vec<Vec<usize>> = Vec::with_capacity(d.len());
        let mut cum: Vec<Rational> = Vec::with_capacity(d.len());
        let mut total = Rational::zero();
        for i in 0..d.len() {
            let p = d.term_probability(i, w);
            if p.is_zero() {
                // The term mentions a probability-0 variable: it holds in no
                // world, so it can neither be drawn nor beat a drawn term in
                // the canonical scan. Drop it.
                continue;
            }
            terms.push(d.terms()[i].vars().iter().map(|&v| position(v)).collect());
            total = &total + &p;
            cum.push(total.clone());
        }
        if terms.is_empty() {
            // Every term was impossible: Pr(D) = 0 exactly.
            return KarpLuby::trivial(Rational::zero());
        }
        // Normalization hoist: `ceil((c/S)·2^53)` is computed as one integer
        // ceiling division per term on cross-multiplied numerators — never
        // materializing the reduced rational `c/S`, whose per-term gcd
        // normalization used to dominate construction. Ceiling division is
        // scale-invariant (`⌈ka/kb⌉ = ⌈a/b⌉`), so the thresholds are
        // bit-identical to the old per-term `dyadic_threshold(c/S)` path.
        let s_numer = total.numer().magnitude();
        let s_denom = total.denom();
        let cum_thresholds = cum
            .iter()
            .map(|c| {
                let numer = (c.numer().magnitude() * s_denom).shl_bits(53);
                let denom = c.denom() * s_numer;
                let (q, r) = numer.div_rem(&denom);
                let q = q.to_u64().expect("cum ≤ S keeps the threshold within 2^53");
                if r.is_zero() {
                    q
                } else {
                    q + 1
                }
            })
            .collect();
        let term_masks = terms.iter().map(|t| word_masks(t)).collect();
        KarpLuby {
            thresholds,
            terms,
            term_masks,
            cum_thresholds,
            total,
            exact: None,
        }
    }

    fn trivial(value: Rational) -> Self {
        KarpLuby {
            thresholds: Vec::new(),
            terms: Vec::new(),
            term_masks: Vec::new(),
            cum_thresholds: Vec::new(),
            total: Rational::zero(),
            exact: Some(value),
        }
    }

    /// Number of live (nonzero-probability) terms.
    pub fn term_count(&self) -> usize {
        self.terms.len()
    }

    /// The union bound `S` the estimator normalizes against.
    pub fn union_bound(&self) -> &Rational {
        &self.total
    }

    /// True iff the formula was degenerate and [`KarpLuby::estimate`] will
    /// return an exact value without sampling.
    pub fn is_exact(&self) -> bool {
        self.exact.is_some()
    }

    /// The Karp–Luby–Madras sample budget sufficient for relative error
    /// `ε` with probability `1 − δ`: `⌈3·m·ln(2/δ)/ε²⌉`. (The indicator
    /// mean is at least `1/m`, so a multiplicative Chernoff bound at
    /// `N ≥ 3·ln(2/δ)/(ε²μ)` suffices; we substitute the worst case.)
    pub fn fpras_samples(&self, epsilon: f64, delta: f64) -> u64 {
        validate_unit_open("epsilon", epsilon);
        validate_unit_open("delta", delta);
        let m = self.terms.len().max(1) as f64;
        (3.0 * m * (2.0 / delta).ln() / (epsilon * epsilon)).ceil() as u64
    }

    /// Draws `samples` Karp–Luby samples and returns the estimate of
    /// `Pr(D)` with a two-sided Hoeffding interval at confidence `1 − δ`.
    ///
    /// The interval is conservative (distribution-free): the indicator mean
    /// `μ` satisfies `|hits/N − μ| ≤ √(ln(2/δ)/2N)` with probability at
    /// least `1 − δ`, and the bound is scaled by `S` and rounded outward.
    pub fn estimate<R: Rng>(&self, rng: &mut R, samples: u64, delta: f64) -> Estimate {
        validate_unit_open("delta", delta);
        if let Some(value) = &self.exact {
            return Estimate::exact(value.clone(), delta);
        }
        assert!(samples > 0, "need at least one sample");
        assert!(samples <= i64::MAX as u64, "sample budget out of range");
        let mut hits: u64 = 0;
        let mut world = vec![0u64; world_words(self.thresholds.len())];
        for _ in 0..samples {
            if self.draw_hit(rng, &mut world) {
                hits += 1;
            }
        }
        self.estimate_from_hits(hits, samples, delta)
    }

    /// The estimate assembled from a merged hit count: `Ŝ·hits/N` in exact
    /// arithmetic (the seeded-deterministic point) with a two-sided
    /// Hoeffding interval at confidence `1 − δ`.
    ///
    /// The raw unbiased estimator can overshoot 1 when the union bound is
    /// loose and samples are few; since the target is a probability, the
    /// *reported* point is clamped into [0, 1] (mean clipping — it can only
    /// reduce absolute error). The interval is still centered on the raw
    /// value, which is what the Hoeffding bound speaks about.
    pub(crate) fn estimate_from_hits(&self, hits: u64, samples: u64, delta: f64) -> Estimate {
        let frac = Rational::from_ints(hits as i64, samples as i64);
        let raw = &self.total * &frac;
        // Hoeffding half-width on μ, scaled by S, rounded outward.
        let h = ((2.0 / delta).ln() / (2.0 * samples as f64)).sqrt();
        let half = &self.total * &rational_upper_bound(h);
        let ci = ConfidenceInterval::new(&raw - &half, &raw + &half, delta);
        Estimate {
            estimate: crate::estimate::clamp_unit(raw),
            ci,
            samples,
            hits,
            exact: false,
        }
    }

    /// The raw point `Ŝ·hits/N` with an explicit outward-rounded half-width
    /// (used by the adaptive stopper, whose interval is empirical-Bernstein
    /// rather than Hoeffding).
    pub(crate) fn estimate_with_half_width(
        &self,
        hits: u64,
        samples: u64,
        half: &Rational,
        delta: f64,
    ) -> Estimate {
        let frac = Rational::from_ints(hits as i64, samples as i64);
        let raw = &self.total * &frac;
        let ci = ConfidenceInterval::new(&raw - half, &raw + half, delta);
        Estimate {
            estimate: crate::estimate::clamp_unit(raw),
            ci,
            samples,
            hits,
            exact: false,
        }
    }

    /// The exact short-circuit value, if the formula was degenerate.
    pub(crate) fn exact_value(&self) -> Option<&Rational> {
        self.exact.as_ref()
    }

    /// One Karp–Luby sample: draw a term, a world conditioned on it, and
    /// report whether the canonical indicator fired. `world` is scratch
    /// (fully overwritten by the draw — no re-zeroing between samples).
    fn draw_hit<R: Rng>(&self, rng: &mut R, world: &mut [u64]) -> bool {
        let j = self.draw_term(rng);
        self.draw_world(rng, j, world);
        self.is_canonical(j, world)
    }

    /// Hit count of one deterministic chunk: `n` samples from the chunk's
    /// own seed stream (see [`SAMPLE_CHUNK`]). `world` is caller-owned
    /// scratch, so a worker executing many chunks allocates it once.
    fn chunk_hits(&self, seed: u64, chunk: u64, n: u64, world: &mut [u64]) -> u64 {
        let mut rng = StdRng::seed_from_u64(chunk_seed(seed, chunk));
        let mut hits = 0u64;
        for _ in 0..n {
            if self.draw_hit(&mut rng, world) {
                hits += 1;
            }
        }
        hits
    }

    /// Merged hit count of samples `from..to` of the seeded sampling plan,
    /// executed on up to `threads` logical workers of the process-wide
    /// shared [`WorkerPool`].
    ///
    /// `from` must sit on a [`SAMPLE_CHUNK`] boundary (rounds of the
    /// adaptive stopper and whole runs both do), unless the range is
    /// empty. The result is the integer sum of per-chunk hit counts, so it
    /// is **bit-identical for every thread count** — parallelism changes
    /// only who executes a chunk, never what the chunk draws.
    pub fn hits_in_range(&self, seed: u64, from: u64, to: u64, threads: usize) -> u64 {
        self.hits_in_range_on(WorkerPool::global(), seed, from, to, threads)
    }

    /// [`KarpLuby::hits_in_range`] on a caller-provided pool — the engine
    /// routes its sampling through its own shared pool. Workers claim
    /// chunk indices from a shared cursor (an idle worker steals the next
    /// pending chunk), so stragglers never serialize a round.
    pub fn hits_in_range_on(
        &self,
        pool: &WorkerPool,
        seed: u64,
        from: u64,
        to: u64,
        workers: usize,
    ) -> u64 {
        assert!(from <= to, "inverted sample range");
        if from == to {
            // An empty range draws no chunks wherever it starts — checked
            // before the alignment assert, so callers whose previous round
            // ended exactly on a non-chunk-aligned cap may ask for the
            // empty remainder without panicking.
            return 0;
        }
        assert!(
            from.is_multiple_of(SAMPLE_CHUNK),
            "sample ranges must start on a chunk boundary"
        );
        // Telemetry only: the draw count is decided above, and observing
        // it cannot change a single sample.
        SAMPLES_DRAWN.fetch_add(to - from, Ordering::Relaxed);
        let first = from / SAMPLE_CHUNK;
        let last = to.div_ceil(SAMPLE_CHUNK);
        let len = |c: u64| (to - c * SAMPLE_CHUNK).min(SAMPLE_CHUNK);
        let workers = workers.clamp(1, (last - first) as usize);
        if workers == 1 {
            let mut world = vec![0u64; world_words(self.thresholds.len())];
            return (first..last)
                .map(|c| self.chunk_hits(seed, c, len(c), &mut world))
                .sum();
        }
        let cursor = AtomicU64::new(first);
        let hits = AtomicU64::new(0);
        pool.broadcast(workers, |_| {
            // One world bitset per worker, reused across every chunk it
            // claims from the cursor.
            let mut world = vec![0u64; world_words(self.thresholds.len())];
            let mut local = 0u64;
            loop {
                let c = cursor.fetch_add(1, Ordering::Relaxed);
                if c >= last {
                    break;
                }
                local += self.chunk_hits(seed, c, len(c), &mut world);
            }
            hits.fetch_add(local, Ordering::Relaxed);
        });
        hits.load(Ordering::Relaxed)
    }

    /// The parallel, seed-addressed form of [`KarpLuby::estimate`]: draws
    /// `samples` samples of the chunked plan for `seed` across up to
    /// `threads` workers of the process-wide shared [`WorkerPool`]
    /// (1 = serial).
    ///
    /// Determinism guarantee: for a fixed `(seed, samples, delta)` the
    /// returned [`Estimate`] is bit-identical for **every** thread count —
    /// see [`SAMPLE_CHUNK`]. The draw sequence differs from the
    /// single-stream [`KarpLuby::estimate`], so the two entry points give
    /// different (equally valid) estimates for the same seed.
    pub fn estimate_seeded(&self, seed: u64, samples: u64, delta: f64, threads: usize) -> Estimate {
        self.estimate_seeded_on(WorkerPool::global(), seed, samples, delta, threads)
    }

    /// [`KarpLuby::estimate_seeded`] on a caller-provided pool. The pool
    /// choice can never change the estimate — only the wall-clock.
    pub fn estimate_seeded_on(
        &self,
        pool: &WorkerPool,
        seed: u64,
        samples: u64,
        delta: f64,
        workers: usize,
    ) -> Estimate {
        validate_unit_open("delta", delta);
        if let Some(value) = &self.exact {
            return Estimate::exact(value.clone(), delta);
        }
        assert!(samples > 0, "need at least one sample");
        assert!(samples <= i64::MAX as u64, "sample budget out of range");
        let hits = self.hits_in_range_on(pool, seed, 0, samples, workers);
        self.estimate_from_hits(hits, samples, delta)
    }

    /// The (ε, δ)-FPRAS entry point: draws [`KarpLuby::fpras_samples`]
    /// samples in one go.
    pub fn estimate_fpras<R: Rng>(&self, rng: &mut R, epsilon: f64, delta: f64) -> Estimate {
        self.estimate(rng, self.fpras_samples(epsilon, delta), delta)
    }

    /// Importance-samples a term index proportionally to its weight: a
    /// 53-bit dyadic draw `r`, then the first `j` with
    /// `r < cum_thresholds[j]` — exactly the rational comparison
    /// `r/2^53·S < cum[j]`, one u64 binary search per sample.
    fn draw_term<R: Rng>(&self, rng: &mut R) -> usize {
        let r = rng.next_u64() >> 11;
        let j = self.cum_thresholds.partition_point(|&t| t <= r);
        debug_assert!(j < self.terms.len());
        j.min(self.terms.len() - 1)
    }

    /// Fills `world` with a sample conditioned on term `j` holding: its
    /// variables are forced true, every other variable is an independent
    /// Bernoulli draw against its exact dyadic threshold.
    ///
    /// The RNG consumption order is load-bearing: exactly one draw per
    /// non-forced position, in position order, none for forced positions —
    /// identical to the historical `Vec<bool>` walk, so seeded estimates
    /// are unchanged by the packing. Each word is rebuilt from zero in a
    /// register and stored once, which is what lets callers reuse the
    /// scratch without clearing it.
    fn draw_world<R: Rng>(&self, rng: &mut R, j: usize, world: &mut [u64]) {
        let n = self.thresholds.len();
        let term = &self.terms[j];
        let mut next_forced = 0usize;
        let mut word = 0u64;
        for pos in 0..n {
            let bit = if next_forced < term.len() && term[next_forced] == pos {
                next_forced += 1;
                true
            } else {
                (rng.next_u64() >> 11) < self.thresholds[pos]
            };
            word |= (bit as u64) << (pos % 64);
            if pos % 64 == 63 {
                world[pos / 64] = word;
                word = 0;
            }
        }
        if !n.is_multiple_of(64) {
            world[n / 64] = word;
        }
    }

    /// True iff no earlier term also holds in `world` (term `j` holds by
    /// construction): the coverage partition of the union space. Each
    /// earlier term is tested by whole-word mask containment.
    fn is_canonical(&self, j: usize, world: &[u64]) -> bool {
        !self.term_masks[..j]
            .iter()
            .any(|masks| masks.iter().all(|&(w, m)| world[w as usize] & m == m))
    }
}

/// Packs sorted variable positions into sparse `(word, bits)` masks —
/// consecutive positions sharing a 64-bit window merge into one entry.
fn word_masks(positions: &[usize]) -> Vec<(u32, u64)> {
    let mut masks: Vec<(u32, u64)> = Vec::new();
    for &pos in positions {
        let word = (pos / 64) as u32;
        let bit = 1u64 << (pos % 64);
        match masks.last_mut() {
            Some((w, m)) if *w == word => *m |= bit,
            _ => masks.push((word, bit)),
        }
    }
    masks
}

/// `ceil(p·2^53)` as a u64, for a probability `p`: the exact comparison
/// threshold on the dyadic grid. For a 53-bit draw `r`,
/// `r/2^53 < p ⇔ r < ceil(p·2^53)` (whether or not `p·2^53` is an
/// integer), so the u64 comparison decides *identically* to the rational
/// one — just without allocating per draw. Used for both the Bernoulli
/// draws (`p` a variable probability) and term selection (`p` a
/// normalized cumulative weight `cum[j]/S`).
fn dyadic_threshold(p: &Rational) -> u64 {
    let scaled = p.numer().magnitude().shl_bits(53);
    let (q, r) = scaled.div_rem(p.denom());
    let q = q.to_u64().expect("p ≤ 1 keeps the threshold within 2^53");
    if r.is_zero() {
        q
    } else {
        q + 1
    }
}

/// Karp–Luby sampling for the probability of a monotone **CNF** (a query
/// lineage): `Pr(F) = 1 − Pr(D)` for the complement-DNF `D` of `F` under
/// the flipped weights `w̄(v) = 1 − w(v)`.
///
/// Deterministic (probability-0/1) variables are eliminated by restriction
/// before complementing, mirroring the exact counter — the sampler then
/// only ever draws strictly-interior Bernoullis.
///
/// The (ε, δ) relative-error guarantee of the underlying FPRAS applies to
/// `Pr(¬F)`; the additive Hoeffding interval on the returned [`Estimate`]
/// applies to `Pr(F)` directly.
#[derive(Clone, Debug)]
pub struct CnfSampler {
    kl: KarpLuby,
}

impl CnfSampler {
    /// Prepares a sampler for `Pr(f)` under `w`.
    pub fn new<W: WeightFn>(f: &Cnf, w: &W) -> Self {
        let det: Vec<(Var, bool)> = f
            .vars()
            .into_iter()
            .filter_map(|v| {
                let p = w.weight(v);
                if p.is_zero() {
                    Some((v, false))
                } else if p.is_one() {
                    Some((v, true))
                } else {
                    None
                }
            })
            .collect();
        let reduced;
        let f = if det.is_empty() {
            f
        } else {
            reduced = f.restrict_all(&det);
            &reduced
        };
        let d = Dnf::complement_of(f);
        let flipped = WeightsFromFn(|v| w.weight(v).complement());
        CnfSampler {
            kl: KarpLuby::new(&d, &flipped),
        }
    }

    /// Number of live complement-DNF terms (falsifiable lineage clauses).
    pub fn term_count(&self) -> usize {
        self.kl.term_count()
    }

    /// True iff the lineage was degenerate and estimates are exact.
    pub fn is_exact(&self) -> bool {
        self.kl.is_exact()
    }

    /// The Karp–Luby–Madras budget for relative error `ε` on `Pr(¬F)` at
    /// confidence `1 − δ`.
    pub fn fpras_samples(&self, epsilon: f64, delta: f64) -> u64 {
        self.kl.fpras_samples(epsilon, delta)
    }

    /// Estimates `Pr(f)` from `samples` draws, with a two-sided Hoeffding
    /// interval at confidence `1 − δ`.
    pub fn estimate<R: Rng>(&self, rng: &mut R, samples: u64, delta: f64) -> Estimate {
        self.kl.estimate(rng, samples, delta).complement()
    }

    /// The parallel, seed-addressed form of [`CnfSampler::estimate`]:
    /// bit-identical for every thread count at a fixed
    /// `(seed, samples, delta)` — see [`KarpLuby::estimate_seeded`].
    pub fn estimate_seeded(&self, seed: u64, samples: u64, delta: f64, threads: usize) -> Estimate {
        self.kl
            .estimate_seeded(seed, samples, delta, threads)
            .complement()
    }

    /// [`CnfSampler::estimate_seeded`] on a caller-provided pool — the
    /// engine's router fans sampling across the engine's own shared pool.
    pub fn estimate_seeded_on(
        &self,
        pool: &WorkerPool,
        seed: u64,
        samples: u64,
        delta: f64,
        workers: usize,
    ) -> Estimate {
        self.kl
            .estimate_seeded_on(pool, seed, samples, delta, workers)
            .complement()
    }

    /// The underlying complement-DNF sampler.
    pub fn karp_luby(&self) -> &KarpLuby {
        &self.kl
    }

    /// The (ε, δ)-FPRAS entry point (relative error on `Pr(¬f)`).
    pub fn estimate_fpras<R: Rng>(&self, rng: &mut R, epsilon: f64, delta: f64) -> Estimate {
        self.kl.estimate_fpras(rng, epsilon, delta).complement()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfomc_logic::{wmc_brute_force, Clause, UniformWeight};
    use rand::{rngs::StdRng, SeedableRng};
    use std::collections::HashMap;

    fn cl(vs: &[u32]) -> Clause {
        Clause::new(vs.iter().map(|&i| Var(i)))
    }

    fn half() -> UniformWeight {
        UniformWeight(Rational::one_half())
    }

    #[test]
    fn degenerate_formulas_are_exact() {
        let mut rng = StdRng::seed_from_u64(1);
        let kl = KarpLuby::new(&Dnf::top(), &half());
        assert!(kl.is_exact());
        let e = kl.estimate(&mut rng, 100, 0.05);
        assert!(e.exact);
        assert_eq!(e.estimate, Rational::one());
        let kl = KarpLuby::new(&Dnf::bottom(), &half());
        assert_eq!(kl.estimate(&mut rng, 100, 0.05).estimate, Rational::zero());

        let s = CnfSampler::new(&Cnf::top(), &half());
        assert_eq!(s.estimate(&mut rng, 100, 0.05).estimate, Rational::one());
        let s = CnfSampler::new(&Cnf::bottom(), &half());
        assert_eq!(s.estimate(&mut rng, 100, 0.05).estimate, Rational::zero());
    }

    #[test]
    fn impossible_terms_are_dropped() {
        // Term (x1∧x2) with Pr(x2)=0 is impossible; only (x3) remains.
        let d = Dnf::new([cl(&[1, 2]), cl(&[3])]);
        let mut w = HashMap::new();
        w.insert(Var(1), Rational::one_half());
        w.insert(Var(2), Rational::zero());
        w.insert(Var(3), Rational::from_ints(1, 4));
        let kl = KarpLuby::new(&d, &w);
        assert_eq!(kl.term_count(), 1);
        assert_eq!(kl.union_bound(), &Rational::from_ints(1, 4));
        // With a single live term the canonical indicator always fires:
        // the estimate is exactly the union bound, from any seed.
        let mut rng = StdRng::seed_from_u64(7);
        let e = kl.estimate(&mut rng, 64, 0.05);
        assert_eq!(e.hits, 64);
        assert_eq!(e.estimate, Rational::from_ints(1, 4));
    }

    #[test]
    fn all_terms_impossible_is_exact_zero() {
        let d = Dnf::new([cl(&[1])]);
        let mut w = HashMap::new();
        w.insert(Var(1), Rational::zero());
        let kl = KarpLuby::new(&d, &w);
        assert!(kl.is_exact());
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(kl.estimate(&mut rng, 10, 0.05).estimate, Rational::zero());
    }

    #[test]
    fn single_term_estimate_is_exact_product() {
        // Pr(x1∧x2) at ½: indicator is constantly 1, estimate = S = ¼.
        let d = Dnf::new([cl(&[1, 2])]);
        let kl = KarpLuby::new(&d, &half());
        let mut rng = StdRng::seed_from_u64(11);
        let e = kl.estimate(&mut rng, 32, 0.05);
        assert_eq!(e.estimate, Rational::from_ints(1, 4));
        assert!(e.ci.contains(&Rational::from_ints(1, 4)));
    }

    #[test]
    fn same_seed_same_estimate() {
        let f = Cnf::new([cl(&[1, 2]), cl(&[2, 3]), cl(&[1, 3])]);
        let s = CnfSampler::new(&f, &half());
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            s.estimate(&mut rng, 500, 0.05)
        };
        assert_eq!(run(99), run(99));
        // …and a different seed (almost surely) moves the hit count.
        assert_ne!(run(99).hits, run(100).hits);
    }

    #[test]
    fn ci_covers_brute_force_on_fixed_formulas() {
        let formulas = [
            Cnf::new([cl(&[1, 2]), cl(&[2, 3])]),
            Cnf::new([cl(&[1, 2, 3]), cl(&[2, 4]), cl(&[1, 4])]),
            Cnf::new([cl(&[1]), cl(&[2, 3]), cl(&[4, 5, 6])]),
            Cnf::new([cl(&[1, 2]), cl(&[3, 4]), cl(&[5, 6]), cl(&[1, 6])]),
        ];
        for (i, f) in formulas.iter().enumerate() {
            let truth = wmc_brute_force(f, &half());
            let s = CnfSampler::new(f, &half());
            let mut rng = StdRng::seed_from_u64(0xC0FFEE + i as u64);
            let e = s.estimate(&mut rng, 2_000, 0.05);
            assert!(e.ci.contains(&truth), "{f:?}: {e:?} vs {truth}");
            assert!(!e.exact);
            assert_eq!(e.samples, 2_000);
        }
    }

    #[test]
    fn deterministic_variables_are_eliminated() {
        // Pr(x1)=1 satisfies the first clause; Pr(x2)=0 drops from the
        // second, leaving exactly Pr(x3).
        let f = Cnf::new([cl(&[1, 2]), cl(&[2, 3])]);
        let mut w = HashMap::new();
        w.insert(Var(1), Rational::one());
        w.insert(Var(2), Rational::zero());
        w.insert(Var(3), Rational::from_ints(2, 7));
        let s = CnfSampler::new(&f, &w);
        assert_eq!(s.term_count(), 1);
        let mut rng = StdRng::seed_from_u64(5);
        let e = s.estimate(&mut rng, 64, 0.05);
        assert_eq!(e.estimate, Rational::from_ints(2, 7));
    }

    #[test]
    fn empty_range_at_unaligned_offset_is_zero() {
        // Regression: the chunk-alignment assert used to run before the
        // `from == to` early return, so an empty range at a non-chunk-
        // aligned offset (an adaptive round landing exactly on its cap)
        // panicked instead of reporting zero hits.
        let d = Dnf::new([cl(&[1, 2]), cl(&[2, 3])]);
        let kl = KarpLuby::new(&d, &half());
        let off = SAMPLE_CHUNK + SAMPLE_CHUNK / 2 + 7;
        assert!(!off.is_multiple_of(SAMPLE_CHUNK));
        assert_eq!(kl.hits_in_range(9, off, off, 1), 0);
        assert_eq!(kl.hits_in_range(9, off, off, 4), 0);
        assert_eq!(kl.hits_in_range(9, 0, 0, 1), 0);
    }

    #[test]
    #[should_panic(expected = "chunk boundary")]
    fn nonempty_unaligned_range_still_panics() {
        let d = Dnf::new([cl(&[1])]);
        let kl = KarpLuby::new(&d, &half());
        kl.hits_in_range(9, 7, 100, 1);
    }

    #[test]
    fn sampler_parameters_are_validated_at_both_endpoints() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let d = Dnf::new([cl(&[1, 2]), cl(&[2, 3])]);
        let kl = KarpLuby::new(&d, &half());
        // Valid interior values pass…
        assert!(kl.fpras_samples(0.5, 0.5) > 0);
        // …every endpoint, out-of-range value, and NaN panics with a
        // message naming the parameter, instead of silently producing a
        // NaN-derived or saturated budget.
        for eps in [0.0, 1.0, -0.1, 2.0, f64::NAN] {
            let err = catch_unwind(AssertUnwindSafe(|| kl.fpras_samples(eps, 0.05)))
                .expect_err("ε out of (0,1) must panic");
            let msg = err.downcast_ref::<String>().expect("panic message");
            assert!(msg.contains("epsilon"), "{msg}");
        }
        for delta in [0.0, 1.0, -1.0, 3.5, f64::NAN] {
            let err = catch_unwind(AssertUnwindSafe(|| kl.fpras_samples(0.1, delta)))
                .expect_err("δ out of (0,1) must panic");
            let msg = err.downcast_ref::<String>().expect("panic message");
            assert!(msg.contains("delta"), "{msg}");
            let err = catch_unwind(AssertUnwindSafe(|| kl.estimate_seeded(1, 64, delta, 1)))
                .expect_err("δ out of (0,1) must panic in estimate_seeded");
            let msg = err.downcast_ref::<String>().expect("panic message");
            assert!(msg.contains("delta"), "{msg}");
        }
    }

    #[test]
    fn seeded_estimates_agree_across_pools() {
        let f = Cnf::new([cl(&[1, 2]), cl(&[2, 3]), cl(&[1, 3])]);
        let s = CnfSampler::new(&f, &half());
        let base = s.estimate_seeded(42, 2_000, 0.05, 1);
        let own = gfomc_pool::WorkerPool::new(3);
        for workers in [1usize, 2, 8] {
            assert_eq!(base, s.estimate_seeded_on(&own, 42, 2_000, 0.05, workers));
        }
    }

    #[test]
    fn hoisted_cum_thresholds_match_per_term_division() {
        // The cross-multiplied ceiling division must be bit-identical to
        // the historical reduced-rational path `dyadic_threshold(c/S)` —
        // awkward coprime weights make the gcd normalization nontrivial.
        let d = Dnf::new([cl(&[1, 2]), cl(&[2, 3]), cl(&[3, 4]), cl(&[1, 4]), cl(&[5])]);
        let mut w = HashMap::new();
        w.insert(Var(1), Rational::from_ints(1, 3));
        w.insert(Var(2), Rational::from_ints(2, 7));
        w.insert(Var(3), Rational::from_ints(3, 5));
        w.insert(Var(4), Rational::from_ints(5, 11));
        w.insert(Var(5), Rational::from_ints(12, 13));
        let kl = KarpLuby::new(&d, &w);
        let mut total = Rational::zero();
        let mut cum = Vec::new();
        for i in 0..d.len() {
            total = &total + &d.term_probability(i, &w);
            cum.push(total.clone());
        }
        let old_way: Vec<u64> = cum
            .iter()
            .map(|c| dyadic_threshold(&(c / &total)))
            .collect();
        assert_eq!(kl.cum_thresholds, old_way);
        assert_eq!(kl.union_bound(), &total);
    }

    #[test]
    fn constructor_cost_is_linear_in_term_count() {
        // Regression guard for the normalization hoist: growing the term
        // count 8× must grow `KarpLuby::new` by roughly 8×, not 64×. The
        // 48× ceiling leaves a wide noise margin while still failing any
        // reintroduced per-term quadratic pass.
        use std::time::Instant;
        let build = |m: u32| Dnf::new((0..m).map(|i| cl(&[i + 1])));
        let time = |d: &Dnf| {
            let mut best = None;
            for _ in 0..3 {
                let t0 = Instant::now();
                let kl = KarpLuby::new(d, &half());
                let dt = t0.elapsed();
                assert_eq!(kl.term_count(), d.len());
                best = Some(best.map_or(dt, |b: std::time::Duration| b.min(dt)));
            }
            best.unwrap()
        };
        let small = build(1_000);
        let large = build(8_000);
        let t_small = time(&small).max(std::time::Duration::from_micros(200));
        let t_large = time(&large);
        assert!(
            t_large < t_small * 48,
            "constructor no longer linear: {t_small:?} for 1k terms vs {t_large:?} for 8k"
        );
    }

    #[test]
    fn fpras_budget_grows_with_terms_and_precision() {
        let d3 = Dnf::new([cl(&[1]), cl(&[2]), cl(&[3])]);
        let d1 = Dnf::new([cl(&[1])]);
        let kl3 = KarpLuby::new(&d3, &half());
        let kl1 = KarpLuby::new(&d1, &half());
        assert!(kl3.fpras_samples(0.1, 0.05) > kl1.fpras_samples(0.1, 0.05));
        assert!(kl3.fpras_samples(0.05, 0.05) > kl3.fpras_samples(0.1, 0.05));
        // The textbook number: 3·m·ln(2/δ)/ε², ceiled.
        let expect = (3.0 * 3.0 * (2.0f64 / 0.05).ln() / 0.01).ceil() as u64;
        assert_eq!(kl3.fpras_samples(0.1, 0.05), expect);
    }
}
