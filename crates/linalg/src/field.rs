//! A minimal field abstraction.
//!
//! The workspace needs exact linear algebra over two coefficient fields:
//! [`Rational`] and the quadratic extension [`QuadExt`]. `QuadExt` values
//! carry their radicand at runtime, so the usual `Zero::zero()` associated
//! constant does not work; instead every operation derives constants from an
//! existing element (`zero_like`, `one_like`).

use gfomc_arith::{QuadExt, Rational};

/// An element of a field, with constants derived from an exemplar value.
pub trait Field: Clone + PartialEq + std::fmt::Debug {
    /// The additive identity of the field containing `self`.
    fn zero_like(&self) -> Self;
    /// The multiplicative identity of the field containing `self`.
    fn one_like(&self) -> Self;
    /// Addition.
    fn add(&self, rhs: &Self) -> Self;
    /// Subtraction.
    fn sub(&self, rhs: &Self) -> Self;
    /// Multiplication.
    fn mul(&self, rhs: &Self) -> Self;
    /// Division; panics if `rhs` is zero.
    fn div(&self, rhs: &Self) -> Self;
    /// Additive inverse.
    fn neg(&self) -> Self;
    /// Test for the additive identity.
    fn is_zero(&self) -> bool;
}

impl Field for Rational {
    fn zero_like(&self) -> Self {
        Rational::zero()
    }
    fn one_like(&self) -> Self {
        Rational::one()
    }
    fn add(&self, rhs: &Self) -> Self {
        self + rhs
    }
    fn sub(&self, rhs: &Self) -> Self {
        self - rhs
    }
    fn mul(&self, rhs: &Self) -> Self {
        self * rhs
    }
    fn div(&self, rhs: &Self) -> Self {
        self / rhs
    }
    fn neg(&self) -> Self {
        -self
    }
    fn is_zero(&self) -> bool {
        Rational::is_zero(self)
    }
}

impl Field for QuadExt {
    fn zero_like(&self) -> Self {
        QuadExt::zero_like(self)
    }
    fn one_like(&self) -> Self {
        QuadExt::one_like(self)
    }
    fn add(&self, rhs: &Self) -> Self {
        self + rhs
    }
    fn sub(&self, rhs: &Self) -> Self {
        self - rhs
    }
    fn mul(&self, rhs: &Self) -> Self {
        self * rhs
    }
    fn div(&self, rhs: &Self) -> Self {
        self / rhs
    }
    fn neg(&self) -> Self {
        -self
    }
    fn is_zero(&self) -> bool {
        QuadExt::is_zero(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rational_field_ops() {
        let a = Rational::from_ints(1, 2);
        let b = Rational::from_ints(1, 3);
        assert_eq!(a.add(&b), Rational::from_ints(5, 6));
        assert_eq!(a.mul(&b), Rational::from_ints(1, 6));
        assert_eq!(a.div(&b), Rational::from_ints(3, 2));
        assert!(a.zero_like().is_zero());
        assert_eq!(a.one_like(), Rational::one());
    }

    #[test]
    fn quadext_field_ops() {
        let d = Rational::from_ints(2, 1);
        let s = QuadExt::sqrt_d(d);
        let two = s.mul(&s);
        assert_eq!(two.to_rational(), Some(Rational::from_ints(2, 1)));
        assert!(s.sub(&s).is_zero());
    }
}
