//! Dense matrices over an exact field.

use crate::field::Field;
use std::fmt;

/// A dense `rows × cols` matrix over a field `F`, stored row-major.
#[derive(Clone, PartialEq)]
pub struct Matrix<F: Field> {
    rows: usize,
    cols: usize,
    data: Vec<F>,
}

impl<F: Field> Matrix<F> {
    /// Builds a matrix from row-major data. Panics on shape mismatch.
    pub fn from_rows(rows: Vec<Vec<F>>) -> Self {
        let r = rows.len();
        assert!(r > 0, "matrix must have at least one row");
        let c = rows[0].len();
        assert!(rows.iter().all(|row| row.len() == c), "ragged rows");
        Matrix {
            rows: r,
            cols: c,
            data: rows.into_iter().flatten().collect(),
        }
    }

    /// Builds a matrix by evaluating `f(i, j)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> F) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// All-zero matrix in the field of `exemplar`.
    pub fn zeros(rows: usize, cols: usize, exemplar: &F) -> Self {
        Matrix::from_fn(rows, cols, |_, _| exemplar.zero_like())
    }

    /// Identity matrix in the field of `exemplar`.
    pub fn identity(n: usize, exemplar: &F) -> Self {
        Matrix::from_fn(n, n, |i, j| {
            if i == j {
                exemplar.one_like()
            } else {
                exemplar.zero_like()
            }
        })
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// True iff square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Element access.
    pub fn get(&self, i: usize, j: usize) -> &F {
        &self.data[i * self.cols + j]
    }

    /// Element mutation.
    pub fn set(&mut self, i: usize, j: usize, v: F) {
        self.data[i * self.cols + j] = v;
    }

    /// Iterates over a row.
    pub fn row(&self, i: usize) -> &[F] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Self {
        Matrix::from_fn(self.cols, self.rows, |i, j| self.get(j, i).clone())
    }

    /// Matrix sum. Panics on shape mismatch.
    pub fn add(&self, rhs: &Self) -> Self {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        Matrix::from_fn(self.rows, self.cols, |i, j| {
            self.get(i, j).add(rhs.get(i, j))
        })
    }

    /// Matrix product. Panics on shape mismatch.
    pub fn mul(&self, rhs: &Self) -> Self {
        assert_eq!(self.cols, rhs.rows, "inner dimensions must agree");
        let z = self.data[0].zero_like();
        Matrix::from_fn(self.rows, rhs.cols, |i, j| {
            let mut acc = z.clone();
            for k in 0..self.cols {
                acc = acc.add(&self.get(i, k).mul(rhs.get(k, j)));
            }
            acc
        })
    }

    /// Scales every entry by `c`.
    pub fn scale(&self, c: &F) -> Self {
        Matrix::from_fn(self.rows, self.cols, |i, j| self.get(i, j).mul(c))
    }

    /// Matrix–vector product.
    pub fn mul_vec(&self, v: &[F]) -> Vec<F> {
        assert_eq!(self.cols, v.len());
        (0..self.rows)
            .map(|i| {
                let mut acc = self.data[0].zero_like();
                for (k, vk) in v.iter().enumerate() {
                    acc = acc.add(&self.get(i, k).mul(vk));
                }
                acc
            })
            .collect()
    }

    /// `self ^ p` by square-and-multiply. Panics if not square.
    pub fn pow(&self, mut p: u32) -> Self {
        assert!(self.is_square());
        let mut base = self.clone();
        let mut acc = Matrix::identity(self.rows, &self.data[0]);
        while p > 0 {
            if p & 1 == 1 {
                acc = acc.mul(&base);
            }
            p >>= 1;
            if p > 0 {
                base = base.mul(&base);
            }
        }
        acc
    }

    /// Kronecker (tensor) product `self ⊗ rhs`.
    pub fn kronecker(&self, rhs: &Self) -> Self {
        Matrix::from_fn(self.rows * rhs.rows, self.cols * rhs.cols, |i, j| {
            self.get(i / rhs.rows, j / rhs.cols)
                .mul(rhs.get(i % rhs.rows, j % rhs.cols))
        })
    }

    /// Reduces a copy of `self` to row echelon form, returning
    /// `(echelon, det, rank, pivot_cols)`. The determinant is meaningful only
    /// for square matrices (zero for rank-deficient ones).
    fn echelon(&self) -> (Matrix<F>, F, usize, Vec<usize>) {
        let mut m = self.clone();
        let one = m.data[0].one_like();
        let mut det = one.clone();
        let mut pivots = Vec::new();
        let mut r = 0usize;
        for c in 0..m.cols {
            if r == m.rows {
                break;
            }
            // Find a pivot.
            let Some(p) = (r..m.rows).find(|&i| !m.get(i, c).is_zero()) else {
                continue;
            };
            if p != r {
                for j in 0..m.cols {
                    let a = m.get(r, j).clone();
                    let b = m.get(p, j).clone();
                    m.set(r, j, b);
                    m.set(p, j, a);
                }
                det = det.neg();
            }
            let pivot = m.get(r, c).clone();
            det = det.mul(&pivot);
            // Normalize pivot row.
            for j in c..m.cols {
                let v = m.get(r, j).div(&pivot);
                m.set(r, j, v);
            }
            // Eliminate below.
            for i in (r + 1)..m.rows {
                let factor = m.get(i, c).clone();
                if factor.is_zero() {
                    continue;
                }
                for j in c..m.cols {
                    let v = m.get(i, j).sub(&factor.mul(m.get(r, j)));
                    m.set(i, j, v);
                }
            }
            pivots.push(c);
            r += 1;
        }
        if self.is_square() && r < self.rows {
            det = det.zero_like();
        }
        (m, det, r, pivots)
    }

    /// Exact determinant via Gaussian elimination. Panics if not square.
    pub fn det(&self) -> F {
        assert!(self.is_square(), "determinant of non-square matrix");
        self.echelon().1
    }

    /// Rank of the matrix.
    pub fn rank(&self) -> usize {
        self.echelon().2
    }

    /// True iff square with nonzero determinant.
    pub fn is_invertible(&self) -> bool {
        self.is_square() && self.rank() == self.rows
    }

    /// Solves `self · x = b` for a square, invertible `self`.
    /// Returns `None` if the matrix is singular.
    pub fn solve(&self, b: &[F]) -> Option<Vec<F>> {
        assert!(self.is_square(), "solve requires a square system");
        assert_eq!(self.rows, b.len());
        // Augment and eliminate.
        let mut aug = Matrix::from_fn(self.rows, self.cols + 1, |i, j| {
            if j < self.cols {
                self.get(i, j).clone()
            } else {
                b[i].clone()
            }
        });
        let n = self.rows;
        for c in 0..n {
            let p = (c..n).find(|&i| !aug.get(i, c).is_zero())?;
            if p != c {
                for j in 0..=n {
                    let a = aug.get(c, j).clone();
                    let bb = aug.get(p, j).clone();
                    aug.set(c, j, bb);
                    aug.set(p, j, a);
                }
            }
            let pivot = aug.get(c, c).clone();
            for j in c..=n {
                let v = aug.get(c, j).div(&pivot);
                aug.set(c, j, v);
            }
            for i in 0..n {
                if i == c {
                    continue;
                }
                let factor = aug.get(i, c).clone();
                if factor.is_zero() {
                    continue;
                }
                for j in c..=n {
                    let v = aug.get(i, j).sub(&factor.mul(aug.get(c, j)));
                    aug.set(i, j, v);
                }
            }
        }
        Some((0..n).map(|i| aug.get(i, n).clone()).collect())
    }

    /// Exact inverse; `None` if singular. Panics if not square.
    pub fn inverse(&self) -> Option<Matrix<F>> {
        assert!(self.is_square());
        let n = self.rows;
        let mut cols = Vec::with_capacity(n);
        for j in 0..n {
            let e: Vec<F> = (0..n)
                .map(|i| {
                    if i == j {
                        self.data[0].one_like()
                    } else {
                        self.data[0].zero_like()
                    }
                })
                .collect();
            cols.push(self.solve(&e)?);
        }
        Some(Matrix::from_fn(n, n, |i, j| cols[j][i].clone()))
    }
}

/// The `(m+1) × (m+1)` Vandermonde matrix `V[k][ℓ] = points[ℓ]^k` used in
/// Lemma 3.7 of the paper (linear independence of monomials `y^k`).
pub fn vandermonde<F: Field>(points: &[F]) -> Matrix<F> {
    assert!(!points.is_empty());
    let n = points.len();
    Matrix::from_fn(n, n, |k, l| {
        let mut acc = points[0].one_like();
        for _ in 0..k {
            acc = acc.mul(&points[l]);
        }
        acc
    })
}

impl<F: Field + fmt::Display> fmt::Display for Matrix<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", self.get(i, j))?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

impl<F: Field> fmt::Debug for Matrix<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfomc_arith::Rational;

    fn r(n: i64) -> Rational {
        Rational::from(n)
    }

    fn m(rows: Vec<Vec<i64>>) -> Matrix<Rational> {
        Matrix::from_rows(
            rows.into_iter()
                .map(|row| row.into_iter().map(r).collect())
                .collect(),
        )
    }

    #[test]
    fn identity_is_neutral() {
        let a = m(vec![vec![1, 2], vec![3, 4]]);
        let id = Matrix::identity(2, &r(1));
        assert_eq!(a.mul(&id), a);
        assert_eq!(id.mul(&a), a);
    }

    #[test]
    fn det_2x2_and_3x3() {
        assert_eq!(m(vec![vec![1, 2], vec![3, 4]]).det(), r(-2));
        assert_eq!(
            m(vec![vec![2, 0, 0], vec![0, 3, 0], vec![0, 0, 5]]).det(),
            r(30)
        );
        assert_eq!(
            m(vec![vec![1, 2, 3], vec![4, 5, 6], vec![7, 8, 9]]).det(),
            r(0)
        );
    }

    #[test]
    fn det_row_swap_sign() {
        // First pivot search requires a swap.
        assert_eq!(m(vec![vec![0, 1], vec![1, 0]]).det(), r(-1));
    }

    #[test]
    fn rank_detects_deficiency() {
        assert_eq!(m(vec![vec![1, 2], vec![2, 4]]).rank(), 1);
        assert_eq!(m(vec![vec![1, 2], vec![3, 4]]).rank(), 2);
        assert_eq!(m(vec![vec![0, 0], vec![0, 0]]).rank(), 0);
    }

    #[test]
    fn solve_simple_system() {
        // x + y = 3, x - y = 1  =>  x = 2, y = 1.
        let a = m(vec![vec![1, 1], vec![1, -1]]);
        let x = a.solve(&[r(3), r(1)]).unwrap();
        assert_eq!(x, vec![r(2), r(1)]);
    }

    #[test]
    fn solve_singular_returns_none() {
        let a = m(vec![vec![1, 2], vec![2, 4]]);
        assert!(a.solve(&[r(1), r(2)]).is_none());
    }

    #[test]
    fn inverse_roundtrip() {
        let a = m(vec![vec![4, 7], vec![2, 6]]);
        let inv = a.inverse().unwrap();
        assert_eq!(a.mul(&inv), Matrix::identity(2, &r(1)));
        assert_eq!(inv.mul(&a), Matrix::identity(2, &r(1)));
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let a = m(vec![vec![1, 1], vec![1, 0]]); // Fibonacci matrix
        let a5 = a.pow(5);
        // F6 = 8, F5 = 5.
        assert_eq!(*a5.get(0, 0), r(8));
        assert_eq!(*a5.get(0, 1), r(5));
        assert_eq!(a.pow(0), Matrix::identity(2, &r(1)));
    }

    #[test]
    fn kronecker_shape_and_values() {
        let a = m(vec![vec![1, 2]]);
        let b = m(vec![vec![3], vec![4]]);
        let k = a.kronecker(&b);
        assert_eq!((k.nrows(), k.ncols()), (2, 2));
        assert_eq!(*k.get(0, 0), r(3));
        assert_eq!(*k.get(1, 1), r(8));
    }

    #[test]
    fn kronecker_det_identity() {
        // det(A ⊗ B) = det(A)^n det(B)^m for A m×m, B n×n.
        let a = m(vec![vec![1, 2], vec![3, 4]]);
        let b = m(vec![vec![2, 1], vec![1, 1]]);
        let k = a.kronecker(&b);
        let expect = a.det().pow(2) * b.det().pow(2);
        assert_eq!(k.det(), expect);
    }

    #[test]
    fn vandermonde_invertible_iff_distinct() {
        let v = vandermonde(&[r(1), r(2), r(3)]);
        assert!(v.is_invertible());
        let v2 = vandermonde(&[r(1), r(2), r(2)]);
        assert!(!v2.is_invertible());
    }

    #[test]
    fn transpose_involution() {
        let a = m(vec![vec![1, 2, 3], vec![4, 5, 6]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn mul_vec_matches_mul() {
        let a = m(vec![vec![1, 2], vec![3, 4]]);
        let v = vec![r(5), r(6)];
        assert_eq!(a.mul_vec(&v), vec![r(17), r(39)]);
    }

    #[test]
    fn quadext_matrix_det() {
        use gfomc_arith::QuadExt;
        let d = Rational::from_ints(2, 1);
        let s = QuadExt::sqrt_d(d.clone());
        let one = s.one_like();
        // [[1, √2], [√2, 1]] has det 1 - 2 = -1.
        let a = Matrix::from_rows(vec![
            vec![one.clone(), s.clone()],
            vec![s.clone(), one.clone()],
        ]);
        assert_eq!(a.det().to_rational(), Some(Rational::from(-1i64)));
    }
}
