//! # gfomc-linalg
//!
//! Exact dense linear algebra over fields, as needed by the Kenig–Suciu
//! hardness machinery:
//!
//! * [`Matrix`] over any [`Field`] — Gaussian elimination (determinant, rank,
//!   solve, inverse), matrix powers, Kronecker products;
//! * [`vandermonde`] — the Vandermonde systems of Lemma 3.7;
//! * instantiations over [`gfomc_arith::Rational`] (big-matrix solving in the
//!   reduction) and [`gfomc_arith::QuadExt`] (eigen-decompositions of the 2×2
//!   transfer matrix).

pub mod field;
pub mod matrix;

pub use field::Field;
pub use matrix::{vandermonde, Matrix};

#[cfg(test)]
mod proptests {
    use super::*;
    use gfomc_arith::Rational;
    use proptest::prelude::*;

    fn arb_entry() -> impl Strategy<Value = Rational> {
        (-20i64..20, 1i64..6).prop_map(|(n, d)| Rational::from_ints(n, d))
    }

    fn arb_square(n: usize) -> impl Strategy<Value = Matrix<Rational>> {
        proptest::collection::vec(arb_entry(), n * n)
            .prop_map(move |v| Matrix::from_fn(n, n, |i, j| v[i * n + j].clone()))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn det_multiplicative(a in arb_square(3), b in arb_square(3)) {
            prop_assert_eq!(a.mul(&b).det(), &a.det() * &b.det());
        }

        #[test]
        fn det_transpose_invariant(a in arb_square(3)) {
            prop_assert_eq!(a.det(), a.transpose().det());
        }

        #[test]
        fn solve_verifies(a in arb_square(3), b in proptest::collection::vec(arb_entry(), 3)) {
            if let Some(x) = a.solve(&b) {
                let ax = a.mul_vec(&x);
                prop_assert_eq!(ax, b);
            } else {
                prop_assert!(a.det().is_zero());
            }
        }

        #[test]
        fn inverse_roundtrips(a in arb_square(3)) {
            if let Some(inv) = a.inverse() {
                prop_assert_eq!(a.mul(&inv), Matrix::identity(3, &Rational::one()));
            }
        }

        #[test]
        fn rank_bounds(a in arb_square(3)) {
            let r = a.rank();
            prop_assert!(r <= 3);
            prop_assert_eq!(r == 3, !a.det().is_zero());
        }

        #[test]
        fn pow_additive(a in arb_square(2), p in 0u32..5, q in 0u32..5) {
            prop_assert_eq!(a.pow(p).mul(&a.pow(q)), a.pow(p + q));
        }
    }
}
