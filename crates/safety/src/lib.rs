//! # gfomc-safety
//!
//! The static-analysis side of the Dalvi–Suciu/Kenig–Suciu dichotomy for
//! bipartite ∀CNF queries:
//!
//! * [`paths`] — left-right paths, safe/unsafe classification, and query
//!   *length* (Definition 2.4);
//! * [`finality`] — final queries (Definition 2.8), the hardness-preserving
//!   simplification order of Lemma 2.7, and Type I/II classification;
//! * [`forbidden`] — forbidden Type-II queries (Definition C.11):
//!   ubiquitous symbols and the minimal-path symbol condition;
//! * [`lifted`] — the PTIME lifted evaluator for safe queries (the easy side
//!   of Theorem 2.1): independence across symbol components, product over
//!   the one-sided domain, Shannon + inclusion–exclusion per element;
//! * [`cost`] — worst-case Shannon-compilation cost estimates for lineages,
//!   the runtime half of the dichotomy verdict consumed by the
//!   `gfomc-engine` query router.

pub mod cost;
pub mod finality;
pub mod forbidden;
pub mod lifted;
pub mod paths;

pub use cost::{circuit_cost_estimate, CircuitCostEstimate, ParseCostError};
pub use finality::{
    classify, is_final, is_final_type_i, is_final_type_ii, simplify_to_final, Classification,
};
pub use forbidden::{
    all_minimal_left_right_paths, is_forbidden_type_ii, left_ubiquitous_symbols,
    right_ubiquitous_symbols,
};
pub use lifted::{lifted_probability, UnsafeQueryError};
pub use paths::{
    clause_role, is_safe, is_unsafe, query_length, shortest_left_right_path, ClauseRole,
};

#[cfg(test)]
mod dichotomy_tests {
    //! Cross-checks tying the two sides of the dichotomy together.
    use super::*;
    use gfomc_arith::Rational;
    use gfomc_query::{catalog, BipartiteQuery, Pred};
    use gfomc_tid::{probability, Tid, Tuple};

    fn uniform_tid(q: &BipartiteQuery, nu: u32, nv: u32) -> Tid {
        let left: Vec<u32> = (0..nu).collect();
        let right: Vec<u32> = (100..100 + nv).collect();
        let mut tid = Tid::all_present(left.clone(), right.clone());
        for &u in &left {
            tid.set_prob(Tuple::R(u), Rational::one_half());
            for &v in &right {
                for s in q.binary_symbols() {
                    tid.set_prob(Tuple::S(s, u, v), Rational::one_half());
                }
            }
        }
        for &v in &right {
            tid.set_prob(Tuple::T(v), Rational::one_half());
        }
        tid
    }

    #[test]
    fn lifted_succeeds_exactly_on_safe_queries() {
        let tidless: Vec<(&str, BipartiteQuery)> = catalog::unsafe_catalog()
            .into_iter()
            .chain(catalog::safe_catalog())
            .collect();
        for (name, q) in tidless {
            let tid = uniform_tid(&q, 2, 2);
            let lifted = lifted_probability(&q, &tid);
            assert_eq!(lifted.is_ok(), is_safe(&q), "{name}");
        }
    }

    #[test]
    fn every_final_query_becomes_safe_after_any_rewriting() {
        // Definition 2.8, checked via the classifier on the whole catalog.
        for (name, q) in catalog::unsafe_catalog() {
            if is_final(&q) {
                for p in q.symbols() {
                    assert!(is_safe(&q.set_symbol(p, false)), "{name}[{p}:=0]");
                    assert!(is_safe(&q.set_symbol(p, true)), "{name}[{p}:=1]");
                }
            }
        }
    }

    #[test]
    fn rewriting_preserves_probability_oracle_consistency() {
        // Lemma 2.7 (1) in its observable form: Q[S:=1] evaluated on ∆
        // equals Q evaluated on ∆ with all S-tuples set to probability 1.
        let q = catalog::hk(2);
        let tid = uniform_tid(&q, 2, 2);
        for s in q.binary_symbols() {
            for value in [false, true] {
                let q2 = q.set_symbol(Pred::S(s), value);
                let mut tid2 = tid.clone();
                for &u in tid.left_domain() {
                    for &v in tid.right_domain() {
                        tid2.set_prob(
                            Tuple::S(s, u, v),
                            if value {
                                Rational::one()
                            } else {
                                Rational::zero()
                            },
                        );
                    }
                }
                assert_eq!(
                    probability(&q2, &tid),
                    probability(&q, &tid2),
                    "S{s} := {value}"
                );
            }
        }
    }
}
