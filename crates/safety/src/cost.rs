//! Circuit-size estimation for the dichotomy-aware query router.
//!
//! The dichotomy gives a *static* verdict (safe ⇒ lifted PTIME plan,
//! unsafe ⇒ #P-hard in general), but on the unsafe side every concrete
//! instance still admits exact evaluation by knowledge compilation — the
//! only question is whether the circuit stays affordable. This module
//! supplies the router's second input: a cheap, deterministic upper-bound
//! estimate of the Shannon-compilation cost of a lineage, so callers can
//! decide *before* compiling whether to take the exact circuit path or fall
//! back to the `gfomc-approx` sampler.
//!
//! The estimate is deliberately pessimistic — the worst case of Shannon
//! expansion is one cofactor per variable subset, i.e. `2^vars` per
//! connected component, and component decomposition is the one structural
//! saving the compiler is guaranteed to realize. A pessimistic bound routes
//! borderline lineages to the sampler, which degrades an exact answer to a
//! (ε, δ)-approximate one but never stalls the engine on an exponential
//! compilation.

use gfomc_logic::Cnf;

/// Shannon-cost summary of a lineage CNF, produced by
/// [`circuit_cost_estimate`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CircuitCostEstimate {
    /// Number of distinct variables (uncertain tuples) in the lineage.
    pub vars: usize,
    /// Number of clauses after canonicalization.
    pub clauses: usize,
    /// Number of variable-disjoint connected components.
    pub components: usize,
    /// Saturating worst-case gate-count bound:
    /// `Σ_components clauses_c · 2^min(vars_c, 40)`.
    pub estimated_nodes: u64,
}

impl CircuitCostEstimate {
    /// True iff the estimated compilation cost fits within `budget` gates.
    pub fn within(&self, budget: u64) -> bool {
        self.estimated_nodes <= budget
    }
}

/// Estimates the worst-case Shannon-compilation cost of a monotone CNF.
///
/// Per connected component the bound is `clauses · 2^vars` (each of the up
/// to `2^vars` cofactors touches every clause at most once), with the
/// exponent clamped at 40 so the sum saturates instead of overflowing;
/// components are independent, so their bounds add. Constants cost nothing:
/// `⊤` has no components and estimate 0, `⊥` is a single empty component
/// with estimate 1.
///
/// The bound is loose on structured lineages (memoization collapses
/// cofactors massively on block databases), but it is *monotone* in lineage
/// size and zero-cost to compute — exactly what a routing heuristic needs.
pub fn circuit_cost_estimate(f: &Cnf) -> CircuitCostEstimate {
    let vars = f.vars().len();
    let clauses = f.len();
    let comps = f.components();
    let mut estimated: u64 = 0;
    for c in &comps {
        let cv = c.vars().len().min(40) as u32;
        let per = (c.len().max(1) as u64).saturating_mul(1u64 << cv);
        estimated = estimated.saturating_add(per);
    }
    CircuitCostEstimate {
        vars,
        clauses,
        components: comps.len(),
        estimated_nodes: estimated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfomc_logic::{Clause, Var};

    fn cl(vs: &[u32]) -> Clause {
        Clause::new(vs.iter().map(|&i| Var(i)))
    }

    #[test]
    fn constants_are_free() {
        let top = circuit_cost_estimate(&Cnf::top());
        assert_eq!(top.estimated_nodes, 0);
        assert_eq!(top.components, 0);
        let bot = circuit_cost_estimate(&Cnf::bottom());
        assert_eq!(bot.components, 1);
        assert_eq!(bot.estimated_nodes, 1);
    }

    #[test]
    fn components_add_instead_of_multiplying() {
        // Two disjoint 2-var clauses: 1·2² + 1·2² = 8, not 1·2⁴ = 16.
        let f = Cnf::new([cl(&[1, 2]), cl(&[3, 4])]);
        let est = circuit_cost_estimate(&f);
        assert_eq!(est.components, 2);
        assert_eq!(est.estimated_nodes, 8);
        let connected = Cnf::new([cl(&[1, 2]), cl(&[2, 3]), cl(&[3, 4])]);
        assert_eq!(circuit_cost_estimate(&connected).estimated_nodes, 3 << 4);
    }

    #[test]
    fn estimate_is_monotone_in_growth() {
        let small = Cnf::new((0..4).map(|i| cl(&[i, i + 1])));
        let big = Cnf::new((0..12).map(|i| cl(&[i, i + 1])));
        assert!(
            circuit_cost_estimate(&small).estimated_nodes
                < circuit_cost_estimate(&big).estimated_nodes
        );
    }

    #[test]
    fn exponent_clamp_saturates_gracefully() {
        // A 60-variable clique of clauses must not overflow.
        let f = Cnf::new((0..60).map(|i| cl(&[i, (i + 1) % 60])));
        let est = circuit_cost_estimate(&f);
        assert_eq!(est.vars, 60);
        assert_eq!(est.estimated_nodes, 60u64 << 40);
    }

    #[test]
    fn within_compares_against_budget() {
        let f = Cnf::new([cl(&[1, 2])]);
        let est = circuit_cost_estimate(&f);
        assert!(est.within(4));
        assert!(!est.within(3));
    }
}
