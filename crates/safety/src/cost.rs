//! Circuit-size estimation for the dichotomy-aware query router.
//!
//! The dichotomy gives a *static* verdict (safe ⇒ lifted PTIME plan,
//! unsafe ⇒ #P-hard in general), but on the unsafe side every concrete
//! instance still admits exact evaluation by knowledge compilation — the
//! only question is whether the circuit stays affordable. This module
//! supplies the router's second input: a cheap, deterministic upper-bound
//! estimate of the Shannon-compilation cost of a lineage, so callers can
//! decide *before* compiling whether to take the exact circuit path or fall
//! back to the `gfomc-approx` sampler.
//!
//! Two bounds are reported. [`CircuitCostEstimate::worst_case_nodes`] is
//! the monolithic classic: `Σ_components clauses_c · 2^vars_c` — one
//! cofactor per variable subset, with component decomposition the only
//! structural saving credited. That bound is so loose on block-structured
//! lineages that it used to misroute compilable instances to the sampler,
//! degrading exact answers to (ε, δ)-approximate ones for no reason.
//!
//! [`CircuitCostEstimate::estimated_nodes`] tightens it by *simulating the
//! decomposition the compiler will actually perform*, without building any
//! circuit: recursively split into variable-disjoint components (costs
//! **add**), Shannon-branch single components on exactly the variable the
//! compiler itself will branch on ([`Cnf::branching_var`] — the cheapest
//! split the compiler realizes, which is what makes the min over its two
//! cofactors a *sound* upper bound of the real expansion), and only at a
//! fixed work budget or at small subformulas fall back to the
//! `clauses · 2^vars` leaf bound. Restriction exposes the component
//! structure that the monolithic bound cannot see — on the paper's block
//! databases a handful of splits decouples the `S_s(u, v)` cells and the
//! bound collapses from `2^(#tuples)` to a low-degree polynomial. The
//! estimate stays a bound on the *memoization-free* expansion tree along
//! the compiler's actual branch choices, so it over-approximates every
//! circuit the (memoizing) compiler can produce. (Minimizing over
//! *alternative* branch variables was considered and rejected: the
//! compiler does not take the min, so such an estimate could undershoot
//! the real cost and route an exponential compilation to the exact path —
//! the one failure this module exists to prevent.)
//!
//! **Units.** Both bounds are denominated in *flat gates* — entries of the
//! struct-of-arrays [`gfomc_logic::FlatCircuit`] the engine actually
//! caches, one per compiled Shannon node (constants, leaves, products,
//! decisions alike), exactly [`gfomc_logic::FlatCircuit::gate_count`].
//! The engine's cost-aware cache admission prices entries in the same
//! unit, so a budget passed to [`CircuitCostEstimate::within`] and a
//! cache capacity measured in gates are directly comparable.

use gfomc_logic::Cnf;

/// Exponent clamp: beyond 2^40 estimated gates every budget is blown, so
/// the arithmetic saturates instead of overflowing.
const EXPONENT_CLAMP: usize = 40;

/// Total decision expansions the refined descent may spend before falling
/// back to leaf bounds — keeps the estimate zero-cost relative to an
/// actual compilation, whatever the lineage.
const WORK_BUDGET: u32 = 600;

/// Single components at most this many variables take the closed-form leaf
/// bound instead of recursing further.
const LEAF_VARS: usize = 6;

/// Shannon-cost summary of a lineage CNF, produced by
/// [`circuit_cost_estimate`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CircuitCostEstimate {
    /// Number of distinct variables (uncertain tuples) in the lineage.
    pub vars: usize,
    /// Number of clauses after canonicalization.
    pub clauses: usize,
    /// Number of variable-disjoint connected components.
    pub components: usize,
    /// The refined bound, in flat-gate units (see the module docs): an
    /// upper bound on [`gfomc_logic::FlatCircuit::gate_count`] of the
    /// compiled lineage, simulated per-component recursively along the
    /// compiler's own branch variable
    /// ([`gfomc_logic::Cnf::branching_var`] — never a min over other
    /// candidates, which would be unsound; see the module docs),
    /// saturating at 2^40 per term.
    pub estimated_nodes: u64,
    /// The monolithic worst-case bound
    /// `Σ_components clauses_c · 2^min(vars_c, 40)` — kept for reporting
    /// and for measuring how much the refinement buys.
    pub worst_case_nodes: u64,
}

impl CircuitCostEstimate {
    /// True iff the refined estimate fits within `budget` gates.
    pub fn within(&self, budget: u64) -> bool {
        self.estimated_nodes <= budget
    }

    /// The refined bound in the unit the engine's cache admission charges:
    /// flat gates ([`gfomc_logic::FlatCircuit::gate_count`]). An alias of
    /// [`CircuitCostEstimate::estimated_nodes`] that names the unit at the
    /// call site.
    pub fn flat_gate_units(&self) -> u64 {
        self.estimated_nodes
    }
}

impl core::fmt::Display for CircuitCostEstimate {
    /// The stable wire form of a cost estimate, round-tripping through
    /// [`FromStr`](core::str::FromStr):
    /// `vars 9 clauses 12 components 1 estimated 420 worst 49152`.
    /// Every field is a decimal integer, so the round-trip is exact.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "vars {} clauses {} components {} estimated {} worst {}",
            self.vars, self.clauses, self.components, self.estimated_nodes, self.worst_case_nodes
        )
    }
}

/// Failure to parse a [`CircuitCostEstimate`] from its wire form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseCostError(pub String);

impl core::fmt::Display for ParseCostError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "malformed cost estimate: {}", self.0)
    }
}

impl std::error::Error for ParseCostError {}

impl core::str::FromStr for CircuitCostEstimate {
    type Err = ParseCostError;

    /// Parses the exact [`Display`](core::fmt::Display) form back; field
    /// order is fixed and all five fields are required.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut words = s.split_whitespace();
        let mut field = |name: &str| -> Result<u64, ParseCostError> {
            match (words.next(), words.next()) {
                (Some(key), Some(value)) if key == name => value
                    .parse::<u64>()
                    .map_err(|_| ParseCostError(format!("bad value for '{name}': {value}"))),
                _ => Err(ParseCostError(format!("expected field '{name}'"))),
            }
        };
        let vars = field("vars")? as usize;
        let clauses = field("clauses")? as usize;
        let components = field("components")? as usize;
        let estimated_nodes = field("estimated")?;
        let worst_case_nodes = field("worst")?;
        if words.next().is_some() {
            return Err(ParseCostError("trailing input".into()));
        }
        Ok(CircuitCostEstimate {
            vars,
            clauses,
            components,
            estimated_nodes,
            worst_case_nodes,
        })
    }
}

/// Estimates the worst-case Shannon-compilation cost of a monotone CNF.
///
/// Constants cost nothing: `⊤` has no components and estimate 0, `⊥` is a
/// single empty component with estimate 1. Everything else gets both the
/// monolithic per-component bound and the refined recursive bound (see the
/// module docs); [`CircuitCostEstimate::within`] — the router's question —
/// is answered by the refined one.
///
/// Deterministic and cheap by construction: the descent performs a fixed
/// maximum number of decision expansions regardless of the lineage, then
/// degrades to the closed-form leaf bound.
pub fn circuit_cost_estimate(f: &Cnf) -> CircuitCostEstimate {
    let vars = f.vars().len();
    let clauses = f.len();
    let comps = f.components();
    let worst_case = leaf_bound(f);
    let mut work = WORK_BUDGET;
    let estimated = refined_bound(f, &mut work);
    CircuitCostEstimate {
        vars,
        clauses,
        components: comps.len(),
        estimated_nodes: estimated.min(worst_case),
        worst_case_nodes: worst_case,
    }
}

/// `2^min(e, 40)`, saturating.
fn pow2_clamped(e: usize) -> u64 {
    1u64 << e.min(EXPONENT_CLAMP)
}

/// The closed-form bound `Σ_components clauses_c · 2^min(vars_c, 40)`:
/// each of the up to `2^vars` cofactors of a component touches every
/// clause at most once; components are independent, so their bounds add.
fn leaf_bound(f: &Cnf) -> u64 {
    if f.is_true() {
        return 0;
    }
    if f.is_false() {
        return 1;
    }
    let comps = f.components();
    if comps.len() == 1 {
        return (f.len().max(1) as u64).saturating_mul(pow2_clamped(f.vars().len()));
    }
    comps
        .iter()
        .map(|c| (c.len().max(1) as u64).saturating_mul(pow2_clamped(c.vars().len())))
        .fold(0u64, u64::saturating_add)
}

/// The refined recursive bound, following exactly the branch variable the
/// compiler will use ([`Cnf::branching_var`]) so the result is a sound
/// upper bound of the compiler's memoization-free expansion. `work` is
/// the shared expansion budget; when it runs dry, subtrees fall back to
/// [`leaf_bound`].
fn refined_bound(f: &Cnf, work: &mut u32) -> u64 {
    if f.is_true() || f.is_false() {
        return 1;
    }
    let comps = f.components();
    if comps.len() > 1 {
        // Independent components: one product gate plus the sum of parts.
        return comps
            .iter()
            .map(|c| refined_bound(c, work))
            .fold(1u64, u64::saturating_add);
    }
    if f.vars().len() <= LEAF_VARS || *work == 0 {
        return leaf_bound(f);
    }
    *work -= 1;
    let v = f.branching_var().expect("non-constant CNF has variables");
    let hi = refined_bound(&f.restrict(v, true), work);
    let lo = refined_bound(&f.restrict(v, false), work);
    let branched = hi.saturating_add(lo).saturating_add(1);
    // The refinement may never exceed what the closed form promises.
    branched.min(leaf_bound(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfomc_logic::{Clause, Var};

    fn cl(vs: &[u32]) -> Clause {
        Clause::new(vs.iter().map(|&i| Var(i)))
    }

    #[test]
    fn constants_are_free() {
        let top = circuit_cost_estimate(&Cnf::top());
        assert_eq!(top.estimated_nodes, 0);
        assert_eq!(top.worst_case_nodes, 0);
        assert_eq!(top.components, 0);
        let bot = circuit_cost_estimate(&Cnf::bottom());
        assert_eq!(bot.components, 1);
        assert_eq!(bot.estimated_nodes, 1);
    }

    #[test]
    fn components_add_instead_of_multiplying() {
        // Two disjoint 2-var clauses: 1·2² + 1·2² = 8, not 1·2⁴ = 16.
        let f = Cnf::new([cl(&[1, 2]), cl(&[3, 4])]);
        let est = circuit_cost_estimate(&f);
        assert_eq!(est.components, 2);
        assert_eq!(est.worst_case_nodes, 8);
        assert!(est.estimated_nodes <= 8);
        let connected = Cnf::new([cl(&[1, 2]), cl(&[2, 3]), cl(&[3, 4])]);
        assert_eq!(circuit_cost_estimate(&connected).worst_case_nodes, 3 << 4);
    }

    #[test]
    fn refined_bound_tightens_connected_formulas() {
        // A 14-var chain is connected, so the monolithic bound pays 2^14 —
        // but one Shannon split decouples it into two short chains, which
        // the refined descent discovers.
        let f = Cnf::new((0..13).map(|i| cl(&[i, i + 1])));
        let est = circuit_cost_estimate(&f);
        assert_eq!(est.components, 1);
        assert!(
            est.estimated_nodes < est.worst_case_nodes / 4,
            "refined {} vs worst case {}",
            est.estimated_nodes,
            est.worst_case_nodes
        );
    }

    #[test]
    fn refined_bound_never_exceeds_worst_case() {
        for n in [2u32, 5, 9, 14, 20] {
            let chain = Cnf::new((0..n).map(|i| cl(&[i, i + 1])));
            let est = circuit_cost_estimate(&chain);
            assert!(est.estimated_nodes <= est.worst_case_nodes, "chain {n}");
            let clique = Cnf::new((0..n).flat_map(|i| (i + 1..n).map(move |j| cl(&[i, j]))));
            let est = circuit_cost_estimate(&clique);
            assert!(est.estimated_nodes <= est.worst_case_nodes, "clique {n}");
        }
    }

    #[test]
    fn estimate_is_monotone_in_growth() {
        let small = Cnf::new((0..4).map(|i| cl(&[i, i + 1])));
        let big = Cnf::new((0..12).map(|i| cl(&[i, i + 1])));
        assert!(
            circuit_cost_estimate(&small).estimated_nodes
                < circuit_cost_estimate(&big).estimated_nodes
        );
    }

    #[test]
    fn exponent_clamp_saturates_gracefully() {
        // A 60-variable clique of clauses must not overflow.
        let f = Cnf::new((0..60).map(|i| cl(&[i, (i + 1) % 60])));
        let est = circuit_cost_estimate(&f);
        assert_eq!(est.vars, 60);
        assert_eq!(est.worst_case_nodes, 60u64 << 40);
        assert!(est.estimated_nodes > 0);
        assert!(est.estimated_nodes <= est.worst_case_nodes);
    }

    #[test]
    fn within_compares_against_the_refined_bound() {
        let f = Cnf::new([cl(&[1, 2])]);
        let est = circuit_cost_estimate(&f);
        assert_eq!(est.estimated_nodes, 4);
        assert!(est.within(4));
        assert!(!est.within(3));
    }

    #[test]
    fn estimate_bounds_the_flat_gate_count() {
        // The estimate is denominated in flat gates: for every non-constant
        // formula it must dominate the gate count of the circuit the
        // compiler actually builds — the quantity the engine cache charges.
        // (Constants are excluded: the flat pool pre-seeds the two constant
        // gates even when the estimate rounds them to 0 or 1.)
        use gfomc_logic::Circuit;
        let catalog = [
            Cnf::new([cl(&[1, 2])]),
            Cnf::new([cl(&[1, 2]), cl(&[3, 4])]),
            Cnf::new((0..9).map(|i| cl(&[i, i + 1]))),
            Cnf::new((0..5).flat_map(|i| (i + 1..5).map(move |j| cl(&[i, j])))),
            Cnf::new([cl(&[1]), cl(&[2, 3]), cl(&[3, 4, 5])]),
        ];
        for f in &catalog {
            let est = circuit_cost_estimate(f);
            let gates = Circuit::compile(f).flatten().gate_count() as u64;
            assert!(
                gates <= est.estimated_nodes,
                "{f:?}: {gates} flat gates vs estimate {}",
                est.estimated_nodes
            );
            assert_eq!(est.flat_gate_units(), est.estimated_nodes);
        }
    }
}
