//! Left-right paths and the safe/unsafe dichotomy for bipartite queries
//! (Definition 2.4).
//!
//! A bipartite query is **unsafe** iff some left clause is connected to some
//! right clause by a sequence of clauses in which consecutive clauses share
//! a relational symbol; the *length* of the query is the minimal number of
//! steps `k` over all such paths `C₀, C₁, …, C_k`.
//!
//! `H₀ = R(x) ∨ S(x,y) ∨ T(y)` is handled by treating a clause that mentions
//! both unary symbols as simultaneously left and right (a left-right path of
//! length 0), consistent with its #P-hardness (Theorem 2.5).

use gfomc_query::{BipartiteQuery, Clause, Pred};
use std::collections::VecDeque;

/// Role of a clause in path analysis.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ClauseRole {
    /// Counts as a left endpoint (mentions `R` or is a Type-II left clause).
    pub leftish: bool,
    /// Counts as a right endpoint (mentions `T` or is a Type-II right clause).
    pub rightish: bool,
}

/// Determines whether a clause can serve as a left and/or right endpoint.
pub fn clause_role(c: &Clause) -> ClauseRole {
    let leftish = c.mentions(Pred::R) || c.is_left();
    let rightish = c.mentions(Pred::T) || c.is_right();
    ClauseRole { leftish, rightish }
}

/// Finds the minimal left-right path, returned as clause indices
/// `[C₀, …, C_k]`; `None` if the query is safe (no such path).
pub fn shortest_left_right_path(q: &BipartiteQuery) -> Option<Vec<usize>> {
    let clauses = q.clauses();
    let roles: Vec<ClauseRole> = clauses.iter().map(clause_role).collect();
    // BFS from all left-ish clauses simultaneously.
    let mut prev: Vec<Option<usize>> = vec![None; clauses.len()];
    let mut dist: Vec<Option<usize>> = vec![None; clauses.len()];
    let mut queue = VecDeque::new();
    for (i, role) in roles.iter().enumerate() {
        if role.leftish {
            dist[i] = Some(0);
            queue.push_back(i);
        }
    }
    let shares_symbol = |i: usize, j: usize| -> bool {
        let si = clauses[i].symbols();
        clauses[j].symbols().iter().any(|p| si.contains(p))
    };
    let mut goal = None;
    'bfs: while let Some(i) = queue.pop_front() {
        if roles[i].rightish {
            goal = Some(i);
            break 'bfs;
        }
        for j in 0..clauses.len() {
            if dist[j].is_none() && shares_symbol(i, j) {
                dist[j] = Some(dist[i].unwrap() + 1);
                prev[j] = Some(i);
                queue.push_back(j);
            }
        }
    }
    let goal = goal?;
    let mut path = vec![goal];
    let mut cur = goal;
    while let Some(p) = prev[cur] {
        path.push(p);
        cur = p;
    }
    path.reverse();
    Some(path)
}

/// True iff the query is unsafe per Definition 2.4 (a left-right path
/// exists). The constants `true`/`false` are safe.
pub fn is_unsafe(q: &BipartiteQuery) -> bool {
    if q.is_true() || q.is_false() {
        return false;
    }
    shortest_left_right_path(q).is_some()
}

/// True iff the query is safe (the complement of [`is_unsafe`]).
pub fn is_safe(q: &BipartiteQuery) -> bool {
    !is_unsafe(q)
}

/// The *length* of an unsafe query: the number of steps in the shortest
/// left-right path (Definition 2.4). `None` for safe queries.
pub fn query_length(q: &BipartiteQuery) -> Option<usize> {
    shortest_left_right_path(q).map(|p| p.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfomc_query::catalog;

    #[test]
    fn h0_is_unsafe_length_zero() {
        let q = catalog::h0();
        assert!(is_unsafe(&q));
        assert_eq!(query_length(&q), Some(0));
    }

    #[test]
    fn h1_is_unsafe_length_one() {
        assert_eq!(query_length(&catalog::h1()), Some(1));
    }

    #[test]
    fn hk_length_matches_k() {
        for k in 1..=5 {
            assert_eq!(query_length(&catalog::hk(k)), Some(k), "h{k}");
        }
    }

    #[test]
    fn catalog_safety_labels() {
        for (name, q) in catalog::unsafe_catalog() {
            assert!(is_unsafe(&q), "{name} should be unsafe");
        }
        for (name, q) in catalog::safe_catalog() {
            assert!(is_safe(&q), "{name} should be safe");
        }
    }

    #[test]
    fn c9_and_c15_lengths() {
        assert_eq!(query_length(&catalog::example_c9()), Some(2));
        assert_eq!(query_length(&catalog::example_c15()), Some(2));
    }

    #[test]
    fn constants_are_safe() {
        assert!(is_safe(&gfomc_query::BipartiteQuery::top()));
        assert!(is_safe(&gfomc_query::BipartiteQuery::bottom()));
    }

    #[test]
    fn path_endpoints_have_roles() {
        let q = catalog::type_i_braided();
        let path = shortest_left_right_path(&q).unwrap();
        let clauses = q.clauses();
        assert!(clause_role(&clauses[*path.first().unwrap()]).leftish);
        assert!(clause_role(&clauses[*path.last().unwrap()]).rightish);
        // Consecutive clauses share a symbol.
        for w in path.windows(2) {
            let a = clauses[w[0]].symbols();
            assert!(clauses[w[1]].symbols().iter().any(|p| a.contains(p)));
        }
    }
}
