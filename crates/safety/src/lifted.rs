//! Lifted (PTIME) evaluation of safe bipartite queries.
//!
//! This is the tractable side of the dichotomy (Theorem 2.1). A bipartite
//! query is safe iff no symbol-connected component of its clause set has
//! both left and right clauses (§2, discussion before Definition 2.4). Then:
//!
//! * components use disjoint symbols, hence disjoint tuples, hence are
//!   independent: `Pr(Q) = ∏ Pr(Q_component)`;
//! * a component with no right clauses has `x` in every atom, so the
//!   groundings `Q[a/x]` are independent across `a ∈ U`:
//!   `Pr = ∏_a Pr(Q[a/x])` — and each `Pr(Q[a/x])` is computed by Shannon
//!   expansion on `R(a)` followed by inclusion–exclusion over the
//!   `∀y`-subclause choices, whose events factorize over `b ∈ V`;
//! * a component with no left clauses is symmetric.
//!
//! The inclusion–exclusion is exponential only in the *query* size (number
//! of subclause choices), never in the database — the hallmark of lifted
//! inference.

use crate::paths::clause_role;
use gfomc_arith::Rational;
use gfomc_logic::{Clause as PropClause, Cnf, Compiler, NodeId, Var, WeightsFromFn};
use gfomc_query::{Atom, BipartiteQuery, CVar, Clause, Pred};
use gfomc_tid::{Tid, Tuple};
use std::collections::{BTreeSet, HashMap};

/// Error returned when the query is not safe (no PTIME plan exists unless
/// FP = #P, by Theorem 2.2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnsafeQueryError;

impl std::fmt::Display for UnsafeQueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "query is unsafe: no polynomial-time lifted plan exists")
    }
}

impl std::error::Error for UnsafeQueryError {}

/// Evaluates a *safe* bipartite query in polynomial time in the database.
/// Returns [`UnsafeQueryError`] if the query has a left-right path.
pub fn lifted_probability(q: &BipartiteQuery, tid: &Tid) -> Result<Rational, UnsafeQueryError> {
    if q.is_false() {
        return Ok(Rational::zero());
    }
    if q.is_true() {
        return Ok(Rational::one());
    }
    let mut result = Rational::one();
    for comp in symbol_components(q) {
        let roles: Vec<_> = comp.iter().map(clause_role).collect();
        let has_left = roles.iter().any(|r| r.leftish);
        let has_right = roles.iter().any(|r| r.rightish);
        let p = match (has_left, has_right) {
            (true, true) => return Err(UnsafeQueryError),
            // No right clauses: x occurs in every atom; product over U.
            (_, false) => side_product(&comp, tid, Side::Left),
            // No left clauses: y occurs in every atom; product over V.
            (false, true) => side_product(&comp, tid, Side::Right),
        };
        result = &result * &p;
    }
    Ok(result)
}

/// Splits the clause set into symbol-connected components.
fn symbol_components(q: &BipartiteQuery) -> Vec<Vec<Clause>> {
    let clauses = q.clauses();
    let n = clauses.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let r = find(parent, parent[i]);
            parent[i] = r;
        }
        parent[i]
    }
    let mut owner: HashMap<Pred, usize> = HashMap::new();
    for (i, c) in clauses.iter().enumerate() {
        for p in c.symbols() {
            match owner.get(&p) {
                Some(&j) => {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    if ri != rj {
                        parent[ri] = rj;
                    }
                }
                None => {
                    owner.insert(p, i);
                }
            }
        }
    }
    let mut groups: std::collections::BTreeMap<usize, Vec<Clause>> = Default::default();
    for (i, c) in clauses.iter().enumerate() {
        let r = find(&mut parent, i);
        groups.entry(r).or_default().push(c.clone());
    }
    groups.into_values().collect()
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Side {
    Left,
    Right,
}

/// `∏_{a ∈ side domain} Pr(component[a/x])` for a one-sided component.
fn side_product(clauses: &[Clause], tid: &Tid, side: Side) -> Rational {
    let outer: Vec<u32> = match side {
        Side::Left => tid.left_domain().to_vec(),
        Side::Right => tid.right_domain().to_vec(),
    };
    let mut acc = Rational::one();
    for &a in &outer {
        acc = &acc * &per_element_probability(clauses, tid, side, a);
        if acc.is_zero() {
            break;
        }
    }
    acc
}

/// One clause of a one-sided component, grounded at the outer element `a`:
/// an optional unary disjunct plus `∀`-subclauses over the inner domain.
struct GroundedClause {
    /// True iff the clause contains the unary symbol (`R` on the left side).
    has_unary: bool,
    /// The symbol sets `J_ℓ` of the subclauses `∀ inner S_{J_ℓ}`.
    subclauses: Vec<BTreeSet<u32>>,
}

/// `Pr(component[a/x])` by Shannon expansion on the unary tuple followed by
/// inclusion–exclusion over subclause choices.
fn per_element_probability(clauses: &[Clause], tid: &Tid, side: Side, a: u32) -> Rational {
    let grounded: Vec<GroundedClause> = clauses.iter().map(|c| ground_one_sided(c, side)).collect();
    let unary_tuple = match side {
        Side::Left => Tuple::R(a),
        Side::Right => Tuple::T(a),
    };
    let unary_prob = tid.prob(&unary_tuple);
    let uses_unary = grounded.iter().any(|g| g.has_unary);
    let mut total = Rational::zero();
    let branches: &[bool] = if uses_unary { &[false, true] } else { &[false] };
    for &unary_true in branches {
        let weight = if !uses_unary {
            Rational::one()
        } else if unary_true {
            unary_prob.clone()
        } else {
            unary_prob.complement()
        };
        if weight.is_zero() {
            continue;
        }
        // Clauses satisfied by the unary tuple drop out.
        let active: Vec<&GroundedClause> = grounded
            .iter()
            .filter(|g| !(unary_true && g.has_unary))
            .collect();
        total = &total + &(&weight * &conjunction_of_disjunctions(&active, tid, side, a));
    }
    total
}

/// Decomposes a one-sided clause into unary flag + subclause symbol sets.
fn ground_one_sided(c: &Clause, side: Side) -> GroundedClause {
    let mut has_unary = false;
    let mut groups: std::collections::BTreeMap<CVar, BTreeSet<u32>> = Default::default();
    for atom in c.atoms() {
        match (*atom, side) {
            (Atom::R(_), Side::Left) | (Atom::T(_), Side::Right) => has_unary = true,
            (Atom::S(i, _, y), Side::Left) => {
                groups.entry(y).or_default().insert(i);
            }
            (Atom::S(i, x, _), Side::Right) => {
                groups.entry(x).or_default().insert(i);
            }
            _ => panic!("clause is not one-sided for the chosen side"),
        }
    }
    GroundedClause {
        has_unary,
        subclauses: groups.into_values().collect(),
    }
}

/// `Pr(∧_i ∨_ℓ E_{J_iℓ})` where `E_J = ∧_{b ∈ inner} S_J(a,b)` (resp.
/// `S_J(b,a)`), by DNF distribution + inclusion–exclusion. Exponential in
/// the number of DNF disjuncts (a query constant), linear in the data.
fn conjunction_of_disjunctions(
    active: &[&GroundedClause],
    tid: &Tid,
    side: Side,
    a: u32,
) -> Rational {
    // A clause with no subclauses and no unary escape is false.
    if active.iter().any(|g| g.subclauses.is_empty()) {
        return Rational::zero();
    }
    if active.is_empty() {
        return Rational::one();
    }
    // DNF disjuncts: one subclause choice per clause; each disjunct is the
    // CNF (over symbol indices) of its chosen Js.
    let mut disjuncts: Vec<Cnf> = vec![Cnf::top()];
    for g in active {
        let mut next = Vec::with_capacity(disjuncts.len() * g.subclauses.len());
        for d in &disjuncts {
            for j in &g.subclauses {
                next.push(d.and(&Cnf::of_clause(PropClause::new(j.iter().map(|&i| Var(i))))));
            }
        }
        next.sort_by_key(|c| format!("{c:?}"));
        next.dedup();
        disjuncts = next;
    }
    let n = disjuncts.len();
    assert!(
        n <= 16,
        "query has too many subclause combinations for inclusion-exclusion"
    );
    // Compile every inclusion–exclusion cell `∧_{i ∈ mask} D_i` once, into
    // one shared pool: the cells are conjunctions of subsets of the same
    // disjunct CNFs over the same symbol variables, so their cofactors
    // overlap heavily and the pool stays small.
    let mut compiler = Compiler::new();
    let roots: Vec<NodeId> = (1u32..(1u32 << n))
        .map(|mask| {
            let cell_cnf = Cnf::and_all(
                (0..n)
                    .filter(|i| mask >> i & 1 == 1)
                    .map(|i| disjuncts[i].clone()),
            );
            compiler.compile(&cell_cnf)
        })
        .collect();
    // Evaluate-many: `Pr(∀ b ∈ inner: cell holds at (a,b))` factorizes over
    // `b`, and one bottom-up pass per `b` prices *all* cells at once. The
    // pool is frozen here, so it flattens once into the struct-of-arrays
    // form and every pass runs the dense forward loop.
    let flat = compiler.finish_flat();
    let inner: Vec<u32> = match side {
        Side::Left => tid.right_domain().to_vec(),
        Side::Right => tid.left_domain().to_vec(),
    };
    let mut cell_probs = vec![Rational::one(); roots.len()];
    // Chunked so the all-zero short-circuit still fires early on sparse
    // databases, while each chunk prices every `b`-lane in one batch pass.
    for chunk in inner.chunks(16) {
        let lanes: Vec<_> = chunk
            .iter()
            .map(|&b| {
                WeightsFromFn(move |v: Var| {
                    let t = match side {
                        Side::Left => Tuple::S(v.0, a, b),
                        Side::Right => Tuple::S(v.0, b, a),
                    };
                    tid.prob(&t)
                })
            })
            .collect();
        for values in flat.evaluate_all_batch(&lanes) {
            for (acc, &root) in cell_probs.iter_mut().zip(&roots) {
                if !acc.is_zero() {
                    *acc = &*acc * values.value(root);
                }
            }
        }
        if cell_probs.iter().all(Rational::is_zero) {
            break;
        }
    }
    // Signed inclusion–exclusion sum over the nonempty subsets of disjuncts.
    let mut total = Rational::zero();
    for (mask, p) in (1u32..(1u32 << n)).zip(&cell_probs) {
        if mask.count_ones() % 2 == 1 {
            total = &total + p;
        } else {
            total = &total - p;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfomc_query::catalog;
    use gfomc_tid::probability;

    fn half() -> Rational {
        Rational::one_half()
    }

    fn uniform_tid(q: &BipartiteQuery, nu: u32, nv: u32) -> Tid {
        let left: Vec<u32> = (0..nu).collect();
        let right: Vec<u32> = (100..100 + nv).collect();
        let mut tid = Tid::all_present(left.clone(), right.clone());
        for &u in &left {
            tid.set_prob(Tuple::R(u), half());
            for &v in &right {
                for s in q.binary_symbols() {
                    tid.set_prob(Tuple::S(s, u, v), half());
                }
            }
        }
        for &v in &right {
            tid.set_prob(Tuple::T(v), half());
        }
        tid
    }

    #[test]
    fn unsafe_queries_rejected() {
        let q = catalog::h1();
        let tid = uniform_tid(&q, 1, 1);
        assert_eq!(lifted_probability(&q, &tid), Err(UnsafeQueryError));
    }

    #[test]
    fn safe_catalog_matches_wmc() {
        for (name, q) in catalog::safe_catalog() {
            for (nu, nv) in [(1, 1), (2, 2), (3, 2)] {
                let tid = uniform_tid(&q, nu, nv);
                let lifted = lifted_probability(&q, &tid).expect(name);
                let exact = probability(&q, &tid);
                assert_eq!(lifted, exact, "{name} at {nu}x{nv}");
            }
        }
    }

    #[test]
    fn safe_type_ii_left_only() {
        // ∀x (∀y S0 ∨ ∀y S1): safe (no right clauses), inclusion-exclusion
        // must handle the two subclauses.
        let q = BipartiteQuery::new([gfomc_query::Clause::left_ii(&[&[0], &[1]])]);
        for (nu, nv) in [(1, 2), (2, 2), (2, 3)] {
            let tid = uniform_tid(&q, nu, nv);
            let lifted = lifted_probability(&q, &tid).unwrap();
            let exact = probability(&q, &tid);
            assert_eq!(lifted, exact, "{nu}x{nv}");
        }
    }

    #[test]
    fn safe_right_only_component() {
        // ∀y (S0 ∨ T): safe, product over V.
        let q = BipartiteQuery::new([gfomc_query::Clause::right_i([0])]);
        let tid = uniform_tid(&q, 2, 3);
        assert_eq!(lifted_probability(&q, &tid).unwrap(), probability(&q, &tid));
    }

    #[test]
    fn middle_only_component() {
        // ∀x∀y (S0 ∨ S1): safe; treated as a left-side product.
        let q = BipartiteQuery::new([gfomc_query::Clause::middle([0, 1])]);
        let tid = uniform_tid(&q, 3, 2);
        assert_eq!(lifted_probability(&q, &tid).unwrap(), probability(&q, &tid));
    }

    #[test]
    fn rewriting_of_unsafe_query_evaluates() {
        // H2[S0 := 1] is safe; its lifted value must match exact WMC.
        let q = catalog::hk(2).set_symbol(Pred::S(0), true);
        let tid = uniform_tid(&catalog::hk(2), 2, 2);
        assert_eq!(lifted_probability(&q, &tid).unwrap(), probability(&q, &tid));
    }

    #[test]
    fn nonuniform_probabilities() {
        let q = catalog::safe_no_right();
        let mut tid = uniform_tid(&q, 2, 2);
        tid.set_prob(Tuple::R(0), Rational::zero());
        tid.set_prob(Tuple::S(0, 0, 100), Rational::from_ints(1, 3));
        tid.set_prob(Tuple::S(1, 1, 101), Rational::one());
        assert_eq!(lifted_probability(&q, &tid).unwrap(), probability(&q, &tid));
    }

    #[test]
    fn constants() {
        let tid = uniform_tid(&catalog::h1(), 1, 1);
        assert_eq!(
            lifted_probability(&BipartiteQuery::top(), &tid),
            Ok(Rational::one())
        );
        assert_eq!(
            lifted_probability(&BipartiteQuery::bottom(), &tid),
            Ok(Rational::zero())
        );
    }

    #[test]
    fn scales_to_large_domains() {
        // The whole point: 30×30 is far beyond brute force but instant for
        // the lifted plan.
        let q = catalog::safe_three_components();
        let tid = uniform_tid(&q, 30, 30);
        let p = lifted_probability(&q, &tid).unwrap();
        assert!(p.is_probability());
        assert!(!p.is_zero());
    }
}
