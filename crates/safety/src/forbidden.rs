//! Forbidden Type-II queries (Definition C.11) and ubiquitous symbols.
//!
//! A binary symbol is *left-ubiquitous* if it occurs in every subclause of
//! every left clause (symmetrically on the right). A final Type-II query is
//! **forbidden** if on every minimal-length left-right path `C₀, …, C_k`,
//! every symbol of `C₀` is left-ubiquitous or occurs in `C₁`, and every
//! symbol of `C_k` is right-ubiquitous or occurs in `C_{k−1}`. Forbidden
//! queries are the targets of the Appendix C hardness proof; non-forbidden
//! final queries are first simplified by shattering
//! (`gfomc_core::shattering`).

use crate::finality::is_final_type_ii;
use crate::paths::{clause_role, query_length};
use gfomc_query::{BipartiteQuery, ClauseShape, Pred};
use std::collections::BTreeSet;

/// The left-ubiquitous binary symbols: those in every subclause of every
/// left clause. Empty if there are no left clauses.
pub fn left_ubiquitous_symbols(q: &BipartiteQuery) -> BTreeSet<u32> {
    intersect_subclauses(q, true)
}

/// The right-ubiquitous binary symbols.
pub fn right_ubiquitous_symbols(q: &BipartiteQuery) -> BTreeSet<u32> {
    intersect_subclauses(q, false)
}

fn intersect_subclauses(q: &BipartiteQuery, left: bool) -> BTreeSet<u32> {
    let mut result: Option<BTreeSet<u32>> = None;
    for c in q.clauses() {
        let subclauses: Vec<BTreeSet<u32>> = match (c.shape(), left) {
            (ClauseShape::LeftI(j), true) | (ClauseShape::RightI(j), false) => vec![j],
            (ClauseShape::LeftII(subs), true) | (ClauseShape::RightII(subs), false) => subs,
            _ => continue,
        };
        for j in subclauses {
            result = Some(match result {
                None => j,
                Some(acc) => acc.intersection(&j).copied().collect(),
            });
        }
    }
    result.unwrap_or_default()
}

/// Enumerates all minimal-length left-right paths (as clause index
/// sequences). The clause graph is small, so plain DFS over the BFS layer
/// structure suffices.
pub fn all_minimal_left_right_paths(q: &BipartiteQuery) -> Vec<Vec<usize>> {
    let Some(k) = query_length(q) else {
        return Vec::new();
    };
    let clauses = q.clauses();
    let n = clauses.len();
    let shares = |i: usize, j: usize| -> bool {
        let si = clauses[i].symbols();
        clauses[j].symbols().iter().any(|p| si.contains(p))
    };
    let mut paths = Vec::new();
    let mut stack: Vec<usize> = Vec::new();
    fn dfs(
        cur: usize,
        remaining: usize,
        n: usize,
        shares: &dyn Fn(usize, usize) -> bool,
        rightish: &dyn Fn(usize) -> bool,
        stack: &mut Vec<usize>,
        paths: &mut Vec<Vec<usize>>,
    ) {
        if remaining == 0 {
            if rightish(cur) {
                paths.push(stack.clone());
            }
            return;
        }
        for next in 0..n {
            if !stack.contains(&next) && shares(cur, next) {
                stack.push(next);
                dfs(next, remaining - 1, n, shares, rightish, stack, paths);
                stack.pop();
            }
        }
    }
    let rightish = |i: usize| clause_role(&clauses[i]).rightish;
    for (start, clause) in clauses.iter().enumerate() {
        if clause_role(clause).leftish {
            stack.push(start);
            dfs(start, k, n, &shares, &rightish, &mut stack, &mut paths);
            stack.pop();
        }
    }
    paths
}

/// True iff `q` is a forbidden Type-II query (Definition C.11).
pub fn is_forbidden_type_ii(q: &BipartiteQuery) -> bool {
    if !is_final_type_ii(q) {
        return false;
    }
    let left_ubiq = left_ubiquitous_symbols(q);
    let right_ubiq = right_ubiquitous_symbols(q);
    let clauses = q.clauses();
    let binary = |c: usize| -> BTreeSet<u32> {
        clauses[c]
            .symbols()
            .into_iter()
            .filter_map(|p| match p {
                Pred::S(i) => Some(i),
                _ => None,
            })
            .collect()
    };
    for path in all_minimal_left_right_paths(q) {
        let c0 = path[0];
        let ck = *path.last().unwrap();
        if path.len() >= 2 {
            let c1 = path[1];
            let ck1 = path[path.len() - 2];
            let c1_syms = binary(c1);
            if !binary(c0)
                .iter()
                .all(|s| left_ubiq.contains(s) || c1_syms.contains(s))
            {
                return false;
            }
            let ck1_syms = binary(ck1);
            if !binary(ck)
                .iter()
                .all(|s| right_ubiq.contains(s) || ck1_syms.contains(s))
            {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfomc_query::{catalog, Clause};

    #[test]
    fn c15_is_forbidden() {
        let q = catalog::example_c15();
        assert_eq!(left_ubiquitous_symbols(&q), [0u32].into());
        assert_eq!(right_ubiquitous_symbols(&q), [5u32].into());
        assert!(is_forbidden_type_ii(&q));
    }

    #[test]
    fn c9_is_final_but_not_forbidden() {
        // C.9 is final, but S1 is neither ubiquitous nor in C1, so the
        // Definition C.11 condition fails — shattering applies instead.
        let q = catalog::example_c9();
        assert!(crate::finality::is_final_type_ii(&q));
        assert!(left_ubiquitous_symbols(&q).is_empty());
        assert!(!is_forbidden_type_ii(&q));
    }

    #[test]
    fn type_i_queries_are_not_forbidden_type_ii() {
        assert!(!is_forbidden_type_ii(&catalog::h1()));
    }

    #[test]
    fn minimal_paths_enumeration() {
        let q = catalog::example_c15();
        let paths = all_minimal_left_right_paths(&q);
        assert!(!paths.is_empty());
        let k = query_length(&q).unwrap();
        for p in &paths {
            assert_eq!(p.len(), k + 1);
        }
    }

    #[test]
    fn ubiquitous_requires_every_subclause() {
        // ∀x(∀y(S0∨S1) ∨ ∀yS2): S0 occurs in one subclause only.
        let q = gfomc_query::BipartiteQuery::new([
            Clause::left_ii(&[&[0, 1], &[2]]),
            Clause::right_i([3]),
        ]);
        assert!(left_ubiquitous_symbols(&q).is_empty());
        // Adding S0 to both subclauses makes it ubiquitous.
        let q2 = gfomc_query::BipartiteQuery::new([
            Clause::left_ii(&[&[0, 1], &[0, 2]]),
            Clause::right_i([3]),
        ]);
        assert_eq!(left_ubiquitous_symbols(&q2), [0u32].into());
    }

    #[test]
    fn lemma_c12_no_ubiquitous_symbol_in_c1() {
        // Lemma C.12 (2): on a minimal left-right path of a forbidden query,
        // no ubiquitous symbol occurs in C1 (resp. C_{k-1} on the right).
        let q = catalog::example_c15();
        let ubiq_l = left_ubiquitous_symbols(&q);
        let ubiq_r = right_ubiquitous_symbols(&q);
        let clauses = q.clauses();
        for path in all_minimal_left_right_paths(&q) {
            let c1 = &clauses[path[1]];
            for s in &ubiq_l {
                assert!(
                    !c1.mentions(gfomc_query::Pred::S(*s)),
                    "ubiquitous S{s} occurs in C1"
                );
            }
            let ck1 = &clauses[path[path.len() - 2]];
            for s in &ubiq_r {
                assert!(!ck1.mentions(gfomc_query::Pred::S(*s)));
            }
        }
    }

    #[test]
    fn lemma_c12_item4_multiple_ubiquitous_in_middle_clauses() {
        // Lemma C.12 (4): with more than one left-ubiquitous symbol, each
        // occurs in some middle clause — Example C.18's configuration.
        let q = catalog::example_c18();
        let ubiq = left_ubiquitous_symbols(&q);
        assert!(ubiq.len() > 1);
        for s in ubiq {
            let in_middle = q
                .middle_clauses()
                .iter()
                .any(|c| c.mentions(gfomc_query::Pred::S(s)));
            assert!(in_middle, "ubiquitous S{s} not in any middle clause");
        }
    }

    #[test]
    fn example_c18_classification() {
        // Example C.18: two left-ubiquitous symbols, both in middle clauses.
        let q = catalog::example_c18();
        assert_eq!(left_ubiquitous_symbols(&q), [0u32, 1].into());
        // The paper argues no simplification keeps it unsafe: it is final.
        assert!(crate::paths::is_unsafe(&q));
        assert!(crate::finality::is_final(&q), "C.18 should be final");
    }
}
