//! Final queries (Definition 2.8) and the simplification order of Lemma 2.7.
//!
//! A bipartite unsafe query `Q` is **final** if for *every* symbol `S` of
//! `Q`, both rewritings `Q[S := 0]` and `Q[S := 1]` are safe — i.e. no
//! further hardness-preserving simplification is possible. Final queries are
//! the irreducible targets of the paper's hardness proofs (Theorem 2.9).

use crate::paths::{is_safe, is_unsafe, query_length};
use gfomc_query::{BipartiteQuery, PartType, Pred, QueryType};

/// True iff `q` is unsafe and every single-symbol 0/1 rewriting is safe
/// (Definition 2.8).
pub fn is_final(q: &BipartiteQuery) -> bool {
    if !is_unsafe(q) {
        return false;
    }
    q.symbols()
        .into_iter()
        .all(|p| is_safe(&q.set_symbol(p, false)) && is_safe(&q.set_symbol(p, true)))
}

/// Greedily simplifies an unsafe query towards a final one: repeatedly
/// applies `Q[S := 0]` or `Q[S := 1]` while the result stays unsafe
/// (each step is hardness-preserving by Lemma 2.7). Returns the reached
/// query together with the rewriting trace.
pub fn simplify_to_final(q: &BipartiteQuery) -> (BipartiteQuery, Vec<(Pred, bool)>) {
    assert!(
        is_unsafe(q),
        "only unsafe queries can be simplified to final"
    );
    let mut cur = q.clone();
    let mut trace = Vec::new();
    'outer: loop {
        for p in cur.symbols() {
            for value in [false, true] {
                let candidate = cur.set_symbol(p, value);
                if is_unsafe(&candidate) {
                    trace.push((p, value));
                    cur = candidate;
                    continue 'outer;
                }
            }
        }
        return (cur, trace);
    }
}

/// Full classification report for a query — the observable side of the
/// dichotomy (Theorems 2.1/2.2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Classification {
    /// Safe ⇒ `PQE(Q)` and `GFOMC(Q)` are in PTIME; unsafe ⇒ both #P-hard.
    pub safe: bool,
    /// The minimal left-right path length, for unsafe queries.
    pub length: Option<usize>,
    /// Whether no 0/1 symbol rewriting preserves unsafety.
    pub is_final: bool,
    /// The `A–B` type (Definition 2.3), when the query is of bipartite shape
    /// with both left and right clauses.
    pub query_type: Option<QueryType>,
}

/// Classifies a query.
pub fn classify(q: &BipartiteQuery) -> Classification {
    let safe = is_safe(q);
    Classification {
        safe,
        length: query_length(q),
        is_final: !safe && is_final(q),
        query_type: q.query_type(),
    }
}

/// Convenience: true iff `q` is a final query of Type I–I (the hypothesis of
/// Theorem 2.9 (1), which proves `FOMC(Q)` #P-hard).
pub fn is_final_type_i(q: &BipartiteQuery) -> bool {
    is_final(q)
        && matches!(
            q.query_type(),
            Some(QueryType {
                left: PartType::I,
                right: PartType::I
            })
        )
}

/// Convenience: true iff `q` is a final query of Type II–II (the hypothesis
/// of Theorem 2.9 (2)).
pub fn is_final_type_ii(q: &BipartiteQuery) -> bool {
    is_final(q)
        && matches!(
            q.query_type(),
            Some(QueryType {
                left: PartType::II,
                right: PartType::II
            })
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfomc_query::{catalog, Clause};

    #[test]
    fn h1_is_final_type_i() {
        assert!(is_final_type_i(&catalog::h1()));
    }

    #[test]
    fn hk_chains_are_final() {
        for k in 1..=4 {
            assert!(is_final(&catalog::hk(k)), "h{k}");
        }
    }

    #[test]
    fn type_i_wide_is_not_final_but_simplifies() {
        // S1 := 0 keeps the left-right path (R∨S0)(S0∨S2)(S2∨T) alive, so
        // the wide query is not final; greedy simplification reaches a
        // final query.
        let q = catalog::type_i_wide();
        assert!(crate::paths::is_unsafe(&q));
        assert!(!is_final(&q));
        let (f, _) = simplify_to_final(&q);
        assert!(is_final(&f));
    }

    #[test]
    fn safe_queries_are_not_final() {
        for (name, q) in catalog::safe_catalog() {
            assert!(!is_final(&q), "{name}");
        }
    }

    #[test]
    fn non_final_unsafe_query() {
        // (R∨S0) ∧ (S0∨T) ∧ (S1∨S2): the extra middle clause on fresh
        // symbols can be simplified away (S1 := 1 keeps unsafety).
        let q = gfomc_query::BipartiteQuery::new([
            Clause::left_i([0]),
            Clause::right_i([0]),
            Clause::middle([1, 2]),
        ]);
        assert!(crate::paths::is_unsafe(&q));
        assert!(!is_final(&q));
        let (final_q, trace) = simplify_to_final(&q);
        assert!(is_final(&final_q));
        assert!(!trace.is_empty());
        assert_eq!(final_q, catalog::h1());
    }

    #[test]
    fn type_ii_examples_are_final() {
        // Both C.9 and C.15 are final Type-II queries; they differ in
        // *forbiddenness* (Definition C.11), not finality — C.9 is
        // simplified by shattering, C.15 by the Appendix C machinery.
        assert!(is_final_type_ii(&catalog::example_c9()));
        assert!(is_final_type_ii(&catalog::example_c15()));
    }

    #[test]
    fn classification_report_fields() {
        let c = classify(&catalog::h1());
        assert!(!c.safe);
        assert_eq!(c.length, Some(1));
        assert!(c.is_final);
        assert!(c.query_type.is_some());
        let s = classify(&catalog::safe_no_right());
        assert!(s.safe);
        assert_eq!(s.length, None);
        assert!(!s.is_final);
    }

    #[test]
    fn simplify_is_idempotent_on_final() {
        let q = catalog::h1();
        let (f, trace) = simplify_to_final(&q);
        assert_eq!(f, q);
        assert!(trace.is_empty());
    }

    #[test]
    fn braided_query_finality() {
        // type_i_braided: check the classifier runs and the verdict is
        // consistent with a manual scan of all rewritings.
        let q = catalog::type_i_braided();
        let verdict = is_final(&q);
        let manual = q.symbols().into_iter().all(|p| {
            crate::paths::is_safe(&q.set_symbol(p, false))
                && crate::paths::is_safe(&q.set_symbol(p, true))
        });
        assert_eq!(verdict, manual);
    }
}
