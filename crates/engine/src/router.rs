//! The dichotomy-aware query router: one entry point, three regimes.
//!
//! [`Engine::evaluate_auto`] turns the paper's dichotomy into a *runtime
//! routing decision*:
//!
//! 1. **Safe query** ⇒ the PTIME lifted evaluator
//!    ([`gfomc_safety::lifted_probability`]) — exact, polynomial in the
//!    database, no lineage ever materialized.
//! 2. **Unsafe query, affordable lineage** ⇒ knowledge compilation
//!    ([`Engine::compile`]) — still exact; the refined Shannon cost
//!    bound ([`gfomc_safety::circuit_cost_estimate`]) must fit the
//!    budget. Compiled circuits are cached per engine (LRU on interned
//!    canonical lineages), so repeated queries skip compilation.
//! 3. **Unsafe query, lineage over budget** ⇒ the Karp–Luby sampler
//!    ([`gfomc_approx::CnfSampler`]) — a seeded-deterministic estimate
//!    with a conservative confidence interval, in time linear in the
//!    sample budget rather than exponential in the lineage. The default
//!    [`SampleMode::Adaptive`] stops as soon as the interval is within
//!    the accuracy target (never exceeding the fixed Karp–Luby–Madras
//!    budget); [`SampleMode::Fixed`] keeps the PR 3 fixed-budget path.
//!    Either way the sampled path may fan across [`Budget::threads`]
//!    workers of the engine's persistent pool without changing a single
//!    bit of the estimate.
//!
//! The result is tagged ([`AutoResult::Exact`] vs [`AutoResult::Approx`])
//! so callers can never mistake an estimate for an exact probability, and
//! carries the [`Route`] taken plus the cost estimate that justified it.
//!
//! Both entry points take `&self`: one shared engine serves concurrent
//! callers, and [`Engine::evaluate_auto_batch`] fans a whole batch of
//! routed queries across the pool with a shared compilation cache.

use crate::Engine;
use gfomc_approx::{AdaptiveConfig, CnfSampler, ConfidenceInterval, Estimate};
use gfomc_arith::Rational;
use gfomc_logic::EvalArena;
use gfomc_obs::Trace;
use gfomc_query::BipartiteQuery;
use gfomc_safety::{circuit_cost_estimate, is_safe, lifted_probability, CircuitCostEstimate};
use gfomc_tid::{lineage, Tid};
use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

thread_local! {
    /// Per-thread evaluation arena for the compiled route: repeated
    /// queries on one serving thread reuse a single values buffer, and
    /// threads never contend for it (the engine itself stays lock-free on
    /// this path).
    static ROUTE_ARENA: RefCell<EvalArena> = RefCell::new(EvalArena::new());
}

/// A [`Budget`] parameter rejected at construction — the typed form of
/// what used to be a panic deep inside the sampler.
///
/// ε and δ feed `ln`/`sqrt`/float-to-integer casts in the Karp–Luby budget
/// arithmetic; outside the open unit interval (NaN included) they would
/// silently produce NaN-derived or saturated sample counts. Validation now
/// happens **once**, at [`Budget`] construction (and again in
/// [`Budget::validate`] for struct-literal escapes), so the serving layer
/// can turn a bad request into a 400-style response instead of a crashed
/// worker; the sampler's own checks are demoted to debug assertions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BudgetError {
    /// `δ` outside the open unit interval `(0, 1)`.
    Delta(f64),
    /// An adaptive-mode `ε` outside the open unit interval `(0, 1)`.
    Epsilon(f64),
    /// A fixed-mode sample budget of zero.
    ZeroSamples,
    /// A certification threshold outside `[0, 1]` — thresholds compare
    /// against probabilities, so anything else is certifiable vacuously
    /// and almost certainly a client bug.
    Threshold,
}

impl std::fmt::Display for BudgetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BudgetError::Delta(v) => {
                write!(f, "delta must lie strictly inside (0, 1), got {v}")
            }
            BudgetError::Epsilon(v) => {
                write!(f, "epsilon must lie strictly inside (0, 1), got {v}")
            }
            BudgetError::ZeroSamples => write!(f, "fixed sample budget must be positive"),
            BudgetError::Threshold => {
                write!(f, "certification threshold must lie inside [0, 1]")
            }
        }
    }
}

impl std::error::Error for BudgetError {}

/// `Ok(value)` iff `value` lies strictly inside `(0, 1)` (NaN rejected).
fn unit_open(value: f64, err: fn(f64) -> BudgetError) -> Result<f64, BudgetError> {
    if value > 0.0 && value < 1.0 {
        Ok(value)
    } else {
        Err(err(value))
    }
}

/// How the sampler spends its budget on the [`Route::Sampled`] path.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SampleMode {
    /// Draw exactly [`Budget::samples`] samples — the PR 3 behavior.
    Fixed,
    /// Draw in geometrically growing rounds and stop as soon as the
    /// outward-rounded CI half-width is at most `epsilon`, hard-capped at
    /// the fixed Karp–Luby–Madras budget
    /// [`gfomc_approx::KarpLuby::fpras_samples`]`(epsilon, δ)` — never
    /// more samples than the fixed path, usually far fewer.
    Adaptive {
        /// Absolute accuracy target for the early exit.
        epsilon: f64,
    },
}

/// Resource limits and sampling parameters for [`Engine::evaluate_auto`].
#[derive(Clone, Debug, PartialEq)]
pub struct Budget {
    /// Maximum estimated circuit gates the exact compiled path may cost
    /// (compared against [`CircuitCostEstimate::estimated_nodes`]).
    pub max_circuit_cost: u64,
    /// Monte-Carlo sample count for [`SampleMode::Fixed`] (ignored by the
    /// adaptive mode, which derives its own cap).
    pub samples: u64,
    /// Failure probability `δ` of the sampler's confidence interval.
    pub delta: f64,
    /// Seed of the sampler's deterministic chunked plan: same budget, same
    /// TID, same query ⇒ bit-identical [`AutoResult::Approx`], whatever
    /// [`Budget::threads`] says.
    pub seed: u64,
    /// Stopping rule of the sampled path.
    pub mode: SampleMode,
    /// OS threads for the sampled path (1 = serial). Thread count never
    /// changes the estimate — only the wall-clock.
    pub threads: usize,
    /// Optional certification threshold: when set, the exact routes
    /// answer the **decision** `Pr ≤ t?` instead of materializing the
    /// probability — the compiled route decides it on the interval lane
    /// first ([`crate::Compiled::certify_le_db`]), escalating to exact
    /// arithmetic only when the enclosure straddles `t`, and the result
    /// comes back as [`AutoResult::Certified`]. The sampled route ignores
    /// the threshold (a sampler cannot *certify* a comparison) and
    /// returns its usual estimate.
    pub threshold: Option<Rational>,
}

impl Default for Budget {
    /// Compile lineages up to ~4M estimated gates; beyond that, adaptive
    /// sampling to ±0.05 at 95% confidence from a fixed seed, one thread.
    fn default() -> Self {
        Budget {
            max_circuit_cost: 1 << 22,
            samples: 20_000,
            delta: 0.05,
            seed: 0x5EED,
            mode: SampleMode::Adaptive { epsilon: 0.05 },
            threads: 1,
            threshold: None,
        }
    }
}

impl Budget {
    /// Builder-style override of the circuit-cost cap.
    pub fn with_max_circuit_cost(mut self, cap: u64) -> Self {
        self.max_circuit_cost = cap;
        self
    }

    /// Builder-style override of the fixed-mode sample count (also
    /// switches to [`SampleMode::Fixed`], which is the only mode that
    /// reads it). A zero budget is rejected as
    /// [`BudgetError::ZeroSamples`].
    pub fn with_samples(mut self, samples: u64) -> Result<Self, BudgetError> {
        if samples == 0 {
            return Err(BudgetError::ZeroSamples);
        }
        self.samples = samples;
        self.mode = SampleMode::Fixed;
        Ok(self)
    }

    /// Builder-style override of the CI failure probability. Values
    /// outside the open unit interval (NaN included) are rejected with a
    /// typed [`BudgetError`] instead of panicking later in the sampler.
    pub fn with_delta(mut self, delta: f64) -> Result<Self, BudgetError> {
        self.delta = unit_open(delta, BudgetError::Delta)?;
        Ok(self)
    }

    /// Builder-style override of the sampler seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style override of the sampling stopping rule. An adaptive
    /// `ε` outside the open unit interval is rejected with a typed
    /// [`BudgetError`].
    pub fn with_mode(mut self, mode: SampleMode) -> Result<Self, BudgetError> {
        if let SampleMode::Adaptive { epsilon } = mode {
            unit_open(epsilon, BudgetError::Epsilon)?;
        }
        self.mode = mode;
        Ok(self)
    }

    /// Builder-style override of the sampled-path thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Builder-style certification threshold: the exact routes will answer
    /// `Pr ≤ threshold?` as an [`AutoResult::Certified`] verdict. A
    /// threshold outside `[0, 1]` is rejected with
    /// [`BudgetError::Threshold`].
    pub fn with_threshold(mut self, threshold: Rational) -> Result<Self, BudgetError> {
        if !threshold.is_probability() {
            return Err(BudgetError::Threshold);
        }
        self.threshold = Some(threshold);
        Ok(self)
    }

    /// Re-checks every validated invariant — the struct-literal escape
    /// hatch. A `Budget` built through the `with_*` builders always
    /// passes; one assembled field-by-field may not, and the router
    /// ([`Engine::try_evaluate_auto`]) rejects it here with the same typed
    /// error the builders return.
    pub fn validate(&self) -> Result<(), BudgetError> {
        unit_open(self.delta, BudgetError::Delta)?;
        if let Some(t) = &self.threshold {
            if !t.is_probability() {
                return Err(BudgetError::Threshold);
            }
        }
        match self.mode {
            SampleMode::Fixed if self.samples == 0 => Err(BudgetError::ZeroSamples),
            SampleMode::Adaptive { epsilon } => {
                unit_open(epsilon, BudgetError::Epsilon).map(|_| ())
            }
            _ => Ok(()),
        }
    }
}

/// Which evaluation regime [`Engine::evaluate_auto`] dispatched to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Route {
    /// Safe query: PTIME lifted evaluation, exact.
    Lifted,
    /// Unsafe query within budget: compiled circuit, exact.
    Compiled,
    /// Unsafe query over budget: Karp–Luby sampling, approximate.
    Sampled,
}

/// The tagged outcome: an exact probability or a sampler estimate. The tag
/// is the API contract — downstream code must match, so an approximation
/// can never silently masquerade as an exact answer.
#[derive(Clone, Debug, PartialEq)]
pub enum AutoResult {
    /// An exact probability (lifted or compiled path).
    Exact(Rational),
    /// A sampler estimate with its confidence interval and sampling effort.
    Approx {
        /// Seeded-deterministic point estimate (exact arithmetic).
        estimate: Rational,
        /// Two-sided Hoeffding interval at confidence `1 − Budget::delta`.
        ci: ConfidenceInterval,
        /// Number of Monte-Carlo samples drawn.
        samples: u64,
    },
    /// A certified decision `Pr ≤ threshold` from a threshold-carrying
    /// budget ([`Budget::with_threshold`]) on an exact route. The verdict
    /// always agrees with comparing the exact probability against the
    /// threshold, but the probability itself may never have been
    /// materialized — the compiled route answers on the interval lane
    /// whenever the enclosure decides.
    Certified {
        /// `true` iff `Pr ≤ threshold`.
        le: bool,
        /// The threshold the verdict compares against.
        threshold: Rational,
    },
}

impl AutoResult {
    /// The point value: the exact probability, the sampler estimate, or —
    /// for a certified verdict, which never materializes the probability —
    /// the threshold the verdict compares against.
    pub fn point(&self) -> &Rational {
        match self {
            AutoResult::Exact(p) => p,
            AutoResult::Approx { estimate, .. } => estimate,
            AutoResult::Certified { threshold, .. } => threshold,
        }
    }

    /// True iff the result is exact (certified verdicts are: the answer
    /// bit always agrees with the exact comparison).
    pub fn is_exact(&self) -> bool {
        matches!(self, AutoResult::Exact(_) | AutoResult::Certified { .. })
    }
}

impl From<Estimate> for AutoResult {
    fn from(e: Estimate) -> Self {
        if e.exact {
            // The sampler short-circuited on a degenerate lineage: the
            // value is exact, so tag it as such.
            AutoResult::Exact(e.estimate)
        } else {
            AutoResult::Approx {
                estimate: e.estimate,
                ci: e.ci,
                samples: e.samples,
            }
        }
    }
}

/// The full routing record: result, route taken, and (for unsafe queries)
/// the cost estimate that picked between circuit and sampler.
#[derive(Clone, Debug, PartialEq)]
pub struct Routed {
    /// The tagged probability.
    pub result: AutoResult,
    /// The regime that produced it.
    pub route: Route,
    /// The lineage cost estimate — `None` on the lifted path, which never
    /// grounds a lineage.
    pub cost: Option<CircuitCostEstimate>,
    /// The request's phase trace — `Some` only when the caller opted in
    /// ([`EvalRequest::with_trace`](crate::EvalRequest::with_trace)).
    /// Observation is passive: `result` is bit-identical whether or not a
    /// trace was recorded, and trace-carrying responses still round-trip
    /// through the wire grammar.
    pub trace: Option<Trace>,
}

/// Running tally of routing decisions, per [`Engine`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RouteCounts {
    /// Queries answered by the lifted evaluator.
    pub lifted: usize,
    /// Queries answered by circuit compilation.
    pub compiled: usize,
    /// Queries answered by the sampler.
    pub sampled: usize,
}

impl Engine {
    /// Evaluates `Pr_∆(q)` by the cheapest adequate regime under `budget`:
    /// lifted-exact for safe queries, compiled-circuit for unsafe queries
    /// whose estimated compilation cost fits the budget, and the Karp–Luby
    /// sampler otherwise.
    ///
    /// Safe queries return results bit-identical to
    /// [`lifted_probability`]; sampled results are bit-identical across
    /// runs for a fixed `budget.seed`. Takes `&self`: any number of
    /// threads may route queries through one shared engine concurrently.
    pub fn evaluate_auto(&self, q: &BipartiteQuery, tid: &Tid, budget: &Budget) -> Routed {
        self.try_evaluate_auto(q, tid, budget)
            .unwrap_or_else(|e| panic!("invalid budget: {e}"))
    }

    /// The fallible form of [`Engine::evaluate_auto`]: a malformed
    /// [`Budget`] (assembled as a struct literal, or deserialized from
    /// the wire) comes back as a typed [`BudgetError`] instead of a panic
    /// — the contract the serving layer needs to answer 400 instead of
    /// killing a worker thread. A budget that passes
    /// [`Budget::validate`] always takes the `Ok` path, bit-identical to
    /// [`Engine::evaluate_auto`].
    pub fn try_evaluate_auto(
        &self,
        q: &BipartiteQuery,
        tid: &Tid,
        budget: &Budget,
    ) -> Result<Routed, BudgetError> {
        budget.validate()?;
        Ok(self.evaluate_auto_validated(q, tid, budget))
    }

    /// The routing core, entered only with a validated budget. The phase
    /// trace it records is discarded here; the request front door
    /// ([`Engine::evaluate_request`](crate::api)) keeps it.
    fn evaluate_auto_validated(&self, q: &BipartiteQuery, tid: &Tid, budget: &Budget) -> Routed {
        self.evaluate_auto_core(q, tid, budget, &mut Trace::new())
    }

    /// The traced routing core: routes exactly as
    /// [`Engine::evaluate_auto`] and records the phase timings and
    /// routing facts into `tr` along the way. Tracing is **passive** —
    /// clocks are read between phases, never inside the arithmetic, so
    /// the returned [`Routed`] is bit-identical with any `tr`. The
    /// returned record carries `trace: None`; attaching the trace is the
    /// caller's opt-in decision.
    pub(crate) fn evaluate_auto_core(
        &self,
        q: &BipartiteQuery,
        tid: &Tid,
        budget: &Budget,
        tr: &mut Trace,
    ) -> Routed {
        // Normalize at the point of use: a `Budget` built as a struct
        // literal can carry `threads: 0` past the `with_threads` clamp,
        // and a zero must never reach the pool fan-out.
        let threads = budget.threads.max(1);
        let mut mark = Instant::now();
        // Reads the clock, closes the current phase, and opens the next.
        let mut span = |tr: &mut Trace, name: &str| {
            let now = Instant::now();
            tr.push_span(name, now.duration_since(mark).as_nanos() as u64);
            mark = now;
        };
        if is_safe(q) {
            span(tr, "route");
            let p = lifted_probability(q, tid).expect("safe query must lift");
            span(tr, "evaluate");
            tr.route = Some(Route::Lifted.to_string());
            self.count_route(Route::Lifted);
            // The lifted evaluator materializes the exact probability
            // anyway, so a threshold verdict here is a plain comparison.
            let result = match &budget.threshold {
                Some(t) => AutoResult::Certified {
                    le: &p <= t,
                    threshold: t.clone(),
                },
                None => AutoResult::Exact(p),
            };
            return Routed {
                result,
                route: Route::Lifted,
                cost: None,
                trace: None,
            };
        }
        let lin = lineage(q, tid);
        let cost = circuit_cost_estimate(&lin.cnf);
        span(tr, "route");
        tr.gates = Some(cost.estimated_nodes);
        if cost.within(budget.max_circuit_cost) {
            let (compiled, hit) = self.compile_lineage_traced(lin);
            span(tr, if hit { "cache" } else { "compile" });
            tr.cache_hit = Some(hit);
            self.count_route(Route::Compiled);
            let fallbacks_before = gfomc_logic::interval_fallbacks_thread();
            // With a threshold, the decision is answered on the interval
            // lane first — the exact pass runs only when the enclosure
            // straddles `t` (visible as a fallback in the trace).
            let result = match &budget.threshold {
                Some(t) => {
                    let (le, _fell_back) = compiled.certify_le_db(t);
                    AutoResult::Certified {
                        le,
                        threshold: t.clone(),
                    }
                }
                None => AutoResult::Exact(
                    ROUTE_ARENA.with(|arena| compiled.evaluate_db_with(&mut arena.borrow_mut())),
                ),
            };
            span(tr, "evaluate");
            tr.fallbacks = Some(gfomc_logic::interval_fallbacks_thread() - fallbacks_before);
            tr.route = Some(Route::Compiled.to_string());
            return Routed {
                result,
                route: Route::Compiled,
                cost: Some(cost),
                trace: None,
            };
        }
        let sampler = CnfSampler::new(&lin.cnf, lin.vars.weights());
        let est = match budget.mode {
            SampleMode::Fixed => sampler.estimate_seeded_on(
                self.pool(),
                budget.seed,
                budget.samples,
                budget.delta,
                threads,
            ),
            SampleMode::Adaptive { epsilon } => {
                let cfg =
                    AdaptiveConfig::new(epsilon, budget.delta, budget.seed).with_threads(threads);
                let adaptive = sampler.estimate_adaptive_on(self.pool(), &cfg);
                tr.rounds = Some(u64::from(adaptive.rounds));
                adaptive.estimate
            }
        };
        span(tr, "sample");
        tr.samples = Some(est.samples);
        tr.route = Some(Route::Sampled.to_string());
        self.count_route(Route::Sampled);
        Routed {
            result: est.into(),
            route: Route::Sampled,
            cost: Some(cost),
            trace: None,
        }
    }

    /// The concurrent serving front-end: routes every query of `queries`
    /// through [`Engine::evaluate_auto`], fanned across up to
    /// [`Budget::threads`] workers of the engine's shared pool. All
    /// workers share this engine's compilation cache, so duplicate
    /// lineages inside one batch compile once.
    ///
    /// Output order matches input order, and every element is
    /// **bit-identical** to a serial loop of [`Engine::evaluate_auto`]
    /// calls with the same budget: the exact routes are deterministic,
    /// and the sampled route's chunk-seeded plan is thread-count
    /// invariant. Only the route/cache *counters* may interleave
    /// differently; their totals agree.
    pub fn evaluate_auto_batch(
        &self,
        queries: &[(BipartiteQuery, Tid)],
        budget: &Budget,
    ) -> Vec<Routed> {
        self.try_evaluate_auto_batch(queries, budget)
            .unwrap_or_else(|e| panic!("invalid budget: {e}"))
    }

    /// The fallible form of [`Engine::evaluate_auto_batch`]: the budget is
    /// validated once, up front, so a malformed one rejects the whole
    /// batch before any work is fanned out.
    pub fn try_evaluate_auto_batch(
        &self,
        queries: &[(BipartiteQuery, Tid)],
        budget: &Budget,
    ) -> Result<Vec<Routed>, BudgetError> {
        budget.validate()?;
        let workers = budget.threads.max(1).min(queries.len().max(1));
        if workers <= 1 {
            return Ok(queries
                .iter()
                .map(|(q, tid)| self.evaluate_auto_validated(q, tid, budget))
                .collect());
        }
        // Queries are the unit of parallelism here, so each one samples
        // serially — oversubscribing the pool with nested fan-out buys
        // nothing once every worker is busy.
        let per_query = Budget {
            threads: 1,
            ..budget.clone()
        };
        let cursor = AtomicUsize::new(0);
        let mut out: Vec<Option<Routed>> = vec![None; queries.len()];
        let slots = Mutex::new(&mut out);
        self.pool().scope(|scope| {
            for _ in 0..workers {
                let cursor = &cursor;
                let slots = &slots;
                let per_query = &per_query;
                scope.spawn(move || {
                    let mut local: Vec<(usize, Routed)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= queries.len() {
                            break;
                        }
                        let (q, tid) = &queries[i];
                        local.push((i, self.evaluate_auto_validated(q, tid, per_query)));
                    }
                    let mut slots = slots.lock().expect("batch output lock");
                    for (i, routed) in local {
                        slots[i] = Some(routed);
                    }
                });
            }
        });
        Ok(out
            .into_iter()
            .map(|r| r.expect("every query routed"))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{random_block_tid, random_query, SafetyTarget};
    use gfomc_query::catalog;
    use gfomc_tid::probability;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn safe_query_routes_to_lifted_bit_identical() {
        let q = catalog::safe_three_components();
        let mut rng = StdRng::seed_from_u64(1);
        let tid = random_block_tid(&mut rng, &q, 3, 3);
        let engine = Engine::new();
        let routed = engine.evaluate_auto(&q, &tid, &Budget::default());
        assert_eq!(routed.route, Route::Lifted);
        assert!(routed.cost.is_none());
        assert_eq!(
            routed.result,
            AutoResult::Exact(lifted_probability(&q, &tid).unwrap())
        );
        assert_eq!(engine.route_counts().lifted, 1);
    }

    #[test]
    fn small_unsafe_query_compiles_exactly() {
        let q = catalog::h1();
        let mut rng = StdRng::seed_from_u64(2);
        let tid = random_block_tid(&mut rng, &q, 2, 2);
        let engine = Engine::new();
        let routed = engine.evaluate_auto(&q, &tid, &Budget::default());
        assert_eq!(routed.route, Route::Compiled);
        assert_eq!(routed.result, AutoResult::Exact(probability(&q, &tid)));
        assert!(routed
            .cost
            .unwrap()
            .within(Budget::default().max_circuit_cost));
        // The compiled route goes through the engine's instrumented path.
        assert_eq!(engine.compiled_count(), 1);
        assert_eq!(engine.route_counts().compiled, 1);
    }

    #[test]
    fn over_budget_unsafe_query_samples_deterministically() {
        let q = catalog::h1();
        let mut rng = StdRng::seed_from_u64(3);
        let tid = random_block_tid(&mut rng, &q, 2, 2);
        let budget = Budget::default()
            .with_max_circuit_cost(0)
            .with_samples(2_000)
            .expect("positive sample budget");
        let engine = Engine::new();
        let routed = engine.evaluate_auto(&q, &tid, &budget);
        assert_eq!(routed.route, Route::Sampled);
        assert_eq!(engine.route_counts().sampled, 1);
        let AutoResult::Approx {
            estimate,
            ci,
            samples,
        } = &routed.result
        else {
            panic!("expected an approximate result, got {routed:?}");
        };
        assert_eq!(*samples, 2_000);
        let exact = probability(&q, &tid);
        assert!(ci.contains(&exact), "{estimate} ± {ci:?} vs {exact}");
        // Same seed ⇒ bit-identical routing outcome.
        let again = Engine::new().evaluate_auto(&q, &tid, &budget);
        assert_eq!(routed, again);
        // A different seed (almost surely) moves the estimate.
        let moved = Engine::new().evaluate_auto(&q, &tid, &budget.clone().with_seed(1234));
        assert_ne!(routed, moved);
    }

    #[test]
    fn budget_builders_reject_out_of_range_parameters() {
        for bad in [0.0, 1.0, -0.5, 2.0, f64::NAN] {
            assert!(matches!(
                Budget::default().with_delta(bad),
                Err(BudgetError::Delta(_))
            ));
            assert!(matches!(
                Budget::default().with_mode(SampleMode::Adaptive { epsilon: bad }),
                Err(BudgetError::Epsilon(_))
            ));
        }
        assert_eq!(
            Budget::default().with_samples(0),
            Err(BudgetError::ZeroSamples)
        );
        let ok = Budget::default()
            .with_delta(0.01)
            .and_then(|b| b.with_mode(SampleMode::Adaptive { epsilon: 0.25 }))
            .unwrap();
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn router_propagates_typed_budget_errors() {
        // A struct literal smuggles an invalid δ past the builders; the
        // fallible router reports it instead of panicking, whatever route
        // the query would have taken.
        let engine = Engine::new();
        let bad = Budget {
            delta: f64::NAN,
            ..Budget::default()
        };
        let q = catalog::h1();
        let mut rng = StdRng::seed_from_u64(9);
        let tid = random_block_tid(&mut rng, &q, 2, 2);
        assert!(matches!(
            engine.try_evaluate_auto(&q, &tid, &bad),
            Err(BudgetError::Delta(_))
        ));
        assert!(matches!(
            engine.try_evaluate_auto_batch(std::slice::from_ref(&(q.clone(), tid.clone())), &bad),
            Err(BudgetError::Delta(_))
        ));
        // The valid default budget agrees bit-for-bit with the infallible
        // entry point.
        let ok = Budget::default();
        assert_eq!(
            engine.try_evaluate_auto(&q, &tid, &ok).unwrap(),
            engine.evaluate_auto(&q, &tid, &ok)
        );
    }

    #[test]
    fn threshold_budget_certifies_on_the_compiled_route() {
        // Unsafe preset: the threshold query must take the compiled route
        // and answer on the interval-certify lane, with verdicts
        // byte-identical to comparing the exact probability.
        let q = catalog::h1();
        let mut rng = StdRng::seed_from_u64(7);
        let tid = random_block_tid(&mut rng, &q, 2, 2);
        let exact = probability(&q, &tid);
        let engine = Engine::new();
        let sweep: Vec<Rational> = (0..=8).map(|k| Rational::from_ints(k, 8)).collect();
        for t in &sweep {
            let budget = Budget::default().with_threshold(t.clone()).unwrap();
            let routed = engine.evaluate_auto(&q, &tid, &budget);
            assert_eq!(routed.route, Route::Compiled);
            assert!(routed.result.is_exact());
            let AutoResult::Certified { le, threshold } = &routed.result else {
                panic!("expected a certified verdict, got {routed:?}");
            };
            assert_eq!(threshold, t);
            assert_eq!(*le, &exact <= t, "verdict at t = {t} vs exact {exact}");
        }
        // A threshold equal to the exact value forces the interval lane to
        // fall back — the verdict must still be the exact comparison.
        let budget = Budget::default().with_threshold(exact.clone()).unwrap();
        let routed = engine.evaluate_auto(&q, &tid, &budget);
        assert_eq!(
            routed.result,
            AutoResult::Certified {
                le: true,
                threshold: exact
            }
        );
    }

    #[test]
    fn threshold_budget_certifies_on_the_lifted_route() {
        let q = catalog::safe_three_components();
        let mut rng = StdRng::seed_from_u64(8);
        let tid = random_block_tid(&mut rng, &q, 3, 3);
        let exact = lifted_probability(&q, &tid).unwrap();
        let engine = Engine::new();
        for t in [Rational::zero(), Rational::one_half(), Rational::one()] {
            let budget = Budget::default().with_threshold(t.clone()).unwrap();
            let routed = engine.evaluate_auto(&q, &tid, &budget);
            assert_eq!(routed.route, Route::Lifted);
            assert_eq!(
                routed.result,
                AutoResult::Certified {
                    le: exact <= t,
                    threshold: t
                }
            );
        }
    }

    #[test]
    fn threshold_is_ignored_on_the_sampled_route() {
        // A sampler cannot certify a comparison, so an over-budget unsafe
        // query returns its usual estimate even with a threshold set.
        let q = catalog::h1();
        let mut rng = StdRng::seed_from_u64(11);
        let tid = random_block_tid(&mut rng, &q, 2, 2);
        let budget = Budget::default()
            .with_max_circuit_cost(0)
            .with_samples(512)
            .unwrap()
            .with_threshold(Rational::one_half())
            .unwrap();
        let routed = Engine::new().evaluate_auto(&q, &tid, &budget);
        assert_eq!(routed.route, Route::Sampled);
        assert!(matches!(routed.result, AutoResult::Approx { .. }));
    }

    #[test]
    fn threshold_builder_rejects_out_of_range_values() {
        assert_eq!(
            Budget::default().with_threshold(Rational::from_ints(3, 2)),
            Err(BudgetError::Threshold)
        );
        let smuggled = Budget {
            threshold: Some(Rational::from_ints(-1, 2)),
            ..Budget::default()
        };
        assert_eq!(smuggled.validate(), Err(BudgetError::Threshold));
    }

    #[test]
    fn random_queries_route_by_safety_and_budget() {
        let mut rng = StdRng::seed_from_u64(4);
        let engine = Engine::new();
        let budget = Budget::default();
        for _ in 0..10 {
            let q = random_query(&mut rng, 2, 2, SafetyTarget::Any);
            let tid = random_block_tid(&mut rng, &q, 2, 2);
            let routed = engine.evaluate_auto(&q, &tid, &budget);
            if is_safe(&q) {
                assert_eq!(routed.route, Route::Lifted);
            } else {
                assert_ne!(routed.route, Route::Lifted);
            }
            assert!(routed.result.is_exact() || matches!(routed.route, Route::Sampled));
        }
        let counts = engine.route_counts();
        assert_eq!(counts.lifted + counts.compiled + counts.sampled, 10);
    }
}
