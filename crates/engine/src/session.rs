//! Stateful evaluation sessions: incremental re-pricing, derivative and
//! explanation queries, and the session wire grammar.
//!
//! [`Compiled`] is stateless — every [`Compiled::evaluate`] call prices
//! the whole circuit from a weight assignment and discards the interior.
//! A [`Session`] keeps the interior: it wraps one
//! [`PricedCircuit`] (persisted per-gate exact values *and* certified
//! intervals) plus the tuple ↔ variable table of the grounding, so
//! repeated interactions with one compiled query pay only for what
//! actually changed:
//!
//! * [`Session::update`] re-prices the dirty cone of one tuple's weight
//!   change ([`PricedCircuit::update_weight`]) — bit-identical to a full
//!   re-evaluation, usually touching a small fraction of the gates;
//! * [`Session::gradient`] / [`Session::top_k_influential`] /
//!   [`Session::what_if_band`] answer *explanation* queries from one
//!   downward derivative pass ([`PricedCircuit::gradients`]): `∂Pr/∂p_t`
//!   for every uncertain tuple at once, exact by multilinearity, cached
//!   until the next effective update.
//!
//! The engine layers lifecycle management on top:
//! [`Engine::open_session`] admission-gates the compile cost against the
//! request budget and charges the open session against a per-tenant cap
//! ([`crate::EngineBuilder::max_sessions_per_tenant`]);
//! [`Engine::session_request`] runs a batch of session operations with
//! per-phase observability (`engine_update_nanos` /
//! `engine_explain_nanos` histograms, `open`/`update`/`explain` trace
//! spans, the slow-query log); [`Engine::session_wire`] is the parse →
//! run → render pipeline a network handler needs, with every failure a
//! typed error — never a panic.
//!
//! ## Session wire grammar
//!
//! Line-oriented like the [`EvalRequest`] body; blank lines and `#`
//! comments are skipped. The first line is a header:
//!
//! ```text
//! session open              # compile + price a new session…
//! query  [R(x0) v S0(x0,y0)] & [S0(x0,y0) v T(y0)]
//! left   0 1                # …from an interleaved EvalRequest spec
//! right  1000
//! tuple  R(u0) 1/2
//! update R(u0) 1/3          # then any number of session operations
//! value
//! explain top 2
//! gradient R(u0)
//! whatif R(u0)
//! session close             # optional trailing line: close when done
//! ```
//!
//! ```text
//! session use 3             # operate on an already-open session
//! update T(v1000) 2/3
//! value
//! ```
//!
//! ```text
//! session close 3           # just close it
//! ```
//!
//! The response echoes the session id, one line per operation, and a
//! final `closed` marker when the session was closed — all of it
//! round-tripping through [`SessionResponse`]'s
//! [`FromStr`]/[`fmt::Display`] pair bit-identically, so a client
//! parsing the body holds exactly what an in-process caller would.

use crate::api::{keyword, parse_prob, parse_tuple, token};
use crate::router::BudgetError;
use crate::{Compiled, Engine, EvalRequest, RequestParseError, ResponseParseError, TupleWeights};
use gfomc_arith::{Interval, Rational};
use gfomc_logic::{PricedCircuit, UpdateStats};
use gfomc_obs::Trace;
use gfomc_safety::circuit_cost_estimate;
use gfomc_tid::{lineage, Tuple, VarTable};
use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

// ---------------------------------------------------------------------
// Errors.
// ---------------------------------------------------------------------

/// Everything a session operation can reject — all typed, so the serving
/// layer maps them to 4xx responses instead of panicking a worker.
#[derive(Clone, Debug, PartialEq)]
pub enum SessionError {
    /// No open session has this id (never allocated, or already closed —
    /// ids are never reused, so a closed id stays unknown forever).
    UnknownSession(u64),
    /// The tuple is not an uncertain tuple of this session's lineage.
    UnknownTuple(Tuple),
    /// The proposed weight is outside `[0, 1]`.
    InvalidWeight {
        /// The tuple the update targeted.
        tuple: Tuple,
        /// The rejected weight.
        weight: Rational,
    },
    /// The tenant already holds its cap of open sessions.
    Limit {
        /// The tenant label (`anonymous` for unlabeled requests).
        tenant: String,
        /// The per-tenant cap the open would have exceeded.
        cap: usize,
    },
    /// The estimated compile cost exceeds the request's circuit budget.
    Cost {
        /// The a-priori node estimate of the lineage.
        estimated: u64,
        /// The request's `max_circuit_cost` ceiling.
        cap: u64,
    },
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::UnknownSession(id) => write!(f, "unknown session {id}"),
            SessionError::UnknownTuple(t) => {
                write!(f, "tuple {t} is not uncertain in this session's lineage")
            }
            SessionError::InvalidWeight { tuple, weight } => {
                write!(f, "weight {weight} for {tuple} outside [0, 1]")
            }
            SessionError::Limit { tenant, cap } => {
                write!(f, "tenant '{tenant}' at its open-session cap ({cap})")
            }
            SessionError::Cost { estimated, cap } => {
                write!(
                    f,
                    "estimated circuit cost {estimated} exceeds the session budget {cap}"
                )
            }
        }
    }
}

impl std::error::Error for SessionError {}

// ---------------------------------------------------------------------
// Session: one priced circuit plus tuple-name resolution.
// ---------------------------------------------------------------------

/// One stateful evaluation session: a [`PricedCircuit`] held live, with
/// tuple-level naming on top. Obtained from [`Compiled::open_session`]
/// (in-process) or [`Engine::open_session`] (id-managed).
#[derive(Clone, Debug)]
pub struct Session {
    priced: PricedCircuit,
    vars: VarTable,
    /// The circuit's distinct tuples, in slot order.
    tuples: Vec<Tuple>,
    /// Weights accepted for uncertain tuples the CNF minimizer folded
    /// out of the circuit: `Pr` provably does not depend on them, so
    /// updates are value-preserving no-ops, but the session still
    /// remembers the weight it was told.
    off_circuit: HashMap<Tuple, Rational>,
    /// The downward derivative pass, cached until an effective update.
    grads: Option<Vec<Rational>>,
}

impl Compiled {
    /// Opens a stateful session on this compiled query: prices the
    /// circuit once under `weights` (overrides on top of the database
    /// probabilities, exactly like [`Compiled::evaluate`]) and persists
    /// the full valuation for incremental re-pricing and explanation
    /// queries. The circuit itself is shared (`Arc`), not copied.
    pub fn open_session(&self, weights: &TupleWeights) -> Session {
        let slot_weights: Vec<Rational> = self
            .circuit
            .vars()
            .iter()
            .map(|&v| {
                weights
                    .get(&self.vars.tuple_of(v))
                    .cloned()
                    .unwrap_or_else(|| self.vars.weights()[&v].clone())
            })
            .collect();
        let tuples = self
            .circuit
            .vars()
            .iter()
            .map(|&v| self.vars.tuple_of(v))
            .collect();
        Session {
            priced: PricedCircuit::new(Arc::clone(&self.circuit), &slot_weights),
            vars: self.vars.clone(),
            tuples,
            off_circuit: HashMap::new(),
            grads: None,
        }
    }
}

impl Session {
    /// Resolves a tuple to its circuit slot. `Ok(None)` for an uncertain
    /// tuple the circuit provably does not depend on.
    fn slot(&self, t: Tuple) -> Result<Option<u32>, SessionError> {
        let v = self.vars.lookup(&t).ok_or(SessionError::UnknownTuple(t))?;
        Ok(self.priced.slot_of(v))
    }

    /// Sets `t`'s probability to `p`, incrementally re-pricing only the
    /// ancestors of `t`'s gates. The resulting state is bit-identical to
    /// a fresh session opened under the updated weights.
    pub fn update(&mut self, t: Tuple, p: Rational) -> Result<UpdateStats, SessionError> {
        if !p.is_probability() {
            return Err(SessionError::InvalidWeight {
                tuple: t,
                weight: p,
            });
        }
        match self.slot(t)? {
            Some(slot) => {
                let stats = self.priced.update_weight(slot, p);
                if stats.repriced > 0 {
                    self.grads = None;
                }
                Ok(stats)
            }
            None => {
                self.off_circuit.insert(t, p);
                Ok(UpdateStats {
                    repriced: 0,
                    full_pass: false,
                })
            }
        }
    }

    /// `Pr(Q)` under the current weights — a read of the persisted root.
    pub fn value(&self) -> Rational {
        self.priced.value()
    }

    /// The certified interval enclosure of the root.
    pub fn interval(&self) -> Interval {
        self.priced.interval()
    }

    /// Gate count of the underlying circuit (the `of` denominator in
    /// update replies: how much a full re-evaluation would touch).
    pub fn gate_count(&self) -> usize {
        self.priced.gate_count()
    }

    /// The uncertain tuples the circuit actually depends on, slot order.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// The current weight of an uncertain tuple.
    pub fn weight_of(&self, t: Tuple) -> Result<Rational, SessionError> {
        match self.slot(t)? {
            Some(slot) => Ok(self.priced.weight(slot).clone()),
            None => Ok(self
                .off_circuit
                .get(&t)
                .cloned()
                .unwrap_or_else(|| self.vars.weights()[&self.vars.lookup(&t).unwrap()].clone())),
        }
    }

    fn ensure_grads(&mut self) -> &[Rational] {
        if self.grads.is_none() {
            self.grads = Some(self.priced.gradients());
        }
        self.grads.as_deref().unwrap()
    }

    /// `∂Pr/∂p_t` at the current weights, exact. Zero for a tuple the
    /// circuit does not depend on.
    pub fn gradient(&mut self, t: Tuple) -> Result<Rational, SessionError> {
        match self.slot(t)? {
            Some(slot) => {
                let si = slot as usize;
                Ok(self.ensure_grads()[si].clone())
            }
            None => Ok(Rational::zero()),
        }
    }

    /// The `k` most influential tuples: largest `|∂Pr/∂p_t|` first, ties
    /// broken by tuple order so the ranking is deterministic.
    pub fn top_k_influential(&mut self, k: usize) -> Vec<(Tuple, Rational)> {
        self.ensure_grads();
        let grads = self.grads.as_deref().unwrap();
        let mut ranked: Vec<(Tuple, Rational)> = self
            .tuples
            .iter()
            .zip(grads.iter())
            .map(|(&t, g)| (t, g.clone()))
            .collect();
        ranked.sort_by(|a, b| b.1.abs().cmp(&a.1.abs()).then_with(|| a.0.cmp(&b.0)));
        ranked.truncate(k);
        ranked
    }

    /// The exact range `Pr` can take as `t`'s weight sweeps `[0, 1]`
    /// with everything else fixed: by multilinearity that range is the
    /// segment between `Pr|p_t=0 = v − p·g` and `Pr|p_t=1 = v + (1−p)·g`,
    /// returned as `(min, max)`. For a tuple the circuit does not depend
    /// on, the band collapses to the current value.
    pub fn what_if_band(&mut self, t: Tuple) -> Result<(Rational, Rational), SessionError> {
        let v = self.value();
        match self.slot(t)? {
            Some(slot) => {
                let p = self.priced.weight(slot).clone();
                let si = slot as usize;
                let g = self.ensure_grads()[si].clone();
                let at0 = &v - &(&p * &g);
                let at1 = &at0 + &g;
                Ok(if at0 <= at1 { (at0, at1) } else { (at1, at0) })
            }
            None => Ok((v.clone(), v)),
        }
    }
}

// ---------------------------------------------------------------------
// Engine-level session management.
// ---------------------------------------------------------------------

/// One registry entry: the owning tenant (for the per-tenant cap) and
/// the individually locked session, so holding the registry lock never
/// overlaps session work.
#[derive(Debug)]
pub(crate) struct SessionSlot {
    pub(crate) tenant: Option<String>,
    pub(crate) inner: Arc<Mutex<Session>>,
}

/// The display name unlabeled sessions are accounted under.
const ANONYMOUS: &str = "anonymous";

impl Engine {
    /// Poison-tolerant registry lock, for the same reason as the cache
    /// shards: one panicking session must not wedge the whole registry.
    fn lock_sessions(&self) -> MutexGuard<'_, HashMap<u64, SessionSlot>> {
        self.sessions.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Opens a session for `req`: gates the estimated compile cost
    /// against `req.budget.max_circuit_cost`, charges the session
    /// against the tenant's open-session cap, compiles (or fetches from
    /// the cache) the lineage, prices it under the database
    /// probabilities, and returns the new session's id.
    pub fn open_session(&self, req: &EvalRequest) -> Result<u64, SessionError> {
        let cap = self.max_sessions_per_tenant;
        let over_cap = |sessions: &HashMap<u64, SessionSlot>| {
            sessions.values().filter(|s| s.tenant == req.tenant).count() >= cap
        };
        let limit = || SessionError::Limit {
            tenant: req.tenant.clone().unwrap_or_else(|| ANONYMOUS.into()),
            cap,
        };
        // Cheap pre-check so an over-cap tenant cannot force compiles.
        if over_cap(&self.lock_sessions()) {
            return Err(limit());
        }
        let lin = lineage(&req.query, &req.tid);
        let cost = circuit_cost_estimate(&lin.cnf);
        if !cost.within(req.budget.max_circuit_cost) {
            return Err(SessionError::Cost {
                estimated: cost.estimated_nodes,
                cap: req.budget.max_circuit_cost,
            });
        }
        let compiled = self.compile_lineage(lin);
        let session = compiled.open_session(&TupleWeights::new());
        let mut sessions = self.lock_sessions();
        // Re-check under the lock: a racing open may have filled the cap
        // while we compiled.
        if over_cap(&sessions) {
            return Err(limit());
        }
        let id = self.session_ids.fetch_add(1, Ordering::Relaxed) + 1;
        sessions.insert(
            id,
            SessionSlot {
                tenant: req.tenant.clone(),
                inner: Arc::new(Mutex::new(session)),
            },
        );
        drop(sessions);
        self.registry()
            .counter("engine_sessions_opened_total", &[])
            .inc();
        Ok(id)
    }

    /// Closes a session, releasing its tenant-cap charge. Closing an
    /// unknown (or already-closed) id is a typed error.
    pub fn close_session(&self, id: u64) -> Result<(), SessionError> {
        self.lock_sessions()
            .remove(&id)
            .ok_or(SessionError::UnknownSession(id))?;
        self.registry()
            .counter("engine_sessions_closed_total", &[])
            .inc();
        Ok(())
    }

    /// Runs `f` on the session `id`, holding only that session's lock.
    pub fn with_session<R>(
        &self,
        id: u64,
        f: impl FnOnce(&mut Session) -> R,
    ) -> Result<R, SessionError> {
        let slot = self
            .lock_sessions()
            .get(&id)
            .map(|s| Arc::clone(&s.inner))
            .ok_or(SessionError::UnknownSession(id))?;
        let mut session = slot.lock().unwrap_or_else(PoisonError::into_inner);
        Ok(f(&mut session))
    }

    /// Number of currently open sessions (all tenants).
    pub fn session_count(&self) -> usize {
        self.lock_sessions().len()
    }

    /// Runs one batch of operations against session `id` under a single
    /// session lock (the op stream is atomic with respect to other
    /// callers of the same session). Per-op latencies land in the
    /// `engine_update_nanos` / `engine_explain_nanos` histograms; the
    /// summed phase times go to `tr` as `update` / `explain` spans.
    ///
    /// Ops apply in order; a failing op aborts the remainder but earlier
    /// updates stay applied — the session is stateful by design. (A
    /// `close` trailer in the wire body is still honoured on failure:
    /// see [`Engine::session_request`].)
    fn run_ops(
        &self,
        id: u64,
        ops: &[SessionOp],
        tr: &mut Trace,
    ) -> Result<Vec<SessionReply>, SessionError> {
        let registry = Arc::clone(self.registry());
        let mut update_nanos = 0u64;
        let mut explain_nanos = 0u64;
        let replies = self.with_session(id, |s| -> Result<Vec<SessionReply>, SessionError> {
            let mut replies = Vec::with_capacity(ops.len());
            for op in ops {
                match op {
                    SessionOp::Update { tuple, weight } => {
                        let t0 = Instant::now();
                        let stats = s.update(*tuple, weight.clone())?;
                        let nanos = t0.elapsed().as_nanos() as u64;
                        update_nanos += nanos;
                        registry.histogram("engine_update_nanos", &[]).record(nanos);
                        replies.push(SessionReply::Updated {
                            tuple: *tuple,
                            weight: weight.clone(),
                            repriced: stats.repriced,
                            of: s.gate_count(),
                        });
                    }
                    SessionOp::Value => replies.push(SessionReply::Value(s.value())),
                    SessionOp::ExplainTop { k } => {
                        let t0 = Instant::now();
                        let ranked = s.top_k_influential(*k);
                        let nanos = t0.elapsed().as_nanos() as u64;
                        explain_nanos += nanos;
                        registry
                            .histogram("engine_explain_nanos", &[])
                            .record(nanos);
                        replies.push(SessionReply::Influence(ranked));
                    }
                    SessionOp::Gradient { tuple } => {
                        let t0 = Instant::now();
                        let g = s.gradient(*tuple)?;
                        let nanos = t0.elapsed().as_nanos() as u64;
                        explain_nanos += nanos;
                        registry
                            .histogram("engine_explain_nanos", &[])
                            .record(nanos);
                        replies.push(SessionReply::Gradient {
                            tuple: *tuple,
                            gradient: g,
                        });
                    }
                    SessionOp::WhatIf { tuple } => {
                        let t0 = Instant::now();
                        let (lo, hi) = s.what_if_band(*tuple)?;
                        let nanos = t0.elapsed().as_nanos() as u64;
                        explain_nanos += nanos;
                        registry
                            .histogram("engine_explain_nanos", &[])
                            .record(nanos);
                        replies.push(SessionReply::WhatIf {
                            tuple: *tuple,
                            lo,
                            hi,
                        });
                    }
                }
            }
            Ok(replies)
        })??;
        if update_nanos > 0 {
            tr.push_span("update", update_nanos);
        }
        if explain_nanos > 0 {
            tr.push_span("explain", explain_nanos);
        }
        Ok(replies)
    }

    /// The typed session front door: open / operate-on / close sessions
    /// with the same per-request observability as
    /// [`Engine::evaluate_request`] — a `session`-routed entry in the
    /// request-latency histogram and the slow-query log, with `open` /
    /// `update` / `explain` phase spans. Every request is counted and
    /// timed, including the ones that fail.
    pub fn session_request(&self, req: &SessionRequest) -> Result<SessionResponse, SessionError> {
        let start = Instant::now();
        let mut tr = Trace::new();
        tr.route = Some("session".into());
        let result = self.session_request_traced(req, &mut tr);
        tr.total_nanos = start.elapsed().as_nanos() as u64;
        let registry = self.registry();
        registry.counter("engine_session_requests_total", &[]).inc();
        registry
            .histogram("engine_request_nanos", &[("route", "session")])
            .record(tr.total_nanos);
        self.slow_log().record(&tr);
        result
    }

    fn session_request_traced(
        &self,
        req: &SessionRequest,
        tr: &mut Trace,
    ) -> Result<SessionResponse, SessionError> {
        match req {
            SessionRequest::Close { id } => {
                self.close_session(*id)?;
                Ok(SessionResponse {
                    id: *id,
                    replies: Vec::new(),
                    closed: true,
                })
            }
            SessionRequest::Open {
                spec,
                ops,
                close_after,
            } => {
                let t0 = Instant::now();
                let id = self.open_session(spec)?;
                tr.push_span("open", t0.elapsed().as_nanos() as u64);
                // On any failure past this point the client gets an error
                // with no session id, so an open session would be
                // unreachable and hold a cap slot until process restart —
                // tear it down before propagating.
                let replies = match self.run_ops(id, ops, tr) {
                    Ok(replies) => replies,
                    Err(e) => {
                        let _ = self.close_session(id);
                        return Err(e);
                    }
                };
                if *close_after {
                    self.close_session(id)?;
                }
                Ok(SessionResponse {
                    id,
                    replies,
                    closed: *close_after,
                })
            }
            SessionRequest::Use {
                id,
                ops,
                close_after,
            } => {
                let ops_result = self.run_ops(*id, ops, tr);
                if *close_after {
                    // The request asked for the close; honour it even when
                    // an op failed. The close is best-effort on the error
                    // path (the op error is the one the client needs —
                    // e.g. an unknown id would fail both identically).
                    match &ops_result {
                        Ok(_) => self.close_session(*id)?,
                        Err(_) => {
                            let _ = self.close_session(*id);
                        }
                    }
                }
                Ok(SessionResponse {
                    id: *id,
                    replies: ops_result?,
                    closed: *close_after,
                })
            }
        }
    }

    /// The complete session wire pipeline: parse `body` as a
    /// [`SessionRequest`], validate the spec budget, run it, and render
    /// the [`SessionResponse`] to the exact text the server sends back.
    /// Every failure is a typed [`SessionWireError`], never a panic.
    pub fn session_wire(&self, body: &str) -> Result<String, SessionWireError> {
        let req: SessionRequest = body.parse().map_err(SessionWireError::Parse)?;
        if let SessionRequest::Open { spec, .. } = &req {
            spec.budget.validate().map_err(SessionWireError::Budget)?;
        }
        let resp = self
            .session_request(&req)
            .map_err(SessionWireError::Session)?;
        Ok(resp.to_string())
    }
}

// ---------------------------------------------------------------------
// The session wire grammar.
// ---------------------------------------------------------------------

/// One session operation (an op line of the wire grammar).
#[derive(Clone, Debug, PartialEq)]
pub enum SessionOp {
    /// `update <tuple> <probability>` — set one tuple's weight.
    Update {
        /// The tuple whose weight changes.
        tuple: Tuple,
        /// The new probability.
        weight: Rational,
    },
    /// `value` — read the current exact `Pr(Q)`.
    Value,
    /// `explain top <k>` — the `k` most influential tuples by `|∂Pr/∂p|`.
    ExplainTop {
        /// How many tuples to rank (`≥ 1`, enforced at parse time).
        k: usize,
    },
    /// `gradient <tuple>` — the exact `∂Pr/∂p_t`.
    Gradient {
        /// The tuple to differentiate by.
        tuple: Tuple,
    },
    /// `whatif <tuple>` — the exact range of `Pr` over the tuple's
    /// weight sweep.
    WhatIf {
        /// The tuple to sweep.
        tuple: Tuple,
    },
}

impl fmt::Display for SessionOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionOp::Update { tuple, weight } => write!(f, "update {tuple} {weight}"),
            SessionOp::Value => f.write_str("value"),
            SessionOp::ExplainTop { k } => write!(f, "explain top {k}"),
            SessionOp::Gradient { tuple } => write!(f, "gradient {tuple}"),
            SessionOp::WhatIf { tuple } => write!(f, "whatif {tuple}"),
        }
    }
}

/// One complete session wire request (see the module-level grammar).
#[derive(Clone, Debug, PartialEq)]
pub enum SessionRequest {
    /// `session open` + an interleaved [`EvalRequest`] spec + ops.
    Open {
        /// The query/database/budget spec the session compiles.
        spec: Box<EvalRequest>,
        /// The operations to run right after opening.
        ops: Vec<SessionOp>,
        /// Close the session after the ops (the trailing `session close`).
        close_after: bool,
    },
    /// `session use <id>` + ops against an already-open session.
    Use {
        /// The session id from a previous open.
        id: u64,
        /// The operations to run.
        ops: Vec<SessionOp>,
        /// Close the session after the ops.
        close_after: bool,
    },
    /// `session close <id>` — close and nothing else.
    Close {
        /// The session id to close.
        id: u64,
    },
}

/// Failure to parse a [`SessionRequest`] wire body.
#[derive(Clone, Debug, PartialEq)]
pub enum SessionParseError {
    /// The interleaved [`EvalRequest`] spec under `session open` failed.
    Spec(RequestParseError),
    /// Anything else: bad header, malformed op, misplaced line.
    Malformed(String),
}

impl fmt::Display for SessionParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionParseError::Spec(e) => write!(f, "session spec: {e}"),
            SessionParseError::Malformed(m) => write!(f, "malformed session request: {m}"),
        }
    }
}

impl std::error::Error for SessionParseError {}

/// The serving layer's error union for the session endpoint.
#[derive(Clone, Debug, PartialEq)]
pub enum SessionWireError {
    /// The body did not parse.
    Parse(SessionParseError),
    /// The spec parsed but carried an invalid budget.
    Budget(BudgetError),
    /// The request was well-formed but the session layer rejected it.
    Session(SessionError),
}

impl fmt::Display for SessionWireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionWireError::Parse(e) => write!(f, "{e}"),
            SessionWireError::Budget(e) => write!(f, "budget: {e}"),
            SessionWireError::Session(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SessionWireError {}

impl fmt::Display for SessionRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionRequest::Open {
                spec,
                ops,
                close_after,
            } => {
                writeln!(f, "session open")?;
                write!(f, "{spec}")?;
                for op in ops {
                    writeln!(f, "{op}")?;
                }
                if *close_after {
                    writeln!(f, "session close")?;
                }
                Ok(())
            }
            SessionRequest::Use {
                id,
                ops,
                close_after,
            } => {
                writeln!(f, "session use {id}")?;
                for op in ops {
                    writeln!(f, "{op}")?;
                }
                if *close_after {
                    writeln!(f, "session close")?;
                }
                Ok(())
            }
            SessionRequest::Close { id } => writeln!(f, "session close {id}"),
        }
    }
}

/// The keys of the [`EvalRequest`] grammar, which may interleave with op
/// lines under `session open`.
const SPEC_KEYS: [&str; 14] = [
    "query",
    "tenant",
    "trace",
    "left",
    "right",
    "default",
    "tuple",
    "max_circuit_cost",
    "samples",
    "delta",
    "seed",
    "threads",
    "mode",
    "threshold",
];

enum Header {
    Open,
    Use(u64),
    Close(u64),
}

impl FromStr for SessionRequest {
    type Err = SessionParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mal = |m: String| SessionParseError::Malformed(m);
        let mut header: Option<Header> = None;
        let mut spec_text = String::new();
        let mut ops: Vec<SessionOp> = Vec::new();
        let mut close_after = false;
        for (lineno, raw) in s.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let at = |m: &str| mal(format!("line {}: {m}", lineno + 1));
            if close_after {
                return Err(at("nothing may follow the trailing 'session close'"));
            }
            let (key, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
            let rest = rest.trim();
            if key == "session" {
                let parse_id = |w: &str| {
                    w.parse::<u64>()
                        .map_err(|_| at(&format!("bad session id '{w}'")))
                };
                let words: Vec<&str> = rest.split_whitespace().collect();
                match (words.as_slice(), &header) {
                    (["open"], None) => header = Some(Header::Open),
                    (["use", id], None) => header = Some(Header::Use(parse_id(id)?)),
                    (["close", id], None) => header = Some(Header::Close(parse_id(id)?)),
                    (["close"], Some(Header::Open | Header::Use(_))) => close_after = true,
                    (["close"], None) => {
                        return Err(at(
                            "'session close' without an id must follow 'session open' or \
                             'session use <id>'",
                        ))
                    }
                    (_, Some(_)) => return Err(at("duplicate session header")),
                    _ => {
                        return Err(at("expected 'session open', 'session use <id>', or \
                             'session close [<id>]'"))
                    }
                }
                continue;
            }
            match header {
                None => {
                    return Err(at("first line must be a session header ('session open', \
                         'session use <id>', or 'session close <id>')"))
                }
                Some(Header::Close(_)) => {
                    return Err(at("'session close <id>' takes no further lines"))
                }
                Some(Header::Open | Header::Use(_)) => {}
            }
            if SPEC_KEYS.contains(&key) {
                if !matches!(header, Some(Header::Open)) {
                    return Err(at(&format!(
                        "request line '{key}' only allowed under 'session open'"
                    )));
                }
                spec_text.push_str(line);
                spec_text.push('\n');
                continue;
            }
            match key {
                "update" => {
                    let (t, p) = rest
                        .rsplit_once(char::is_whitespace)
                        .ok_or_else(|| at("expected 'update <tuple> <probability>'"))?;
                    let tuple = parse_tuple(t).map_err(|e| at(&e.to_string()))?;
                    let weight = parse_prob(p.trim())
                        .ok_or_else(|| at(&format!("probability '{p}' not in [0, 1]")))?;
                    ops.push(SessionOp::Update { tuple, weight });
                }
                "value" => {
                    if !rest.is_empty() {
                        return Err(at("'value' takes no arguments"));
                    }
                    ops.push(SessionOp::Value);
                }
                "explain" => {
                    let words: Vec<&str> = rest.split_whitespace().collect();
                    match words.as_slice() {
                        ["top", kw] => {
                            let k = kw
                                .parse::<usize>()
                                .ok()
                                .filter(|&k| k >= 1)
                                .ok_or_else(|| at(&format!("bad top-k count '{kw}'")))?;
                            ops.push(SessionOp::ExplainTop { k });
                        }
                        _ => return Err(at("expected 'explain top <k>'")),
                    }
                }
                "gradient" => {
                    let tuple = parse_tuple(rest).map_err(|e| at(&e.to_string()))?;
                    ops.push(SessionOp::Gradient { tuple });
                }
                "whatif" => {
                    let tuple = parse_tuple(rest).map_err(|e| at(&e.to_string()))?;
                    ops.push(SessionOp::WhatIf { tuple });
                }
                other => return Err(at(&format!("unknown session line '{other}'"))),
            }
        }
        match header {
            None => Err(mal("empty session request".into())),
            Some(Header::Open) => {
                let spec: EvalRequest = spec_text.parse().map_err(SessionParseError::Spec)?;
                Ok(SessionRequest::Open {
                    spec: Box::new(spec),
                    ops,
                    close_after,
                })
            }
            Some(Header::Use(id)) => Ok(SessionRequest::Use {
                id,
                ops,
                close_after,
            }),
            Some(Header::Close(id)) => Ok(SessionRequest::Close { id }),
        }
    }
}

// ---------------------------------------------------------------------
// The session wire response.
// ---------------------------------------------------------------------

/// One reply line per session operation, in op order.
#[derive(Clone, Debug, PartialEq)]
pub enum SessionReply {
    /// `value <r>` — the current exact probability.
    Value(Rational),
    /// `updated <tuple> <w> repriced <n> of <m>` — the update was
    /// applied; `n` of the circuit's `m` gates were re-priced.
    Updated {
        /// The tuple whose weight changed.
        tuple: Tuple,
        /// The applied weight.
        weight: Rational,
        /// Gates the dirty-path pass re-priced (0 for a no-op update).
        repriced: usize,
        /// Total circuit gate count, for scale.
        of: usize,
    },
    /// `influence <rank> <tuple> <gradient>` lines (rank starts at 1;
    /// `influence none` for an empty ranking).
    Influence(Vec<(Tuple, Rational)>),
    /// `gradient <tuple> <g>` — the exact derivative (can be negative).
    Gradient {
        /// The differentiated tuple.
        tuple: Tuple,
        /// `∂Pr/∂p_t`, exact.
        gradient: Rational,
    },
    /// `whatif <tuple> <lo> <hi>` — the exact reachable range of `Pr`.
    WhatIf {
        /// The swept tuple.
        tuple: Tuple,
        /// Minimum reachable probability.
        lo: Rational,
        /// Maximum reachable probability.
        hi: Rational,
    },
}

/// The session wire response: the session id, one reply per op, and a
/// `closed` marker when the request closed the session. Round-trips
/// bit-identically through [`fmt::Display`] / [`FromStr`].
#[derive(Clone, Debug, PartialEq)]
pub struct SessionResponse {
    /// The session the request operated on (fresh for an open).
    pub id: u64,
    /// One reply per operation, in request order.
    pub replies: Vec<SessionReply>,
    /// Whether the request closed the session.
    pub closed: bool,
}

impl fmt::Display for SessionReply {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionReply::Value(v) => writeln!(f, "value {v}"),
            SessionReply::Updated {
                tuple,
                weight,
                repriced,
                of,
            } => writeln!(f, "updated {tuple} {weight} repriced {repriced} of {of}"),
            SessionReply::Influence(items) => {
                if items.is_empty() {
                    return writeln!(f, "influence none");
                }
                for (rank, (t, g)) in items.iter().enumerate() {
                    writeln!(f, "influence {} {t} {g}", rank + 1)?;
                }
                Ok(())
            }
            SessionReply::Gradient { tuple, gradient } => {
                writeln!(f, "gradient {tuple} {gradient}")
            }
            SessionReply::WhatIf { tuple, lo, hi } => writeln!(f, "whatif {tuple} {lo} {hi}"),
        }
    }
}

impl fmt::Display for SessionResponse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "session {}", self.id)?;
        for r in &self.replies {
            write!(f, "{r}")?;
        }
        if self.closed {
            writeln!(f, "closed")?;
        }
        Ok(())
    }
}

impl FromStr for SessionResponse {
    type Err = ResponseParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut id: Option<u64> = None;
        let mut replies: Vec<SessionReply> = Vec::new();
        let mut closed = false;
        for line in s.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if closed {
                return Err(ResponseParseError("lines after 'closed'".into()));
            }
            let (key, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
            let rest = rest.trim();
            if id.is_none() {
                if key != "session" {
                    return Err(ResponseParseError(
                        "response must start with 'session <id>'".into(),
                    ));
                }
                id = Some(
                    rest.parse::<u64>()
                        .map_err(|_| ResponseParseError(format!("bad session id '{rest}'")))?,
                );
                continue;
            }
            let mut words = rest.split_whitespace();
            match key {
                "session" => {
                    return Err(ResponseParseError("duplicate 'session' line".into()));
                }
                "value" => {
                    let v = token(&mut words, "probability", parse_prob)?;
                    replies.push(SessionReply::Value(v));
                }
                "updated" => {
                    let tuple = token(&mut words, "tuple", |w| parse_tuple(w).ok())?;
                    let weight = token(&mut words, "weight", parse_prob)?;
                    keyword(&mut words, "repriced")?;
                    let repriced = token(&mut words, "repriced count", |w| w.parse().ok())?;
                    keyword(&mut words, "of")?;
                    let of = token(&mut words, "gate count", |w| w.parse().ok())?;
                    replies.push(SessionReply::Updated {
                        tuple,
                        weight,
                        repriced,
                        of,
                    });
                }
                "influence" => {
                    if rest == "none" {
                        replies.push(SessionReply::Influence(Vec::new()));
                        continue;
                    }
                    let rank: usize = token(&mut words, "influence rank", |w| w.parse().ok())?;
                    let tuple = token(&mut words, "tuple", |w| parse_tuple(w).ok())?;
                    let grad = token(&mut words, "gradient", Rational::from_decimal)?;
                    if let Some(extra) = words.next() {
                        return Err(ResponseParseError(format!("trailing input '{extra}'")));
                    }
                    if rank == 1 {
                        replies.push(SessionReply::Influence(vec![(tuple, grad)]));
                        continue;
                    }
                    match replies.last_mut() {
                        Some(SessionReply::Influence(items)) if items.len() + 1 == rank => {
                            items.push((tuple, grad));
                        }
                        _ => {
                            return Err(ResponseParseError(format!(
                                "influence rank {rank} out of order"
                            )))
                        }
                    }
                    continue;
                }
                "gradient" => {
                    let tuple = token(&mut words, "tuple", |w| parse_tuple(w).ok())?;
                    let gradient = token(&mut words, "gradient", Rational::from_decimal)?;
                    replies.push(SessionReply::Gradient { tuple, gradient });
                }
                "whatif" => {
                    let tuple = token(&mut words, "tuple", |w| parse_tuple(w).ok())?;
                    let lo = token(&mut words, "band lower endpoint", parse_prob)?;
                    let hi = token(&mut words, "band upper endpoint", parse_prob)?;
                    if lo > hi {
                        return Err(ResponseParseError("band endpoints out of order".into()));
                    }
                    replies.push(SessionReply::WhatIf { tuple, lo, hi });
                }
                "closed" => {
                    if !rest.is_empty() {
                        return Err(ResponseParseError("'closed' takes no arguments".into()));
                    }
                    closed = true;
                    continue;
                }
                other => {
                    return Err(ResponseParseError(format!(
                        "unknown session response line '{other}'"
                    )))
                }
            }
            if let Some(extra) = words.next() {
                return Err(ResponseParseError(format!("trailing input '{extra}'")));
            }
        }
        Ok(SessionResponse {
            id: id.ok_or_else(|| ResponseParseError("empty session response".into()))?,
            replies,
            closed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::Budget;
    use gfomc_query::catalog;
    use gfomc_tid::Tid;

    fn half() -> Rational {
        Rational::one_half()
    }

    fn small_request() -> EvalRequest {
        let q = catalog::h1();
        let mut tid = Tid::all_present([0, 1], [1000]);
        tid.set_prob(Tuple::R(0), half());
        tid.set_prob(Tuple::S(0, 0, 1000), Rational::from_ints(3, 8));
        tid.set_prob(Tuple::T(1000), half());
        EvalRequest::new(q, tid)
    }

    #[test]
    fn session_tracks_updates_and_matches_stateless_evaluation() {
        let engine = Engine::new();
        let req = small_request();
        let compiled = engine.compile(&req.query, &req.tid);
        let mut s = compiled.open_session(&TupleWeights::new());
        assert_eq!(s.value(), compiled.evaluate_db());
        let stats = s.update(Tuple::R(0), Rational::from_ints(1, 3)).unwrap();
        assert!(stats.repriced > 0);
        let expected =
            compiled.evaluate(&TupleWeights::new().with(Tuple::R(0), Rational::from_ints(1, 3)));
        assert_eq!(s.value(), expected);
        assert_eq!(s.weight_of(Tuple::R(0)).unwrap(), Rational::from_ints(1, 3));
    }

    #[test]
    fn session_rejects_bad_updates_with_typed_errors() {
        let engine = Engine::new();
        let req = small_request();
        let mut s = engine
            .compile(&req.query, &req.tid)
            .open_session(&TupleWeights::new());
        assert_eq!(
            s.update(Tuple::R(7), half()),
            Err(SessionError::UnknownTuple(Tuple::R(7)))
        );
        assert!(matches!(
            s.update(Tuple::R(0), Rational::from_ints(3, 2)),
            Err(SessionError::InvalidWeight { .. })
        ));
    }

    #[test]
    fn what_if_band_brackets_reachable_values() {
        let engine = Engine::new();
        let req = small_request();
        let compiled = engine.compile(&req.query, &req.tid);
        let mut s = compiled.open_session(&TupleWeights::new());
        let (lo, hi) = s.what_if_band(Tuple::R(0)).unwrap();
        let at0 = compiled.evaluate(&TupleWeights::new().with(Tuple::R(0), Rational::zero()));
        let at1 = compiled.evaluate(&TupleWeights::new().with(Tuple::R(0), Rational::one()));
        assert_eq!(lo, at0.clone().min(at1.clone()));
        assert_eq!(hi, at0.max(at1));
        assert!(lo <= s.value() && s.value() <= hi);
    }

    #[test]
    fn top_k_ranking_is_deterministic_and_truncated() {
        let engine = Engine::new();
        let req = small_request();
        let mut s = engine
            .compile(&req.query, &req.tid)
            .open_session(&TupleWeights::new());
        let all = s.top_k_influential(usize::MAX);
        assert_eq!(all.len(), s.tuples().len());
        for w in all.windows(2) {
            assert!(w[0].1.abs() >= w[1].1.abs());
        }
        let top1 = s.top_k_influential(1);
        assert_eq!(top1.len(), 1);
        assert_eq!(top1[0], all[0]);
    }

    #[test]
    fn engine_session_lifecycle_and_typed_errors() {
        let engine = Engine::new();
        let id = engine.open_session(&small_request()).unwrap();
        assert_eq!(engine.session_count(), 1);
        let v = engine.with_session(id, |s| s.value()).unwrap();
        assert!(v > Rational::zero());
        engine.close_session(id).unwrap();
        assert_eq!(engine.session_count(), 0);
        assert_eq!(
            engine.close_session(id),
            Err(SessionError::UnknownSession(id))
        );
        assert_eq!(
            engine.with_session(id, |s| s.value()),
            Err(SessionError::UnknownSession(id))
        );
    }

    #[test]
    fn per_tenant_cap_is_enforced() {
        let engine = Engine::builder().max_sessions_per_tenant(2).build();
        let acme = small_request().with_tenant("acme");
        engine.open_session(&acme).unwrap();
        engine.open_session(&acme).unwrap();
        assert_eq!(
            engine.open_session(&acme),
            Err(SessionError::Limit {
                tenant: "acme".into(),
                cap: 2
            })
        );
        // A different tenant (and the anonymous pool) are unaffected.
        engine
            .open_session(&small_request().with_tenant("other"))
            .unwrap();
        engine.open_session(&small_request()).unwrap();
    }

    #[test]
    fn cost_gate_rejects_expensive_opens() {
        let engine = Engine::new();
        let req = small_request().with_budget(Budget::default().with_max_circuit_cost(0));
        assert!(matches!(
            engine.open_session(&req),
            Err(SessionError::Cost { cap: 0, .. })
        ));
        assert_eq!(engine.session_count(), 0);
    }

    #[test]
    fn session_request_roundtrips_through_text() {
        let open = SessionRequest::Open {
            spec: Box::new(small_request()),
            ops: vec![
                SessionOp::Update {
                    tuple: Tuple::R(0),
                    weight: Rational::from_ints(1, 3),
                },
                SessionOp::Value,
                SessionOp::ExplainTop { k: 2 },
                SessionOp::Gradient {
                    tuple: Tuple::T(1000),
                },
                SessionOp::WhatIf { tuple: Tuple::R(0) },
            ],
            close_after: true,
        };
        assert_eq!(open.to_string().parse::<SessionRequest>().unwrap(), open);
        let use_req = SessionRequest::Use {
            id: 7,
            ops: vec![SessionOp::Value],
            close_after: false,
        };
        assert_eq!(
            use_req.to_string().parse::<SessionRequest>().unwrap(),
            use_req
        );
        let close = SessionRequest::Close { id: 9 };
        assert_eq!(close.to_string().parse::<SessionRequest>().unwrap(), close);
    }

    #[test]
    fn session_request_parse_rejects_malformed_bodies() {
        for bad in [
            "",
            "value\n",
            "session banana\n",
            "session open\nsession open\n",
            "session use 3\nquery R(x0)\n",
            "session close 3\nvalue\n",
            "session use 1\nsession close\nvalue\n",
            "session use 1\nexplain top 0\n",
            "session use 1\nexplain top x\n",
            "session use 1\nupdate R(u0) 3/2\n",
            "session use 1\nupdate R(u0)\n",
            "session use 1\nfrobnicate\n",
            "session close\n",
        ] {
            assert!(
                bad.parse::<SessionRequest>().is_err(),
                "{bad:?} should not parse"
            );
        }
        // A bad spec under `session open` is the typed Spec variant.
        assert!(matches!(
            "session open\nvalue\n".parse::<SessionRequest>(),
            Err(SessionParseError::Spec(_))
        ));
    }

    #[test]
    fn session_response_roundtrips_through_text() {
        let resp = SessionResponse {
            id: 3,
            replies: vec![
                SessionReply::Updated {
                    tuple: Tuple::R(0),
                    weight: Rational::from_ints(1, 3),
                    repriced: 5,
                    of: 40,
                },
                SessionReply::Value(Rational::from_ints(7, 16)),
                SessionReply::Influence(vec![
                    (Tuple::S(0, 0, 1000), Rational::from_ints(-1, 2)),
                    (Tuple::R(0), Rational::from_ints(1, 4)),
                ]),
                SessionReply::Influence(Vec::new()),
                SessionReply::Gradient {
                    tuple: Tuple::T(1000),
                    gradient: Rational::from_ints(-3, 8),
                },
                SessionReply::WhatIf {
                    tuple: Tuple::R(0),
                    lo: Rational::from_ints(1, 4),
                    hi: Rational::from_ints(3, 4),
                },
            ],
            closed: true,
        };
        assert_eq!(resp.to_string().parse::<SessionResponse>().unwrap(), resp);
    }

    #[test]
    fn session_response_parse_rejects_malformed_bodies() {
        for bad in [
            "",
            "value 1/2\n",
            "session 3\nsession 4\n",
            "session 3\nvalue 3/2\n",
            "session 3\nclosed\nvalue 1/2\n",
            "session 3\ninfluence 2 R(u0) 1/2\n",
            "session 3\nvalue 1/2 extra\n",
            "session 3\nwhatif R(u0) 3/4 1/4\n",
            "session 3\nupdated R(u0) 1/2 repriced x of 4\n",
            "session 3\nbogus 1\n",
        ] {
            assert!(
                bad.parse::<SessionResponse>().is_err(),
                "{bad:?} should not parse"
            );
        }
    }

    #[test]
    fn wire_pipeline_matches_in_process_session() {
        let engine = Engine::new();
        let req = SessionRequest::Open {
            spec: Box::new(small_request()),
            ops: vec![
                SessionOp::Update {
                    tuple: Tuple::R(0),
                    weight: Rational::from_ints(2, 3),
                },
                SessionOp::Value,
                SessionOp::ExplainTop { k: 3 },
            ],
            close_after: true,
        };
        let wire = engine.session_wire(&req.to_string()).unwrap();
        let resp: SessionResponse = wire.parse().unwrap();
        assert!(resp.closed);
        // Replay in-process on a fresh engine: bit-identical replies.
        let direct = Engine::new().session_request(&req).unwrap();
        assert_eq!(resp.replies, direct.replies);
        assert_eq!(wire.parse::<SessionResponse>().unwrap().to_string(), wire);
    }

    #[test]
    fn wire_errors_are_typed_never_panics() {
        let engine = Engine::new();
        assert!(matches!(
            engine.session_wire("session use 999\nvalue\n"),
            Err(SessionWireError::Session(SessionError::UnknownSession(999)))
        ));
        assert!(matches!(
            engine.session_wire("gibberish\n"),
            Err(SessionWireError::Parse(_))
        ));
        let bad_budget = format!("session open\n{}delta 1.5\n", {
            let mut spec = small_request();
            spec.budget = Budget::default();
            spec.to_string()
                .lines()
                .filter(|l| !l.starts_with("delta"))
                .map(|l| format!("{l}\n"))
                .collect::<String>()
        });
        assert!(matches!(
            engine.session_wire(&bad_budget),
            Err(SessionWireError::Parse(_)) | Err(SessionWireError::Budget(_))
        ));
    }

    #[test]
    fn session_metrics_land_in_the_registry() {
        let engine = Engine::new();
        let id = engine.open_session(&small_request()).unwrap();
        let req = SessionRequest::Use {
            id,
            ops: vec![
                SessionOp::Update {
                    tuple: Tuple::R(0),
                    weight: Rational::from_ints(1, 4),
                },
                SessionOp::ExplainTop { k: 1 },
            ],
            close_after: true,
        };
        engine.session_request(&req).unwrap();
        let registry = engine.registry();
        assert_eq!(
            registry.counter_value("engine_sessions_opened_total", &[]),
            1
        );
        assert_eq!(
            registry.counter_value("engine_sessions_closed_total", &[]),
            1
        );
        let updates = registry
            .histogram_snapshot("engine_update_nanos", &[])
            .expect("update histogram exists");
        assert_eq!(updates.count, 1);
        let explains = registry
            .histogram_snapshot("engine_explain_nanos", &[])
            .expect("explain histogram exists");
        assert_eq!(explains.count, 1);
        engine.refresh_gauges();
        assert_eq!(engine.session_count(), 0);
    }
}
