//! # gfomc-engine
//!
//! Knowledge-compiled query evaluation: compile the lineage of a query over
//! a TID **once** into a d-DNNF-style arithmetic circuit, then evaluate it
//! under **many** weight assignments, each in time linear in the circuit.
//!
//! The naive oracle ([`gfomc_tid::probability`]) re-runs Shannon expansion
//! from scratch for every query/weight pair. But the paper's block
//! constructions (§3, Theorem 3.4) — and any workload sweeping tuple
//! probabilities over a fixed database — evaluate the *same* lineage under
//! *many* weight assignments. That is exactly the workload knowledge
//! compilation amortizes:
//!
//! ```
//! use gfomc_engine::{Engine, TupleWeights};
//! use gfomc_arith::Rational;
//! use gfomc_query::catalog;
//! use gfomc_tid::{Tid, Tuple};
//!
//! let q = catalog::h1();
//! let mut tid = Tid::all_present([0], [10]);
//! tid.set_prob(Tuple::R(0), Rational::one_half());
//! tid.set_prob(Tuple::S(0, 0, 10), Rational::one_half());
//! tid.set_prob(Tuple::T(10), Rational::one_half());
//!
//! let mut engine = Engine::new();
//! let compiled = engine.compile(&q, &tid);          // lineage + circuit, once
//! let base = compiled.evaluate_db();                 // Pr at the stored probabilities
//! let swept = compiled.evaluate(                     // Pr with R(0) forced present
//!     &TupleWeights::new().with(Tuple::R(0), Rational::one()),
//! );
//! assert!(base < swept);
//! ```
//!
//! The compiled form is exact: evaluation returns the same [`Rational`] as
//! [`wmc`](gfomc_logic::wmc()) on the lineage (the property suites assert equality,
//! not approximation). The [`workload`] module generates random block TIDs
//! and random bipartite queries at controlled safety for tests and benches.
//!
//! When exactness is not affordable, [`Engine::evaluate_auto`] (the
//! [`router`] module) turns the dichotomy into a runtime decision: safe
//! queries go to the PTIME lifted evaluator, unsafe queries go to the
//! compiled circuit while the estimated compilation cost fits a [`Budget`],
//! and everything beyond falls back to the seeded Karp–Luby sampler of
//! `gfomc-approx` — returning a result tagged [`AutoResult::Exact`] or
//! [`AutoResult::Approx`] so the two regimes can never be confused.

pub mod router;
pub mod workload;

pub use router::{AutoResult, Budget, Route, RouteCounts, Routed};

use gfomc_arith::Rational;
use gfomc_logic::{Circuit, WeightsFromFn};
use gfomc_query::BipartiteQuery;
use gfomc_tid::{lineage, Lineage, Tid, Tuple, VarTable};
use std::collections::HashMap;

/// Compiles query/TID pairs and tracks aggregate compilation statistics.
///
/// Each [`Engine::compile`] call produces a self-contained [`Compiled`]
/// artifact; the engine itself only accumulates instrumentation (how many
/// lineages were compiled, how large the circuits are), which the bench
/// harness reports alongside wall-times.
#[derive(Debug, Default)]
pub struct Engine {
    compiled: usize,
    nodes: usize,
    decisions: usize,
    routes: RouteCounts,
}

impl Engine {
    /// A fresh engine with zeroed statistics.
    pub fn new() -> Self {
        Engine::default()
    }

    /// Grounds `q` over `tid` and compiles the lineage into a circuit.
    ///
    /// This is the expensive step — it performs the full component /
    /// Shannon decomposition exactly once. Every subsequent
    /// [`Compiled::evaluate`] is a single bottom-up pass.
    pub fn compile(&mut self, q: &BipartiteQuery, tid: &Tid) -> Compiled {
        self.compile_lineage(lineage(q, tid))
    }

    /// Compiles an already-grounded lineage — shared by [`Engine::compile`]
    /// and the router ([`Engine::evaluate_auto`]), which grounds the
    /// lineage itself to estimate its cost before committing to a circuit.
    pub(crate) fn compile_lineage(&mut self, lin: Lineage) -> Compiled {
        let circuit = Circuit::compile(&lin.cnf);
        self.compiled += 1;
        self.nodes += circuit.node_count();
        self.decisions += circuit.decision_count();
        Compiled {
            circuit,
            vars: lin.vars,
        }
    }

    /// Number of lineages compiled by this engine.
    pub fn compiled_count(&self) -> usize {
        self.compiled
    }

    /// Total circuit gates produced across all compilations.
    pub fn total_nodes(&self) -> usize {
        self.nodes
    }

    /// Total Shannon-split gates produced across all compilations.
    pub fn total_decisions(&self) -> usize {
        self.decisions
    }
}

/// One-shot convenience: compile `q` over `tid` with a throwaway [`Engine`].
pub fn compile(q: &BipartiteQuery, tid: &Tid) -> Compiled {
    Engine::new().compile(q, tid)
}

/// `Pr_∆(Q)` through the compiled path — drop-in for
/// [`gfomc_tid::probability`] when only one evaluation is needed.
pub fn probability(q: &BipartiteQuery, tid: &Tid) -> Rational {
    compile(q, tid).evaluate_db()
}

/// A compiled query lineage: the arithmetic circuit plus the tuple ↔
/// variable table of the grounding.
///
/// Deterministic tuples (probability 0 or 1 in the source TID) were folded
/// away during grounding, so the circuit's variables are exactly the
/// *uncertain* tuples of the database; those are the tuples whose weight a
/// [`TupleWeights`] assignment can override. Overrides may be deterministic
/// (0 or 1): the Shannon gates degenerate to the forced branch
/// arithmetically, so no recompilation is needed.
#[derive(Clone, Debug)]
pub struct Compiled {
    circuit: Circuit,
    vars: VarTable,
}

impl Compiled {
    /// Evaluates the circuit under the database's own tuple probabilities.
    pub fn evaluate_db(&self) -> Rational {
        self.circuit.evaluate(self.vars.weights())
    }

    /// Evaluates the circuit under `weights`: each uncertain tuple takes
    /// its override if present, its database probability otherwise.
    pub fn evaluate(&self, weights: &TupleWeights) -> Rational {
        let w = WeightsFromFn(|v| {
            weights
                .get(&self.vars.tuple_of(v))
                .cloned()
                .unwrap_or_else(|| self.vars.weights()[&v].clone())
        });
        self.circuit.evaluate(&w)
    }

    /// The batched form: one compiled circuit priced under every assignment
    /// in `weights`. Output order matches input order.
    pub fn evaluate_batch(&self, weights: &[TupleWeights]) -> Vec<Rational> {
        weights.iter().map(|w| self.evaluate(w)).collect()
    }

    /// The uncertain tuples of the compiled lineage — the tuples whose
    /// weight an assignment can change.
    pub fn tuples(&self) -> Vec<Tuple> {
        (0..self.vars.len())
            .map(|i| self.vars.tuple_of(gfomc_logic::Var(i as u32)))
            .collect()
    }

    /// The underlying circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The tuple ↔ variable table of the grounding.
    pub fn vars(&self) -> &VarTable {
        &self.vars
    }

    /// Number of circuit gates.
    pub fn node_count(&self) -> usize {
        self.circuit.node_count()
    }
}

/// A weight assignment for a compiled lineage: per-tuple probability
/// overrides on top of the database probabilities.
///
/// Tuples without an override keep the probability they had when the
/// lineage was compiled. Overriding a tuple that was deterministic at
/// compile time has no effect — it was folded out of the circuit during
/// grounding (see [`Compiled::tuples`] for the live support).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TupleWeights {
    overrides: HashMap<Tuple, Rational>,
}

impl TupleWeights {
    /// An empty assignment (every tuple at its database probability).
    pub fn new() -> Self {
        TupleWeights::default()
    }

    /// Builder-style override of one tuple's probability.
    pub fn with(mut self, t: Tuple, p: Rational) -> Self {
        self.set(t, p);
        self
    }

    /// Overrides one tuple's probability in place.
    pub fn set(&mut self, t: Tuple, p: Rational) {
        assert!(p.is_probability(), "probability out of [0,1] for {t}");
        self.overrides.insert(t, p);
    }

    /// The override for a tuple, if any.
    pub fn get(&self, t: &Tuple) -> Option<&Rational> {
        self.overrides.get(t)
    }

    /// Number of overridden tuples.
    pub fn len(&self) -> usize {
        self.overrides.len()
    }

    /// True iff no tuple is overridden.
    pub fn is_empty(&self) -> bool {
        self.overrides.is_empty()
    }

    /// The overridden tuples with their probabilities.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, &Rational)> {
        self.overrides.iter()
    }
}

impl FromIterator<(Tuple, Rational)> for TupleWeights {
    fn from_iter<I: IntoIterator<Item = (Tuple, Rational)>>(iter: I) -> Self {
        let mut w = TupleWeights::new();
        for (t, p) in iter {
            w.set(t, p);
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfomc_query::catalog;
    use gfomc_tid::probability as naive_probability;

    fn half() -> Rational {
        Rational::one_half()
    }

    fn uniform_tid(q: &BipartiteQuery, nu: u32, nv: u32) -> Tid {
        let left: Vec<u32> = (0..nu).collect();
        let right: Vec<u32> = (100..100 + nv).collect();
        let mut tid = Tid::all_present(left.clone(), right.clone());
        for &u in &left {
            tid.set_prob(Tuple::R(u), half());
            for &v in &right {
                for s in q.binary_symbols() {
                    tid.set_prob(Tuple::S(s, u, v), half());
                }
            }
        }
        for &v in &right {
            tid.set_prob(Tuple::T(v), half());
        }
        tid
    }

    #[test]
    fn compiled_matches_naive_oracle_on_catalog() {
        let mut engine = Engine::new();
        for (name, q) in catalog::unsafe_catalog()
            .iter()
            .chain(&catalog::safe_catalog())
        {
            let tid = uniform_tid(q, 2, 2);
            let compiled = engine.compile(q, &tid);
            assert_eq!(compiled.evaluate_db(), naive_probability(q, &tid), "{name}");
        }
        assert_eq!(
            engine.compiled_count(),
            catalog::unsafe_catalog().len() + catalog::safe_catalog().len()
        );
        assert!(engine.total_nodes() > 0);
    }

    #[test]
    fn overrides_match_recompiled_database() {
        // Overriding S0(0,100) to ¼ must equal compiling a database that
        // had ¼ there all along.
        let q = catalog::h1();
        let tid = uniform_tid(&q, 2, 2);
        let compiled = compile(&q, &tid);
        let quarter = Rational::from_ints(1, 4);
        let w = TupleWeights::new().with(Tuple::S(0, 0, 100), quarter.clone());
        let mut tid2 = tid.clone();
        tid2.set_prob(Tuple::S(0, 0, 100), quarter);
        assert_eq!(compiled.evaluate(&w), naive_probability(&q, &tid2));
    }

    #[test]
    fn deterministic_overrides_need_no_recompilation() {
        // Forcing the endpoint tuples to 0/1 (the transfer-matrix workload,
        // Eq. (20)) through the compiled circuit matches restricting the
        // lineage before counting.
        let q = catalog::h1();
        let tid = uniform_tid(&q, 2, 2);
        let compiled = compile(&q, &tid);
        for r0 in [Rational::zero(), Rational::one()] {
            let w = TupleWeights::new().with(Tuple::R(0), r0.clone());
            let mut tid2 = tid.clone();
            tid2.set_prob(Tuple::R(0), r0);
            assert_eq!(compiled.evaluate(&w), naive_probability(&q, &tid2));
        }
    }

    #[test]
    fn batch_matches_single_evaluations() {
        let q = catalog::hk(2);
        let tid = uniform_tid(&q, 2, 2);
        let compiled = compile(&q, &tid);
        let weights: Vec<TupleWeights> = (0..=4)
            .map(|k| TupleWeights::new().with(Tuple::T(100), Rational::from_ints(k, 4)))
            .collect();
        let batch = compiled.evaluate_batch(&weights);
        assert_eq!(batch.len(), weights.len());
        for (w, got) in weights.iter().zip(&batch) {
            assert_eq!(got, &compiled.evaluate(w));
        }
    }

    #[test]
    fn support_is_the_uncertain_tuples() {
        let q = catalog::h1();
        let mut tid = uniform_tid(&q, 1, 1);
        tid.set_prob(Tuple::R(0), Rational::one());
        let compiled = compile(&q, &tid);
        // R(0) was deterministic at compile time: not in the support.
        assert!(!compiled.tuples().contains(&Tuple::R(0)));
        assert!(compiled.tuples().contains(&Tuple::T(100)));
    }

    #[test]
    fn probability_shortcut_agrees() {
        let q = catalog::example_c9();
        let tid = uniform_tid(&q, 2, 2);
        assert_eq!(probability(&q, &tid), naive_probability(&q, &tid));
    }
}
