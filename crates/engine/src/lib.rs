//! # gfomc-engine
//!
//! Knowledge-compiled query evaluation: compile the lineage of a query over
//! a TID **once** into a d-DNNF-style arithmetic circuit, then evaluate it
//! under **many** weight assignments, each in time linear in the circuit.
//!
//! The naive oracle ([`gfomc_tid::probability`]) re-runs Shannon expansion
//! from scratch for every query/weight pair. But the paper's block
//! constructions (§3, Theorem 3.4) — and any workload sweeping tuple
//! probabilities over a fixed database — evaluate the *same* lineage under
//! *many* weight assignments. That is exactly the workload knowledge
//! compilation amortizes:
//!
//! ```
//! use gfomc_engine::{Engine, TupleWeights};
//! use gfomc_arith::Rational;
//! use gfomc_query::catalog;
//! use gfomc_tid::{Tid, Tuple};
//!
//! let q = catalog::h1();
//! let mut tid = Tid::all_present([0], [10]);
//! tid.set_prob(Tuple::R(0), Rational::one_half());
//! tid.set_prob(Tuple::S(0, 0, 10), Rational::one_half());
//! tid.set_prob(Tuple::T(10), Rational::one_half());
//!
//! let engine = Engine::new();
//! let compiled = engine.compile(&q, &tid);          // lineage + circuit, once
//! let base = compiled.evaluate_db();                 // Pr at the stored probabilities
//! let swept = compiled.evaluate(                     // Pr with R(0) forced present
//!     &TupleWeights::new().with(Tuple::R(0), Rational::one()),
//! );
//! assert!(base < swept);
//! ```
//!
//! The compiled form is exact: evaluation returns the same [`Rational`] as
//! [`wmc`](gfomc_logic::wmc()) on the lineage (the property suites assert equality,
//! not approximation). The [`workload`] module generates random block TIDs
//! and random bipartite queries at controlled safety for tests and benches.
//!
//! When exactness is not affordable, [`Engine::evaluate_auto`] (the
//! [`router`] module) turns the dichotomy into a runtime decision: safe
//! queries go to the PTIME lifted evaluator, unsafe queries go to the
//! compiled circuit while the estimated compilation cost fits a [`Budget`],
//! and everything beyond falls back to the seeded Karp–Luby sampler of
//! `gfomc-approx` — returning a result tagged [`AutoResult::Exact`] or
//! [`AutoResult::Approx`] so the two regimes can never be confused.

pub mod api;
pub mod router;
pub mod session;
pub mod workload;

pub use api::{EvalError, EvalRequest, EvalResponse, RequestParseError, ResponseParseError};
pub use router::{AutoResult, Budget, BudgetError, Route, RouteCounts, Routed, SampleMode};
pub use session::{
    Session, SessionError, SessionOp, SessionParseError, SessionReply, SessionRequest,
    SessionResponse, SessionWireError,
};

// The observability vocabulary is part of the engine's public surface:
// `Engine::registry()` hands out the `Registry`, traced responses carry a
// `Trace`, and the slow-query ring buffer is a `SlowLog`.
pub use gfomc_obs::{HistogramSnapshot, Registry, SlowLog, Trace};

use gfomc_arith::{Interval, Rational};
use gfomc_logic::{Circuit, Cnf, CnfId, CnfInterner, EvalArena, FlatCircuit, WeightsFromFn};
use gfomc_obs::Counter;
use gfomc_pool::WorkerPool;
use gfomc_query::BipartiteQuery;
use gfomc_tid::{lineage, Lineage, Tid, Tuple, VarTable};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default number of compiled circuits the engine keeps hot.
pub const DEFAULT_CACHE_CAPACITY: usize = 64;

/// Default bound on concurrently admitted serving requests (the
/// [`EngineBuilder::max_queue_depth`] knob read by `gfomc-serve`).
pub const DEFAULT_MAX_QUEUE_DEPTH: usize = 64;

/// Default slow-query threshold: requests at or above 1 ms end-to-end are
/// recorded in the [`SlowLog`] ([`EngineBuilder::slow_threshold_nanos`]).
pub const DEFAULT_SLOW_THRESHOLD_NANOS: u64 = 1_000_000;

/// Default capacity of the slow-query ring buffer
/// ([`EngineBuilder::slow_capacity`]).
pub const DEFAULT_SLOW_CAPACITY: usize = 64;

/// Maximum number of independently locked cache shards (fewer when the
/// capacity is smaller, so the `entries <= capacity` bound stays exact).
const MAX_CACHE_SHARDS: usize = 8;

/// Hit/miss record of the engine's compilation cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Compilations skipped because the canonical lineage was cached.
    pub hits: usize,
    /// Compilations actually performed.
    pub misses: usize,
    /// Circuits currently cached.
    pub entries: usize,
    /// Maximum number of cached circuits (0 = caching disabled).
    pub capacity: usize,
    /// Resident circuits displaced by a costlier-to-recompute newcomer.
    pub evictions: usize,
    /// Newly compiled circuits denied admission because their compile cost
    /// did not justify displacing anything resident (cost-aware admission).
    pub rejections: usize,
}

impl CacheStats {
    /// Hits over total lookups, or 0.0 before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One resident circuit of a cache shard.
///
/// Residents are kept in flat struct-of-arrays form ([`FlatCircuit`]):
/// smaller per-entry footprint than the pointer-y compile-time tree (no
/// per-`Product` child vector), and already in the layout every
/// evaluation path wants.
#[derive(Debug)]
struct CacheEntry {
    circuit: Arc<FlatCircuit>,
    /// Eviction priority `last-touch stamp + compile cost` (see
    /// [`Engine::compile`] — higher survives longer).
    priority: u64,
    /// Compile cost in **exact flat gate count** — the same unit
    /// `gfomc_safety::CircuitCostEstimate` reports, so admission duels and
    /// routing budgets speak one currency.
    cost: u64,
}

/// One independently locked shard of the compilation cache: its slice of
/// the interner plus its resident circuits. Lineages are assigned to
/// shards by the hash of their canonical CNF, so the interner invariant
/// (an id is live iff its circuit is resident) is local to the shard.
#[derive(Debug)]
struct CacheShard {
    interner: CnfInterner,
    entries: HashMap<CnfId, CacheEntry>,
    capacity: usize,
}

/// Compiles query/TID pairs, caches the resulting circuits, and tracks
/// aggregate compilation statistics. **Thread-safe**: `Engine` is
/// `Send + Sync` and every method takes `&self`, so one engine can be
/// shared behind an `Arc` (or a plain reference) by any number of
/// concurrent callers — the serving setup the router's batched front-end
/// ([`Engine::evaluate_auto_batch`]) is built for.
///
/// Each [`Engine::compile`] call produces a self-contained [`Compiled`]
/// artifact. Circuits are cached in a **sharded, cost-aware LRU** keyed on
/// interned canonical CNF ids ([`gfomc_logic::CnfInterner`]): two queries
/// (or the same query over two TIDs) whose groundings canonicalize to the
/// same lineage share one compilation — the second [`Engine::compile`] is
/// a cache hit that only re-binds the tuple ↔ variable table. Cached
/// circuits are behind [`Arc`], so a hit costs one reference bump, not a
/// deep copy.
///
/// Concurrency model: the cache is split into up to 8 mutex-guarded
/// shards selected by the lineage hash, statistics are atomics, and the
/// parallel paths run on a persistent [`WorkerPool`] created once per
/// engine's lifetime (the process-shared pool by default,
/// [`EngineBuilder::pool`] to dedicate one). Concurrent compiles of
/// *distinct* lineages proceed in parallel with probability
/// `1 − 1/shards`; concurrent compiles of the *same* lineage serialize on
/// its shard so the work is done once, not duplicated.
///
/// Eviction is **cost-aware** (a GreedyDual-flavored LRU): the victim
/// minimizes `last-touch stamp + compile cost`, so a 10⁶-gate circuit is
/// never displaced by a 10²-gate newcomer — the cheap newcomer is denied
/// admission instead (and, because the stamp keeps advancing, a dead
/// giant still ages out eventually).
#[derive(Debug)]
pub struct Engine {
    /// The engine's metric namespace: every counter below is a handle
    /// into this registry, so `/metrics` and the typed getters
    /// ([`Engine::cache_stats`], [`Engine::route_counts`]) read the same
    /// cells and can never drift apart.
    registry: Arc<Registry>,
    /// Slow-request ring buffer fed by
    /// [`Engine::evaluate_request`](crate::api) (full phase traces of the
    /// slowest requests; see [`EngineBuilder::slow_threshold_nanos`]).
    slow_log: Arc<SlowLog>,
    pub(crate) requests: Arc<Counter>,
    compiled: Arc<Counter>,
    nodes: Arc<Counter>,
    decisions: Arc<Counter>,
    routes_lifted: Arc<Counter>,
    routes_compiled: Arc<Counter>,
    routes_sampled: Arc<Counter>,
    /// Per-tenant routing tallies, keyed by the tenant label of the
    /// [`EvalRequest`](crate::EvalRequest) that carried the query (the
    /// serving layer's multi-tenant accounting; empty until a labeled
    /// request arrives).
    tenant_routes: Mutex<HashMap<String, RouteCounts>>,
    shards: Box<[Mutex<CacheShard>]>,
    cache_capacity: usize,
    cache_stamp: AtomicU64,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    cache_evictions: Arc<Counter>,
    cache_rejections: Arc<Counter>,
    /// Serving knob carried by the engine so server, CLI, and benches all
    /// read one source of truth: how many admitted-but-unfinished requests
    /// a front-end may hold before it must reject explicitly.
    max_queue_depth: usize,
    /// Open priced sessions, keyed by the id handed out at open time
    /// (see [`session`]). Each session is individually locked so the
    /// registry lock is never held across session work.
    pub(crate) sessions: Mutex<HashMap<u64, session::SessionSlot>>,
    /// Monotone session-id allocator (ids are never reused, so a closed
    /// id stays a typed "unknown session" error forever).
    pub(crate) session_ids: AtomicU64,
    /// Per-tenant cap on concurrently open sessions — an open session is
    /// charged against the same admission budget the serving gate
    /// enforces for in-flight requests (defaults to
    /// [`EngineBuilder::max_queue_depth`]).
    pub(crate) max_sessions_per_tenant: usize,
    pool: Arc<WorkerPool>,
}

/// The one construction path for [`Engine`]: a fluent builder covering
/// every knob the four historical constructors spread across ad-hoc
/// entry points, plus the serving-layer knobs introduced with
/// `gfomc-serve`.
///
/// ```
/// use gfomc_engine::Engine;
/// use gfomc_pool::WorkerPool;
/// use std::sync::Arc;
///
/// let engine = Engine::builder()
///     .cache_capacity(16)
///     .pool(Arc::new(WorkerPool::new(2)))
///     .max_queue_depth(8)
///     .build();
/// assert_eq!(engine.cache_stats().capacity, 16);
/// assert_eq!(engine.max_queue_depth(), 8);
/// ```
#[derive(Debug)]
pub struct EngineBuilder {
    cache_capacity: usize,
    pool: Option<Arc<WorkerPool>>,
    max_queue_depth: usize,
    slow_threshold_nanos: u64,
    slow_capacity: usize,
    max_sessions_per_tenant: Option<usize>,
}

impl Default for EngineBuilder {
    fn default() -> Self {
        EngineBuilder {
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            pool: None,
            max_queue_depth: DEFAULT_MAX_QUEUE_DEPTH,
            slow_threshold_nanos: DEFAULT_SLOW_THRESHOLD_NANOS,
            slow_capacity: DEFAULT_SLOW_CAPACITY,
            max_sessions_per_tenant: None,
        }
    }
}

impl EngineBuilder {
    /// Compilation-cache capacity in circuits (0 disables caching).
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// A dedicated worker pool for the engine's parallel paths (sampling
    /// rounds, batched evaluation, [`Engine::evaluate_auto_batch`]).
    /// Defaults to the process-shared [`WorkerPool::global`].
    pub fn pool(mut self, pool: Arc<WorkerPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Bound on concurrently admitted serving requests, read by the
    /// `gfomc-serve` admission gate: beyond this depth a front-end must
    /// reject explicitly (429-style) instead of queueing. 0 means "reject
    /// everything" — useful for drain/maintenance modes and overload tests.
    pub fn max_queue_depth(mut self, depth: usize) -> Self {
        self.max_queue_depth = depth;
        self
    }

    /// End-to-end duration (nanoseconds) at or above which a request's
    /// full phase trace is kept in the slow-query ring buffer
    /// ([`Engine::slow_log`]). 0 records every request.
    pub fn slow_threshold_nanos(mut self, nanos: u64) -> Self {
        self.slow_threshold_nanos = nanos;
        self
    }

    /// Capacity of the slow-query ring buffer (0 disables slow-query
    /// recording entirely).
    pub fn slow_capacity(mut self, capacity: usize) -> Self {
        self.slow_capacity = capacity;
        self
    }

    /// Per-tenant cap on concurrently **open sessions**
    /// ([`Engine::open_session`]). A session holds priced circuit state
    /// between requests, so it is charged against the same admission
    /// budget the serving gate enforces for in-flight requests: the cap
    /// defaults to [`EngineBuilder::max_queue_depth`]. 0 rejects every
    /// open (drain mode).
    pub fn max_sessions_per_tenant(mut self, cap: usize) -> Self {
        self.max_sessions_per_tenant = Some(cap);
        self
    }

    /// Builds the engine with zeroed statistics.
    pub fn build(self) -> Engine {
        let capacity = self.cache_capacity;
        // A small cache stays unsharded: splitting e.g. capacity 2 into
        // two 1-slot shards would let hash-colliding hot lineages thrash
        // a shard while the other sits empty — strictly worse than one
        // lock around a cache this tiny. Larger caches split into
        // MAX_CACHE_SHARDS shards whose capacities (each ≥ 1) sum to
        // exactly `capacity`, preserving the user-visible bound
        // `entries <= capacity`.
        let shard_count = if capacity <= MAX_CACHE_SHARDS {
            1
        } else {
            MAX_CACHE_SHARDS
        };
        let shards = (0..shard_count)
            .map(|i| {
                Mutex::new(CacheShard {
                    interner: CnfInterner::new(),
                    entries: HashMap::new(),
                    capacity: capacity / shard_count + usize::from(i < capacity % shard_count),
                })
            })
            .collect();
        let registry = Arc::new(Registry::new());
        let counter = |name: &str| registry.counter(name, &[]);
        let route = |name: &str| registry.counter("engine_route_total", &[("route", name)]);
        Engine {
            requests: counter("engine_requests_total"),
            compiled: counter("engine_compiled_circuits_total"),
            nodes: counter("engine_circuit_gates_total"),
            decisions: counter("engine_circuit_decisions_total"),
            routes_lifted: route("lifted"),
            routes_compiled: route("compiled"),
            routes_sampled: route("sampled"),
            tenant_routes: Mutex::new(HashMap::new()),
            shards,
            cache_capacity: capacity,
            cache_stamp: AtomicU64::new(0),
            cache_hits: counter("engine_cache_hits_total"),
            cache_misses: counter("engine_cache_misses_total"),
            cache_evictions: counter("engine_cache_evictions_total"),
            cache_rejections: counter("engine_cache_rejections_total"),
            max_queue_depth: self.max_queue_depth,
            sessions: Mutex::new(HashMap::new()),
            session_ids: AtomicU64::new(0),
            max_sessions_per_tenant: self.max_sessions_per_tenant.unwrap_or(self.max_queue_depth),
            pool: self
                .pool
                .unwrap_or_else(|| Arc::clone(WorkerPool::global())),
            slow_log: Arc::new(SlowLog::new(self.slow_threshold_nanos, self.slow_capacity)),
            registry,
        }
    }
}

impl Default for Engine {
    fn default() -> Self {
        Engine::builder().build()
    }
}

impl Engine {
    /// A fresh engine with zeroed statistics and every knob at its
    /// default — the trivial case of [`Engine::builder`].
    pub fn new() -> Self {
        Engine::default()
    }

    /// The configuration entry point: see [`EngineBuilder`].
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// The worker pool this engine fans its parallel work across.
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// The serving-layer admission bound this engine was built with (see
    /// [`EngineBuilder::max_queue_depth`]).
    pub fn max_queue_depth(&self) -> usize {
        self.max_queue_depth
    }

    /// Grounds `q` over `tid` and compiles the lineage into a circuit —
    /// or fetches the circuit from the cache if an identical canonical
    /// lineage was compiled before (by this thread or any other).
    ///
    /// Compilation is the expensive step — it performs the full component
    /// / Shannon decomposition exactly once per *distinct* lineage. Every
    /// subsequent [`Compiled::evaluate`] is a single bottom-up pass.
    pub fn compile(&self, q: &BipartiteQuery, tid: &Tid) -> Compiled {
        self.compile_lineage(lineage(q, tid))
    }

    /// Compiles an already-grounded lineage — shared by [`Engine::compile`]
    /// and the router ([`Engine::evaluate_auto`]), which grounds the
    /// lineage itself to estimate its cost before committing to a circuit.
    pub(crate) fn compile_lineage(&self, lin: Lineage) -> Compiled {
        self.compile_lineage_traced(lin).0
    }

    /// [`Engine::compile_lineage`] plus the cache outcome: `true` iff the
    /// circuit was already resident — the bit the router's phase trace
    /// reports as `cache hit`/`cache miss`.
    pub(crate) fn compile_lineage_traced(&self, lin: Lineage) -> (Compiled, bool) {
        let (circuit, hit) = self.compile_cnf(&lin.cnf);
        (
            Compiled {
                circuit,
                vars: lin.vars,
            },
            hit,
        )
    }

    /// The shard a canonical CNF belongs to.
    fn shard_of(&self, cnf: &Cnf) -> &Mutex<CacheShard> {
        let mut hasher = DefaultHasher::new();
        cnf.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % self.shards.len()]
    }

    /// Poison-tolerant shard lock: a panic inside `Circuit::compile` (one
    /// pathological lineage) unwinds while the shard is held, and letting
    /// that poison wedge every later query hashing to the shard would turn
    /// one bad query into a persistent denial of service for a shared
    /// serving engine. Recovery is safe: the worst a mid-update unwind
    /// leaves behind is an interned id with no resident entry, which the
    /// next compile of that lineage simply fills in.
    fn lock_shard(shard: &Mutex<CacheShard>) -> std::sync::MutexGuard<'_, CacheShard> {
        shard
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The cache-aware compilation core: interns the canonical CNF in its
    /// shard and either returns the resident circuit or compiles, admits,
    /// and possibly evicts under the cost-aware policy. The flag is `true`
    /// iff the circuit was already resident (a cache hit).
    fn compile_cnf(&self, cnf: &Cnf) -> (Arc<FlatCircuit>, bool) {
        if self.cache_capacity == 0 {
            self.cache_misses.inc();
            return (self.compile_fresh(cnf), false);
        }
        let mut shard = Engine::lock_shard(self.shard_of(cnf));
        let id = shard.interner.intern(cnf);
        let stamp = self.cache_stamp.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(entry) = shard.entries.get_mut(&id) {
            entry.priority = stamp.saturating_add(entry.cost);
            self.cache_hits.inc();
            return (Arc::clone(&entry.circuit), true);
        }
        self.cache_misses.inc();
        // Compile while holding the shard lock: concurrent callers of the
        // *same* lineage wait for one compilation instead of duplicating
        // it, and callers of distinct lineages collide only when their
        // hashes share a shard.
        let circuit = self.compile_fresh(cnf);
        let cost = circuit.gate_count() as u64;
        shard.entries.insert(
            id,
            CacheEntry {
                circuit: Arc::clone(&circuit),
                priority: stamp.saturating_add(cost),
                cost,
            },
        );
        if shard.entries.len() > shard.capacity {
            // Cost-aware eviction: linear scan for the minimum priority
            // (the cache is small and eviction is rare next to compile
            // work). The interner forgets the victim too, so engine
            // memory stays bounded by the cache capacity, not by every
            // distinct lineage ever seen. When the newcomer itself is the
            // minimum — its compile cost does not justify displacing any
            // resident circuit — it is the one dropped: admission denied.
            let victim = shard
                .entries
                .iter()
                .min_by_key(|(_, e)| e.priority)
                .map(|(id, _)| *id)
                .expect("eviction scan over a non-empty shard");
            shard.entries.remove(&victim);
            shard.interner.forget(victim);
            if victim == id {
                self.cache_rejections.inc();
            } else {
                self.cache_evictions.inc();
            }
        }
        (circuit, false)
    }

    /// Uncached compilation plus instrumentation: the Shannon/component
    /// decomposition builds the tree form, which is immediately flattened
    /// into the struct-of-arrays evaluation form (gate ids and counts are
    /// preserved 1:1) and the tree is dropped.
    fn compile_fresh(&self, cnf: &Cnf) -> Arc<FlatCircuit> {
        let circuit = Circuit::compile(cnf).flatten();
        self.compiled.inc();
        self.nodes.add(circuit.gate_count() as u64);
        self.decisions.add(circuit.decision_count() as u64);
        Arc::new(circuit)
    }

    /// Number of lineages actually compiled by this engine (cache hits
    /// are not compilations).
    pub fn compiled_count(&self) -> usize {
        self.compiled.get() as usize
    }

    /// Total circuit gates produced across all compilations.
    pub fn total_nodes(&self) -> usize {
        self.nodes.get() as usize
    }

    /// Total Shannon-split gates produced across all compilations.
    pub fn total_decisions(&self) -> usize {
        self.decisions.get() as usize
    }

    /// Compilation-cache counters, surfaced next to
    /// [`Engine::route_counts`] for workload instrumentation. Counter
    /// fields are point-in-time atomic snapshots; under concurrent
    /// traffic they are mutually consistent only once the traffic quiesces.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.cache_hits.get() as usize,
            misses: self.cache_misses.get() as usize,
            entries: self
                .shards
                .iter()
                .map(|s| Engine::lock_shard(s).entries.len())
                .sum(),
            capacity: self.cache_capacity,
            evictions: self.cache_evictions.get() as usize,
            rejections: self.cache_rejections.get() as usize,
        }
    }

    /// Bumps one route counter — the router's bookkeeping.
    pub(crate) fn count_route(&self, route: router::Route) {
        let counter = match route {
            router::Route::Lifted => &self.routes_lifted,
            router::Route::Compiled => &self.routes_compiled,
            router::Route::Sampled => &self.routes_sampled,
        };
        counter.inc();
    }

    /// Routing decisions made by this engine so far.
    pub fn route_counts(&self) -> RouteCounts {
        RouteCounts {
            lifted: self.routes_lifted.get() as usize,
            compiled: self.routes_compiled.get() as usize,
            sampled: self.routes_sampled.get() as usize,
        }
    }

    /// The engine's metrics registry: every counter the typed getters
    /// report lives here, plus the per-route / per-tenant request-latency
    /// histograms recorded by
    /// [`Engine::evaluate_request`](crate::api). Render it with
    /// [`Registry::render_prometheus`] (the `/metrics` endpoint) or
    /// [`Registry::render_plain`] (the `/status` endpoint).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The slow-query ring buffer: full phase traces of requests whose
    /// end-to-end time met [`EngineBuilder::slow_threshold_nanos`].
    pub fn slow_log(&self) -> &Arc<SlowLog> {
        &self.slow_log
    }

    /// Publishes the point-in-time state the counters cannot carry —
    /// cache occupancy, worker-pool counters, and the process-wide
    /// sampler / interval-fallback tallies — as registry gauges. Called
    /// by the serving layer just before rendering `/metrics` or
    /// `/status`, so scrapes see fresh values without the engine paying
    /// for gauge upkeep on the request path.
    pub fn refresh_gauges(&self) {
        let cache = self.cache_stats();
        self.registry
            .set_gauge("engine_cache_entries", &[], cache.entries as u64);
        self.registry
            .set_gauge("engine_cache_capacity", &[], cache.capacity as u64);
        let pool = self.pool.stats();
        self.registry
            .set_gauge("pool_threads", &[], pool.threads as u64);
        self.registry.set_gauge("pool_jobs", &[], pool.jobs);
        self.registry.set_gauge("pool_steals", &[], pool.steals);
        self.registry
            .set_gauge("pool_broadcasts", &[], pool.broadcasts);
        self.registry.set_gauge(
            "sampler_samples_drawn",
            &[],
            gfomc_approx::samples_drawn_total(),
        );
        self.registry.set_gauge(
            "flat_interval_fallbacks",
            &[],
            gfomc_logic::interval_fallbacks_total(),
        );
        self.registry
            .set_gauge("engine_sessions_open", &[], self.session_count() as u64);
    }

    /// Bumps the routing tally of one tenant — called by
    /// [`Engine::evaluate_request`](crate::api) for requests that carry a
    /// tenant label. Tenants are created on first use.
    pub(crate) fn count_tenant_route(&self, tenant: &str, route: router::Route) {
        let mut map = self
            .tenant_routes
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let counts = map.entry(tenant.to_string()).or_default();
        match route {
            router::Route::Lifted => counts.lifted += 1,
            router::Route::Compiled => counts.compiled += 1,
            router::Route::Sampled => counts.sampled += 1,
        }
    }

    /// Per-tenant routing tallies, sorted by tenant label — the
    /// multi-tenant half of [`Engine::route_counts`]. Only requests routed
    /// through [`Engine::evaluate_request`](crate::api) with a tenant label
    /// are counted here; anonymous traffic appears in the global tallies
    /// only.
    pub fn tenant_route_counts(&self) -> Vec<(String, RouteCounts)> {
        let map = self
            .tenant_routes
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut out: Vec<(String, RouteCounts)> =
            map.iter().map(|(k, v)| (k.clone(), *v)).collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

/// One-shot convenience: compile `q` over `tid` with a throwaway [`Engine`].
pub fn compile(q: &BipartiteQuery, tid: &Tid) -> Compiled {
    Engine::new().compile(q, tid)
}

/// `Pr_∆(Q)` through the compiled path — drop-in for
/// [`gfomc_tid::probability`] when only one evaluation is needed.
pub fn probability(q: &BipartiteQuery, tid: &Tid) -> Rational {
    compile(q, tid).evaluate_db()
}

/// A compiled query lineage: the flat arithmetic circuit plus the tuple ↔
/// variable table of the grounding.
///
/// The circuit is held in struct-of-arrays form ([`FlatCircuit`]), so
/// every evaluation is one forward loop over dense slices with weights
/// resolved once per distinct tuple — and an interval fast path
/// ([`Compiled::evaluate_db_interval`]) is available when a certified
/// enclosure suffices. All `Rational`-returning methods stay bit-identical
/// to the tree evaluator (the flat exact pass replays the same gate
/// arithmetic).
///
/// Deterministic tuples (probability 0 or 1 in the source TID) were folded
/// away during grounding, so the circuit's variables are exactly the
/// *uncertain* tuples of the database; those are the tuples whose weight a
/// [`TupleWeights`] assignment can override. Overrides may be deterministic
/// (0 or 1): the Shannon gates degenerate to the forced branch
/// arithmetically, so no recompilation is needed.
#[derive(Clone, Debug)]
pub struct Compiled {
    pub(crate) circuit: Arc<FlatCircuit>,
    pub(crate) vars: VarTable,
}

impl Compiled {
    /// Evaluates the circuit under the database's own tuple probabilities.
    pub fn evaluate_db(&self) -> Rational {
        self.circuit.eval_exact(self.vars.weights())
    }

    /// [`Compiled::evaluate_db`] with a caller-provided values arena.
    pub fn evaluate_db_with(&self, arena: &mut EvalArena) -> Rational {
        self.circuit.eval_exact_with(self.vars.weights(), arena)
    }

    /// A certified interval enclosure of [`Compiled::evaluate_db`] — the
    /// fast path for callers that only need a comparison. The exact value
    /// is guaranteed to lie within the returned bounds.
    pub fn evaluate_db_interval(&self) -> Interval {
        self.circuit.eval_interval(self.vars.weights())
    }

    /// Decides `Pr ≤ t` under the database weights: interval fast path
    /// first, escalating to exact evaluation only when the enclosure
    /// cannot certify the comparison. Returns `(answer,
    /// fell_back_to_exact)`; the answer always agrees with comparing
    /// [`Compiled::evaluate_db`] against `t` exactly.
    pub fn certify_le_db(&self, t: &Rational) -> (bool, bool) {
        let mut arena = EvalArena::new();
        self.circuit.le_exact(self.vars.weights(), t, &mut arena)
    }

    /// Evaluates the circuit under `weights`: each uncertain tuple takes
    /// its override if present, its database probability otherwise.
    pub fn evaluate(&self, weights: &TupleWeights) -> Rational {
        let mut arena = EvalArena::new();
        self.evaluate_with(weights, &mut arena)
    }

    /// [`Compiled::evaluate`] with a caller-provided values arena, so a
    /// loop over many weightings reuses one buffer instead of allocating a
    /// fresh values vector per assignment. The override lookup runs once
    /// per distinct tuple (the flat slot table), not once per gate.
    pub fn evaluate_with(&self, weights: &TupleWeights, arena: &mut EvalArena) -> Rational {
        let w = WeightsFromFn(|v| {
            weights
                .get(&self.vars.tuple_of(v))
                .cloned()
                .unwrap_or_else(|| self.vars.weights()[&v].clone())
        });
        self.circuit.eval_exact_with(&w, arena)
    }

    /// The batched form: one compiled circuit priced under every assignment
    /// in `weights` through the many-weightings-per-gate batch kernel
    /// ([`FlatCircuit::eval_batch_exact_with`]) — one topological walk per
    /// lane chunk instead of one per weighting. Output order matches input
    /// order and stays bit-identical to a serial [`Compiled::evaluate`]
    /// loop.
    pub fn evaluate_batch(&self, weights: &[TupleWeights]) -> Vec<Rational> {
        let mut arena = EvalArena::with_capacity(self.circuit.gate_count());
        let resolved: Vec<_> = weights.iter().map(|w| self.weight_fn(w)).collect();
        self.circuit.eval_batch_exact_with(&resolved, &mut arena)
    }

    /// Decides `Pr ≤ t` under every assignment in `weights`: one interval
    /// batch pass, then exact re-pricing for only the undecided lanes.
    /// Returns `(answer, fell_back_to_exact)` per assignment, each answer
    /// agreeing exactly with comparing [`Compiled::evaluate`] against `t`.
    pub fn certify_le_batch(&self, weights: &[TupleWeights], t: &Rational) -> Vec<(bool, bool)> {
        let mut arena = EvalArena::new();
        let resolved: Vec<_> = weights.iter().map(|w| self.weight_fn(w)).collect();
        self.circuit.le_exact_batch(&resolved, t, &mut arena)
    }

    /// The override-aware weight function of one assignment: each uncertain
    /// tuple takes its override if present, its database probability
    /// otherwise.
    fn weight_fn<'a>(
        &'a self,
        weights: &'a TupleWeights,
    ) -> WeightsFromFn<impl Fn(gfomc_logic::Var) -> Rational + 'a> {
        WeightsFromFn(move |v| {
            weights
                .get(&self.vars.tuple_of(v))
                .cloned()
                .unwrap_or_else(|| self.vars.weights()[&v].clone())
        })
    }

    /// [`Compiled::evaluate_batch`] fanned across `threads` workers of the
    /// process-wide shared [`WorkerPool`] over the shared immutable
    /// circuit (delegates the fan-out to
    /// [`FlatCircuit::evaluate_batch_on`]).
    ///
    /// Evaluation is exact rational arithmetic, so the output is
    /// **identical** to the serial batch for every thread count.
    pub fn evaluate_batch_threads(
        &self,
        weights: &[TupleWeights],
        threads: usize,
    ) -> Vec<Rational> {
        self.evaluate_batch_on(WorkerPool::global(), weights, threads)
    }

    /// [`Compiled::evaluate_batch_threads`] on a caller-provided pool —
    /// e.g. [`Engine::pool`] to share the engine's workers.
    pub fn evaluate_batch_on(
        &self,
        pool: &WorkerPool,
        weights: &[TupleWeights],
        workers: usize,
    ) -> Vec<Rational> {
        let resolved: Vec<_> = weights.iter().map(|w| self.weight_fn(w)).collect();
        self.circuit.evaluate_batch_on(pool, &resolved, workers)
    }

    /// The uncertain tuples of the compiled lineage — the tuples whose
    /// weight an assignment can change.
    pub fn tuples(&self) -> Vec<Tuple> {
        (0..self.vars.len())
            .map(|i| self.vars.tuple_of(gfomc_logic::Var(i as u32)))
            .collect()
    }

    /// The underlying flat circuit.
    pub fn circuit(&self) -> &FlatCircuit {
        &self.circuit
    }

    /// The tuple ↔ variable table of the grounding.
    pub fn vars(&self) -> &VarTable {
        &self.vars
    }

    /// Number of circuit gates (flat gate count — identical to the tree
    /// node count, and the unit of the cache-admission cost).
    pub fn node_count(&self) -> usize {
        self.circuit.gate_count()
    }
}

/// A weight assignment for a compiled lineage: per-tuple probability
/// overrides on top of the database probabilities.
///
/// Tuples without an override keep the probability they had when the
/// lineage was compiled. Overriding a tuple that was deterministic at
/// compile time has no effect — it was folded out of the circuit during
/// grounding (see [`Compiled::tuples`] for the live support).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TupleWeights {
    overrides: HashMap<Tuple, Rational>,
}

impl TupleWeights {
    /// An empty assignment (every tuple at its database probability).
    pub fn new() -> Self {
        TupleWeights::default()
    }

    /// Builder-style override of one tuple's probability.
    pub fn with(mut self, t: Tuple, p: Rational) -> Self {
        self.set(t, p);
        self
    }

    /// Overrides one tuple's probability in place.
    pub fn set(&mut self, t: Tuple, p: Rational) {
        assert!(p.is_probability(), "probability out of [0,1] for {t}");
        self.overrides.insert(t, p);
    }

    /// The override for a tuple, if any.
    pub fn get(&self, t: &Tuple) -> Option<&Rational> {
        self.overrides.get(t)
    }

    /// Number of overridden tuples.
    pub fn len(&self) -> usize {
        self.overrides.len()
    }

    /// True iff no tuple is overridden.
    pub fn is_empty(&self) -> bool {
        self.overrides.is_empty()
    }

    /// The overridden tuples with their probabilities.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, &Rational)> {
        self.overrides.iter()
    }
}

impl FromIterator<(Tuple, Rational)> for TupleWeights {
    fn from_iter<I: IntoIterator<Item = (Tuple, Rational)>>(iter: I) -> Self {
        let mut w = TupleWeights::new();
        for (t, p) in iter {
            w.set(t, p);
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfomc_query::catalog;
    use gfomc_tid::probability as naive_probability;

    fn half() -> Rational {
        Rational::one_half()
    }

    fn uniform_tid(q: &BipartiteQuery, nu: u32, nv: u32) -> Tid {
        let left: Vec<u32> = (0..nu).collect();
        let right: Vec<u32> = (100..100 + nv).collect();
        let mut tid = Tid::all_present(left.clone(), right.clone());
        for &u in &left {
            tid.set_prob(Tuple::R(u), half());
            for &v in &right {
                for s in q.binary_symbols() {
                    tid.set_prob(Tuple::S(s, u, v), half());
                }
            }
        }
        for &v in &right {
            tid.set_prob(Tuple::T(v), half());
        }
        tid
    }

    #[test]
    fn compiled_matches_naive_oracle_on_catalog() {
        let engine = Engine::new();
        for (name, q) in catalog::unsafe_catalog()
            .iter()
            .chain(&catalog::safe_catalog())
        {
            let tid = uniform_tid(q, 2, 2);
            let compiled = engine.compile(q, &tid);
            assert_eq!(compiled.evaluate_db(), naive_probability(q, &tid), "{name}");
        }
        assert_eq!(
            engine.compiled_count(),
            catalog::unsafe_catalog().len() + catalog::safe_catalog().len()
        );
        assert!(engine.total_nodes() > 0);
    }

    #[test]
    fn overrides_match_recompiled_database() {
        // Overriding S0(0,100) to ¼ must equal compiling a database that
        // had ¼ there all along.
        let q = catalog::h1();
        let tid = uniform_tid(&q, 2, 2);
        let compiled = compile(&q, &tid);
        let quarter = Rational::from_ints(1, 4);
        let w = TupleWeights::new().with(Tuple::S(0, 0, 100), quarter.clone());
        let mut tid2 = tid.clone();
        tid2.set_prob(Tuple::S(0, 0, 100), quarter);
        assert_eq!(compiled.evaluate(&w), naive_probability(&q, &tid2));
    }

    #[test]
    fn deterministic_overrides_need_no_recompilation() {
        // Forcing the endpoint tuples to 0/1 (the transfer-matrix workload,
        // Eq. (20)) through the compiled circuit matches restricting the
        // lineage before counting.
        let q = catalog::h1();
        let tid = uniform_tid(&q, 2, 2);
        let compiled = compile(&q, &tid);
        for r0 in [Rational::zero(), Rational::one()] {
            let w = TupleWeights::new().with(Tuple::R(0), r0.clone());
            let mut tid2 = tid.clone();
            tid2.set_prob(Tuple::R(0), r0);
            assert_eq!(compiled.evaluate(&w), naive_probability(&q, &tid2));
        }
    }

    #[test]
    fn batch_matches_single_evaluations() {
        let q = catalog::hk(2);
        let tid = uniform_tid(&q, 2, 2);
        let compiled = compile(&q, &tid);
        let weights: Vec<TupleWeights> = (0..=4)
            .map(|k| TupleWeights::new().with(Tuple::T(100), Rational::from_ints(k, 4)))
            .collect();
        let batch = compiled.evaluate_batch(&weights);
        assert_eq!(batch.len(), weights.len());
        for (w, got) in weights.iter().zip(&batch) {
            assert_eq!(got, &compiled.evaluate(w));
        }
    }

    #[test]
    fn support_is_the_uncertain_tuples() {
        let q = catalog::h1();
        let mut tid = uniform_tid(&q, 1, 1);
        tid.set_prob(Tuple::R(0), Rational::one());
        let compiled = compile(&q, &tid);
        // R(0) was deterministic at compile time: not in the support.
        assert!(!compiled.tuples().contains(&Tuple::R(0)));
        assert!(compiled.tuples().contains(&Tuple::T(100)));
    }

    #[test]
    fn engine_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Engine>();
        assert_send_sync::<Compiled>();
    }

    #[test]
    fn cost_aware_eviction_keeps_the_expensive_circuit() {
        // Capacity 1 forces every admission decision to be a duel. The
        // 3×3 lineage compiles to a much larger circuit than the 1×1, so
        // after the cheap lineage is compiled the expensive one must still
        // be resident (the newcomer is denied admission, not the giant).
        let q = catalog::h1();
        let big = uniform_tid(&q, 3, 3);
        let small = uniform_tid(&q, 1, 1);
        let engine = Engine::builder().cache_capacity(1).build();
        let big_compiled = engine.compile(&q, &big);
        let small_compiled = engine.compile(&q, &small);
        assert!(
            big_compiled.node_count() > 10 * small_compiled.node_count(),
            "preset sizes must differ by an order of magnitude: {} vs {}",
            big_compiled.node_count(),
            small_compiled.node_count()
        );
        let before = engine.cache_stats();
        assert_eq!(before.rejections, 1, "{before:?}");
        engine.compile(&q, &big);
        let after = engine.cache_stats();
        assert_eq!(after.hits, before.hits + 1, "giant must still be hot");
        assert_eq!(after.entries, 1);
        // An even costlier newcomer does displace it (cost dominates the
        // duel), so the cache is not wedged on its first giant forever.
        let bigger = uniform_tid(&q, 4, 4);
        engine.compile(&q, &bigger);
        let end = engine.cache_stats();
        assert_eq!(end.entries, 1);
        assert_eq!(end.evictions, 1, "{end:?}");
    }

    #[test]
    fn probability_shortcut_agrees() {
        let q = catalog::example_c9();
        let tid = uniform_tid(&q, 2, 2);
        assert_eq!(probability(&q, &tid), naive_probability(&q, &tid));
    }
}
