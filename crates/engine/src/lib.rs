//! # gfomc-engine
//!
//! Knowledge-compiled query evaluation: compile the lineage of a query over
//! a TID **once** into a d-DNNF-style arithmetic circuit, then evaluate it
//! under **many** weight assignments, each in time linear in the circuit.
//!
//! The naive oracle ([`gfomc_tid::probability`]) re-runs Shannon expansion
//! from scratch for every query/weight pair. But the paper's block
//! constructions (§3, Theorem 3.4) — and any workload sweeping tuple
//! probabilities over a fixed database — evaluate the *same* lineage under
//! *many* weight assignments. That is exactly the workload knowledge
//! compilation amortizes:
//!
//! ```
//! use gfomc_engine::{Engine, TupleWeights};
//! use gfomc_arith::Rational;
//! use gfomc_query::catalog;
//! use gfomc_tid::{Tid, Tuple};
//!
//! let q = catalog::h1();
//! let mut tid = Tid::all_present([0], [10]);
//! tid.set_prob(Tuple::R(0), Rational::one_half());
//! tid.set_prob(Tuple::S(0, 0, 10), Rational::one_half());
//! tid.set_prob(Tuple::T(10), Rational::one_half());
//!
//! let mut engine = Engine::new();
//! let compiled = engine.compile(&q, &tid);          // lineage + circuit, once
//! let base = compiled.evaluate_db();                 // Pr at the stored probabilities
//! let swept = compiled.evaluate(                     // Pr with R(0) forced present
//!     &TupleWeights::new().with(Tuple::R(0), Rational::one()),
//! );
//! assert!(base < swept);
//! ```
//!
//! The compiled form is exact: evaluation returns the same [`Rational`] as
//! [`wmc`](gfomc_logic::wmc()) on the lineage (the property suites assert equality,
//! not approximation). The [`workload`] module generates random block TIDs
//! and random bipartite queries at controlled safety for tests and benches.
//!
//! When exactness is not affordable, [`Engine::evaluate_auto`] (the
//! [`router`] module) turns the dichotomy into a runtime decision: safe
//! queries go to the PTIME lifted evaluator, unsafe queries go to the
//! compiled circuit while the estimated compilation cost fits a [`Budget`],
//! and everything beyond falls back to the seeded Karp–Luby sampler of
//! `gfomc-approx` — returning a result tagged [`AutoResult::Exact`] or
//! [`AutoResult::Approx`] so the two regimes can never be confused.

pub mod router;
pub mod workload;

pub use router::{AutoResult, Budget, Route, RouteCounts, Routed, SampleMode};

use gfomc_arith::Rational;
use gfomc_logic::{Circuit, Cnf, CnfId, CnfInterner, EvalArena, WeightsFromFn};
use gfomc_query::BipartiteQuery;
use gfomc_tid::{lineage, Lineage, Tid, Tuple, VarTable};
use std::collections::HashMap;
use std::sync::Arc;

/// Default number of compiled circuits the engine keeps hot.
pub const DEFAULT_CACHE_CAPACITY: usize = 64;

/// Hit/miss record of the engine's compilation cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Compilations skipped because the canonical lineage was cached.
    pub hits: usize,
    /// Compilations actually performed.
    pub misses: usize,
    /// Circuits currently cached.
    pub entries: usize,
    /// Maximum number of cached circuits (0 = caching disabled).
    pub capacity: usize,
}

impl CacheStats {
    /// Hits over total lookups, or 0.0 before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Compiles query/TID pairs, caches the resulting circuits, and tracks
/// aggregate compilation statistics.
///
/// Each [`Engine::compile`] call produces a self-contained [`Compiled`]
/// artifact. Circuits are cached in an LRU keyed on **interned canonical
/// CNF ids** ([`gfomc_logic::CnfInterner`]): two queries (or the same
/// query over two TIDs) whose groundings canonicalize to the same lineage
/// share one compilation — the second [`Engine::compile`] is a cache hit
/// that only re-binds the tuple ↔ variable table. Cached circuits are
/// behind [`Arc`], so a hit costs one reference bump, not a deep copy.
#[derive(Debug)]
pub struct Engine {
    compiled: usize,
    nodes: usize,
    decisions: usize,
    routes: RouteCounts,
    interner: CnfInterner,
    cache: HashMap<CnfId, (Arc<Circuit>, u64)>,
    cache_capacity: usize,
    cache_stamp: u64,
    cache_hits: usize,
    cache_misses: usize,
    arena: EvalArena,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::with_cache_capacity(DEFAULT_CACHE_CAPACITY)
    }
}

impl Engine {
    /// A fresh engine with zeroed statistics and the default cache size.
    pub fn new() -> Self {
        Engine::default()
    }

    /// An engine whose compilation cache holds up to `capacity` circuits
    /// (0 disables caching entirely).
    pub fn with_cache_capacity(capacity: usize) -> Self {
        Engine {
            compiled: 0,
            nodes: 0,
            decisions: 0,
            routes: RouteCounts::default(),
            interner: CnfInterner::new(),
            cache: HashMap::new(),
            cache_capacity: capacity,
            cache_stamp: 0,
            cache_hits: 0,
            cache_misses: 0,
            arena: EvalArena::new(),
        }
    }

    /// Grounds `q` over `tid` and compiles the lineage into a circuit —
    /// or fetches the circuit from the cache if an identical canonical
    /// lineage was compiled before.
    ///
    /// Compilation is the expensive step — it performs the full component
    /// / Shannon decomposition exactly once per *distinct* lineage. Every
    /// subsequent [`Compiled::evaluate`] is a single bottom-up pass.
    pub fn compile(&mut self, q: &BipartiteQuery, tid: &Tid) -> Compiled {
        self.compile_lineage(lineage(q, tid))
    }

    /// Compiles an already-grounded lineage — shared by [`Engine::compile`]
    /// and the router ([`Engine::evaluate_auto`]), which grounds the
    /// lineage itself to estimate its cost before committing to a circuit.
    pub(crate) fn compile_lineage(&mut self, lin: Lineage) -> Compiled {
        let circuit = self.compile_cnf(&lin.cnf);
        Compiled {
            circuit,
            vars: lin.vars,
        }
    }

    /// The cache-aware compilation core: interns the canonical CNF and
    /// either returns the cached circuit or compiles and caches it.
    fn compile_cnf(&mut self, cnf: &Cnf) -> Arc<Circuit> {
        if self.cache_capacity == 0 {
            self.cache_misses += 1;
            return self.compile_fresh(cnf);
        }
        let id = self.interner.intern(cnf);
        self.cache_stamp += 1;
        let stamp = self.cache_stamp;
        if let Some((circuit, last_used)) = self.cache.get_mut(&id) {
            *last_used = stamp;
            self.cache_hits += 1;
            return Arc::clone(circuit);
        }
        self.cache_misses += 1;
        let circuit = self.compile_fresh(cnf);
        if self.cache.len() >= self.cache_capacity {
            // Evict the least-recently-used entry. Linear scan: the cache
            // is small and eviction is rare next to evaluation work. The
            // interner forgets the evicted lineage too, so engine memory
            // stays bounded by the cache capacity, not by every distinct
            // lineage ever seen.
            let victim = self
                .cache
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(id, _)| *id);
            if let Some(victim) = victim {
                self.cache.remove(&victim);
                self.interner.forget(victim);
            }
        }
        self.cache.insert(id, (Arc::clone(&circuit), stamp));
        circuit
    }

    /// Uncached compilation plus instrumentation.
    fn compile_fresh(&mut self, cnf: &Cnf) -> Arc<Circuit> {
        let circuit = Circuit::compile(cnf);
        self.compiled += 1;
        self.nodes += circuit.node_count();
        self.decisions += circuit.decision_count();
        Arc::new(circuit)
    }

    /// Number of lineages actually compiled by this engine (cache hits
    /// are not compilations).
    pub fn compiled_count(&self) -> usize {
        self.compiled
    }

    /// Total circuit gates produced across all compilations.
    pub fn total_nodes(&self) -> usize {
        self.nodes
    }

    /// Total Shannon-split gates produced across all compilations.
    pub fn total_decisions(&self) -> usize {
        self.decisions
    }

    /// Compilation-cache hit/miss counters, surfaced next to
    /// [`Engine::route_counts`] for workload instrumentation.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.cache_hits,
            misses: self.cache_misses,
            entries: self.cache.len(),
            capacity: self.cache_capacity,
        }
    }

    /// The engine's reusable evaluation arena (used by the router's
    /// compiled path so repeated queries share one values buffer).
    pub(crate) fn arena(&mut self) -> &mut EvalArena {
        &mut self.arena
    }
}

/// One-shot convenience: compile `q` over `tid` with a throwaway [`Engine`].
pub fn compile(q: &BipartiteQuery, tid: &Tid) -> Compiled {
    Engine::new().compile(q, tid)
}

/// `Pr_∆(Q)` through the compiled path — drop-in for
/// [`gfomc_tid::probability`] when only one evaluation is needed.
pub fn probability(q: &BipartiteQuery, tid: &Tid) -> Rational {
    compile(q, tid).evaluate_db()
}

/// A compiled query lineage: the arithmetic circuit plus the tuple ↔
/// variable table of the grounding.
///
/// Deterministic tuples (probability 0 or 1 in the source TID) were folded
/// away during grounding, so the circuit's variables are exactly the
/// *uncertain* tuples of the database; those are the tuples whose weight a
/// [`TupleWeights`] assignment can override. Overrides may be deterministic
/// (0 or 1): the Shannon gates degenerate to the forced branch
/// arithmetically, so no recompilation is needed.
#[derive(Clone, Debug)]
pub struct Compiled {
    circuit: Arc<Circuit>,
    vars: VarTable,
}

impl Compiled {
    /// Evaluates the circuit under the database's own tuple probabilities.
    pub fn evaluate_db(&self) -> Rational {
        self.circuit.evaluate(self.vars.weights())
    }

    /// [`Compiled::evaluate_db`] with a caller-provided values arena.
    pub fn evaluate_db_with(&self, arena: &mut EvalArena) -> Rational {
        self.circuit.evaluate_with(self.vars.weights(), arena)
    }

    /// Evaluates the circuit under `weights`: each uncertain tuple takes
    /// its override if present, its database probability otherwise.
    pub fn evaluate(&self, weights: &TupleWeights) -> Rational {
        let mut arena = EvalArena::new();
        self.evaluate_with(weights, &mut arena)
    }

    /// [`Compiled::evaluate`] with a caller-provided values arena, so a
    /// loop over many weightings reuses one buffer instead of allocating a
    /// fresh values vector per assignment.
    pub fn evaluate_with(&self, weights: &TupleWeights, arena: &mut EvalArena) -> Rational {
        let w = WeightsFromFn(|v| {
            weights
                .get(&self.vars.tuple_of(v))
                .cloned()
                .unwrap_or_else(|| self.vars.weights()[&v].clone())
        });
        self.circuit.evaluate_with(&w, arena)
    }

    /// The batched form: one compiled circuit priced under every assignment
    /// in `weights`, sharing one values arena. Output order matches input
    /// order.
    pub fn evaluate_batch(&self, weights: &[TupleWeights]) -> Vec<Rational> {
        let mut arena = EvalArena::with_capacity(self.circuit.node_count());
        weights
            .iter()
            .map(|w| self.evaluate_with(w, &mut arena))
            .collect()
    }

    /// [`Compiled::evaluate_batch`] fanned across `threads` OS threads
    /// over the shared immutable circuit (delegates the fan-out to
    /// [`Circuit::evaluate_batch_threads`]).
    ///
    /// Evaluation is exact rational arithmetic, so the output is
    /// **identical** to the serial batch for every thread count.
    pub fn evaluate_batch_threads(
        &self,
        weights: &[TupleWeights],
        threads: usize,
    ) -> Vec<Rational> {
        let resolved: Vec<_> = weights
            .iter()
            .map(|w| {
                WeightsFromFn(move |v| {
                    w.get(&self.vars.tuple_of(v))
                        .cloned()
                        .unwrap_or_else(|| self.vars.weights()[&v].clone())
                })
            })
            .collect();
        self.circuit.evaluate_batch_threads(&resolved, threads)
    }

    /// The uncertain tuples of the compiled lineage — the tuples whose
    /// weight an assignment can change.
    pub fn tuples(&self) -> Vec<Tuple> {
        (0..self.vars.len())
            .map(|i| self.vars.tuple_of(gfomc_logic::Var(i as u32)))
            .collect()
    }

    /// The underlying circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The tuple ↔ variable table of the grounding.
    pub fn vars(&self) -> &VarTable {
        &self.vars
    }

    /// Number of circuit gates.
    pub fn node_count(&self) -> usize {
        self.circuit.node_count()
    }
}

/// A weight assignment for a compiled lineage: per-tuple probability
/// overrides on top of the database probabilities.
///
/// Tuples without an override keep the probability they had when the
/// lineage was compiled. Overriding a tuple that was deterministic at
/// compile time has no effect — it was folded out of the circuit during
/// grounding (see [`Compiled::tuples`] for the live support).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TupleWeights {
    overrides: HashMap<Tuple, Rational>,
}

impl TupleWeights {
    /// An empty assignment (every tuple at its database probability).
    pub fn new() -> Self {
        TupleWeights::default()
    }

    /// Builder-style override of one tuple's probability.
    pub fn with(mut self, t: Tuple, p: Rational) -> Self {
        self.set(t, p);
        self
    }

    /// Overrides one tuple's probability in place.
    pub fn set(&mut self, t: Tuple, p: Rational) {
        assert!(p.is_probability(), "probability out of [0,1] for {t}");
        self.overrides.insert(t, p);
    }

    /// The override for a tuple, if any.
    pub fn get(&self, t: &Tuple) -> Option<&Rational> {
        self.overrides.get(t)
    }

    /// Number of overridden tuples.
    pub fn len(&self) -> usize {
        self.overrides.len()
    }

    /// True iff no tuple is overridden.
    pub fn is_empty(&self) -> bool {
        self.overrides.is_empty()
    }

    /// The overridden tuples with their probabilities.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, &Rational)> {
        self.overrides.iter()
    }
}

impl FromIterator<(Tuple, Rational)> for TupleWeights {
    fn from_iter<I: IntoIterator<Item = (Tuple, Rational)>>(iter: I) -> Self {
        let mut w = TupleWeights::new();
        for (t, p) in iter {
            w.set(t, p);
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfomc_query::catalog;
    use gfomc_tid::probability as naive_probability;

    fn half() -> Rational {
        Rational::one_half()
    }

    fn uniform_tid(q: &BipartiteQuery, nu: u32, nv: u32) -> Tid {
        let left: Vec<u32> = (0..nu).collect();
        let right: Vec<u32> = (100..100 + nv).collect();
        let mut tid = Tid::all_present(left.clone(), right.clone());
        for &u in &left {
            tid.set_prob(Tuple::R(u), half());
            for &v in &right {
                for s in q.binary_symbols() {
                    tid.set_prob(Tuple::S(s, u, v), half());
                }
            }
        }
        for &v in &right {
            tid.set_prob(Tuple::T(v), half());
        }
        tid
    }

    #[test]
    fn compiled_matches_naive_oracle_on_catalog() {
        let mut engine = Engine::new();
        for (name, q) in catalog::unsafe_catalog()
            .iter()
            .chain(&catalog::safe_catalog())
        {
            let tid = uniform_tid(q, 2, 2);
            let compiled = engine.compile(q, &tid);
            assert_eq!(compiled.evaluate_db(), naive_probability(q, &tid), "{name}");
        }
        assert_eq!(
            engine.compiled_count(),
            catalog::unsafe_catalog().len() + catalog::safe_catalog().len()
        );
        assert!(engine.total_nodes() > 0);
    }

    #[test]
    fn overrides_match_recompiled_database() {
        // Overriding S0(0,100) to ¼ must equal compiling a database that
        // had ¼ there all along.
        let q = catalog::h1();
        let tid = uniform_tid(&q, 2, 2);
        let compiled = compile(&q, &tid);
        let quarter = Rational::from_ints(1, 4);
        let w = TupleWeights::new().with(Tuple::S(0, 0, 100), quarter.clone());
        let mut tid2 = tid.clone();
        tid2.set_prob(Tuple::S(0, 0, 100), quarter);
        assert_eq!(compiled.evaluate(&w), naive_probability(&q, &tid2));
    }

    #[test]
    fn deterministic_overrides_need_no_recompilation() {
        // Forcing the endpoint tuples to 0/1 (the transfer-matrix workload,
        // Eq. (20)) through the compiled circuit matches restricting the
        // lineage before counting.
        let q = catalog::h1();
        let tid = uniform_tid(&q, 2, 2);
        let compiled = compile(&q, &tid);
        for r0 in [Rational::zero(), Rational::one()] {
            let w = TupleWeights::new().with(Tuple::R(0), r0.clone());
            let mut tid2 = tid.clone();
            tid2.set_prob(Tuple::R(0), r0);
            assert_eq!(compiled.evaluate(&w), naive_probability(&q, &tid2));
        }
    }

    #[test]
    fn batch_matches_single_evaluations() {
        let q = catalog::hk(2);
        let tid = uniform_tid(&q, 2, 2);
        let compiled = compile(&q, &tid);
        let weights: Vec<TupleWeights> = (0..=4)
            .map(|k| TupleWeights::new().with(Tuple::T(100), Rational::from_ints(k, 4)))
            .collect();
        let batch = compiled.evaluate_batch(&weights);
        assert_eq!(batch.len(), weights.len());
        for (w, got) in weights.iter().zip(&batch) {
            assert_eq!(got, &compiled.evaluate(w));
        }
    }

    #[test]
    fn support_is_the_uncertain_tuples() {
        let q = catalog::h1();
        let mut tid = uniform_tid(&q, 1, 1);
        tid.set_prob(Tuple::R(0), Rational::one());
        let compiled = compile(&q, &tid);
        // R(0) was deterministic at compile time: not in the support.
        assert!(!compiled.tuples().contains(&Tuple::R(0)));
        assert!(compiled.tuples().contains(&Tuple::T(100)));
    }

    #[test]
    fn probability_shortcut_agrees() {
        let q = catalog::example_c9();
        let tid = uniform_tid(&q, 2, 2);
        assert_eq!(probability(&q, &tid), naive_probability(&q, &tid));
    }
}
