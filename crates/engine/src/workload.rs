//! Workload generation: random block TIDs and random bipartite queries at
//! controlled safety, shared by the test suites and the bench harness.
//!
//! Everything here is seeded ([`rand::rngs::StdRng`] from the vendored,
//! deterministic `rand` stand-in), so test and bench workloads are
//! reproducible across runs and platforms.

use crate::TupleWeights;
use gfomc_arith::Rational;
use gfomc_query::{BipartiteQuery, Clause};
use gfomc_safety::{is_safe, is_unsafe};
use gfomc_tid::{Tid, Tuple};
use rand::Rng;

/// The safety class a generated query must land in.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SafetyTarget {
    /// Only safe queries (no symbol-connected component mixes left and
    /// right clauses) — generated one-sided, so safety holds by shape.
    Safe,
    /// Only unsafe queries — a left and a right clause are forced to share
    /// a binary symbol, creating a left-right path.
    Unsafe,
    /// No constraint.
    Any,
}

/// A random bipartite query with `n_clauses` clauses over binary symbols
/// `0..n_symbols`, in the requested safety class.
///
/// Clause shapes are drawn from the Definition 2.3 menu (left/right Type I,
/// left/right Type II with two subclauses, middle). `SafetyTarget::Unsafe`
/// requires `n_clauses >= 2` (a left-right path needs a left and a right
/// clause) and `SafetyTarget::Safe` generates one-sided queries, which are
/// safe by construction; both are `debug_assert`-checked against the
/// [`gfomc_safety`] classifier.
pub fn random_query<R: Rng>(
    rng: &mut R,
    n_symbols: u32,
    n_clauses: usize,
    target: SafetyTarget,
) -> BipartiteQuery {
    assert!(n_symbols > 0, "need at least one binary symbol");
    assert!(n_clauses > 0, "need at least one clause");
    let q = match target {
        SafetyTarget::Any => {
            let clauses: Vec<Clause> = (0..n_clauses)
                .map(|_| random_clause(rng, n_symbols, 0..5))
                .collect();
            BipartiteQuery::new(clauses)
        }
        SafetyTarget::Safe => {
            // One-sided: every clause is leftish (or every clause rightish),
            // so no component can contain both roles.
            let leftish = rng.gen_bool(0.5);
            let shapes = if leftish { 0..3 } else { 2..5 };
            let clauses: Vec<Clause> = (0..n_clauses)
                .map(|_| random_clause(rng, n_symbols, shapes.clone()))
                .collect();
            let q = BipartiteQuery::new(clauses);
            debug_assert!(is_safe(&q), "one-sided query must be safe: {q:?}");
            q
        }
        SafetyTarget::Unsafe => {
            assert!(n_clauses >= 2, "an unsafe query needs >= 2 clauses");
            // A left and a right Type-I clause sharing `bridge` form a
            // left-right path of length one; the rest is unconstrained.
            // Query minimization can absorb a bridge clause into a random
            // extra one (dropping the path), so reject and resample until
            // the classifier confirms unsafety — almost always immediate.
            let mut attempts = 0;
            loop {
                let bridge = rng.gen_range(0..n_symbols);
                let mut clauses = vec![
                    Clause::left_i(symbol_set(rng, n_symbols, Some(bridge))),
                    Clause::right_i(symbol_set(rng, n_symbols, Some(bridge))),
                ];
                clauses.extend((0..n_clauses - 2).map(|_| random_clause(rng, n_symbols, 0..5)));
                let q = BipartiteQuery::new(clauses);
                if is_unsafe(&q) {
                    break q;
                }
                attempts += 1;
                assert!(attempts < 1000, "could not generate an unsafe query");
            }
        }
    };
    q
}

/// One random clause; `shapes` indexes the menu
/// `[left_i, left_ii, middle, right_ii, right_i]` (ordered so that any
/// prefix is leftish-only and any suffix rightish-only).
fn random_clause<R: Rng>(rng: &mut R, n_symbols: u32, shapes: core::ops::Range<u8>) -> Clause {
    match rng.gen_range(shapes) {
        0 => Clause::left_i(symbol_set(rng, n_symbols, None)),
        1 => {
            let a = symbol_set(rng, n_symbols, None);
            let b = symbol_set(rng, n_symbols, None);
            Clause::left_ii(&[&a, &b])
        }
        2 => Clause::middle(symbol_set(rng, n_symbols, None)),
        3 => {
            let a = symbol_set(rng, n_symbols, None);
            let b = symbol_set(rng, n_symbols, None);
            Clause::right_ii(&[&a, &b])
        }
        _ => Clause::right_i(symbol_set(rng, n_symbols, None)),
    }
}

/// A nonempty random subset of `0..n_symbols`, forced to contain `must`.
fn symbol_set<R: Rng>(rng: &mut R, n_symbols: u32, must: Option<u32>) -> Vec<u32> {
    let mut out: Vec<u32> = (0..n_symbols).filter(|_| rng.gen_bool(0.4)).collect();
    if let Some(s) = must {
        if !out.contains(&s) {
            out.push(s);
        }
    }
    if out.is_empty() {
        out.push(rng.gen_range(0..n_symbols));
    }
    out.sort_unstable();
    out
}

/// A random block TID for `q` over an `nu × nv` domain: every relevant
/// tuple (`R(u)`, `T(v)`, and each `S_s(u,v)` cell) gets an independent
/// probability `k/8`, `k ∈ 1..=7` — strictly uncertain, so the whole block
/// structure survives into the lineage.
pub fn random_block_tid<R: Rng>(rng: &mut R, q: &BipartiteQuery, nu: u32, nv: u32) -> Tid {
    block_tid_with(rng, q, nu, nv, |rng| {
        Rational::from_ints(rng.gen_range(1..=7i64), 8)
    })
}

/// A random *GFOMC-instance* block TID: probabilities drawn from
/// `{0, ½, 1}` (the input class of generalized model counting), biased
/// toward ½ so lineages stay non-degenerate.
pub fn random_gfomc_block_tid<R: Rng>(rng: &mut R, q: &BipartiteQuery, nu: u32, nv: u32) -> Tid {
    let tid = block_tid_with(rng, q, nu, nv, |rng| match rng.gen_range(0..4u8) {
        0 => Rational::zero(),
        1 => Rational::one(),
        _ => Rational::one_half(),
    });
    debug_assert!(tid.is_gfomc_instance());
    tid
}

fn block_tid_with<R: Rng>(
    rng: &mut R,
    q: &BipartiteQuery,
    nu: u32,
    nv: u32,
    mut prob: impl FnMut(&mut R) -> Rational,
) -> Tid {
    assert!(nu > 0 && nv > 0, "domains must be nonempty");
    let left: Vec<u32> = (0..nu).collect();
    let right: Vec<u32> = (1000..1000 + nv).collect();
    let mut tid = Tid::all_present(left.clone(), right.clone());
    for &u in &left {
        tid.set_prob(Tuple::R(u), prob(rng));
        for &v in &right {
            for s in q.binary_symbols() {
                tid.set_prob(Tuple::S(s, u, v), prob(rng));
            }
        }
    }
    for &v in &right {
        tid.set_prob(Tuple::T(v), prob(rng));
    }
    tid
}

/// The unsafe-query / large-block preset: a random **unsafe** query over
/// `n_symbols` binary symbols together with a `scale × scale` random block
/// TID whose tuples are all strictly uncertain.
///
/// This is the first-class benchmark scenario for the approximate-inference
/// stack: the lineage has `Θ(n_symbols · scale²)` variables, so from
/// `scale ≳ 3` its worst-case Shannon cost bound blows through any
/// reasonable circuit budget and `Engine::evaluate_auto` routes to the
/// Karp–Luby sampler. Seeded like everything else here — the same `rng`
/// state reproduces the same (query, TID) pair exactly.
pub fn unsafe_block_preset<R: Rng>(
    rng: &mut R,
    n_symbols: u32,
    scale: u32,
) -> (BipartiteQuery, Tid) {
    let q = random_query(rng, n_symbols, 2, SafetyTarget::Unsafe);
    let tid = random_block_tid(rng, &q, scale, scale);
    (q, tid)
}

/// `count` full random weight assignments over `support`: every tuple gets
/// an independent probability `k/8`, `k ∈ 1..=7`.
///
/// The draws are strictly interior on purpose — a weighting sweep models
/// varying tuple *probabilities* over a fixed database, which is the
/// compile-once/evaluate-many workload. Conditioning a tuple to 0/1 is a
/// different operation (build a [`TupleWeights`] with explicit endpoint
/// overrides, as the transfer-matrix oracle does); interior draws also keep
/// the comparison against the legacy counter honest, since that path
/// eliminates deterministic variables before expanding.
pub fn random_weightings<R: Rng>(
    rng: &mut R,
    support: &[Tuple],
    count: usize,
) -> Vec<TupleWeights> {
    (0..count)
        .map(|_| {
            support
                .iter()
                .map(|&t| (t, Rational::from_ints(rng.gen_range(1..=7i64), 8)))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn safe_target_is_safe() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let q = random_query(&mut rng, 3, 3, SafetyTarget::Safe);
            assert!(is_safe(&q), "{q:?}");
        }
    }

    #[test]
    fn unsafe_target_is_unsafe() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let q = random_query(&mut rng, 3, 3, SafetyTarget::Unsafe);
            assert!(is_unsafe(&q), "{q:?}");
        }
    }

    #[test]
    fn any_target_produces_both_classes() {
        let mut rng = StdRng::seed_from_u64(3);
        let classes: Vec<bool> = (0..60)
            .map(|_| is_safe(&random_query(&mut rng, 3, 3, SafetyTarget::Any)))
            .collect();
        assert!(classes.iter().any(|&s| s));
        assert!(classes.iter().any(|&s| !s));
    }

    #[test]
    fn block_tids_cover_the_query_vocabulary() {
        let mut rng = StdRng::seed_from_u64(4);
        let q = random_query(&mut rng, 2, 2, SafetyTarget::Any);
        let tid = random_block_tid(&mut rng, &q, 2, 3);
        assert_eq!(tid.left_domain().len(), 2);
        assert_eq!(tid.right_domain().len(), 3);
        for s in q.binary_symbols() {
            let p = tid.prob(&Tuple::S(s, 0, 1000));
            assert!(!p.is_zero() && !p.is_one());
        }
    }

    #[test]
    fn gfomc_block_tids_are_gfomc_instances() {
        let mut rng = StdRng::seed_from_u64(5);
        let q = random_query(&mut rng, 2, 2, SafetyTarget::Any);
        let tid = random_gfomc_block_tid(&mut rng, &q, 2, 2);
        assert!(tid.is_gfomc_instance());
    }

    #[test]
    fn unsafe_preset_is_unsafe_and_interior() {
        let mut rng = StdRng::seed_from_u64(8);
        let (q, tid) = unsafe_block_preset(&mut rng, 2, 4);
        assert!(is_unsafe(&q), "{q:?}");
        assert_eq!(tid.left_domain().len(), 4);
        assert_eq!(tid.right_domain().len(), 4);
        for (_, p) in tid.explicit_tuples() {
            assert!(!p.is_zero() && !p.is_one());
        }
    }

    #[test]
    fn weightings_are_deterministic_per_seed() {
        let q = gfomc_query::catalog::h1();
        let mut rng_a = StdRng::seed_from_u64(6);
        let mut rng_b = StdRng::seed_from_u64(6);
        let tid = random_block_tid(&mut rng_a, &q, 1, 1);
        let tid_b = random_block_tid(&mut rng_b, &q, 1, 1);
        assert_eq!(tid, tid_b);
        let support = crate::compile(&q, &tid).tuples();
        let ws_a = random_weightings(&mut rng_a, &support, 5);
        let ws_b = random_weightings(&mut rng_b, &support, 5);
        assert_eq!(ws_a, ws_b);
        assert_eq!(ws_a.len(), 5);
        assert!(ws_a.iter().all(|w| w.len() == support.len()));
    }
}
