//! The engine's wire-facing API surface: one request/response pair shared
//! by the Rust API, the `gfomc-serve` network server, and the `gfomc-cli`
//! client.
//!
//! The redesign contract is *the wire format and the Rust API are the same
//! types*:
//!
//! * [`EvalRequest`] bundles everything [`Engine::evaluate_auto`] takes —
//!   a parsed [`BipartiteQuery`], a [`Tid`], a per-request [`Budget`]
//!   (ε, δ, circuit-cost ceiling, thread cap, seed), plus an optional
//!   tenant label for the serving layer's per-tenant accounting. It
//!   serializes to a line-oriented text body ([`fmt::Display`]) and parses
//!   back ([`FromStr`]) with typed errors — [`RequestParseError`] for
//!   malformed text, [`BudgetError`] for out-of-range sampling parameters
//!   — never a panic, which is what lets the server answer 400 instead of
//!   killing a worker.
//! * [`EvalResponse`] **is** [`Routed`]: the routing record's stable text
//!   serialization (implemented here, round-tripping through
//!   [`FromStr`]) is used verbatim as the wire response body, so a client
//!   that parses the body holds exactly the value a direct
//!   [`Engine::evaluate_auto`] call would have returned — bit-identical,
//!   including outward-rounded CI endpoints (rationals serialize as
//!   `numer/denom`, f64 parameters in Rust's shortest round-trip form).
//!
//! [`Engine::evaluate_request`] and [`Engine::evaluate_wire`] are the
//! engine's redesigned front door over these types; the latter is the
//! complete parse → route → serialize pipeline a network handler needs.
//!
//! ## Request grammar
//!
//! Line-oriented; blank lines and `#` comments are skipped; key and value
//! are separated by whitespace. Domain lines must precede the `tuple`
//! lines that reference them.
//!
//! ```text
//! query  [R(x0) v S0(x0,y0)] & [S0(x0,y0) v T(y0)]
//! tenant acme                  # optional tenant label
//! trace  on                    # attach the phase trace to the response
//! left   0 1                   # left domain U
//! right  1000 1001             # right domain V
//! default 1                    # unlisted-tuple probability (0 or 1; default 1)
//! tuple  R(u0) 1/2             # explicit tuple probabilities…
//! tuple  S0(u0,v1000) 3/8      # …in the Tuple Display format
//! max_circuit_cost 4194304     # budget fields, all optional
//! samples 20000
//! delta  0.05
//! seed   24301
//! threads 2
//! mode   adaptive 0.05         # or: mode fixed
//! threshold 1/2                # optional: answer "Pr ≤ 1/2?" instead of Pr
//! ```

use crate::router::{AutoResult, Budget, BudgetError, Route, Routed, SampleMode};
use crate::Engine;
use gfomc_approx::ConfidenceInterval;
use gfomc_arith::Rational;
use gfomc_obs::Trace;
use gfomc_query::{parser::parse_query, BipartiteQuery};
use gfomc_safety::CircuitCostEstimate;
use gfomc_tid::{Tid, Tuple};
use std::fmt;
use std::str::FromStr;
use std::time::Instant;

// ---------------------------------------------------------------------
// Route / AutoResult / Routed: the stable response serialization.
// ---------------------------------------------------------------------

impl fmt::Display for Route {
    /// Lower-case route tag: `lifted`, `compiled`, or `sampled`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Route::Lifted => "lifted",
            Route::Compiled => "compiled",
            Route::Sampled => "sampled",
        })
    }
}

/// Failure to parse a [`Routed`] / [`AutoResult`] / [`Route`] wire body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResponseParseError(pub String);

impl fmt::Display for ResponseParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed response: {}", self.0)
    }
}

impl std::error::Error for ResponseParseError {}

impl FromStr for Route {
    type Err = ResponseParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim() {
            "lifted" => Ok(Route::Lifted),
            "compiled" => Ok(Route::Compiled),
            "sampled" => Ok(Route::Sampled),
            other => Err(ResponseParseError(format!("unknown route '{other}'"))),
        }
    }
}

impl fmt::Display for AutoResult {
    /// One line: `exact <rational>`,
    /// `approx <rational> ci <lo> <hi> delta <f64> samples <n>`, or
    /// `certified <le|gt> <threshold>` (`le` means `Pr ≤ threshold`).
    ///
    /// Rationals print as `numer/denom` in lowest terms (integers without
    /// the `/denom`), so parsing back is **bit-identical** — including the
    /// outward-rounded CI endpoints, which live on the dyadic grid
    /// `k/2^53` and round-trip exactly. `delta` uses Rust's shortest
    /// round-trip float form.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AutoResult::Exact(p) => write!(f, "exact {p}"),
            AutoResult::Approx {
                estimate,
                ci,
                samples,
            } => write!(
                f,
                "approx {estimate} ci {} {} delta {} samples {samples}",
                ci.lo, ci.hi, ci.delta
            ),
            AutoResult::Certified { le, threshold } => {
                write!(f, "certified {} {threshold}", if *le { "le" } else { "gt" })
            }
        }
    }
}

/// Parses one whitespace token with `parse`, labeling failures `what`.
pub(crate) fn token<'a, T>(
    words: &mut impl Iterator<Item = &'a str>,
    what: &str,
    parse: impl FnOnce(&str) -> Option<T>,
) -> Result<T, ResponseParseError> {
    let w = words
        .next()
        .ok_or_else(|| ResponseParseError(format!("missing {what}")))?;
    parse(w).ok_or_else(|| ResponseParseError(format!("bad {what}: '{w}'")))
}

/// Expects the literal keyword `kw` as the next token.
pub(crate) fn keyword<'a>(
    words: &mut impl Iterator<Item = &'a str>,
    kw: &str,
) -> Result<(), ResponseParseError> {
    match words.next() {
        Some(w) if w == kw => Ok(()),
        other => Err(ResponseParseError(format!(
            "expected '{kw}', got {other:?}"
        ))),
    }
}

/// A probability-valued rational (`[0, 1]`), or `None`.
pub(crate) fn parse_prob(s: &str) -> Option<Rational> {
    Rational::from_decimal(s).filter(Rational::is_probability)
}

impl FromStr for AutoResult {
    type Err = ResponseParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut words = s.split_whitespace();
        let result = match words.next() {
            Some("exact") => AutoResult::Exact(token(&mut words, "probability", parse_prob)?),
            Some("approx") => {
                let estimate = token(&mut words, "estimate", parse_prob)?;
                keyword(&mut words, "ci")?;
                let lo = token(&mut words, "ci lower endpoint", parse_prob)?;
                let hi = token(&mut words, "ci upper endpoint", parse_prob)?;
                if lo > hi {
                    return Err(ResponseParseError("ci endpoints out of order".into()));
                }
                keyword(&mut words, "delta")?;
                let delta = token(&mut words, "delta", |w| w.parse::<f64>().ok())?;
                keyword(&mut words, "samples")?;
                let samples = token(&mut words, "sample count", |w| w.parse::<u64>().ok())?;
                AutoResult::Approx {
                    estimate,
                    ci: ConfidenceInterval { lo, hi, delta },
                    samples,
                }
            }
            Some("certified") => {
                let le = match words.next() {
                    Some("le") => true,
                    Some("gt") => false,
                    other => {
                        return Err(ResponseParseError(format!(
                            "expected 'le' or 'gt', got {other:?}"
                        )))
                    }
                };
                let threshold = token(&mut words, "threshold", parse_prob)?;
                AutoResult::Certified { le, threshold }
            }
            other => {
                return Err(ResponseParseError(format!(
                    "expected 'exact', 'approx', or 'certified', got {other:?}"
                )))
            }
        };
        if let Some(extra) = words.next() {
            return Err(ResponseParseError(format!("trailing input '{extra}'")));
        }
        Ok(result)
    }
}

impl fmt::Display for Routed {
    /// The wire response body: a `route` line, an optional `cost` line
    /// (absent exactly when the lifted path skipped lineage grounding),
    /// a `result` line carrying the [`AutoResult`] serialization, and —
    /// only when the request opted in — the phase trace, each of its
    /// lines prefixed `trace ` so the response grammar stays
    /// line-oriented and unambiguous.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "route {}", self.route)?;
        if let Some(cost) = &self.cost {
            writeln!(f, "cost {cost}")?;
        }
        writeln!(f, "result {}", self.result)?;
        if let Some(trace) = &self.trace {
            for line in trace.to_string().lines() {
                writeln!(f, "trace {line}")?;
            }
        }
        Ok(())
    }
}

impl FromStr for Routed {
    type Err = ResponseParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut route: Option<Route> = None;
        let mut cost: Option<CircuitCostEstimate> = None;
        let mut result: Option<AutoResult> = None;
        let mut trace_lines = String::new();
        for line in s.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (key, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
            let dup = |what: &str| ResponseParseError(format!("duplicate '{what}' line"));
            match key {
                "route" => {
                    if route.replace(rest.parse()?).is_some() {
                        return Err(dup("route"));
                    }
                }
                "cost" => {
                    let parsed = rest
                        .parse::<CircuitCostEstimate>()
                        .map_err(|e| ResponseParseError(e.to_string()))?;
                    if cost.replace(parsed).is_some() {
                        return Err(dup("cost"));
                    }
                }
                "result" => {
                    if result.replace(rest.parse()?).is_some() {
                        return Err(dup("result"));
                    }
                }
                "trace" => {
                    trace_lines.push_str(rest);
                    trace_lines.push('\n');
                }
                other => {
                    return Err(ResponseParseError(format!(
                        "unknown response line '{other}'"
                    )))
                }
            }
        }
        let trace = if trace_lines.is_empty() {
            None
        } else {
            Some(
                trace_lines
                    .parse::<Trace>()
                    .map_err(|e| ResponseParseError(e.to_string()))?,
            )
        };
        Ok(Routed {
            route: route.ok_or_else(|| ResponseParseError("missing 'route' line".into()))?,
            result: result.ok_or_else(|| ResponseParseError("missing 'result' line".into()))?,
            cost,
            trace,
        })
    }
}

/// The wire response **is** the routing record: `gfomc-serve` sends
/// [`Routed`]'s [`fmt::Display`] form verbatim as the response body, and a
/// client parsing it back holds the exact value a direct in-process
/// [`Engine::evaluate_auto`] call returns.
pub type EvalResponse = Routed;

// ---------------------------------------------------------------------
// EvalRequest: the serializable query submission.
// ---------------------------------------------------------------------

/// One complete, self-contained evaluation request: the serializable form
/// of an [`Engine::evaluate_auto`] call.
///
/// Built in Rust (and shipped over the wire by `gfomc-cli`), or parsed
/// from the wire body by `gfomc-serve` — both directions go through the
/// same [`fmt::Display`]/[`FromStr`] pair, which round-trips exactly.
#[derive(Clone, Debug, PartialEq)]
pub struct EvalRequest {
    /// The parsed query (serialized in the `query::parser` text format,
    /// which round-trips through [`gfomc_query::parser::parse_query`]).
    pub query: BipartiteQuery,
    /// The database: domains, default, and explicit tuple probabilities.
    pub tid: Tid,
    /// The per-request resource budget (ε, δ, circuit-cost ceiling,
    /// thread cap, seed).
    pub budget: Budget,
    /// Optional tenant label for per-tenant route accounting
    /// ([`Engine::tenant_route_counts`]). Labels are free-form words
    /// (no whitespace).
    pub tenant: Option<String>,
    /// When `true`, the response carries the request's phase trace
    /// ([`Routed::trace`]; the `trace on` wire line). Purely additive:
    /// the result value is bit-identical either way.
    pub trace: bool,
}

impl EvalRequest {
    /// A request with the default budget, no tenant label, and tracing
    /// off.
    pub fn new(query: BipartiteQuery, tid: Tid) -> Self {
        EvalRequest {
            query,
            tid,
            budget: Budget::default(),
            tenant: None,
            trace: false,
        }
    }

    /// Builder-style budget override.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Builder-style tenant label. Whitespace is rejected by the wire
    /// parser, so labels must be single words.
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = Some(tenant.into());
        self
    }

    /// Builder-style opt-in to a phase trace in the response.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }
}

/// Failure to parse an [`EvalRequest`] wire body. Every variant names the
/// offending line, so the server's 400 response can point at the exact
/// input the client must fix.
#[derive(Clone, Debug, PartialEq)]
pub enum RequestParseError {
    /// The `query` line failed the `gfomc-query` parser.
    Query(gfomc_query::parser::ParseError),
    /// A budget parameter failed validation (typed, from the router).
    Budget(BudgetError),
    /// Anything else: missing/duplicate/malformed lines, unknown tuples,
    /// out-of-domain constants, non-probability weights.
    Malformed(String),
}

impl fmt::Display for RequestParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestParseError::Query(e) => write!(f, "query: {e}"),
            RequestParseError::Budget(e) => write!(f, "budget: {e}"),
            RequestParseError::Malformed(m) => write!(f, "malformed request: {m}"),
        }
    }
}

impl std::error::Error for RequestParseError {}

impl From<BudgetError> for RequestParseError {
    fn from(e: BudgetError) -> Self {
        RequestParseError::Budget(e)
    }
}

/// Parses a [`Tuple`] in its `Display` format: `R(u0)`, `T(v1000)`, or
/// `S3(u0,v1000)`.
pub fn parse_tuple(s: &str) -> Result<Tuple, RequestParseError> {
    let err = || RequestParseError::Malformed(format!("bad tuple '{s}'"));
    let s = s.trim();
    let inner = |prefix: &str, open: char| -> Option<&str> {
        s.strip_prefix(prefix)?
            .strip_prefix(open)?
            .strip_suffix(')')
    };
    if let Some(body) = inner("R", '(') {
        let u = body.strip_prefix('u').and_then(|n| n.parse().ok());
        return u.map(Tuple::R).ok_or_else(err);
    }
    if let Some(body) = inner("T", '(') {
        let v = body.strip_prefix('v').and_then(|n| n.parse().ok());
        return v.map(Tuple::T).ok_or_else(err);
    }
    if let Some(rest) = s.strip_prefix('S') {
        let (idx, body) = rest.split_once('(').ok_or_else(err)?;
        let i: u32 = idx.parse().map_err(|_| err())?;
        let body = body.strip_suffix(')').ok_or_else(err)?;
        let (u, v) = body.split_once(',').ok_or_else(err)?;
        let u: u32 = u
            .trim()
            .strip_prefix('u')
            .and_then(|n| n.parse().ok())
            .ok_or_else(err)?;
        let v: u32 = v
            .trim()
            .strip_prefix('v')
            .and_then(|n| n.parse().ok())
            .ok_or_else(err)?;
        return Ok(Tuple::S(i, u, v));
    }
    Err(err())
}

impl fmt::Display for EvalRequest {
    /// The wire request body (see the module-level grammar). Domains,
    /// tuples, and budget fields are all written explicitly, so the text
    /// form is self-contained and parsing it back reproduces the request
    /// exactly.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "query {}", self.query)?;
        if let Some(tenant) = &self.tenant {
            writeln!(f, "tenant {tenant}")?;
        }
        if self.trace {
            writeln!(f, "trace on")?;
        }
        write!(f, "left")?;
        for u in self.tid.left_domain() {
            write!(f, " {u}")?;
        }
        writeln!(f)?;
        write!(f, "right")?;
        for v in self.tid.right_domain() {
            write!(f, " {v}")?;
        }
        writeln!(f)?;
        writeln!(f, "default {}", self.tid.default_prob())?;
        for (t, p) in self.tid.explicit_tuples() {
            writeln!(f, "tuple {t} {p}")?;
        }
        writeln!(f, "max_circuit_cost {}", self.budget.max_circuit_cost)?;
        writeln!(f, "samples {}", self.budget.samples)?;
        writeln!(f, "delta {}", self.budget.delta)?;
        writeln!(f, "seed {}", self.budget.seed)?;
        writeln!(f, "threads {}", self.budget.threads)?;
        match self.budget.mode {
            SampleMode::Fixed => writeln!(f, "mode fixed")?,
            SampleMode::Adaptive { epsilon } => writeln!(f, "mode adaptive {epsilon}")?,
        }
        if let Some(t) = &self.budget.threshold {
            writeln!(f, "threshold {t}")?;
        }
        Ok(())
    }
}

impl FromStr for EvalRequest {
    type Err = RequestParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let malformed = |m: String| RequestParseError::Malformed(m);
        let mut query: Option<BipartiteQuery> = None;
        let mut tenant: Option<String> = None;
        let mut trace: Option<bool> = None;
        let mut left: Option<Vec<u32>> = None;
        let mut right: Option<Vec<u32>> = None;
        let mut default: Option<Rational> = None;
        let mut tuples: Vec<(Tuple, Rational)> = Vec::new();
        let mut budget = Budget::default();
        let mut samples: Option<u64> = None;
        let mut mode: Option<SampleMode> = None;
        for (lineno, raw) in s.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let at = |m: &str| malformed(format!("line {}: {m}", lineno + 1));
            let (key, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
            let rest = rest.trim();
            let set_once = |slot_is_some: bool| -> Result<(), RequestParseError> {
                if slot_is_some {
                    Err(at(&format!("duplicate '{key}' line")))
                } else {
                    Ok(())
                }
            };
            match key {
                "query" => {
                    set_once(query.is_some())?;
                    query = Some(parse_query(rest).map_err(RequestParseError::Query)?);
                }
                "tenant" => {
                    set_once(tenant.is_some())?;
                    if rest.is_empty() || rest.contains(char::is_whitespace) {
                        return Err(at("tenant must be one non-empty word"));
                    }
                    tenant = Some(rest.to_string());
                }
                "trace" => {
                    set_once(trace.is_some())?;
                    trace = Some(match rest {
                        "on" => true,
                        "off" => false,
                        _ => return Err(at("trace must be 'on' or 'off'")),
                    });
                }
                "left" | "right" => {
                    let domain: Result<Vec<u32>, _> = rest
                        .split_whitespace()
                        .map(|w| {
                            w.parse::<u32>()
                                .map_err(|_| at(&format!("bad constant '{w}'")))
                        })
                        .collect();
                    let domain = domain?;
                    if key == "left" {
                        set_once(left.is_some())?;
                        left = Some(domain);
                    } else {
                        set_once(right.is_some())?;
                        right = Some(domain);
                    }
                }
                "default" => {
                    set_once(default.is_some())?;
                    let p = parse_prob(rest).ok_or_else(|| at("default must be 0 or 1"))?;
                    if !p.is_zero() && !p.is_one() {
                        return Err(at("default must be 0 or 1"));
                    }
                    default = Some(p);
                }
                "tuple" => {
                    let (t, p) = rest
                        .rsplit_once(char::is_whitespace)
                        .ok_or_else(|| at("expected 'tuple <tuple> <probability>'"))?;
                    let tuple = parse_tuple(t)?;
                    let prob = parse_prob(p)
                        .ok_or_else(|| at(&format!("probability '{p}' not in [0, 1]")))?;
                    tuples.push((tuple, prob));
                }
                "max_circuit_cost" => {
                    budget.max_circuit_cost = rest
                        .parse()
                        .map_err(|_| at(&format!("bad circuit-cost cap '{rest}'")))?;
                }
                "samples" => {
                    let n: u64 = rest
                        .parse()
                        .map_err(|_| at(&format!("bad sample count '{rest}'")))?;
                    samples = Some(n);
                }
                "delta" => {
                    let d: f64 = rest
                        .parse()
                        .map_err(|_| at(&format!("bad delta '{rest}'")))?;
                    budget = budget.with_delta(d)?;
                }
                "seed" => {
                    budget.seed = rest
                        .parse()
                        .map_err(|_| at(&format!("bad seed '{rest}'")))?;
                }
                "threads" => {
                    let t: usize = rest
                        .parse()
                        .map_err(|_| at(&format!("bad thread count '{rest}'")))?;
                    budget = budget.with_threads(t.max(1));
                }
                "threshold" => {
                    set_once(budget.threshold.is_some())?;
                    let t = Rational::from_decimal(rest)
                        .ok_or_else(|| at(&format!("bad threshold '{rest}'")))?;
                    // Out-of-range thresholds come back as the typed
                    // BudgetError (the server's 400), never a panic.
                    budget = budget.with_threshold(t)?;
                }
                "mode" => {
                    let mut words = rest.split_whitespace();
                    let parsed = match words.next() {
                        Some("fixed") => SampleMode::Fixed,
                        Some("adaptive") => {
                            let eps = words
                                .next()
                                .and_then(|w| w.parse::<f64>().ok())
                                .ok_or_else(|| at("'mode adaptive' needs an epsilon"))?;
                            SampleMode::Adaptive { epsilon: eps }
                        }
                        _ => return Err(at("mode must be 'fixed' or 'adaptive <epsilon>'")),
                    };
                    if words.next().is_some() {
                        return Err(at("trailing input after mode"));
                    }
                    mode = Some(parsed);
                }
                other => return Err(at(&format!("unknown request line '{other}'"))),
            }
        }
        let query = query.ok_or_else(|| malformed("missing 'query' line".into()))?;
        let left = left.ok_or_else(|| malformed("missing 'left' domain line".into()))?;
        let right = right.ok_or_else(|| malformed("missing 'right' domain line".into()))?;
        // `samples N` switches the mode to Fixed (matching the Rust
        // builder); an explicit `mode` line wins regardless of order.
        if let Some(n) = samples {
            budget = budget.with_samples(n)?;
        }
        if let Some(m) = mode {
            budget = budget.with_mode(m)?;
        }
        let mut tid = Tid::new(
            left.iter().copied(),
            right.iter().copied(),
            default.unwrap_or_else(Rational::one),
        );
        for (t, p) in tuples {
            // Membership is checked here (with a typed error) because
            // `Tid::set_prob` asserts — a panic a network server must
            // never let a request body trigger.
            let in_domain = match t {
                Tuple::R(u) => left.contains(&u),
                Tuple::T(v) => right.contains(&v),
                Tuple::S(_, u, v) => left.contains(&u) && right.contains(&v),
            };
            if !in_domain {
                return Err(malformed(format!("tuple {t} outside the declared domains")));
            }
            tid.set_prob(t, p);
        }
        Ok(EvalRequest {
            query,
            tid,
            budget,
            tenant,
            trace: trace.unwrap_or(false),
        })
    }
}

// ---------------------------------------------------------------------
// The engine front door over the shared types.
// ---------------------------------------------------------------------

/// Everything that can go wrong between a wire body arriving and a routed
/// result leaving: the serving layer's 400-class error union.
#[derive(Clone, Debug, PartialEq)]
pub enum EvalError {
    /// The request body did not parse.
    Parse(RequestParseError),
    /// The request parsed but carried an invalid budget (struct-literal
    /// constructions can bypass the builders; the router re-validates).
    Budget(BudgetError),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Parse(e) => write!(f, "{e}"),
            EvalError::Budget(e) => write!(f, "budget: {e}"),
        }
    }
}

impl std::error::Error for EvalError {}

impl Engine {
    /// Routes one [`EvalRequest`] — the typed front door shared by the
    /// server, the CLI, and in-process callers. Identical to
    /// [`Engine::try_evaluate_auto`] on the request's parts, plus the
    /// per-request observability the serving layer reads back out:
    /// per-tenant route accounting, the per-route / per-tenant
    /// request-latency histograms in [`Engine::registry`], the
    /// slow-query ring buffer, and — when the request opted in — the
    /// phase trace attached to the returned record. All of it is
    /// passive: the result value is bit-identical to
    /// [`Engine::try_evaluate_auto`].
    pub fn evaluate_request(&self, req: &EvalRequest) -> Result<Routed, BudgetError> {
        self.evaluate_request_recorded(req, 0)
    }

    /// [`Engine::evaluate_request`] with the wire-parse time already
    /// spent on this request, so the recorded trace and latency
    /// histograms cover the full parse → route → evaluate pipeline.
    pub(crate) fn evaluate_request_recorded(
        &self,
        req: &EvalRequest,
        parse_nanos: u64,
    ) -> Result<Routed, BudgetError> {
        req.budget.validate()?;
        let start = Instant::now();
        let mut tr = Trace::new();
        if parse_nanos > 0 {
            tr.push_span("parse", parse_nanos);
        }
        let mut routed = self.evaluate_auto_core(&req.query, &req.tid, &req.budget, &mut tr);
        if let Some(tenant) = &req.tenant {
            self.count_tenant_route(tenant, routed.route);
        }
        tr.total_nanos = parse_nanos + start.elapsed().as_nanos() as u64;
        self.requests.inc();
        let registry = self.registry();
        let route_label = routed.route.to_string();
        registry
            .histogram("engine_request_nanos", &[("route", &route_label)])
            .record(tr.total_nanos);
        if let Some(tenant) = &req.tenant {
            registry
                .histogram("engine_tenant_request_nanos", &[("tenant", tenant)])
                .record(tr.total_nanos);
        }
        self.slow_log().record(&tr);
        if req.trace {
            routed.trace = Some(tr);
        }
        Ok(routed)
    }

    /// The complete wire pipeline: parse `body` as an [`EvalRequest`],
    /// route it, and serialize the [`Routed`] record to the exact text the
    /// server sends back. Every failure is a typed [`EvalError`] — never a
    /// panic — so a network handler can map it to a 400-class response.
    pub fn evaluate_wire(&self, body: &str) -> Result<String, EvalError> {
        let parse_start = Instant::now();
        let req: EvalRequest = body.parse().map_err(EvalError::Parse)?;
        let parse_nanos = parse_start.elapsed().as_nanos() as u64;
        let routed = self
            .evaluate_request_recorded(&req, parse_nanos)
            .map_err(EvalError::Budget)?;
        Ok(routed.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfomc_query::catalog;

    fn half() -> Rational {
        Rational::one_half()
    }

    fn small_request() -> EvalRequest {
        let q = catalog::h1();
        let mut tid = Tid::all_present([0, 1], [1000]);
        tid.set_prob(Tuple::R(0), half());
        tid.set_prob(Tuple::S(0, 0, 1000), Rational::from_ints(3, 8));
        tid.set_prob(Tuple::T(1000), half());
        EvalRequest::new(q, tid)
    }

    #[test]
    fn tuple_parse_roundtrips_display() {
        for t in [Tuple::R(0), Tuple::T(1000), Tuple::S(3, 7, 2000)] {
            assert_eq!(parse_tuple(&t.to_string()).unwrap(), t);
        }
        for bad in ["R(x0)", "S(u0,v1)", "Q(u1)", "R(u)", "S1(u0 v1)", ""] {
            assert!(parse_tuple(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn request_roundtrips_through_text() {
        let req = small_request()
            .with_tenant("acme")
            .with_budget(Budget::default().with_seed(99).with_threads(2));
        let text = req.to_string();
        let back: EvalRequest = text.parse().unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn request_parse_rejects_garbage_with_typed_errors() {
        assert!(matches!(
            "".parse::<EvalRequest>(),
            Err(RequestParseError::Malformed(_))
        ));
        assert!(matches!(
            "query R(x0) v Q(x0)\nleft 0\nright 1".parse::<EvalRequest>(),
            Err(RequestParseError::Query(_))
        ));
        let bad_delta = "query R(x0) v S0(x0,y0) & S0(x0,y0) v T(y0)\nleft 0\nright 1\ndelta 1.5";
        assert!(matches!(
            bad_delta.parse::<EvalRequest>(),
            Err(RequestParseError::Budget(BudgetError::Delta(_)))
        ));
        let out_of_domain =
            "query R(x0) v S0(x0,y0) & S0(x0,y0) v T(y0)\nleft 0\nright 1\ntuple R(u7) 1/2";
        assert!(matches!(
            out_of_domain.parse::<EvalRequest>(),
            Err(RequestParseError::Malformed(m)) if m.contains("outside")
        ));
        let bad_prob =
            "query R(x0) v S0(x0,y0) & S0(x0,y0) v T(y0)\nleft 0\nright 1\ntuple R(u0) 3/2";
        assert!(matches!(
            bad_prob.parse::<EvalRequest>(),
            Err(RequestParseError::Malformed(m)) if m.contains("probability")
        ));
        let bad_trace = "query R(x0) v S0(x0,y0) & S0(x0,y0) v T(y0)\nleft 0\nright 1\ntrace maybe";
        assert!(matches!(
            bad_trace.parse::<EvalRequest>(),
            Err(RequestParseError::Malformed(m)) if m.contains("trace")
        ));
    }

    #[test]
    fn threshold_request_roundtrips_and_certifies_over_the_wire() {
        // The `threshold` key survives the request round-trip.
        let req = small_request().with_budget(
            Budget::default()
                .with_threshold(Rational::from_ints(3, 4))
                .unwrap(),
        );
        let back: EvalRequest = req.to_string().parse().unwrap();
        assert_eq!(back, req);
        // The wire pipeline answers with a certified verdict that is
        // byte-identical to comparing the direct exact evaluation.
        let engine = Engine::new();
        let wire = engine.evaluate_wire(&req.to_string()).unwrap();
        let routed: Routed = wire.parse().unwrap();
        assert_eq!(routed.route, Route::Compiled);
        let exact = Engine::new()
            .evaluate_auto(&req.query, &req.tid, &Budget::default())
            .result;
        let AutoResult::Exact(p) = exact else {
            panic!("baseline must be exact");
        };
        assert_eq!(
            routed.result,
            AutoResult::Certified {
                le: p <= Rational::from_ints(3, 4),
                threshold: Rational::from_ints(3, 4)
            }
        );
        assert_eq!(routed.to_string().parse::<Routed>().unwrap(), routed);
    }

    #[test]
    fn threshold_parse_errors_are_typed_never_panics() {
        let base = "query R(x0) v S0(x0,y0) & S0(x0,y0) v T(y0)\nleft 0\nright 1";
        // Out of [0, 1]: the typed budget error (the server's 400).
        assert!(matches!(
            format!("{base}\nthreshold 3/2").parse::<EvalRequest>(),
            Err(RequestParseError::Budget(BudgetError::Threshold))
        ));
        // Unparseable: malformed, pointing at the line.
        assert!(matches!(
            format!("{base}\nthreshold abc").parse::<EvalRequest>(),
            Err(RequestParseError::Malformed(m)) if m.contains("threshold")
        ));
        // Duplicate: set-once like every other budget key.
        assert!(matches!(
            format!("{base}\nthreshold 1/2\nthreshold 1/3").parse::<EvalRequest>(),
            Err(RequestParseError::Malformed(m)) if m.contains("duplicate")
        ));
        // And over the wire the pipeline returns Err, never panics.
        let engine = Engine::new();
        assert!(engine
            .evaluate_wire(&format!("{base}\nthreshold 3/2"))
            .is_err());
        assert!(engine
            .evaluate_wire(&format!("{base}\nthreshold abc"))
            .is_err());
    }

    #[test]
    fn certified_result_roundtrips_and_rejects_malformed() {
        for (le, t) in [(true, Rational::one_half()), (false, Rational::zero())] {
            let r = AutoResult::Certified {
                le,
                threshold: t.clone(),
            };
            assert_eq!(r.to_string().parse::<AutoResult>().unwrap(), r);
        }
        for bad in [
            "certified",
            "certified maybe 1/2",
            "certified le",
            "certified le 3/2",
            "certified le 1/2 extra",
        ] {
            assert!(bad.parse::<AutoResult>().is_err(), "{bad:?}");
        }
    }

    #[test]
    fn evaluate_request_counts_tenants() {
        let engine = Engine::new();
        let req = small_request().with_tenant("acme");
        engine.evaluate_request(&req).unwrap();
        engine.evaluate_request(&req).unwrap();
        let anon = small_request();
        engine.evaluate_request(&anon).unwrap();
        let tenants = engine.tenant_route_counts();
        assert_eq!(tenants.len(), 1);
        let (name, counts) = &tenants[0];
        assert_eq!(name, "acme");
        assert_eq!(counts.lifted + counts.compiled + counts.sampled, 2);
        let total = engine.route_counts();
        assert_eq!(total.lifted + total.compiled + total.sampled, 3);
    }

    #[test]
    fn wire_pipeline_matches_direct_call() {
        let engine = Engine::new();
        let req = small_request();
        let wire = engine.evaluate_wire(&req.to_string()).unwrap();
        let direct = engine.evaluate_auto(&req.query, &req.tid, &req.budget);
        assert_eq!(wire, direct.to_string());
        assert_eq!(wire.parse::<Routed>().unwrap(), direct);
    }

    #[test]
    fn routed_text_roundtrips_all_routes() {
        let engine = Engine::new();
        // Compiled (h1 is unsafe but small).
        let req = small_request();
        let compiled = engine.evaluate_request(&req).unwrap();
        assert_eq!(compiled.route, Route::Compiled);
        assert_eq!(compiled.to_string().parse::<Routed>().unwrap(), compiled);
        // Sampled (zero circuit budget forces the sampler).
        let sampled_req = small_request().with_budget(
            Budget::default()
                .with_max_circuit_cost(0)
                .with_samples(512)
                .unwrap(),
        );
        let sampled = engine.evaluate_request(&sampled_req).unwrap();
        assert_eq!(sampled.route, Route::Sampled);
        assert_eq!(sampled.to_string().parse::<Routed>().unwrap(), sampled);
        // Lifted (safe query, no cost line).
        let lifted_req = EvalRequest::new(catalog::safe_no_right(), small_request().tid);
        let lifted = engine.evaluate_request(&lifted_req).unwrap();
        assert_eq!(lifted.route, Route::Lifted);
        assert!(lifted.cost.is_none());
        assert_eq!(lifted.to_string().parse::<Routed>().unwrap(), lifted);
    }

    #[test]
    fn traced_request_roundtrips_and_response_carries_the_trace() {
        // The `trace on` key survives the request round-trip.
        let req = small_request().with_trace();
        let back: EvalRequest = req.to_string().parse().unwrap();
        assert_eq!(back, req);
        assert!(back.trace);
        // The traced response carries a populated trace whose text form
        // round-trips, and the value is bit-identical to the untraced
        // response of a fresh engine.
        let engine = Engine::new();
        let traced = engine.evaluate_request(&req).unwrap();
        let trace = traced.trace.as_ref().expect("trace requested");
        assert_eq!(trace.route.as_deref(), Some("compiled"));
        assert_eq!(trace.cache_hit, Some(false));
        assert!(trace.gates.is_some());
        assert!(trace.span("route").is_some());
        assert!(trace.span("compile").is_some());
        assert!(trace.span("evaluate").is_some());
        assert!(trace.total_nanos > 0);
        assert_eq!(traced.to_string().parse::<Routed>().unwrap(), traced);
        let plain = Engine::new().evaluate_request(&small_request()).unwrap();
        assert!(plain.trace.is_none());
        assert_eq!(plain.result, traced.result);
        // A second identical request hits the compilation cache.
        let again = engine.evaluate_request(&req).unwrap();
        let trace = again.trace.as_ref().unwrap();
        assert_eq!(trace.cache_hit, Some(true));
        assert!(trace.span("cache").is_some());
        assert_eq!(again.result, traced.result);
    }

    #[test]
    fn request_metrics_land_in_the_engine_registry() {
        let engine = Engine::new();
        let req = small_request().with_tenant("acme");
        engine.evaluate_request(&req).unwrap();
        engine.evaluate_request(&req).unwrap();
        let registry = engine.registry();
        assert_eq!(registry.counter_value("engine_requests_total", &[]), 2);
        assert_eq!(
            registry.counter_value("engine_route_total", &[("route", "compiled")]),
            2
        );
        let by_route = registry
            .histogram_snapshot("engine_request_nanos", &[("route", "compiled")])
            .expect("compiled-route histogram exists");
        assert_eq!(by_route.count, 2);
        let by_tenant = registry
            .histogram_snapshot("engine_tenant_request_nanos", &[("tenant", "acme")])
            .expect("tenant histogram exists");
        assert_eq!(by_tenant.count, 2);
    }

    #[test]
    fn zero_threshold_slow_log_records_every_request() {
        let engine = Engine::builder()
            .slow_threshold_nanos(0)
            .slow_capacity(4)
            .build();
        for _ in 0..6 {
            engine.evaluate_request(&small_request()).unwrap();
        }
        // Ring semantics: capacity bounds retention, not recording.
        assert_eq!(engine.slow_log().len(), 4);
        let render = engine.slow_log().render();
        assert!(render.starts_with("slowlog count 4"), "{render}");
        assert!(render.contains("route compiled"), "{render}");
    }

    #[test]
    fn response_parse_rejects_malformed_bodies() {
        for bad in [
            "",
            "route nowhere\nresult exact 1/2\n",
            "route lifted\n",
            "result exact 1/2\n",
            "route lifted\nresult exact 3/2\n",
            "route lifted\nresult approx 1/2 ci 3/4 1/4 delta 0.05 samples 8\n",
            "route lifted\nresult exact 1/2 extra\n",
            "route lifted\nroute lifted\nresult exact 1/2\n",
            // Trace lines without the mandatory total, or malformed.
            "route lifted\nresult exact 1/2\ntrace span route 10\n",
            "route lifted\nresult exact 1/2\ntrace garbage 1\ntrace total 10\n",
        ] {
            assert!(bad.parse::<Routed>().is_err(), "{bad:?}");
        }
    }
}
