//! Property suite: the compiled engine is extensionally equal to the legacy
//! WMC paths — exact [`Rational`] equality, never approximate.
//!
//! Random inputs come from the [`gfomc_engine::workload`] generator, driven
//! by seeds that proptest draws; everything is deterministic end to end.

use gfomc_arith::Rational;
use gfomc_engine::workload::{
    random_block_tid, random_gfomc_block_tid, random_query, random_weightings, SafetyTarget,
};
use gfomc_engine::{Engine, TupleWeights};
use gfomc_logic::{wmc, wmc_brute_force, Var};
use gfomc_tid::{lineage, probability, Tid};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use std::collections::HashMap;

/// The legacy path: re-ground the query and re-run Shannon expansion from
/// scratch under `weights` — what callers did before compilation existed.
fn recompute_per_weight(
    q: &gfomc_query::BipartiteQuery,
    tid: &Tid,
    weights: &TupleWeights,
) -> Rational {
    let mut tid = tid.clone();
    for (&t, p) in weights.iter() {
        tid.set_prob(t, p.clone());
    }
    let lin = lineage(q, &tid);
    wmc(&lin.cnf, lin.vars.weights())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn compiled_equals_naive_oracle(seed in 0u64..10_000, nu in 1u32..3, nv in 1u32..3) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q = random_query(&mut rng, 2, 2, SafetyTarget::Any);
        let tid = random_block_tid(&mut rng, &q, nu, nv);
        let compiled = Engine::new().compile(&q, &tid);
        prop_assert_eq!(compiled.evaluate_db(), probability(&q, &tid));
    }

    #[test]
    fn compile_once_evaluate_many_equals_per_weight_recomputation(
        seed in 0u64..10_000,
        n_weights in 1usize..6,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q = random_query(&mut rng, 2, 2, SafetyTarget::Any);
        let tid = random_block_tid(&mut rng, &q, 2, 2);
        // Compile once…
        let compiled = Engine::new().compile(&q, &tid);
        let weightings = random_weightings(&mut rng, &compiled.tuples(), n_weights);
        // …evaluate many, against N full re-groundings + re-expansions.
        let batch = compiled.evaluate_batch(&weightings);
        for (w, got) in weightings.iter().zip(&batch) {
            prop_assert_eq!(got, &recompute_per_weight(&q, &tid, w));
        }
    }

    #[test]
    fn compiled_equals_brute_force_on_small_gfomc_blocks(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q = random_query(&mut rng, 2, 2, SafetyTarget::Any);
        let tid = random_gfomc_block_tid(&mut rng, &q, 1, 2);
        let compiled = Engine::new().compile(&q, &tid);
        let lin = lineage(&q, &tid);
        prop_assume!(lin.vars.len() <= 16);
        prop_assert_eq!(
            compiled.evaluate_db(),
            wmc_brute_force(&lin.cnf, lin.vars.weights())
        );
    }

    #[test]
    fn deterministic_override_equals_lineage_restriction(seed in 0u64..10_000) {
        // Forcing one uncertain tuple to 0/1 through the compiled circuit
        // equals restricting the lineage variable before counting.
        let mut rng = StdRng::seed_from_u64(seed);
        let q = random_query(&mut rng, 2, 2, SafetyTarget::Any);
        let tid = random_block_tid(&mut rng, &q, 2, 2);
        let compiled = Engine::new().compile(&q, &tid);
        let support = compiled.tuples();
        prop_assume!(!support.is_empty());
        let t = support[0];
        let lin = lineage(&q, &tid);
        let v = lin.vars.lookup(&t).expect("support tuple has a variable");
        for forced in [false, true] {
            let p = if forced { Rational::one() } else { Rational::zero() };
            let via_circuit = compiled.evaluate(&TupleWeights::new().with(t, p));
            let restricted = lin.cnf.restrict(v, forced);
            let weights: HashMap<Var, Rational> = lin
                .vars
                .weights()
                .iter()
                .map(|(&var, p)| (var, p.clone()))
                .collect();
            prop_assert_eq!(via_circuit, wmc(&restricted, &weights));
        }
    }
}
