//! Property suite for the redesigned API surface: the stable text
//! serializations of [`EvalRequest`] and [`Routed`] that double as the
//! wire format of `gfomc-serve`.
//!
//! The contract under test:
//!
//! * [`EvalRequest`] → `Display` → `FromStr` reproduces the request
//!   **exactly** — query, domains, every explicit tuple probability, and
//!   every budget field — over randomized instances;
//! * [`Routed`] → `Display` → `FromStr` reproduces the routing record
//!   exactly on all three routes, **including** the sampler's
//!   outward-rounded CI endpoints (dyadic rationals `k/2^53`, which the
//!   `numer/denom` text carries without loss) and the `delta`/estimate
//!   floats (Rust's shortest round-trip `Display`);
//! * synthetic [`AutoResult`] values — not just ones the engine happens
//!   to produce — survive the same round trip.

use gfomc_approx::ConfidenceInterval;
use gfomc_arith::Rational;
use gfomc_engine::workload::{random_block_tid, random_query, SafetyTarget};
use gfomc_engine::{AutoResult, Budget, Engine, EvalRequest, Routed, SampleMode};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// A randomized request over a random query, block TID, and budget.
fn arbitrary_request(seed: u64, sampled: bool) -> EvalRequest {
    let mut rng = StdRng::seed_from_u64(seed);
    // A zero circuit budget only forces sampling on *unsafe* queries —
    // safe ones route lifted regardless — so the sampled generator must
    // not draw safe queries.
    let target = if !sampled && seed.is_multiple_of(3) {
        SafetyTarget::Safe
    } else {
        SafetyTarget::Unsafe
    };
    let q = random_query(&mut rng, 2, 3, target);
    let tid = random_block_tid(&mut rng, &q, 1 + (seed % 3) as u32, 2);
    let mut budget = Budget::default()
        .with_seed(rng.gen::<u64>())
        .with_threads(1 + (seed % 4) as usize)
        .with_delta(0.01 + (seed % 7) as f64 * 0.1)
        .expect("delta in (0, 1)");
    if sampled {
        budget = budget
            .with_max_circuit_cost(0)
            .with_samples(128 + seed % 512)
            .expect("positive sample budget");
    } else if seed.is_multiple_of(2) {
        budget = budget
            .with_mode(SampleMode::Adaptive {
                epsilon: 0.02 + (seed % 5) as f64 * 0.1,
            })
            .expect("epsilon in (0, 1)");
    }
    let req = EvalRequest::new(q, tid).with_budget(budget);
    if seed.is_multiple_of(4) {
        req.with_tenant(format!("tenant{}", seed % 10))
    } else {
        req
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn request_text_roundtrips_exactly(seed in 0u64..100_000) {
        let req = arbitrary_request(seed, seed % 2 == 1);
        let text = req.to_string();
        let back: EvalRequest = text.parse().unwrap_or_else(|e| {
            panic!("request text failed to parse back: {e}\n{text}")
        });
        prop_assert_eq!(back, req);
    }

    #[test]
    fn routed_text_roundtrips_bit_identically(seed in 0u64..100_000) {
        // Half the cases force the sampled route so the round trip covers
        // outward-rounded CI endpoints, not just exact rationals.
        let req = arbitrary_request(seed, seed % 2 == 0);
        let routed = Engine::new().evaluate_request(&req).expect("valid budget");
        let text = routed.to_string();
        let back: Routed = text.parse().unwrap_or_else(|e| {
            panic!("response text failed to parse back: {e}\n{text}")
        });
        prop_assert_eq!(back, routed);
    }

    #[test]
    fn sampled_ci_endpoints_survive_the_wire(seed in 0u64..100_000) {
        let req = arbitrary_request(seed, true);
        let routed = Engine::new().evaluate_request(&req).expect("valid budget");
        let AutoResult::Approx { ci, .. } = &routed.result else {
            panic!("zero circuit budget must sample, got {routed:?}");
        };
        // The endpoints are outward-rounded onto the dyadic grid k/2^53;
        // the rational wire text must carry them without further rounding.
        let back: Routed = routed.to_string().parse().unwrap();
        let AutoResult::Approx { ci: wire_ci, .. } = &back.result else {
            panic!("route tag changed in flight");
        };
        prop_assert_eq!(&wire_ci.lo, &ci.lo);
        prop_assert_eq!(&wire_ci.hi, &ci.hi);
        prop_assert!(wire_ci.delta == ci.delta, "delta drifted");
    }

    #[test]
    fn synthetic_results_roundtrip(num in 0u64..(1 << 53), den_shift in 0u32..54, samples in 1u64..1 << 40) {
        // Dyadic rationals shaped like real CI endpoints, plus arbitrary
        // estimates — independent of what the engine happens to emit.
        let denom = 1u64 << den_shift;
        let p = Rational::from_ints((num % denom.min(1u64 << 52)) as i64, denom as i64);
        let exact = AutoResult::Exact(p.clone());
        prop_assert_eq!(exact.to_string().parse::<AutoResult>().unwrap(), exact);

        let hi = if p.is_one() { p.clone() } else { Rational::one() };
        let approx = AutoResult::Approx {
            estimate: p.clone(),
            ci: ConfidenceInterval { lo: p, hi, delta: 0.05 },
            samples,
        };
        prop_assert_eq!(approx.to_string().parse::<AutoResult>().unwrap(), approx);
    }
}

#[test]
fn wire_and_direct_answers_are_the_same_bytes() {
    // The acceptance drill in miniature, without sockets: the api module's
    // evaluate_wire output is the Display text of the direct call.
    let engine = Engine::new();
    for seed in [1u64, 2, 5, 8] {
        let req = arbitrary_request(seed, seed % 2 == 0);
        let wire = engine
            .evaluate_wire(&req.to_string())
            .expect("valid request");
        let direct = engine.evaluate_request(&req).expect("valid budget");
        assert_eq!(wire, direct.to_string(), "seed {seed}");
    }
}
