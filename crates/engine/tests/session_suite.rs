//! Session lifecycle integration suite: open → update stream → explain →
//! close, driven both in-process and through the wire grammar, with the
//! bit-identity and typed-error contracts the serving layer depends on.

use gfomc_arith::Rational;
use gfomc_engine::{
    Engine, EvalRequest, SessionError, SessionOp, SessionReply, SessionRequest, SessionResponse,
    SessionWireError, TupleWeights,
};
use gfomc_query::catalog;
use gfomc_tid::{Tid, Tuple};

fn r(n: i64, d: i64) -> Rational {
    Rational::from_ints(n, d)
}

fn small_request() -> EvalRequest {
    let q = catalog::h1();
    let mut tid = Tid::all_present([0, 1], [1000, 1001]);
    tid.set_prob(Tuple::R(0), r(1, 2));
    tid.set_prob(Tuple::R(1), r(1, 3));
    tid.set_prob(Tuple::S(0, 0, 1000), r(3, 8));
    tid.set_prob(Tuple::S(0, 1, 1001), r(2, 5));
    tid.set_prob(Tuple::T(1000), r(1, 2));
    tid.set_prob(Tuple::T(1001), r(5, 7));
    EvalRequest::new(q, tid)
}

/// A deterministic update stream touching every relation, with a repeat
/// (no-op) and a revert mixed in.
fn update_stream() -> Vec<(Tuple, Rational)> {
    vec![
        (Tuple::R(0), r(1, 3)),
        (Tuple::T(1000), r(9, 10)),
        (Tuple::R(0), r(1, 3)), // exact repeat: must re-price nothing
        (Tuple::S(0, 0, 1000), r(1, 16)),
        (Tuple::R(0), r(1, 2)), // revert to the database weight
        (Tuple::T(1001), r(0, 1)),
        (Tuple::S(0, 1, 1001), r(1, 1)),
    ]
}

/// After any update stream, the session's value is bit-identical to a
/// stateless `Compiled::evaluate` under the final weights — at every
/// intermediate step, not just the end.
#[test]
fn update_stream_matches_stateless_evaluation_stepwise() {
    let engine = Engine::new();
    let req = small_request();
    let compiled = engine.compile(&req.query, &req.tid);
    let id = engine.open_session(&req).unwrap();
    let mut overrides = TupleWeights::new();
    for (t, p) in update_stream() {
        let before = engine
            .with_session(id, |s| s.weight_of(t))
            .unwrap()
            .unwrap();
        let stats = engine
            .with_session(id, |s| s.update(t, p.clone()))
            .unwrap()
            .unwrap();
        if before == p {
            assert_eq!(stats.repriced, 0, "no-op update of {t} re-priced gates");
        }
        overrides.set(t, p);
        let live = engine.with_session(id, |s| s.value()).unwrap();
        assert_eq!(live, compiled.evaluate(&overrides), "after updating {t}");
    }
    engine.close_session(id).unwrap();
}

/// Gradients and rankings agree with a fresh session opened directly
/// under the final weights (the explain queries see exactly the updated
/// state, not stale caches).
#[test]
fn explanations_after_updates_match_fresh_session() {
    let engine = Engine::new();
    let req = small_request();
    let compiled = engine.compile(&req.query, &req.tid);
    let id = engine.open_session(&req).unwrap();
    let mut overrides = TupleWeights::new();
    for (t, p) in update_stream() {
        engine
            .with_session(id, |s| s.update(t, p.clone()))
            .unwrap()
            .unwrap();
        overrides.set(t, p);
    }
    let mut fresh = compiled.open_session(&overrides);
    let tuples = compiled.tuples();
    for &t in &tuples {
        let live = engine.with_session(id, |s| s.gradient(t)).unwrap().unwrap();
        assert_eq!(live, fresh.gradient(t).unwrap(), "gradient of {t}");
        let band = engine
            .with_session(id, |s| s.what_if_band(t))
            .unwrap()
            .unwrap();
        assert_eq!(band, fresh.what_if_band(t).unwrap(), "band of {t}");
    }
    let live_rank = engine
        .with_session(id, |s| s.top_k_influential(tuples.len()))
        .unwrap();
    assert_eq!(live_rank, fresh.top_k_influential(tuples.len()));
}

/// The full lifecycle over the wire grammar — open → N updates → explain
/// → close — is byte-identical to rendering the in-process replay of the
/// same request on a fresh engine.
#[test]
fn wire_lifecycle_is_byte_identical_to_in_process_replay() {
    let mut ops: Vec<SessionOp> = update_stream()
        .into_iter()
        .map(|(tuple, weight)| SessionOp::Update { tuple, weight })
        .collect();
    ops.push(SessionOp::Value);
    ops.push(SessionOp::ExplainTop { k: 4 });
    ops.push(SessionOp::Gradient { tuple: Tuple::R(0) });
    ops.push(SessionOp::WhatIf {
        tuple: Tuple::T(1000),
    });
    let req = SessionRequest::Open {
        spec: Box::new(small_request()),
        ops,
        close_after: true,
    };
    let wire = Engine::new().session_wire(&req.to_string()).unwrap();
    let direct = Engine::new().session_request(&req).unwrap();
    assert_eq!(wire, direct.to_string(), "wire body diverged from replay");
    // And the parsed response round-trips bit-identically.
    let parsed: SessionResponse = wire.parse().unwrap();
    assert_eq!(parsed, direct);
    assert_eq!(parsed.to_string(), wire);
}

/// A multi-request lifecycle: open once, then operate through separate
/// `session use` requests — state persists across requests, and the
/// close releases the id permanently.
#[test]
fn state_persists_across_use_requests_and_ids_are_never_reused() {
    let engine = Engine::new();
    let opened = engine
        .session_request(&SessionRequest::Open {
            spec: Box::new(small_request()),
            ops: Vec::new(),
            close_after: false,
        })
        .unwrap();
    let id = opened.id;
    engine
        .session_request(&SessionRequest::Use {
            id,
            ops: vec![SessionOp::Update {
                tuple: Tuple::R(0),
                weight: r(1, 5),
            }],
            close_after: false,
        })
        .unwrap();
    let resp = engine
        .session_request(&SessionRequest::Use {
            id,
            ops: vec![SessionOp::Value],
            close_after: false,
        })
        .unwrap();
    // The earlier request's update is visible: the value equals the
    // stateless evaluation under the override.
    let compiled = engine.compile(&small_request().query, &small_request().tid);
    let expected = compiled.evaluate(&TupleWeights::new().with(Tuple::R(0), r(1, 5)));
    assert_eq!(resp.replies, vec![SessionReply::Value(expected)]);
    engine
        .session_request(&SessionRequest::Close { id })
        .unwrap();
    // The id is gone for good — every later touch is the typed error.
    assert_eq!(
        engine.session_request(&SessionRequest::Close { id }),
        Err(SessionError::UnknownSession(id))
    );
    // A new open gets a fresh id, never the recycled one.
    let next = engine.open_session(&small_request()).unwrap();
    assert_ne!(next, id);
    assert!(next > id);
}

/// Closed and never-allocated ids produce the typed error through every
/// entry point — `session_request`, `session_wire` — never a panic.
#[test]
fn unknown_and_closed_ids_are_typed_errors_everywhere() {
    let engine = Engine::new();
    let id = engine.open_session(&small_request()).unwrap();
    engine.close_session(id).unwrap();
    for bad in [id, 424242] {
        assert_eq!(
            engine.session_request(&SessionRequest::Use {
                id: bad,
                ops: vec![SessionOp::Value],
                close_after: false,
            }),
            Err(SessionError::UnknownSession(bad))
        );
        assert_eq!(
            engine.session_wire(&format!("session use {bad}\nvalue\n")),
            Err(SessionWireError::Session(SessionError::UnknownSession(bad)))
        );
        assert_eq!(
            engine.session_wire(&format!("session close {bad}\n")),
            Err(SessionWireError::Session(SessionError::UnknownSession(bad)))
        );
    }
}

/// A failing op inside `session open` must not leak the just-opened
/// session: the client gets an error with no id, so an open session
/// would be unreachable and pin its cap slot until process restart.
#[test]
fn failed_open_ops_do_not_leak_sessions() {
    let engine = Engine::builder().max_sessions_per_tenant(1).build();
    let bad_open = SessionRequest::Open {
        spec: Box::new(small_request()),
        ops: vec![SessionOp::Update {
            tuple: Tuple::R(99), // not in the lineage: fails at run time
            weight: r(1, 2),
        }],
        close_after: false,
    };
    assert_eq!(
        engine.session_request(&bad_open),
        Err(SessionError::UnknownTuple(Tuple::R(99)))
    );
    assert_eq!(engine.session_count(), 0, "failed open leaked a session");
    // The cap slot was refunded: the next open still admits.
    let id = engine.open_session(&small_request()).unwrap();
    engine.close_session(id).unwrap();
}

/// `session use ... close` honours the close even when an op fails —
/// the request asked for teardown, and earlier updates staying applied
/// must not keep the session alive past it.
#[test]
fn use_with_close_after_closes_even_when_an_op_fails() {
    let engine = Engine::new();
    let id = engine.open_session(&small_request()).unwrap();
    assert_eq!(
        engine.session_request(&SessionRequest::Use {
            id,
            ops: vec![SessionOp::Update {
                tuple: Tuple::R(99),
                weight: r(1, 2),
            }],
            close_after: true,
        }),
        Err(SessionError::UnknownTuple(Tuple::R(99)))
    );
    assert_eq!(engine.session_count(), 0, "requested close was skipped");
    assert_eq!(
        engine.session_request(&SessionRequest::Close { id }),
        Err(SessionError::UnknownSession(id))
    );
}

/// Failed session requests are visible to observability: the request
/// counter, the `route=session` latency histogram, and the slow-query
/// log record errors, not just successes.
#[test]
fn failed_session_requests_are_observable() {
    let engine = Engine::new();
    assert!(engine
        .session_request(&SessionRequest::Close { id: 424242 })
        .is_err());
    let registry = engine.registry();
    assert_eq!(
        registry
            .histogram_snapshot("engine_request_nanos", &[("route", "session")])
            .expect("session request histogram")
            .count,
        1
    );
    assert_eq!(
        registry.counter_value("engine_session_requests_total", &[]),
        1
    );
}

/// Sessions are charged against the per-tenant admission cap, and a
/// close refunds the charge.
#[test]
fn tenant_cap_charges_and_refunds() {
    let engine = Engine::builder().max_sessions_per_tenant(1).build();
    let acme = small_request().with_tenant("acme");
    let id = engine.open_session(&acme).unwrap();
    assert_eq!(
        engine.open_session(&acme),
        Err(SessionError::Limit {
            tenant: "acme".into(),
            cap: 1
        })
    );
    engine.close_session(id).unwrap();
    // The refunded slot admits the next open.
    engine.open_session(&acme).unwrap();
}

/// Update and explain latencies land in the observability registry, and
/// the session gauge tracks the open count.
#[test]
fn session_phases_are_observable() {
    let engine = Engine::new();
    let req = SessionRequest::Open {
        spec: Box::new(small_request()),
        ops: vec![
            SessionOp::Update {
                tuple: Tuple::R(0),
                weight: r(1, 3),
            },
            SessionOp::Update {
                tuple: Tuple::T(1000),
                weight: r(2, 3),
            },
            SessionOp::ExplainTop { k: 2 },
        ],
        close_after: false,
    };
    let resp = engine.session_request(&req).unwrap();
    let registry = engine.registry();
    assert_eq!(
        registry
            .histogram_snapshot("engine_update_nanos", &[])
            .expect("update histogram")
            .count,
        2
    );
    assert_eq!(
        registry
            .histogram_snapshot("engine_explain_nanos", &[])
            .expect("explain histogram")
            .count,
        1
    );
    assert_eq!(
        registry
            .histogram_snapshot("engine_request_nanos", &[("route", "session")])
            .expect("session request histogram")
            .count,
        1
    );
    engine.refresh_gauges();
    let rendered = registry.render_plain();
    assert!(
        rendered.contains("engine_sessions_open 1"),
        "gauge missing from:\n{rendered}"
    );
    engine.close_session(resp.id).unwrap();
    engine.refresh_gauges();
    assert!(engine
        .registry()
        .render_plain()
        .contains("engine_sessions_open 0"));
}

/// Update replies report dirty-cone sizes strictly smaller than the
/// circuit when the change is localized — the incremental contract is
/// visible at the wire level, not just in the logic crate.
#[test]
fn update_replies_expose_dirty_cone_sizes() {
    let engine = Engine::new();
    let resp = engine
        .session_request(&SessionRequest::Open {
            spec: Box::new(small_request()),
            ops: vec![SessionOp::Update {
                tuple: Tuple::S(0, 0, 1000),
                weight: r(1, 9),
            }],
            close_after: true,
        })
        .unwrap();
    let [SessionReply::Updated { repriced, of, .. }] = resp.replies.as_slice() else {
        panic!("expected exactly one update reply, got {:?}", resp.replies);
    };
    assert!(*repriced > 0, "a real update must re-price something");
    assert!(of > repriced, "dirty cone covered the whole circuit");
}
