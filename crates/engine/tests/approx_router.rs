//! Property suite for the dichotomy-aware router and the approximate
//! regime it dispatches to.
//!
//! The contract under test (the acceptance bar of the approx subsystem):
//!
//! * safe queries come back **bit-identical** to the lifted evaluator —
//!   exact [`Rational`] equality, tagged [`AutoResult::Exact`];
//! * unsafe queries within the circuit budget come back bit-identical to
//!   the naive oracle [`gfomc_tid::probability`];
//! * unsafe queries *over* the circuit budget come back as seeded-
//!   deterministic [`AutoResult::Approx`] estimates whose confidence
//!   interval contains the brute-force probability on **every** instance.

use gfomc_engine::workload::{random_block_tid, random_query, unsafe_block_preset, SafetyTarget};
use gfomc_engine::{AutoResult, Budget, Engine, Route};
use gfomc_logic::wmc_brute_force;
use gfomc_safety::lifted_probability;
use gfomc_tid::{lineage, probability};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn safe_queries_are_bit_identical_to_lifted(seed in 0u64..10_000, nu in 1u32..4, nv in 1u32..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q = random_query(&mut rng, 2, 2, SafetyTarget::Safe);
        let tid = random_block_tid(&mut rng, &q, nu, nv);
        let routed = Engine::new().evaluate_auto(&q, &tid, &Budget::default());
        prop_assert_eq!(routed.route, Route::Lifted);
        prop_assert_eq!(
            routed.result,
            AutoResult::Exact(lifted_probability(&q, &tid).unwrap())
        );
    }

    #[test]
    fn in_budget_unsafe_queries_are_exact(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q = random_query(&mut rng, 2, 2, SafetyTarget::Unsafe);
        let tid = random_block_tid(&mut rng, &q, 2, 2);
        let routed = Engine::new().evaluate_auto(&q, &tid, &Budget::default());
        prop_assert_eq!(routed.route, Route::Compiled);
        prop_assert_eq!(routed.result, AutoResult::Exact(probability(&q, &tid)));
    }

    #[test]
    fn over_budget_sampling_brackets_brute_force(seed in 0u64..10_000) {
        // Force the sampler by zeroing the circuit budget, on instances
        // small enough for exhaustive ground truth.
        let mut rng = StdRng::seed_from_u64(seed);
        let q = random_query(&mut rng, 2, 2, SafetyTarget::Unsafe);
        let tid = random_block_tid(&mut rng, &q, 2, 2);
        let lin = lineage(&q, &tid);
        prop_assume!(lin.vars.len() <= 16);
        let truth = wmc_brute_force(&lin.cnf, lin.vars.weights());

        let budget = Budget::default()
            .with_max_circuit_cost(0)
            .with_samples(1_500)
            .expect("positive sample budget")
            .with_seed(seed ^ 0xD1CE);
        let routed = Engine::new().evaluate_auto(&q, &tid, &budget);
        prop_assert_eq!(routed.route, Route::Sampled);
        let AutoResult::Approx { ci, samples, .. } = &routed.result else {
            panic!("expected an approximate result, got {routed:?}");
        };
        prop_assert_eq!(*samples, 1_500);
        prop_assert!(ci.contains(&truth), "CI {:?} misses {}", ci, truth);

        // Seeded determinism: the same budget reproduces the same result.
        prop_assert_eq!(routed, Engine::new().evaluate_auto(&q, &tid, &budget));
    }

    #[test]
    fn large_preset_routes_by_the_cost_verdict(seed in 0u64..10_000) {
        // On the 5×5 preset the refined cost bound decides per instance:
        // lineages it can prove affordable compile exactly; the rest fall
        // back to the sampler. Either way the route must match the
        // recorded verdict, and the answer must be a genuine probability.
        let mut rng = StdRng::seed_from_u64(seed);
        let (q, tid) = unsafe_block_preset(&mut rng, 2, 5);
        let budget = Budget::default().with_samples(200).expect("positive sample budget");
        let routed = Engine::new().evaluate_auto(&q, &tid, &budget);
        let cost = routed.cost.expect("unsafe route records its cost estimate");
        if cost.within(budget.max_circuit_cost) {
            prop_assert_eq!(routed.route, Route::Compiled);
            prop_assert!(routed.result.is_exact());
        } else {
            prop_assert_eq!(routed.route, Route::Sampled);
        }
        // The old monolithic bound always blew this budget — the refined
        // one may not, but it never exceeds the monolithic one.
        prop_assert!(cost.worst_case_nodes > budget.max_circuit_cost);
        prop_assert!(cost.estimated_nodes <= cost.worst_case_nodes);
        let p = routed.result.point();
        prop_assert!(!p.is_negative() && p <= &gfomc_arith::Rational::one());
    }
}
