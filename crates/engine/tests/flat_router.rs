//! Routing-stability and flat≡tree oracles for the flat evaluation core.
//!
//! The PR that introduced [`gfomc_logic::FlatCircuit`] rewired the
//! engine's compiled path (cache payloads, admission costs, every
//! evaluate entry point) without touching the routing *policy*. These
//! suites pin that claim:
//!
//! * the route picked by `Engine::evaluate_auto` on seeded 3×3 through
//!   6×6 block presets equals the pre-refactor oracle recomputed from
//!   first principles (`is_safe` → lifted; otherwise the refined cost
//!   bound against the budget — neither ever looks at a flat circuit);
//! * on every exact route the reported probability is bit-identical to
//!   an independently compiled **tree** circuit evaluated by the
//!   original recursive evaluator.

use gfomc_engine::workload::{random_block_tid, random_query, unsafe_block_preset, SafetyTarget};
use gfomc_engine::{Budget, Engine, Route};
use gfomc_logic::Circuit;
use gfomc_safety::{circuit_cost_estimate, is_safe};
use gfomc_tid::lineage;
use rand::{rngs::StdRng, SeedableRng};

/// The routing decision exactly as the pre-flat router made it: safety
/// first, then the refined cost bound against the budget. Neither input
/// changed in the refactor, so this *is* the pre-refactor oracle.
fn oracle_route(q: &gfomc_query::BipartiteQuery, tid: &gfomc_tid::Tid, budget: &Budget) -> Route {
    if is_safe(q) {
        return Route::Lifted;
    }
    let lin = lineage(q, tid);
    if circuit_cost_estimate(&lin.cnf).within(budget.max_circuit_cost) {
        Route::Compiled
    } else {
        Route::Sampled
    }
}

#[test]
fn router_decisions_match_pre_refactor_oracle_on_block_presets() {
    let budget = Budget::default();
    let engine = Engine::new();
    let mut routes = [0usize; 3];
    for scale in 3..=6u32 {
        let mut rng = StdRng::seed_from_u64(0xF1A7_0000 + scale as u64);
        for _ in 0..4 {
            let q = random_query(&mut rng, 2, 2, SafetyTarget::Any);
            let tid = random_block_tid(&mut rng, &q, scale, scale);
            let expected = oracle_route(&q, &tid, &budget);
            let routed = engine.evaluate_auto(&q, &tid, &budget);
            assert_eq!(routed.route, expected, "{scale}×{scale}: {q:?}");
            routes[match routed.route {
                Route::Lifted => 0,
                Route::Compiled => 1,
                Route::Sampled => 2,
            }] += 1;
        }
    }
    // The sweep must actually exercise every regime, or the oracle
    // comparison proves nothing.
    assert!(
        routes.iter().all(|&n| n > 0),
        "degenerate sweep: {routes:?}"
    );
    let counts = engine.route_counts();
    assert_eq!(counts.lifted, routes[0]);
    assert_eq!(counts.compiled, routes[1]);
    assert_eq!(counts.sampled, routes[2]);
}

#[test]
fn compiled_route_is_bit_identical_to_the_tree_evaluator() {
    // Unsafe 2-symbol queries at small scale stay under the default cost
    // budget, so they route to the compiled (now flat) path; the tree
    // circuit compiled from the same lineage must price every database
    // identically.
    let budget = Budget::default();
    let engine = Engine::new();
    let mut rng = StdRng::seed_from_u64(0xF1A7_BEEF);
    let mut checked = 0usize;
    for _ in 0..6 {
        let (q, tid) = unsafe_block_preset(&mut rng, 2, 2);
        let routed = engine.evaluate_auto(&q, &tid, &budget);
        if routed.route != Route::Compiled {
            continue;
        }
        let lin = lineage(&q, &tid);
        let tree = Circuit::compile(&lin.cnf);
        let expect = tree.evaluate(lin.vars.weights());
        assert_eq!(
            routed.result,
            gfomc_engine::AutoResult::Exact(expect),
            "flat-backed route diverged from the tree evaluator on {q:?}"
        );
        checked += 1;
    }
    assert!(checked > 0, "no preset took the compiled route");
}

#[test]
fn routes_are_stable_across_repeated_evaluation_and_caching() {
    // Same (query, TID, budget) must route identically whether the
    // lineage is compiled fresh or served from the flat-circuit cache.
    let budget = Budget::default();
    let engine = Engine::new();
    let mut rng = StdRng::seed_from_u64(0xF1A7_CAFE);
    let q = random_query(&mut rng, 2, 2, SafetyTarget::Unsafe);
    let tid = random_block_tid(&mut rng, &q, 3, 3);
    let first = engine.evaluate_auto(&q, &tid, &budget);
    let second = engine.evaluate_auto(&q, &tid, &budget);
    assert_eq!(first, second);
    assert_eq!(first.route, oracle_route(&q, &tid, &budget));
}
