//! Property suite for the engine's compilation cache, the tightened cost
//! bound's routing effect, and the parallel batch evaluator.
//!
//! The contracts under test:
//!
//! * **cache transparency** — a cache hit returns a circuit that evaluates
//!   bit-identically to a fresh compilation (and to a cache-disabled
//!   engine), under the database weights and under overrides;
//! * **re-routing** — the refined [`circuit_cost_estimate`] sends
//!   unsafe-but-structured lineages to the exact compiled path where the
//!   old monolithic `2^vars` bound forced them to the sampler, and the
//!   compiled answer matches the naive oracle exactly;
//! * **parallel batches** — `evaluate_batch_threads` is identical to the
//!   serial batch for every thread count;
//! * **adaptive routing** — the router's default adaptive mode never draws
//!   more samples than the fixed mode's budget.

use gfomc_engine::workload::{random_block_tid, random_query, unsafe_block_preset, SafetyTarget};
use gfomc_engine::{AutoResult, Budget, Engine, Route, SampleMode};
use gfomc_safety::circuit_cost_estimate;
use gfomc_tid::{lineage, probability};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn cache_hits_evaluate_identically_to_fresh_compilations(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q = random_query(&mut rng, 2, 2, SafetyTarget::Unsafe);
        let tid = random_block_tid(&mut rng, &q, 2, 2);

        let cached = Engine::new();
        let first = cached.compile(&q, &tid);
        let second = cached.compile(&q, &tid);
        let stats = cached.cache_stats();
        prop_assert_eq!(stats.misses, 1);
        prop_assert_eq!(stats.hits, 1);
        prop_assert_eq!(cached.compiled_count(), 1, "hit must skip compilation");

        let uncached = Engine::builder().cache_capacity(0).build();
        let fresh = uncached.compile(&q, &tid);
        prop_assert_eq!(uncached.cache_stats().hits, 0);

        prop_assert_eq!(first.evaluate_db(), fresh.evaluate_db());
        prop_assert_eq!(second.evaluate_db(), fresh.evaluate_db());

        // Overrides agree too: the cached circuit is the same function.
        let support = fresh.tuples();
        let ws = gfomc_engine::workload::random_weightings(&mut rng, &support, 3);
        for w in &ws {
            prop_assert_eq!(second.evaluate(w), fresh.evaluate(w));
        }
    }

    #[test]
    fn parallel_batches_match_serial_batches(seed in 0u64..10_000, k in 1usize..10) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q = random_query(&mut rng, 2, 2, SafetyTarget::Any);
        let tid = random_block_tid(&mut rng, &q, 2, 2);
        let compiled = Engine::new().compile(&q, &tid);
        let ws = gfomc_engine::workload::random_weightings(&mut rng, &compiled.tuples(), k);
        let serial = compiled.evaluate_batch(&ws);
        for threads in [2usize, 4] {
            prop_assert_eq!(&serial, &compiled.evaluate_batch_threads(&ws, threads));
        }
    }

    #[test]
    fn adaptive_routing_draws_no_more_than_the_fixed_budget(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (q, tid) = unsafe_block_preset(&mut rng, 2, 4);
        // Zero circuit budget: force the sampled route even on instances
        // the refined cost bound would happily compile.
        let adaptive = Budget::default()
            .with_max_circuit_cost(0)
            .with_mode(SampleMode::Adaptive { epsilon: 0.05 })
            .expect("epsilon in (0, 1)")
            .with_seed(seed);
        let routed = Engine::new().evaluate_auto(&q, &tid, &adaptive);
        prop_assert_eq!(routed.route, Route::Sampled);
        let AutoResult::Approx { samples, .. } = routed.result else {
            panic!("expected an approximate result, got {routed:?}");
        };
        let sampler = gfomc_approx::lineage_sampler(&q, &tid);
        let fixed = sampler.fpras_samples(0.05, 0.05);
        prop_assert!(samples <= fixed, "adaptive {} > fixed {}", samples, fixed);
    }
}

/// The repeated-query workload: one engine, the same mix of queries asked
/// again and again — the cache must convert every repeat into a hit.
#[test]
fn repeated_query_workload_has_nonzero_cache_hit_rate() {
    let mut rng = StdRng::seed_from_u64(0xCAC4E);
    let mut queries = Vec::new();
    for _ in 0..3 {
        let q = random_query(&mut rng, 2, 2, SafetyTarget::Unsafe);
        let tid = random_block_tid(&mut rng, &q, 2, 2);
        queries.push((q, tid));
    }
    let engine = Engine::new();
    let budget = Budget::default();
    let mut first_pass = Vec::new();
    for (q, tid) in &queries {
        first_pass.push(engine.evaluate_auto(q, tid, &budget));
    }
    let after_first = engine.cache_stats();
    for _ in 0..3 {
        for ((q, tid), expect) in queries.iter().zip(&first_pass) {
            let again = engine.evaluate_auto(q, tid, &budget);
            assert_eq!(&again, expect, "cached route must be bit-identical");
        }
    }
    let stats = engine.cache_stats();
    assert!(stats.hits > 0, "repeats must hit the cache: {stats:?}");
    assert_eq!(
        stats.misses, after_first.misses,
        "repeats must add no compilations"
    );
    assert_eq!(
        engine.compiled_count(),
        after_first.misses,
        "compilations = first-pass misses only"
    );
    assert!(stats.hit_rate() > 0.5, "hit rate {stats:?}");
}

/// The LRU bound holds: capacity-2 cache under three distinct lineages
/// keeps at most two circuits and evicts the least recently used.
#[test]
fn cache_eviction_respects_capacity() {
    let mut rng = StdRng::seed_from_u64(7);
    let engine = Engine::builder().cache_capacity(2).build();
    for _ in 0..3 {
        let q = random_query(&mut rng, 3, 2, SafetyTarget::Unsafe);
        let tid = random_block_tid(&mut rng, &q, 2, 2);
        engine.compile(&q, &tid);
    }
    let stats = engine.cache_stats();
    assert!(stats.entries <= 2, "{stats:?}");
    assert_eq!(stats.capacity, 2);
}

/// The headline routing win of the tightened bound: the 3×3 unsafe block
/// preset's lineage is monolithically connected, so the old worst-case
/// `clauses · 2^vars` estimate (≈ 3·10⁸ gates at 24 variables) blew every
/// reasonable budget and the router degraded it to a sampled estimate.
/// The refined bound sees through the block structure (≈ 10³ gates), the
/// instance re-routes to the exact compiled path, and the answer matches
/// the naive oracle bit-for-bit.
#[test]
fn tightened_bound_reroutes_unsafe_block_to_compiled() {
    let mut rng = StdRng::seed_from_u64(0xA55E55);
    let (q, tid) = unsafe_block_preset(&mut rng, 2, 3);
    let lin = lineage(&q, &tid);
    let est = circuit_cost_estimate(&lin.cnf);
    let budget = Budget::default();
    assert!(
        est.worst_case_nodes > budget.max_circuit_cost,
        "old bound must overflow the budget: {est:?}"
    );
    assert!(
        est.estimated_nodes <= budget.max_circuit_cost,
        "refined bound must fit the budget: {est:?}"
    );
    let routed = Engine::new().evaluate_auto(&q, &tid, &budget);
    assert_eq!(routed.route, Route::Compiled, "re-routed by the new bound");
    assert_eq!(routed.result, AutoResult::Exact(probability(&q, &tid)));
}

/// Sanity floor for the refined bound: it must never under-estimate the
/// circuit the compiler actually builds on these instances (the bound is
/// on the memoization-free tree, so real circuits are smaller).
#[test]
fn refined_bound_dominates_actual_circuit_size() {
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..5 {
        let q = random_query(&mut rng, 2, 2, SafetyTarget::Unsafe);
        let tid = random_block_tid(&mut rng, &q, 2, 2);
        let lin = lineage(&q, &tid);
        let est = circuit_cost_estimate(&lin.cnf);
        let compiled = Engine::new().compile(&q, &tid);
        assert!(
            est.estimated_nodes >= compiled.node_count() as u64,
            "estimate {} under actual {}",
            est.estimated_nodes,
            compiled.node_count()
        );
    }
}
