//! Concurrency suite for the shared `Engine`: many OS threads driving one
//! engine must observe exactly the behavior of a serial run.
//!
//! The contracts under test:
//!
//! * **shared-engine determinism** — a hammer of threads routing a mixed
//!   workload (safe / compiled / sampled) through one `Engine` produces
//!   results bit-identical to a serial pass over the same workload, and
//!   the route/cache counters add up to the serial totals;
//! * **batched front-end** — `evaluate_auto_batch` returns, in input
//!   order, exactly what a serial `evaluate_auto` loop returns, for every
//!   worker count;
//! * **capacity bound under concurrency** — `cache_stats().entries`
//!   never exceeds the configured capacity, no matter how many threads
//!   compile and evict concurrently (the sharded cost-aware LRU splits
//!   the capacity exactly across shards);
//! * **budget hygiene** — a `Budget` built as a struct literal with
//!   `threads: 0` (bypassing the `with_threads` clamp) is normalized at
//!   the point of use and routes like a serial budget.

use gfomc_engine::workload::{random_block_tid, random_query, SafetyTarget};
use gfomc_engine::{Budget, Engine, Routed, SampleMode};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use std::sync::atomic::{AtomicUsize, Ordering};

use gfomc_query::BipartiteQuery;
use gfomc_tid::Tid;

/// A mixed workload: safe queries (lifted route), small unsafe queries
/// (compiled route), and unsafe queries under a zeroed circuit budget
/// handled separately by the caller (sampled route).
fn mixed_workload(seed: u64, n: usize) -> Vec<(BipartiteQuery, Tid)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let target = match i % 3 {
                0 => SafetyTarget::Safe,
                _ => SafetyTarget::Unsafe,
            };
            let q = random_query(&mut rng, 2, 2, target);
            let tid = random_block_tid(&mut rng, &q, 2, 2);
            (q, tid)
        })
        .collect()
}

/// Serial reference pass: one `evaluate_auto` per query on a fresh engine.
fn serial_reference(workload: &[(BipartiteQuery, Tid)], budget: &Budget) -> Vec<Routed> {
    let engine = Engine::new();
    workload
        .iter()
        .map(|(q, tid)| engine.evaluate_auto(q, tid, budget))
        .collect()
}

#[test]
fn hammered_shared_engine_is_bit_identical_to_serial() {
    const THREADS: usize = 8;
    let workload = mixed_workload(0xBEEF, 12);
    // Route a third of the unsafe queries to the sampler by alternating
    // budgets: a zero circuit budget forces Route::Sampled.
    let compiled_budget = Budget::default();
    let sampled_budget = Budget::default()
        .with_max_circuit_cost(0)
        .with_mode(SampleMode::Adaptive { epsilon: 0.1 })
        .expect("epsilon in (0, 1)");
    let budget_of = |i: usize| {
        if i % 3 == 2 {
            &sampled_budget
        } else {
            &compiled_budget
        }
    };
    let expected: Vec<Routed> = {
        let engine = Engine::new();
        workload
            .iter()
            .enumerate()
            .map(|(i, (q, tid))| engine.evaluate_auto(q, tid, budget_of(i)))
            .collect()
    };
    let serial_routes = {
        let engine = Engine::new();
        for (i, (q, tid)) in workload.iter().enumerate() {
            engine.evaluate_auto(q, tid, budget_of(i));
        }
        engine.route_counts()
    };

    // The hammer: every thread walks the whole workload through ONE shared
    // engine, in its own order, all at once.
    let shared = Engine::new();
    let mismatches = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let shared = &shared;
            let workload = &workload;
            let expected = &expected;
            let mismatches = &mismatches;
            let budget_of = &budget_of;
            scope.spawn(move || {
                // Stagger the starting offset so threads collide on
                // different queries at different times.
                for k in 0..workload.len() {
                    let i = (k + t * 5) % workload.len();
                    let (q, tid) = &workload[i];
                    let got = shared.evaluate_auto(q, tid, budget_of(i));
                    if got != expected[i] {
                        mismatches.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    assert_eq!(
        mismatches.load(Ordering::Relaxed),
        0,
        "a shared engine must answer bit-identically to the serial pass"
    );

    // Counter totals: THREADS full passes ≡ THREADS × the serial counts.
    let counts = shared.route_counts();
    assert_eq!(counts.lifted, THREADS * serial_routes.lifted);
    assert_eq!(counts.compiled, THREADS * serial_routes.compiled);
    assert_eq!(counts.sampled, THREADS * serial_routes.sampled);
    let stats = shared.cache_stats();
    assert_eq!(
        stats.hits + stats.misses,
        THREADS * serial_routes.compiled,
        "every compiled route is exactly one cache lookup: {stats:?}"
    );
    assert!(
        stats.misses < THREADS * serial_routes.compiled,
        "concurrent repeats must share compilations: {stats:?}"
    );
    assert!(stats.entries <= stats.capacity, "{stats:?}");
}

#[test]
fn auto_batch_matches_serial_loop_in_order() {
    let workload = mixed_workload(0xD00D, 10);
    for threads in [1usize, 2, 4, 16] {
        let budget = Budget::default().with_threads(threads);
        let expected = serial_reference(&workload, &budget);
        let engine = Engine::new();
        let got = engine.evaluate_auto_batch(&workload, &budget);
        assert_eq!(got, expected, "threads={threads}");
        let counts = engine.route_counts();
        assert_eq!(
            counts.lifted + counts.compiled + counts.sampled,
            workload.len()
        );
    }
}

#[test]
fn auto_batch_shares_the_cache_across_workers() {
    // The same unsafe query repeated: whatever worker gets there first
    // compiles, everyone else hits.
    let mut rng = StdRng::seed_from_u64(42);
    let q = random_query(&mut rng, 2, 2, SafetyTarget::Unsafe);
    let tid = random_block_tid(&mut rng, &q, 2, 2);
    let batch: Vec<_> = (0..12).map(|_| (q.clone(), tid.clone())).collect();
    let engine = Engine::new();
    let budget = Budget::default().with_threads(4);
    let results = engine.evaluate_auto_batch(&batch, &budget);
    assert!(results.windows(2).all(|w| w[0] == w[1]));
    let stats = engine.cache_stats();
    assert_eq!(
        stats.misses, 1,
        "one compilation serves the whole batch: {stats:?}"
    );
    assert_eq!(stats.hits, batch.len() - 1, "{stats:?}");
}

#[test]
fn zero_thread_budget_literal_is_normalized_at_the_point_of_use() {
    // A struct literal bypasses `with_threads`' clamp; the router (and the
    // batch front-end) must normalize it rather than hand a zero to the
    // pool.
    let budget = Budget {
        threads: 0,
        ..Budget::default()
    };
    let workload = mixed_workload(0x5EED5, 4);
    let engine = Engine::new();
    let serial = serial_reference(&workload, &Budget::default());
    for ((q, tid), expect) in workload.iter().zip(&serial) {
        assert_eq!(&engine.evaluate_auto(q, tid, &budget), expect);
    }
    assert_eq!(engine.evaluate_auto_batch(&workload, &budget), serial);
    // Sampled route with a zeroed thread count: must not panic either.
    let sampled = Budget {
        threads: 0,
        max_circuit_cost: 0,
        ..Budget::default()
    };
    let mut rng = StdRng::seed_from_u64(3);
    let q = random_query(&mut rng, 2, 2, SafetyTarget::Unsafe);
    let tid = random_block_tid(&mut rng, &q, 2, 2);
    let routed = engine.evaluate_auto(&q, &tid, &sampled);
    assert_eq!(
        routed,
        Engine::new().evaluate_auto(&q, &tid, &sampled.clone().with_threads(1))
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Under concurrent compiles of distinct lineages with a small cache,
    /// the capacity bound holds at every observation point.
    #[test]
    fn entries_never_exceed_capacity_under_concurrent_eviction(
        seed in 0u64..10_000,
        capacity in 1usize..6,
    ) {
        let engine = Engine::builder().cache_capacity(capacity).build();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut lineages = Vec::new();
        for _ in 0..6 {
            let q = random_query(&mut rng, 3, 2, SafetyTarget::Unsafe);
            let tid = random_block_tid(&mut rng, &q, 2, 2);
            lineages.push((q, tid));
        }
        std::thread::scope(|scope| {
            for t in 0..4usize {
                let engine = &engine;
                let lineages = &lineages;
                scope.spawn(move || {
                    for k in 0..lineages.len() {
                        let (q, tid) = &lineages[(k + t) % lineages.len()];
                        engine.compile(q, tid);
                        let stats = engine.cache_stats();
                        assert!(
                            stats.entries <= capacity,
                            "capacity {capacity} exceeded: {stats:?}"
                        );
                    }
                });
            }
        });
        let stats = engine.cache_stats();
        prop_assert!(stats.entries <= capacity, "{stats:?}");
        prop_assert_eq!(stats.capacity, capacity);
    }
}
