//! Observation must be passive: enabling tracing, metrics, and the slow
//! log cannot change a single result bit.
//!
//! The contracts under test:
//!
//! * **traced ≡ untraced** — for a mixed workload (lifted / compiled /
//!   sampled routes), the wire text of a trace-carrying response with its
//!   `trace ` lines stripped is byte-identical to the untraced response
//!   of a fresh engine, and the parsed values agree field-for-field;
//! * **concurrent hammer** — 8 OS threads driving traced requests
//!   through one fully instrumented engine (zero slow-log threshold, so
//!   every request is recorded) still produce bit-identical results;
//! * **batch parity** — `evaluate_auto_batch` on an instrumented engine
//!   is byte-identical to the serial loop on a telemetry-default engine.

use gfomc_engine::workload::{random_block_tid, random_query, SafetyTarget};
use gfomc_engine::{Budget, Engine, EvalRequest, Routed};
use gfomc_query::BipartiteQuery;
use gfomc_tid::Tid;
use rand::{rngs::StdRng, SeedableRng};

/// A mixed workload of safe and unsafe queries.
fn mixed_workload(seed: u64, n: usize) -> Vec<(BipartiteQuery, Tid)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let target = match i % 3 {
                0 => SafetyTarget::Safe,
                _ => SafetyTarget::Unsafe,
            };
            let q = random_query(&mut rng, 2, 2, target);
            let tid = random_block_tid(&mut rng, &q, 2, 2);
            (q, tid)
        })
        .collect()
}

/// A budget that exercises the sampled route on every third query (the
/// cost cap rejects all but the smallest lineages).
fn tight_budget() -> Budget {
    Budget::default()
        .with_max_circuit_cost(64)
        .with_samples(512)
        .expect("positive sample budget")
}

/// The response text with its `trace ` lines removed — what an untraced
/// request would have produced if tracing is truly passive.
fn strip_trace(text: &str) -> String {
    text.lines()
        .filter(|l| !l.starts_with("trace "))
        .map(|l| format!("{l}\n"))
        .collect()
}

#[test]
fn traced_responses_are_byte_identical_to_untraced() {
    let workload = mixed_workload(0x0B5, 9);
    let budget = tight_budget();
    let traced_engine = Engine::builder()
        .slow_threshold_nanos(0)
        .slow_capacity(16)
        .build();
    let plain_engine = Engine::new();
    for (q, tid) in &workload {
        let traced_req = EvalRequest::new(q.clone(), tid.clone())
            .with_budget(budget.clone())
            .with_trace();
        let plain_req = EvalRequest::new(q.clone(), tid.clone()).with_budget(budget.clone());
        let traced = traced_engine
            .evaluate_wire(&traced_req.to_string())
            .unwrap();
        let plain = plain_engine.evaluate_wire(&plain_req.to_string()).unwrap();
        assert_eq!(strip_trace(&traced), plain);
        // The trace itself is present and parses back.
        let parsed: Routed = traced.parse().unwrap();
        assert!(parsed.trace.is_some());
    }
    // Zero threshold: every request landed in the slow log (ring-capped).
    assert_eq!(traced_engine.slow_log().len(), workload.len());
    // The latency histograms conserve the request count.
    let total: u64 = traced_engine
        .registry()
        .histograms_named("engine_request_nanos")
        .iter()
        .map(|(_, snap)| snap.count)
        .sum();
    assert_eq!(total, workload.len() as u64);
}

#[test]
fn concurrent_traced_hammer_is_bit_identical_to_serial() {
    const THREADS: usize = 8;
    let workload = mixed_workload(0xFACE, 12);
    let budget = tight_budget();
    // Serial reference on an engine with telemetry at defaults.
    let reference: Vec<String> = {
        let engine = Engine::new();
        workload
            .iter()
            .map(|(q, tid)| {
                let req = EvalRequest::new(q.clone(), tid.clone()).with_budget(budget.clone());
                engine.evaluate_wire(&req.to_string()).unwrap()
            })
            .collect()
    };
    // Hammer: every thread runs the whole workload with tracing on,
    // against one shared engine recording every request.
    let engine = Engine::builder()
        .slow_threshold_nanos(0)
        .slow_capacity(THREADS * workload.len())
        .build();
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|| {
                for (i, (q, tid)) in workload.iter().enumerate() {
                    let req = EvalRequest::new(q.clone(), tid.clone())
                        .with_budget(budget.clone())
                        .with_trace();
                    let got = engine.evaluate_wire(&req.to_string()).unwrap();
                    assert_eq!(strip_trace(&got), reference[i]);
                }
            });
        }
    });
    // Every one of the THREADS × workload requests was observed.
    let n = (THREADS * workload.len()) as u64;
    assert_eq!(
        engine
            .registry()
            .counter_value("engine_requests_total", &[]),
        n
    );
    assert_eq!(engine.slow_log().len(), n as usize);
    let total: u64 = engine
        .registry()
        .histograms_named("engine_request_nanos")
        .iter()
        .map(|(_, snap)| snap.count)
        .sum();
    assert_eq!(total, n);
}

#[test]
fn instrumented_batch_matches_plain_serial_loop() {
    let workload = mixed_workload(0xBA7C4, 10);
    let budget = tight_budget().with_threads(4);
    let plain = Engine::new();
    let serial: Vec<Routed> = workload
        .iter()
        .map(|(q, tid)| plain.evaluate_auto(q, tid, &budget))
        .collect();
    let instrumented = Engine::builder()
        .slow_threshold_nanos(0)
        .slow_capacity(32)
        .build();
    let batch = instrumented.evaluate_auto_batch(&workload, &budget);
    assert_eq!(batch, serial);
    // Byte identity of the wire forms, not just structural equality.
    for (b, s) in batch.iter().zip(&serial) {
        assert_eq!(b.to_string(), s.to_string());
    }
}
