//! Tuple-independent probabilistic databases over the bipartite vocabulary.
//!
//! A bipartite TID (§2 of the paper) has a domain `Dom = U ∪ V` and assigns
//! a probability to every ground tuple `R(u)`, `T(v)`, `S_i(u,v)`. Following
//! the paper's gadget constructions, tuples not explicitly listed take a
//! configurable *default* probability: `1` for the block databases of §3.3
//! ("otherwise, Pr(S(a,b)) = 1") and `0` for ordinary databases.

use gfomc_arith::Rational;
use std::collections::BTreeMap;
use std::fmt;

/// A ground tuple. Left and right constants live in separate namespaces
/// (the domain is a disjoint union `U ∪ V`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Tuple {
    /// `R(u)` for a left constant `u`.
    R(u32),
    /// `T(v)` for a right constant `v`.
    T(u32),
    /// `S_i(u, v)`.
    S(u32, u32, u32),
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tuple::R(u) => write!(f, "R(u{u})"),
            Tuple::T(v) => write!(f, "T(v{v})"),
            Tuple::S(i, u, v) => write!(f, "S{i}(u{u},v{v})"),
        }
    }
}

/// A bipartite tuple-independent probabilistic database.
#[derive(Clone, PartialEq)]
pub struct Tid {
    left: Vec<u32>,
    right: Vec<u32>,
    probs: BTreeMap<Tuple, Rational>,
    default_prob: Rational,
}

impl Tid {
    /// Creates a TID over the given domains. Unlisted tuples take
    /// `default_prob` (must be 0 or 1 so that possible worlds stay
    /// enumerable over the explicitly probabilistic tuples).
    pub fn new(
        left: impl IntoIterator<Item = u32>,
        right: impl IntoIterator<Item = u32>,
        default_prob: Rational,
    ) -> Self {
        assert!(
            default_prob.is_zero() || default_prob.is_one(),
            "default probability must be 0 or 1"
        );
        let mut left: Vec<u32> = left.into_iter().collect();
        let mut right: Vec<u32> = right.into_iter().collect();
        left.sort_unstable();
        left.dedup();
        right.sort_unstable();
        right.dedup();
        Tid {
            left,
            right,
            probs: BTreeMap::new(),
            default_prob,
        }
    }

    /// A TID where all unlisted tuples are present with probability 1
    /// (the convention of the paper's block constructions).
    pub fn all_present(
        left: impl IntoIterator<Item = u32>,
        right: impl IntoIterator<Item = u32>,
    ) -> Self {
        Tid::new(left, right, Rational::one())
    }

    /// A TID where all unlisted tuples are absent (probability 0).
    pub fn all_absent(
        left: impl IntoIterator<Item = u32>,
        right: impl IntoIterator<Item = u32>,
    ) -> Self {
        Tid::new(left, right, Rational::zero())
    }

    /// The left domain `U`.
    pub fn left_domain(&self) -> &[u32] {
        &self.left
    }

    /// The right domain `V`.
    pub fn right_domain(&self) -> &[u32] {
        &self.right
    }

    /// Sets the probability of a tuple. Panics if the tuple's constants are
    /// not in the domain, or the probability is not in `[0,1]`.
    pub fn set_prob(&mut self, t: Tuple, p: Rational) {
        assert!(p.is_probability(), "probability out of [0,1]");
        match t {
            Tuple::R(u) => assert!(self.left.contains(&u), "unknown left constant"),
            Tuple::T(v) => assert!(self.right.contains(&v), "unknown right constant"),
            Tuple::S(_, u, v) => {
                assert!(self.left.contains(&u), "unknown left constant");
                assert!(self.right.contains(&v), "unknown right constant");
            }
        }
        self.probs.insert(t, p);
    }

    /// The probability of a tuple.
    pub fn prob(&self, t: &Tuple) -> Rational {
        self.probs
            .get(t)
            .cloned()
            .unwrap_or_else(|| self.default_prob.clone())
    }

    /// The explicitly-set tuples with their probabilities.
    pub fn explicit_tuples(&self) -> impl Iterator<Item = (&Tuple, &Rational)> {
        self.probs.iter()
    }

    /// The probability of unlisted tuples (0 or 1 by construction) —
    /// together with [`Tid::left_domain`], [`Tid::right_domain`], and
    /// [`Tid::explicit_tuples`] this is the full observable state of the
    /// database, which is what a wire serialization must carry.
    pub fn default_prob(&self) -> &Rational {
        &self.default_prob
    }

    /// The tuples whose probability is strictly between 0 and 1 — the
    /// "random variables" of the database.
    pub fn uncertain_tuples(&self) -> Vec<Tuple> {
        self.probs
            .iter()
            .filter(|(_, p)| !p.is_zero() && !p.is_one())
            .map(|(t, _)| *t)
            .collect()
    }

    /// True iff every tuple probability lies in `{0, ½, 1}` — the input
    /// class of the *generalized model counting* problem `GFOMC`.
    pub fn is_gfomc_instance(&self) -> bool {
        self.probs
            .values()
            .all(|p| p.is_zero() || p.is_one() || *p == Rational::one_half())
    }

    /// True iff every tuple probability lies in `{½, 1}` (equivalently, no
    /// explicit 0s and default 1) — the input class of *model counting*
    /// `FOMC` for ∀CNF (§1.3: duals restrict probabilities to {½, 1}).
    pub fn is_fomc_instance(&self) -> bool {
        self.default_prob.is_one()
            && self
                .probs
                .values()
                .all(|p| p.is_one() || *p == Rational::one_half())
    }

    /// Disjoint union of two TIDs: domains are unioned; explicitly-set
    /// tuples must agree on any overlap; defaults must match.
    pub fn union(&self, other: &Tid) -> Tid {
        assert_eq!(
            self.default_prob, other.default_prob,
            "union requires identical default probabilities"
        );
        let mut out = Tid::new(
            self.left.iter().chain(other.left.iter()).copied(),
            self.right.iter().chain(other.right.iter()).copied(),
            self.default_prob.clone(),
        );
        for (t, p) in self.probs.iter().chain(other.probs.iter()) {
            if let Some(existing) = out.probs.get(t) {
                assert_eq!(existing, p, "conflicting probability for {t}");
            }
            out.probs.insert(*t, p.clone());
        }
        out
    }

    /// Union of many TIDs.
    pub fn union_all(tids: impl IntoIterator<Item = Tid>) -> Tid {
        let mut it = tids.into_iter();
        let first = it.next().expect("union of no TIDs");
        it.fold(first, |acc, t| acc.union(&t))
    }
}

impl fmt::Debug for Tid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Tid(U={:?}, V={:?}, default={})",
            self.left, self.right, self.default_prob
        )?;
        for (t, p) in &self.probs {
            writeln!(f, "  {t} := {p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn half() -> Rational {
        Rational::one_half()
    }

    #[test]
    fn defaults_apply() {
        let tid = Tid::all_present([0, 1], [10]);
        assert_eq!(tid.prob(&Tuple::S(0, 0, 10)), Rational::one());
        let tid0 = Tid::all_absent([0], [10]);
        assert_eq!(tid0.prob(&Tuple::R(0)), Rational::zero());
    }

    #[test]
    fn set_and_get() {
        let mut tid = Tid::all_present([0], [10]);
        tid.set_prob(Tuple::S(0, 0, 10), half());
        assert_eq!(tid.prob(&Tuple::S(0, 0, 10)), half());
        assert_eq!(tid.uncertain_tuples(), vec![Tuple::S(0, 0, 10)]);
    }

    #[test]
    #[should_panic]
    fn unknown_constant_rejected() {
        let mut tid = Tid::all_present([0], [10]);
        tid.set_prob(Tuple::R(7), half());
    }

    #[test]
    #[should_panic]
    fn out_of_range_probability_rejected() {
        let mut tid = Tid::all_present([0], [10]);
        tid.set_prob(Tuple::R(0), Rational::from_ints(3, 2));
    }

    #[test]
    fn gfomc_and_fomc_classification() {
        let mut tid = Tid::all_present([0], [10]);
        tid.set_prob(Tuple::R(0), half());
        assert!(tid.is_gfomc_instance());
        assert!(tid.is_fomc_instance());
        tid.set_prob(Tuple::T(10), Rational::zero());
        assert!(tid.is_gfomc_instance());
        assert!(!tid.is_fomc_instance());
        tid.set_prob(Tuple::S(0, 0, 10), Rational::from_ints(1, 3));
        assert!(!tid.is_gfomc_instance());
    }

    #[test]
    fn union_merges_domains() {
        let mut a = Tid::all_present([0], [10]);
        a.set_prob(Tuple::R(0), half());
        let mut b = Tid::all_present([1], [11]);
        b.set_prob(Tuple::R(1), half());
        let u = a.union(&b);
        assert_eq!(u.left_domain(), &[0, 1]);
        assert_eq!(u.right_domain(), &[10, 11]);
        assert_eq!(u.prob(&Tuple::R(0)), half());
        assert_eq!(u.prob(&Tuple::R(1)), half());
    }

    #[test]
    #[should_panic]
    fn union_conflict_panics() {
        let mut a = Tid::all_present([0], [10]);
        a.set_prob(Tuple::R(0), half());
        let mut b = Tid::all_present([0], [10]);
        b.set_prob(Tuple::R(0), Rational::zero());
        let _ = a.union(&b);
    }

    #[test]
    fn domains_deduplicate() {
        let tid = Tid::all_present([1, 0, 1], [5, 5]);
        assert_eq!(tid.left_domain(), &[0, 1]);
        assert_eq!(tid.right_domain(), &[5]);
    }
}
