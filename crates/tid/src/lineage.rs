//! Lineage construction: grounding a ∀CNF query over a TID.
//!
//! The lineage `Φ_∆(Q)` (§2, footnote 4) is the monotone CNF obtained by
//! grounding every clause of `Q` over the database domain, one propositional
//! variable per ground tuple. Deterministic tuples are folded in during
//! grounding: a probability-1 tuple satisfies its ground clause outright, a
//! probability-0 tuple disappears from it.

use crate::database::{Tid, Tuple};
use gfomc_arith::Rational;
use gfomc_logic::{Clause as PropClause, Cnf, Var};
use gfomc_query::{Atom, BipartiteQuery, CVar, Clause};
use std::collections::HashMap;

/// Bidirectional mapping between ground tuples and propositional variables,
/// carrying the tuple probabilities as WMC weights.
#[derive(Clone, Debug, Default)]
pub struct VarTable {
    tuples: Vec<Tuple>,
    index: HashMap<Tuple, Var>,
    weights: HashMap<Var, Rational>,
}

impl VarTable {
    /// Interns a tuple, assigning it the next variable id.
    pub fn var_for(&mut self, t: Tuple, prob: &Rational) -> Var {
        if let Some(&v) = self.index.get(&t) {
            return v;
        }
        let v = Var(self.tuples.len() as u32);
        self.tuples.push(t);
        self.index.insert(t, v);
        self.weights.insert(v, prob.clone());
        v
    }

    /// Looks up the variable of a tuple, if interned.
    pub fn lookup(&self, t: &Tuple) -> Option<Var> {
        self.index.get(t).copied()
    }

    /// The tuple of a variable.
    pub fn tuple_of(&self, v: Var) -> Tuple {
        self.tuples[v.0 as usize]
    }

    /// The weight map for the WMC engine.
    pub fn weights(&self) -> &HashMap<Var, Rational> {
        &self.weights
    }

    /// Number of interned tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True iff no tuples are interned.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

/// The lineage of a query over a TID, together with the variable table.
#[derive(Clone, Debug)]
pub struct Lineage {
    /// The ground CNF `Φ_∆(Q)`.
    pub cnf: Cnf,
    /// Tuple ↔ variable mapping with probabilities.
    pub vars: VarTable,
}

/// Computes the lineage `Φ_∆(Q)`.
///
/// Probability-1 tuples are *not* interned (their ground clauses are
/// satisfied or the atom is constant-true only if it satisfies the clause —
/// a true disjunct makes the whole ground clause true); probability-0 tuples
/// are dropped from their clauses. The resulting CNF thus mentions only
/// tuples with probability in `(0, 1)`.
pub fn lineage(q: &BipartiteQuery, tid: &Tid) -> Lineage {
    let mut vars = VarTable::default();
    if q.is_false() {
        return Lineage {
            cnf: Cnf::bottom(),
            vars,
        };
    }
    let mut clauses: Vec<PropClause> = Vec::new();
    for clause in q.clauses() {
        ground_clause(clause, tid, &mut vars, &mut clauses);
        // Early exit: a false ground clause makes the lineage false.
        if clauses.iter().any(|c| c.is_empty()) {
            return Lineage {
                cnf: Cnf::bottom(),
                vars,
            };
        }
    }
    Lineage {
        cnf: Cnf::new(clauses),
        vars,
    }
}

/// Grounds one query clause over all assignments of its sorted variables.
fn ground_clause(clause: &Clause, tid: &Tid, vars: &mut VarTable, out: &mut Vec<PropClause>) {
    let xs: Vec<CVar> = clause.vars().into_iter().filter(CVar::is_x).collect();
    let ys: Vec<CVar> = clause.vars().into_iter().filter(CVar::is_y).collect();
    let u = tid.left_domain();
    let v = tid.right_domain();
    // With an empty domain on a quantified sort, the universal clause is
    // vacuously true: no groundings.
    if (!xs.is_empty() && u.is_empty()) || (!ys.is_empty() && v.is_empty()) {
        return;
    }
    // Iterate over all |U|^|xs| × |V|^|ys| assignments.
    let mut x_assign = vec![0usize; xs.len()];
    loop {
        let mut y_assign = vec![0usize; ys.len()];
        loop {
            ground_one(clause, tid, &xs, &x_assign, &ys, &y_assign, u, v, vars, out);
            if !increment(&mut y_assign, v.len()) {
                break;
            }
        }
        if !increment(&mut x_assign, u.len()) {
            break;
        }
    }
}

/// Advances a mixed-radix counter; false when it wraps to all-zero.
fn increment(digits: &mut [usize], radix: usize) -> bool {
    if radix == 0 {
        return false;
    }
    for d in digits.iter_mut() {
        *d += 1;
        if *d < radix {
            return true;
        }
        *d = 0;
    }
    false
}

#[allow(clippy::too_many_arguments)]
fn ground_one(
    clause: &Clause,
    tid: &Tid,
    xs: &[CVar],
    x_assign: &[usize],
    ys: &[CVar],
    y_assign: &[usize],
    u: &[u32],
    v: &[u32],
    vars: &mut VarTable,
    out: &mut Vec<PropClause>,
) {
    let lookup = |cv: CVar| -> u32 {
        match cv {
            CVar::X(_) => {
                let i = xs.iter().position(|&w| w == cv).unwrap();
                u[x_assign[i]]
            }
            CVar::Y(_) => {
                let i = ys.iter().position(|&w| w == cv).unwrap();
                v[y_assign[i]]
            }
        }
    };
    let mut lits: Vec<Var> = Vec::with_capacity(clause.atoms().len());
    for atom in clause.atoms() {
        let tuple = match *atom {
            Atom::R(x) => Tuple::R(lookup(x)),
            Atom::T(y) => Tuple::T(lookup(y)),
            Atom::S(i, x, y) => Tuple::S(i, lookup(x), lookup(y)),
        };
        let p = tid.prob(&tuple);
        if p.is_one() {
            // A certain disjunct: the whole ground clause is satisfied.
            return;
        }
        if p.is_zero() {
            // An impossible disjunct: drop it.
            continue;
        }
        lits.push(vars.var_for(tuple, &p));
    }
    out.push(PropClause::new(lits));
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfomc_arith::Rational;
    use gfomc_query::catalog;

    fn half() -> Rational {
        Rational::one_half()
    }

    /// The standard small database: U = {0,1}, V = {10}, all tuples at ½.
    fn small_tid(q: &BipartiteQuery) -> Tid {
        let mut tid = Tid::all_present([0, 1], [10]);
        for u in [0u32, 1] {
            tid.set_prob(Tuple::R(u), half());
            for s in q.binary_symbols() {
                tid.set_prob(Tuple::S(s, u, 10), half());
            }
        }
        tid.set_prob(Tuple::T(10), half());
        tid
    }

    #[test]
    fn h1_lineage_shape() {
        // H1 = (R∨S0)(S0∨T) over U={0,1}, V={10}: 4 ground clauses.
        let q = catalog::h1();
        let tid = small_tid(&q);
        let lin = lineage(&q, &tid);
        assert_eq!(lin.cnf.len(), 4);
        // Variables: R(0), R(1), S0(0,10), S0(1,10), T(10) = 5.
        assert_eq!(lin.vars.len(), 5);
    }

    #[test]
    fn prob_one_tuples_satisfy_clauses() {
        let q = catalog::h1();
        let mut tid = small_tid(&q);
        tid.set_prob(Tuple::S(0, 0, 10), Rational::one());
        let lin = lineage(&q, &tid);
        // Clauses touching S0(0,10) are gone: only the x=1 groundings remain.
        assert_eq!(lin.cnf.len(), 2);
    }

    #[test]
    fn prob_zero_tuples_drop_from_clauses() {
        let q = catalog::h1();
        let mut tid = small_tid(&q);
        tid.set_prob(Tuple::S(0, 0, 10), Rational::zero());
        let lin = lineage(&q, &tid);
        // Ground clause (R(0) ∨ S0(0,10)) became unit R(0).
        assert!(lin.cnf.clauses().iter().any(|c| c.len() == 1));
    }

    #[test]
    fn all_zero_middle_clause_gives_false() {
        let q = BipartiteQuery::new([gfomc_query::Clause::middle([0])]);
        let mut tid = Tid::all_present([0], [10]);
        tid.set_prob(Tuple::S(0, 0, 10), Rational::zero());
        let lin = lineage(&q, &tid);
        assert!(lin.cnf.is_false());
    }

    #[test]
    fn false_query_has_false_lineage() {
        let tid = Tid::all_present([0], [10]);
        let lin = lineage(&BipartiteQuery::bottom(), &tid);
        assert!(lin.cnf.is_false());
    }

    #[test]
    fn true_query_has_true_lineage() {
        let tid = Tid::all_present([0], [10]);
        let lin = lineage(&BipartiteQuery::top(), &tid);
        assert!(lin.cnf.is_true());
    }

    #[test]
    fn type_ii_clause_grounds_over_y_pairs() {
        // ∀x (∀y S0 ∨ ∀y S1) over U={0}, V={10,11}: prenex has y0,y1, so
        // 4 ground clauses (some may be subsumed after minimization).
        let q = catalog::example_c9();
        let mut tid = Tid::all_present([0], [10, 11]);
        for s in q.binary_symbols() {
            for v in [10u32, 11] {
                tid.set_prob(Tuple::S(s, 0, v), half());
            }
        }
        let lin = lineage(&q, &tid);
        assert!(!lin.cnf.is_false());
        assert!(!lin.cnf.is_true());
        // S0(0,10)∨S1(0,10), S0(0,10)∨S1(0,11), S0(0,11)∨S1(0,10),
        // S0(0,11)∨S1(0,11) from the left clause, plus middle and right.
        assert!(lin.cnf.len() >= 4);
    }

    #[test]
    fn var_table_roundtrip() {
        let q = catalog::h1();
        let tid = small_tid(&q);
        let lin = lineage(&q, &tid);
        for v in lin.cnf.vars() {
            let t = lin.vars.tuple_of(v);
            assert_eq!(lin.vars.lookup(&t), Some(v));
            assert_eq!(lin.vars.weights()[&v], tid.prob(&t));
        }
    }
}
