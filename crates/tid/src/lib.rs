//! # gfomc-tid
//!
//! Tuple-independent probabilistic databases (TIDs) over the bipartite
//! vocabulary of Kenig & Suciu (PODS 2021):
//!
//! * [`database`] — bipartite domains, tuples, probability maps with 0/1
//!   defaults, `GFOMC`/`FOMC` instance classification, disjoint unions;
//! * [`mod@lineage`] — grounding a ∀CNF query into its monotone-CNF lineage
//!   `Φ_∆(Q)` with deterministic tuples folded in;
//! * [`evaluate`] — exact `Pr_∆(Q)` (lineage + WMC), possible-world brute
//!   force, and generalized model counts.

pub mod database;
pub mod evaluate;
pub mod lineage;

pub use database::{Tid, Tuple};
pub use evaluate::{
    generalized_model_count, probability, probability_brute_force, uncertain_tuple_count,
};
pub use lineage::{lineage, Lineage, VarTable};

#[cfg(test)]
mod proptests {
    use super::*;
    use gfomc_arith::Rational;
    use gfomc_query::catalog;
    use proptest::prelude::*;

    /// Random GFOMC database over a 2×2 domain for a given query: every
    /// tuple independently gets probability 0, ½, or 1.
    fn arb_tid_for(q: &gfomc_query::BipartiteQuery) -> impl Strategy<Value = Tid> {
        let symbols: Vec<u32> = q.binary_symbols().into_iter().collect();
        let n_tuples = 2 + 2 + symbols.len() * 4; // R×2, T×2, S×4 each
        proptest::collection::vec(0u8..3, n_tuples).prop_map(move |choices| {
            let mut tid = Tid::all_present([0, 1], [100, 101]);
            let mut it = choices.into_iter().map(|c| match c {
                0 => Rational::zero(),
                1 => Rational::one_half(),
                _ => Rational::one(),
            });
            for u in [0u32, 1] {
                tid.set_prob(Tuple::R(u), it.next().unwrap());
            }
            for v in [100u32, 101] {
                tid.set_prob(Tuple::T(v), it.next().unwrap());
            }
            for &s in &symbols {
                for u in [0u32, 1] {
                    for v in [100u32, 101] {
                        tid.set_prob(Tuple::S(s, u, v), it.next().unwrap());
                    }
                }
            }
            tid
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn h1_fast_equals_brute(tid in arb_tid_for(&catalog::h1())) {
            let q = catalog::h1();
            prop_assert_eq!(probability(&q, &tid), probability_brute_force(&q, &tid));
        }

        #[test]
        fn c9_fast_equals_brute(tid in arb_tid_for(&catalog::example_c9())) {
            let q = catalog::example_c9();
            if uncertain_tuple_count(&tid) <= 12 {
                prop_assert_eq!(probability(&q, &tid), probability_brute_force(&q, &tid));
            }
        }

        #[test]
        fn probabilities_in_range(tid in arb_tid_for(&catalog::hk(2))) {
            let q = catalog::hk(2);
            let p = probability(&q, &tid);
            prop_assert!(p.is_probability());
        }

        #[test]
        fn gfomc_instances_recognized(tid in arb_tid_for(&catalog::h1())) {
            prop_assert!(tid.is_gfomc_instance());
        }
    }
}
