//! Exact query probability over a TID: `PQE(Q)` and its brute-force twin.

use crate::database::Tid;
use crate::lineage::lineage;
use gfomc_arith::{Natural, Rational};
use gfomc_logic::Circuit;
use gfomc_query::BipartiteQuery;

/// Computes `Pr_∆(Q)` exactly: lineage construction, knowledge compilation
/// of the lineage into an arithmetic circuit, and one bottom-up
/// evaluation under the tuple probabilities. This is the oracle invoked by
/// the paper's Cook reductions; callers that price the same lineage under
/// many weight assignments should keep the [`Circuit`] (see
/// `gfomc-engine`) instead of re-entering here.
pub fn probability(q: &BipartiteQuery, tid: &Tid) -> Rational {
    let lin = lineage(q, tid);
    Circuit::compile(&lin.cnf).evaluate(lin.vars.weights())
}

/// Computes `Pr_∆(Q)` by enumerating all possible worlds over the uncertain
/// tuples. Exponential; ground truth for tests.
pub fn probability_brute_force(q: &BipartiteQuery, tid: &Tid) -> Rational {
    let lin = lineage(q, tid);
    gfomc_logic::wmc_brute_force(&lin.cnf, lin.vars.weights())
}

/// The *generalized model count* of `Q` on a GFOMC instance: the number of
/// worlds (subsets of the uncertain tuples, joined with all certain tuples)
/// that satisfy `Q`. Equals `Pr(Q) · 2^u` where `u` is the number of
/// probability-½ tuples. Panics if the TID is not a `{0, ½, 1}` instance.
pub fn generalized_model_count(q: &BipartiteQuery, tid: &Tid) -> Natural {
    assert!(
        tid.is_gfomc_instance(),
        "generalized model counting requires probabilities in {{0, 1/2, 1}}"
    );
    let u = tid
        .uncertain_tuples()
        .iter()
        .filter(|t| tid.prob(t) == Rational::one_half())
        .count() as u32;
    let p = probability(q, tid);
    // p = count / 2^u, so count = numer(p) · 2^(u - log2(denom(p))).
    let scaled = &p * &Rational::from_ints(2, 1).pow(u as i32);
    assert!(
        scaled.denom().is_one(),
        "model count should be integral: got {scaled}"
    );
    assert!(!scaled.is_negative());
    scaled.numer().magnitude().clone()
}

/// Expected number of uncertain tuples in the lineage support — a helper for
/// sizing experiments.
pub fn uncertain_tuple_count(tid: &Tid) -> usize {
    tid.uncertain_tuples().len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Tuple;
    use gfomc_arith::Rational;
    use gfomc_query::catalog;

    fn half() -> Rational {
        Rational::one_half()
    }

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_ints(n, d)
    }

    /// A fully-probabilistic database over U×V with all tuples at ½.
    fn uniform_tid(q: &BipartiteQuery, nu: u32, nv: u32) -> Tid {
        let left: Vec<u32> = (0..nu).collect();
        let right: Vec<u32> = (100..100 + nv).collect();
        let mut tid = Tid::all_present(left.clone(), right.clone());
        for &u in &left {
            tid.set_prob(Tuple::R(u), half());
            for &v in &right {
                for s in q.binary_symbols() {
                    tid.set_prob(Tuple::S(s, u, v), half());
                }
            }
        }
        for &v in &right {
            tid.set_prob(Tuple::T(v), half());
        }
        tid
    }

    #[test]
    fn h1_single_cell() {
        // H1 = (R∨S)(S∨T) over 1×1: lineage (R∨S)(S∨T), Pr = 5/8 (§1.6).
        let q = catalog::h1();
        let tid = uniform_tid(&q, 1, 1);
        assert_eq!(probability(&q, &tid), r(5, 8));
    }

    #[test]
    fn h0_single_cell() {
        // H0 = R∨S∨T over 1×1 at ½: Pr = 7/8.
        let q = catalog::h0();
        let tid = uniform_tid(&q, 1, 1);
        assert_eq!(probability(&q, &tid), r(7, 8));
    }

    #[test]
    fn fast_equals_brute_force() {
        for (name, q) in catalog::unsafe_catalog() {
            // Keep instances small: brute force is 2^#tuples.
            let tid = uniform_tid(&q, 2, 2);
            if uncertain_tuple_count(&tid) <= 16 {
                assert_eq!(
                    probability(&q, &tid),
                    probability_brute_force(&q, &tid),
                    "{name}"
                );
            }
        }
    }

    #[test]
    fn safe_queries_also_evaluate() {
        for (name, q) in catalog::safe_catalog() {
            let tid = uniform_tid(&q, 2, 2);
            let p = probability(&q, &tid);
            assert!(p.is_probability(), "{name}: {p}");
            assert_eq!(p, probability_brute_force(&q, &tid), "{name}");
        }
    }

    #[test]
    fn monotonicity_in_probabilities() {
        // Raising a tuple probability cannot decrease Pr(Q) (monotone query).
        let q = catalog::h1();
        let mut tid = uniform_tid(&q, 2, 2);
        let before = probability(&q, &tid);
        tid.set_prob(Tuple::S(0, 0, 100), r(3, 4));
        let after = probability(&q, &tid);
        assert!(after >= before);
    }

    #[test]
    fn generalized_model_count_matches_enumeration() {
        let q = catalog::h1();
        let tid = uniform_tid(&q, 1, 2);
        // Worlds over uncertain tuples: count via probability.
        let count = generalized_model_count(&q, &tid);
        let u = uncertain_tuple_count(&tid) as u32;
        let expect = &probability(&q, &tid) * &Rational::from_ints(2, 1).pow(u as i32);
        assert_eq!(Rational::from(gfomc_arith::Integer::from(count)), expect);
    }

    #[test]
    fn deterministic_database_gives_zero_or_one() {
        let q = catalog::h1();
        let left: Vec<u32> = vec![0];
        let right: Vec<u32> = vec![100];
        // All tuples present: query true.
        let tid = Tid::all_present(left.clone(), right.clone());
        assert_eq!(probability(&q, &tid), Rational::one());
        // R and T absent, S absent: (R∨S) fails on the only cell.
        let mut tid0 = Tid::all_present(left, right);
        tid0.set_prob(Tuple::R(0), Rational::zero());
        tid0.set_prob(Tuple::S(0, 0, 100), Rational::zero());
        assert_eq!(probability(&q, &tid0), Rational::zero());
    }

    #[test]
    fn empty_domain_side_makes_universal_query_true() {
        // With V empty, every ∀y clause is vacuously true.
        let q = catalog::h1();
        let tid = Tid::all_present([0, 1], std::iter::empty::<u32>());
        assert_eq!(probability(&q, &tid), Rational::one());
    }
}
