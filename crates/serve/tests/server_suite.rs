//! End-to-end suite for the serving layer, built around the PR's two
//! acceptance drills:
//!
//! 1. **Bit-identity under concurrency** — many client threads submitting
//!    mixed exact/approx queries over real sockets receive responses
//!    byte-identical to serial direct-engine calls, in request order per
//!    connection;
//! 2. **Explicit overload** — once the admission bound is hit the server
//!    answers 429 + `Retry-After` immediately; it never queues silently
//!    and never hangs (every connection in the suite carries a read
//!    timeout, so a regression to blocking behavior fails fast).

use gfomc_arith::Rational;
use gfomc_engine::workload::{random_block_tid, random_query, SafetyTarget};
use gfomc_engine::{
    Budget, Engine, EvalRequest, Routed, SessionOp, SessionRequest, SessionResponse,
};
use gfomc_serve::{Client, Connection, Server, ServerHandle};
use gfomc_tid::Tuple;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

const READ_TIMEOUT: Duration = Duration::from_secs(30);

fn spawn(engine: Engine) -> ServerHandle {
    Server::bind(Arc::new(engine), "127.0.0.1:0")
        .expect("bind an ephemeral port")
        .spawn()
        .expect("spawn the accept loop")
}

fn open(handle: &ServerHandle) -> Connection {
    let conn = Connection::open(handle.addr()).expect("connect");
    conn.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
    conn
}

/// A deterministic mixed workload: safe (lifted), small unsafe
/// (compiled), and zero-circuit-budget (sampled) requests, each with its
/// own seed so every answer is independently reproducible.
fn mixed_requests(seed: u64, n: usize) -> Vec<EvalRequest> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let target = match i % 3 {
                0 => SafetyTarget::Safe,
                _ => SafetyTarget::Unsafe,
            };
            let q = random_query(&mut rng, 2, 3, target);
            let tid = random_block_tid(&mut rng, &q, 2, 2);
            let mut budget = Budget::default().with_seed(rng.gen::<u64>());
            if i % 3 == 2 {
                // Zero circuit budget pins the sampled route.
                budget = budget
                    .with_max_circuit_cost(0)
                    .with_samples(256)
                    .expect("positive sample budget");
            }
            EvalRequest::new(q, tid).with_budget(budget)
        })
        .collect()
}

#[test]
fn concurrent_wire_answers_are_bit_identical_to_serial_direct_calls() {
    let requests = mixed_requests(0xC0FFEE, 12);
    // Ground truth: one engine, serial, direct — no server involved.
    let oracle = Engine::new();
    let expected: Vec<String> = requests
        .iter()
        .map(|r| {
            oracle
                .evaluate_request(r)
                .expect("valid budget")
                .to_string()
        })
        .collect();

    let handle = spawn(Engine::new());
    let workers: Vec<_> = (0..4)
        .map(|w| {
            let requests = requests.clone();
            let expected = expected.clone();
            let addr = handle.addr();
            std::thread::spawn(move || {
                let conn = Connection::open(addr).expect("connect");
                conn.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
                let mut conn = conn;
                // Each worker walks the whole workload in its own order.
                for i in (0..requests.len()).map(|i| (i + 3 * w) % requests.len()) {
                    let resp = conn
                        .request("POST", "/eval", &requests[i].to_string())
                        .expect("round trip");
                    assert_eq!(resp.status, 200, "{}", resp.body);
                    assert_eq!(resp.body, expected[i], "request {i} on worker {w}");
                    // And the body parses back to a well-formed record.
                    resp.body.parse::<Routed>().expect("stable response text");
                }
            })
        })
        .collect();
    for t in workers {
        t.join().expect("worker thread");
    }
    handle.stop();
}

#[test]
fn pipelined_responses_arrive_in_request_order() {
    let requests = mixed_requests(0xBADC0DE, 6);
    let oracle = Engine::new();
    let expected: Vec<String> = requests
        .iter()
        .map(|r| {
            oracle
                .evaluate_request(r)
                .expect("valid budget")
                .to_string()
        })
        .collect();

    let handle = spawn(Engine::new());
    let mut conn = open(&handle);
    // Write every request before reading any response: the keep-alive
    // loop must answer them strictly in request order.
    for req in &requests {
        conn.send("POST", "/eval", &req.to_string()).expect("send");
    }
    for (i, want) in expected.iter().enumerate() {
        let resp = conn.read().expect("pipelined response");
        assert_eq!(resp.status, 200);
        assert_eq!(&resp.body, want, "response {i} out of order");
    }
    handle.stop();
}

#[test]
fn overload_is_an_explicit_429_with_retry_after_never_a_hang() {
    // Depth 1: a single held permit saturates the server.
    let handle = spawn(Engine::builder().max_queue_depth(1).build());
    let client = Client::new(handle.addr().to_string());
    let body = mixed_requests(7, 1)[0].to_string();

    let permit = handle.gate().try_admit().expect("take the only slot");
    let resp = client.post("/eval", &body).expect("round trip");
    assert_eq!(resp.status, 429, "{}", resp.body);
    assert_eq!(resp.retry_after, Some(gfomc_serve::RETRY_AFTER_SECS));
    assert!(resp.body.contains("capacity"), "{}", resp.body);

    // Releasing the permit restores service on the same socket address.
    drop(permit);
    let resp = client.post("/eval", &body).expect("round trip");
    assert_eq!(resp.status, 200, "{}", resp.body);

    let stats = handle.gate().stats();
    assert_eq!(stats.rejected, 1);
    assert!(stats.admitted >= 1);
    handle.stop();
}

#[test]
fn zero_depth_server_rejects_every_eval() {
    let handle = spawn(Engine::builder().max_queue_depth(0).build());
    let client = Client::new(handle.addr().to_string());
    let body = mixed_requests(11, 1)[0].to_string();
    for _ in 0..3 {
        let resp = client.post("/eval", &body).expect("round trip");
        assert_eq!(resp.status, 429);
        assert_eq!(resp.retry_after, Some(gfomc_serve::RETRY_AFTER_SECS));
    }
    // Read-only endpoints stay reachable even with the gate shut.
    assert_eq!(client.get("/status").unwrap().status, 200);
    handle.stop();
}

#[test]
fn malformed_bodies_map_to_400_and_never_kill_the_server() {
    let handle = spawn(Engine::new());
    let mut conn = open(&handle);
    let cases = [
        "",
        "query ][\nleft 0\nright 1\n",
        "query R(x0) v S0(x0,y0) & S0(x0,y0) v T(y0)\nleft 0\nright 1\ndelta 2.0\n",
        "query R(x0) v S0(x0,y0) & S0(x0,y0) v T(y0)\nleft 0\nright 1\ntuple R(u9) 1/2\n",
        "utter nonsense\nmore nonsense\n",
    ];
    for bad in cases {
        let resp = conn.request("POST", "/eval", bad).expect("round trip");
        assert_eq!(resp.status, 400, "{bad:?} -> {}", resp.body);
    }
    // Fuzz-ish: random bytes (valid UTF-8 by construction) over the same
    // keep-alive connection. Any panic would sever it.
    let mut rng = StdRng::seed_from_u64(0xF422);
    for _ in 0..50 {
        let len = rng.gen_range(0..200usize);
        let body: String = (0..len)
            .map(|_| char::from(rng.gen_range(32u8..127)))
            .collect();
        let resp = conn.request("POST", "/eval", &body).expect("round trip");
        assert_eq!(resp.status, 400, "{body:?}");
    }
    // The connection and the server both survived: a good request works.
    let good = mixed_requests(23, 1)[0].to_string();
    let resp = conn.request("POST", "/eval", &good).expect("round trip");
    assert_eq!(resp.status, 200, "{}", resp.body);
    handle.stop();
}

#[test]
fn introspection_endpoints_report_tenants_routes_and_errors() {
    let handle = spawn(Engine::new());
    let client = Client::new(handle.addr().to_string());

    // One tenant-labeled request, one anonymous.
    let reqs = mixed_requests(0xAB, 2);
    let labeled = reqs[0].clone().with_tenant("acme");
    assert_eq!(
        client.post("/eval", &labeled.to_string()).unwrap().status,
        200
    );
    assert_eq!(
        client.post("/eval", &reqs[1].to_string()).unwrap().status,
        200
    );

    let routes = client.get("/routes").unwrap();
    assert_eq!(routes.status, 200);
    assert!(routes.body.starts_with("total lifted "), "{}", routes.body);
    assert!(
        routes.body.contains("tenant acme lifted "),
        "{}",
        routes.body
    );

    let status = client.get("/status").unwrap();
    for key in [
        "queue_depth ",
        "queue_high_water ",
        "queue_max_depth ",
        "admitted ",
        "rejected ",
        "pool_threads ",
    ] {
        assert!(
            status.body.contains(key),
            "missing {key} in {}",
            status.body
        );
    }

    let cache = client.get("/cache").unwrap();
    for key in ["hits ", "misses ", "capacity "] {
        assert!(cache.body.contains(key), "missing {key} in {}", cache.body);
    }

    assert_eq!(client.get("/nowhere").unwrap().status, 404);
    assert_eq!(client.get("/eval").unwrap().status, 405);
    assert_eq!(client.post("/status", "").unwrap().status, 405);
    handle.stop();
}

#[test]
fn shared_engine_caches_across_connections() {
    // Two clients submitting the same compiled query: the second ride
    // hits the shared compilation cache.
    let handle = spawn(Engine::new());
    let mut reqs = mixed_requests(0x5EED5, 2);
    // Force both requests to be the same unsafe (compiled) instance.
    reqs[1] = reqs[0].clone();
    let unsafe_req = mixed_requests(0xC0, 2).remove(1); // i%3==1 -> unsafe, default budget
    for _ in 0..2 {
        let client = Client::new(handle.addr().to_string());
        let resp = client.post("/eval", &unsafe_req.to_string()).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body);
    }
    let stats = handle.engine().cache_stats();
    assert!(
        stats.hits >= 1,
        "second submission should hit the cache: {stats:?}"
    );
    handle.stop();
}

#[test]
fn metrics_and_slow_expose_the_request_telemetry() {
    // Zero slow threshold: every request lands in the slow log.
    let handle = spawn(Engine::builder().slow_threshold_nanos(0).build());
    let client = Client::new(handle.addr().to_string());

    let reqs = mixed_requests(0x0B5E, 3); // lifted, compiled, sampled
    for req in &reqs {
        let resp = client.post("/eval", &req.to_string()).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body);
    }

    let metrics = client.get("/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    let body = &metrics.body;
    // Exposition is well-formed line by line: either a `# TYPE` header
    // or `name{labels} value`.
    for line in body.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut words = rest.split_whitespace();
            assert!(words.next().is_some(), "unnamed family: {line}");
            assert!(
                matches!(words.next(), Some("counter" | "gauge" | "histogram")),
                "bad family type: {line}"
            );
        } else {
            let (name, value) = line.rsplit_once(' ').expect("sample line");
            assert!(!name.is_empty(), "{line}");
            assert!(value.parse::<u64>().is_ok(), "non-numeric sample: {line}");
        }
    }
    // The three requests produced nonzero per-route histograms whose
    // total count equals the requests sent.
    assert!(
        body.contains("# TYPE engine_request_nanos histogram"),
        "{body}"
    );
    for route in ["lifted", "compiled", "sampled"] {
        assert!(
            body.contains(&format!(
                "engine_request_nanos_count{{route=\"{route}\"}} 1"
            )),
            "missing {route} histogram in {body}"
        );
    }
    assert!(body.contains("engine_requests_total 3"), "{body}");
    // Gate and pool gauges ride along.
    assert!(body.contains("gate_queue_max_depth"), "{body}");
    assert!(body.contains("pool_threads"), "{body}");

    // `/status` renders the same registry: every plain key is a metric
    // family (or histogram derivation) of the exposition.
    let status = client.get("/status").unwrap().body;
    for line in status.lines() {
        let (name, _) = line.rsplit_once(' ').expect("key value line");
        let family = name
            .split('{')
            .next()
            .unwrap()
            .trim_end_matches(|c: char| c.is_ascii_digit())
            .trim_end_matches("_p")
            .trim_end_matches("_count")
            .trim_end_matches("_sum");
        assert!(
            body.contains(family),
            "status key {name} missing from /metrics"
        );
    }

    // The slow log holds all three traces.
    let slow = client.get("/slow").unwrap();
    assert_eq!(slow.status, 200);
    assert!(slow.body.starts_with("slowlog count 3 "), "{}", slow.body);
    for route in ["lifted", "compiled", "sampled"] {
        assert!(
            slow.body.contains(&format!("route {route}")),
            "{}",
            slow.body
        );
    }
    assert!(slow.body.contains("span route "), "{}", slow.body);
    assert!(slow.body.contains("total "), "{}", slow.body);

    assert_eq!(client.post("/metrics", "").unwrap().status, 405);
    assert_eq!(client.post("/slow", "").unwrap().status, 405);
    handle.stop();
}

#[test]
fn capacity_rejections_carry_machine_readable_depth() {
    let handle = spawn(Engine::builder().max_queue_depth(1).build());
    let client = Client::new(handle.addr().to_string());
    let body = mixed_requests(21, 1)[0].to_string();

    let _permit = handle.gate().try_admit().expect("take the only slot");
    let resp = client.post("/eval", &body).expect("round trip");
    assert_eq!(resp.status, 429);
    assert!(resp.body.contains("capacity"), "{}", resp.body);
    assert!(resp.body.contains("in_flight 1"), "{}", resp.body);
    assert!(resp.body.contains("max_depth 1"), "{}", resp.body);

    // The rejection is visible in the registry the next scrape.
    let metrics = client.get("/metrics").unwrap().body;
    assert!(metrics.contains("gate_rejected 1"), "{metrics}");
    handle.stop();
}

/// An unsafe (compiled-route) request with some uncertain tuples to
/// update, plus an update/explain op stream over its tuples.
fn session_fixture() -> (EvalRequest, Vec<SessionOp>) {
    let spec = mixed_requests(0x5E55, 2).remove(1); // i%3==1 -> unsafe, default budget
                                                    // The op stream targets the lineage's live support (deterministic
                                                    // slot order) — explicit tuples the grounding folded out would be
                                                    // typed UnknownTuple rejections, which other tests cover.
    let tuples: Vec<Tuple> = Engine::new().compile(&spec.query, &spec.tid).tuples();
    let mut ops: Vec<SessionOp> = tuples
        .iter()
        .enumerate()
        .map(|(i, &tuple)| SessionOp::Update {
            tuple,
            weight: Rational::from_ints(i as i64 + 1, tuples.len() as i64 + 2),
        })
        .collect();
    ops.push(SessionOp::Value);
    ops.push(SessionOp::ExplainTop { k: 3 });
    ops.push(SessionOp::WhatIf { tuple: tuples[0] });
    (spec, ops)
}

#[test]
fn session_lifecycle_over_the_wire_matches_in_process_replay() {
    let (spec, ops) = session_fixture();
    let handle = spawn(Engine::new());
    let mut conn = open(&handle);

    // Open (no ops yet), then drive the update stream and the explain
    // query through separate `session use` requests, then close — the
    // full lifecycle across several wire exchanges.
    let open_body = SessionRequest::Open {
        spec: Box::new(spec.clone()),
        ops: Vec::new(),
        close_after: false,
    }
    .to_string();
    let resp = conn.request("POST", "/session", &open_body).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let opened: SessionResponse = resp.body.parse().expect("open response parses");
    let id = opened.id;

    let use_req = SessionRequest::Use {
        id,
        ops: ops.clone(),
        close_after: false,
    };
    let resp = conn
        .request("POST", "/session", &use_req.to_string())
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let wire: SessionResponse = resp.body.parse().expect("use response parses");

    // In-process replay on a fresh engine: open, run the same ops — the
    // replies must be bit-identical (ids differ; fresh engines start
    // numbering at 1).
    let oracle = Engine::new();
    let oracle_id = oracle.open_session(&spec).unwrap();
    let direct = oracle
        .session_request(&SessionRequest::Use {
            id: oracle_id,
            ops,
            close_after: false,
        })
        .unwrap();
    assert_eq!(wire.replies, direct.replies, "wire diverged from replay");
    // And the wire body round-trips byte-identically.
    assert_eq!(
        resp.body.parse::<SessionResponse>().unwrap().to_string(),
        resp.body
    );

    let close_body = SessionRequest::Close { id }.to_string();
    let resp = conn.request("POST", "/session", &close_body).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert!(resp.body.contains("closed"), "{}", resp.body);
    handle.stop();
}

#[test]
fn closed_and_unknown_session_ids_are_400s_never_a_dead_connection() {
    let (spec, _) = session_fixture();
    let handle = spawn(Engine::new());
    let mut conn = open(&handle);
    let open_close = SessionRequest::Open {
        spec: Box::new(spec.clone()),
        ops: vec![SessionOp::Value],
        close_after: true,
    };
    let resp = conn
        .request("POST", "/session", &open_close.to_string())
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let closed_id = resp.body.parse::<SessionResponse>().unwrap().id;

    // The closed id, a never-allocated id, malformed bodies — all typed
    // 400s on the same keep-alive connection, which then still serves.
    for bad in [
        format!("session use {closed_id}\nvalue\n"),
        format!("session close {closed_id}\n"),
        "session use 999999\nvalue\n".to_string(),
        "session open\nvalue\n".to_string(), // no spec
        "value\n".to_string(),               // no header
        "session use 1\nexplain top 0\n".to_string(),
    ] {
        let resp = conn.request("POST", "/session", &bad).unwrap();
        assert_eq!(resp.status, 400, "{bad:?} -> {}", resp.body);
    }
    let resp = conn
        .request("POST", "/session", &open_close.to_string())
        .unwrap();
    assert_eq!(resp.status, 200, "connection survived: {}", resp.body);
    assert_eq!(conn.request("GET", "/session", "").unwrap().status, 405);
    handle.stop();
}

#[test]
fn tenant_session_cap_is_a_429_with_retry_after() {
    let (spec, _) = session_fixture();
    let handle = spawn(Engine::builder().max_sessions_per_tenant(1).build());
    let client = Client::new(handle.addr().to_string());
    let open = |tenant: &str| {
        SessionRequest::Open {
            spec: Box::new(spec.clone().with_tenant(tenant)),
            ops: Vec::new(),
            close_after: false,
        }
        .to_string()
    };
    let first = client.post("/session", &open("acme")).unwrap();
    assert_eq!(first.status, 200, "{}", first.body);
    let second = client.post("/session", &open("acme")).unwrap();
    assert_eq!(second.status, 429, "{}", second.body);
    assert_eq!(second.retry_after, Some(gfomc_serve::RETRY_AFTER_SECS));
    assert!(second.body.contains("session cap"), "{}", second.body);
    // Another tenant is unaffected, and closing refunds the slot.
    assert_eq!(client.post("/session", &open("other")).unwrap().status, 200);
    let id = first.body.parse::<SessionResponse>().unwrap().id;
    let close = SessionRequest::Close { id }.to_string();
    assert_eq!(client.post("/session", &close).unwrap().status, 200);
    assert_eq!(client.post("/session", &open("acme")).unwrap().status, 200);
    handle.stop();
}

#[test]
fn session_metrics_reach_the_scrape_endpoints() {
    let (spec, ops) = session_fixture();
    let handle = spawn(Engine::new());
    let client = Client::new(handle.addr().to_string());
    let body = SessionRequest::Open {
        spec: Box::new(spec),
        ops,
        close_after: false,
    }
    .to_string();
    let resp = client.post("/session", &body).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);

    let metrics = client.get("/metrics").unwrap().body;
    assert!(metrics.contains("engine_update_nanos_count"), "{metrics}");
    assert!(metrics.contains("engine_explain_nanos_count"), "{metrics}");
    assert!(
        metrics.contains("engine_sessions_opened_total 1"),
        "{metrics}"
    );
    assert!(metrics.contains("engine_sessions_open 1"), "{metrics}");
    assert!(
        metrics.contains("engine_request_nanos_count{route=\"session\"} 1"),
        "{metrics}"
    );
    handle.stop();
}

#[test]
fn traced_wire_responses_round_trip_with_phases() {
    let handle = spawn(Engine::new());
    let client = Client::new(handle.addr().to_string());
    let req = mixed_requests(0x7ACE, 2).remove(1).with_trace(); // unsafe -> compiled
    let resp = client.post("/eval", &req.to_string()).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let routed: Routed = resp.body.parse().expect("traced response parses");
    let trace = routed.trace.expect("trace requested");
    // The wire path always records the parse phase.
    assert!(trace.span("parse").is_some(), "{trace}");
    assert!(trace.span("route").is_some(), "{trace}");
    assert!(trace.total_nanos > 0);
    assert_eq!(trace.route.as_deref(), Some("compiled"));
    handle.stop();
}
