//! # gfomc-serve
//!
//! The engine as a network service: a std-only, thread-per-connection
//! HTTP/1.1 server sharing one [`Engine`] — and therefore one compilation
//! cache and one worker pool — across every client.
//!
//! The serving layer adds **no semantics** of its own. A request body is
//! parsed by the same [`EvalRequest`] parser the Rust API uses, routed by
//! the same [`Engine::evaluate_request`] front door, and answered with the
//! verbatim [`Routed`](gfomc_engine::Routed) text serialization — so a
//! response parsed off the wire is bit-identical to what a direct
//! in-process [`Engine::evaluate_auto`](Engine::evaluate_auto) call
//! returns, including seeded sampler estimates and outward-rounded CI
//! endpoints.
//!
//! What it does add is *admission control*: a bounded in-flight gate
//! ([`AdmissionGate`]) sized by the engine's
//! [`max_queue_depth`](Engine::max_queue_depth). When concurrent `/eval`
//! requests outrun the gate the server rejects **explicitly** — a 429
//! with a `Retry-After` header — rather than queueing without bound or
//! hanging the connection. Overload is a visible, typed condition, never
//! a stall.
//!
//! ## Endpoints
//!
//! | Method | Path      | Meaning                                               |
//! |--------|-----------|-------------------------------------------------------|
//! | POST   | `/eval`   | Route one [`EvalRequest`] body; 200 → [`Routed`](gfomc_engine::Routed) text, 400 → parse/budget error, 429 → at capacity |
//! | POST   | `/session`| One [`SessionRequest`](gfomc_engine::SessionRequest) body (open / use / close + update/explain ops); 200 → [`SessionResponse`](gfomc_engine::SessionResponse) text, 400 → parse/budget/session error, 429 → at capacity or tenant session cap |
//! | GET    | `/status` | Gate, pool, and cache counters as `key value` lines    |
//! | GET    | `/metrics`| Prometheus text exposition of the engine registry      |
//! | GET    | `/slow`   | Slow-query ring buffer: full traces of the slowest requests |
//! | GET    | `/routes` | Global and per-tenant route counts                     |
//! | GET    | `/cache`  | Compilation-cache statistics                           |
//!
//! `/status` and `/metrics` render the **same** engine
//! [`Registry`](gfomc_engine::Registry) (plain `key value` lines vs
//! Prometheus exposition), so a key present in one can never drift from
//! the other. The gate publishes its counters into that registry right
//! before each render.

pub mod client;
pub mod http;

use gfomc_engine::{Engine, EvalRequest, SessionError, SessionWireError};
use http::{read_request, write_response, Request, Response};
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

pub use client::{Client, Connection};

/// Seconds advertised in the `Retry-After` header of a 429 rejection.
pub const RETRY_AFTER_SECS: u64 = 1;

/// Bounded admission for in-flight `/eval` work: the server's explicit
/// backpressure mechanism.
///
/// [`try_admit`](AdmissionGate::try_admit) either hands back an RAII
/// [`Permit`] (released on drop, panics included) or refuses immediately —
/// there is no waiting state, which is what makes overload a 429 response
/// instead of a hang. The gate also keeps the counters `/status` reports:
/// high-water in-flight depth, total admitted, total rejected.
#[derive(Debug)]
pub struct AdmissionGate {
    max_depth: usize,
    in_flight: AtomicUsize,
    high_water: AtomicUsize,
    admitted: AtomicUsize,
    rejected: AtomicUsize,
}

/// Point-in-time snapshot of an [`AdmissionGate`]'s counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GateStats {
    /// Requests currently holding a permit.
    pub in_flight: usize,
    /// Most permits ever held at once.
    pub high_water: usize,
    /// Permits granted over the gate's lifetime.
    pub admitted: usize,
    /// Requests refused at capacity (each one a 429 on the wire).
    pub rejected: usize,
    /// The bound: permits available before refusals start.
    pub max_depth: usize,
}

impl AdmissionGate {
    /// A gate admitting at most `max_depth` concurrent permits. Zero
    /// means "reject everything" — useful for drills and tests.
    pub fn new(max_depth: usize) -> Arc<AdmissionGate> {
        Arc::new(AdmissionGate {
            max_depth,
            in_flight: AtomicUsize::new(0),
            high_water: AtomicUsize::new(0),
            admitted: AtomicUsize::new(0),
            rejected: AtomicUsize::new(0),
        })
    }

    /// Tries to take a permit. Returns `None` — immediately, never
    /// blocking — when `max_depth` permits are already out.
    pub fn try_admit(self: &Arc<AdmissionGate>) -> Option<Permit> {
        let mut current = self.in_flight.load(Ordering::Relaxed);
        loop {
            if current >= self.max_depth {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            match self.in_flight.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.high_water.fetch_max(current + 1, Ordering::Relaxed);
                    self.admitted.fetch_add(1, Ordering::Relaxed);
                    return Some(Permit {
                        gate: Arc::clone(self),
                    });
                }
                Err(seen) => current = seen,
            }
        }
    }

    /// Current counter values.
    pub fn stats(&self) -> GateStats {
        GateStats {
            in_flight: self.in_flight.load(Ordering::Relaxed),
            high_water: self.high_water.load(Ordering::Relaxed),
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            max_depth: self.max_depth,
        }
    }
}

/// An admitted request's slot, returned to the gate on drop.
#[derive(Debug)]
pub struct Permit {
    gate: Arc<AdmissionGate>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.gate.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// The serving loop: one listener, one shared [`Engine`], one
/// [`AdmissionGate`], a thread per accepted connection.
pub struct Server {
    engine: Arc<Engine>,
    gate: Arc<AdmissionGate>,
    listener: TcpListener,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Binds `addr` (use port 0 for an OS-assigned port) and wires the
    /// admission gate to the engine's configured
    /// [`max_queue_depth`](Engine::max_queue_depth).
    pub fn bind(engine: Arc<Engine>, addr: &str) -> io::Result<Server> {
        let gate = AdmissionGate::new(engine.max_queue_depth());
        Server::bind_with_gate(engine, addr, gate)
    }

    /// [`bind`](Server::bind) with an externally owned gate, so callers
    /// (tests, drills) can hold permits and observe counters directly.
    pub fn bind_with_gate(
        engine: Arc<Engine>,
        addr: &str,
        gate: Arc<AdmissionGate>,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            engine,
            gate,
            listener,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound socket address (with the OS-assigned port resolved).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The server's admission gate.
    pub fn gate(&self) -> Arc<AdmissionGate> {
        Arc::clone(&self.gate)
    }

    /// The shared engine.
    pub fn engine(&self) -> Arc<Engine> {
        Arc::clone(&self.engine)
    }

    /// Runs the accept loop on the calling thread until
    /// [`ServerHandle::stop`] flips the shutdown flag (or the listener
    /// dies). Each accepted connection gets its own thread running the
    /// keep-alive request loop.
    pub fn run(self) {
        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::Acquire) {
                break;
            }
            let Ok(stream) = stream else { continue };
            // Responses are flushed whole from a BufWriter; Nagle would
            // only add a delayed-ACK stall on top.
            stream.set_nodelay(true).ok();
            let engine = Arc::clone(&self.engine);
            let gate = Arc::clone(&self.gate);
            thread::spawn(move || {
                let _ = serve_connection(&engine, &gate, stream);
            });
        }
    }

    /// Moves the accept loop onto a background thread and returns a
    /// handle that can stop it.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let shutdown = Arc::clone(&self.shutdown);
        let gate = self.gate();
        let engine = self.engine();
        let join = thread::spawn(move || self.run());
        Ok(ServerHandle {
            addr,
            shutdown,
            gate,
            engine,
            join,
        })
    }
}

/// Handle to a spawned [`Server`]: address, counters, and shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    gate: Arc<AdmissionGate>,
    engine: Arc<Engine>,
    join: thread::JoinHandle<()>,
}

impl ServerHandle {
    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's admission gate (live, not a snapshot).
    pub fn gate(&self) -> Arc<AdmissionGate> {
        Arc::clone(&self.gate)
    }

    /// The shared engine behind the server.
    pub fn engine(&self) -> Arc<Engine> {
        Arc::clone(&self.engine)
    }

    /// Stops the accept loop and joins it. Connections already accepted
    /// finish their in-flight request loop on their own threads.
    pub fn stop(self) {
        self.shutdown.store(true, Ordering::Release);
        // Unblock the blocking accept with one throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = self.join.join();
    }
}

/// Keep-alive request loop for one accepted connection. Responses are
/// written in request order — the connection is the ordering domain.
fn serve_connection(
    engine: &Engine,
    gate: &Arc<AdmissionGate>,
    stream: TcpStream,
) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    // Buffered so each response leaves as one TCP segment (write_response
    // flushes); unbuffered multi-syscall writes re-introduce Nagle stalls.
    let mut writer = BufWriter::new(stream);
    loop {
        let req = match read_request(&mut reader) {
            Ok(Some(req)) => req,
            Ok(None) => return Ok(()), // clean close between requests
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Protocol violation: answer 400 and drop the connection
                // (framing is unrecoverable once the stream is off the
                // rails).
                let resp = Response::error(400, format!("protocol error: {e}"));
                write_response(&mut writer, &resp)?;
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        let close = req.close;
        let resp = route_request(engine, gate, &req);
        write_response(&mut writer, &resp)?;
        if close {
            return Ok(());
        }
    }
}

/// Maps one request to a response. Every error path is a typed response —
/// a request body must never panic a connection thread.
fn route_request(engine: &Engine, gate: &Arc<AdmissionGate>, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/eval") => match gate.try_admit() {
            None => at_capacity(gate),
            Some(_permit) => match engine.evaluate_wire(&req.body) {
                Ok(body) => Response::ok(body),
                Err(e) => Response::error(400, e.to_string()),
            },
        },
        ("POST", "/session") => match gate.try_admit() {
            None => at_capacity(gate),
            Some(_permit) => match engine.session_wire(&req.body) {
                Ok(body) => Response::ok(body),
                // An over-cap tenant is backpressure, not a bad request:
                // the client should retry after closing (or after its
                // other sessions close), so it gets the same 429 +
                // Retry-After contract as the admission gate.
                Err(SessionWireError::Session(SessionError::Limit { tenant, cap })) => {
                    let mut resp = Response::error(
                        429,
                        format!("tenant at session cap\ntenant {tenant}\nmax_sessions {cap}"),
                    );
                    resp.retry_after = Some(RETRY_AFTER_SECS);
                    resp
                }
                Err(e) => Response::error(400, e.to_string()),
            },
        },
        ("GET", "/status") => Response::ok(status_body(engine, gate)),
        ("GET", "/metrics") => Response::ok(metrics_body(engine, gate)),
        ("GET", "/slow") => Response::ok(engine.slow_log().render()),
        ("GET", "/routes") => Response::ok(routes_body(engine)),
        ("GET", "/cache") => Response::ok(cache_body(engine)),
        ("GET", "/eval")
        | ("GET", "/session")
        | ("POST", "/status")
        | ("POST", "/metrics")
        | ("POST", "/slow")
        | ("POST", "/routes")
        | ("POST", "/cache") => {
            Response::error(405, format!("{} not allowed on {}", req.method, req.path))
        }
        _ => Response::error(404, format!("no such endpoint: {}", req.path)),
    }
}

/// The gate's 429: human-readable first line, then machine-readable
/// `key value` lines a backoff policy can parse.
fn at_capacity(gate: &Arc<AdmissionGate>) -> Response {
    let stats = gate.stats();
    let mut resp = Response::error(
        429,
        format!(
            "server at capacity\nin_flight {}\nmax_depth {}",
            stats.in_flight, stats.max_depth
        ),
    );
    resp.retry_after = Some(RETRY_AFTER_SECS);
    resp
}

/// Publishes the gate's counters into the engine registry and refreshes
/// the engine-side gauges (cache occupancy, pool counters, process-wide
/// sampler/fallback tallies), so `/status` and `/metrics` both render
/// from one freshly synced key space.
fn sync_gauges(engine: &Engine, gate: &Arc<AdmissionGate>) {
    let g = gate.stats();
    let registry = engine.registry();
    registry.set_gauge("gate_queue_depth", &[], g.in_flight as u64);
    registry.set_gauge("gate_queue_high_water", &[], g.high_water as u64);
    registry.set_gauge("gate_queue_max_depth", &[], g.max_depth as u64);
    registry.set_gauge("gate_admitted", &[], g.admitted as u64);
    registry.set_gauge("gate_rejected", &[], g.rejected as u64);
    engine.refresh_gauges();
}

/// `/status`: every registry metric as plain `key value` lines (with
/// `_count`/`_p50`/`_p95`/`_p99` derivations for histograms).
fn status_body(engine: &Engine, gate: &Arc<AdmissionGate>) -> String {
    sync_gauges(engine, gate);
    engine.registry().render_plain()
}

/// `/metrics`: the same registry in Prometheus text exposition.
fn metrics_body(engine: &Engine, gate: &Arc<AdmissionGate>) -> String {
    sync_gauges(engine, gate);
    engine.registry().render_prometheus()
}

/// `/routes`: the global route tallies, then one line per tenant.
fn routes_body(engine: &Engine) -> String {
    let total = engine.route_counts();
    let mut out = format!(
        "total lifted {} compiled {} sampled {}\n",
        total.lifted, total.compiled, total.sampled
    );
    for (tenant, counts) in engine.tenant_route_counts() {
        out.push_str(&format!(
            "tenant {tenant} lifted {} compiled {} sampled {}\n",
            counts.lifted, counts.compiled, counts.sampled
        ));
    }
    out
}

/// `/cache`: compilation-cache statistics as `key value` lines.
fn cache_body(engine: &Engine) -> String {
    let c = engine.cache_stats();
    format!(
        "hits {}\nmisses {}\nentries {}\ncapacity {}\nevictions {}\nrejections {}\nhit_rate {}\n",
        c.hits,
        c.misses,
        c.entries,
        c.capacity,
        c.evictions,
        c.rejections,
        c.hit_rate()
    )
}

/// Convenience used by `gfomc-cli check` and the tests: render an
/// [`EvalRequest`] exactly as the client sends it.
pub fn request_body(req: &EvalRequest) -> String {
    req.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_admits_to_depth_then_rejects() {
        let gate = AdmissionGate::new(2);
        let a = gate.try_admit().expect("depth 0 -> 1");
        let b = gate.try_admit().expect("depth 1 -> 2");
        assert!(gate.try_admit().is_none(), "gate full at depth 2");
        let s = gate.stats();
        assert_eq!(
            (s.in_flight, s.high_water, s.admitted, s.rejected),
            (2, 2, 2, 1)
        );
        drop(a);
        let _c = gate.try_admit().expect("slot freed by drop");
        drop(b);
        let s = gate.stats();
        assert_eq!(s.in_flight, 1);
        assert_eq!(s.high_water, 2, "high water survives the drain");
    }

    #[test]
    fn zero_depth_gate_rejects_everything() {
        let gate = AdmissionGate::new(0);
        assert!(gate.try_admit().is_none());
        assert_eq!(gate.stats().rejected, 1);
    }

    #[test]
    fn gate_is_exact_under_contention() {
        let gate = AdmissionGate::new(3);
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let gate = Arc::clone(&gate);
                thread::spawn(move || {
                    let mut held = Vec::new();
                    for _ in 0..100 {
                        if let Some(p) = gate.try_admit() {
                            held.push(p);
                        }
                        held.clear();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = gate.stats();
        assert_eq!(s.in_flight, 0, "all permits returned");
        assert!(s.high_water <= 3, "bound never exceeded: {}", s.high_water);
    }
}
