//! A deliberately minimal HTTP/1.1 subset — just enough protocol for the
//! gfomc wire format to ride on, with zero dependencies.
//!
//! Supported: request line + headers + `Content-Length` bodies, keep-alive
//! (the HTTP/1.1 default) with `Connection: close` honored, and the five
//! status codes the service speaks (200/400/404/405/429, plus 500 for I/O
//! trouble). Chunked encoding, continuations, and multi-line headers are
//! out of scope: both ends of the wire are this crate and `gfomc-cli`.

use std::io::{self, BufRead, Read, Write};

/// Longest accepted request line, header line, or body, in bytes. A
/// network-facing parser needs a ceiling so a hostile peer cannot make a
/// connection thread allocate without bound.
pub const MAX_LINE: usize = 64 * 1024;
/// Body size ceiling (requests and responses).
pub const MAX_BODY: usize = 16 * 1024 * 1024;

/// One parsed request: method, path, and the (possibly empty) body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Upper-case method token, e.g. `GET` or `POST`.
    pub method: String,
    /// Request target as sent, e.g. `/eval`.
    pub path: String,
    /// Decoded `Content-Length` body.
    pub body: String,
    /// True when the client asked for `Connection: close`.
    pub close: bool,
}

/// One response: status code, optional `Retry-After` seconds, and a body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// Status code (200, 400, 404, 405, 429, 500).
    pub status: u16,
    /// When present, written as a `Retry-After` header — the explicit
    /// backpressure signal on 429 rejections.
    pub retry_after: Option<u64>,
    /// Response body (the `Routed` wire text on 200, an error line
    /// otherwise).
    pub body: String,
}

impl Response {
    /// A 200 response carrying `body`.
    pub fn ok(body: impl Into<String>) -> Response {
        Response {
            status: 200,
            retry_after: None,
            body: body.into(),
        }
    }

    /// An error response with `status` and a human-readable reason line.
    pub fn error(status: u16, reason: impl Into<String>) -> Response {
        let mut body = reason.into();
        if !body.ends_with('\n') {
            body.push('\n');
        }
        Response {
            status,
            retry_after: None,
            body,
        }
    }
}

/// The reason phrase for the status codes this service emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        _ => "Internal Server Error",
    }
}

/// Reads one CRLF- (or LF-) terminated line, enforcing [`MAX_LINE`].
/// Returns `None` on clean EOF before any byte.
fn read_line(r: &mut impl BufRead) -> io::Result<Option<String>> {
    let mut line = Vec::new();
    let mut limited = r.take(MAX_LINE as u64 + 1);
    let n = limited.read_until(b'\n', &mut line)?;
    if n == 0 {
        return Ok(None);
    }
    if line.len() > MAX_LINE {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "header line too long",
        ));
    }
    while line.last() == Some(&b'\n') || line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 header"))
}

/// Header fields the subset cares about, parsed case-insensitively.
#[derive(Default)]
struct Headers {
    content_length: usize,
    close: bool,
    retry_after: Option<u64>,
}

/// Reads header lines until the blank separator.
fn read_headers(r: &mut impl BufRead) -> io::Result<Headers> {
    let mut h = Headers::default();
    loop {
        let line = read_line(r)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "eof in headers"))?;
        if line.is_empty() {
            return Ok(h);
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "malformed header line",
            ));
        };
        let value = value.trim();
        match name.to_ascii_lowercase().as_str() {
            "content-length" => {
                h.content_length = value.parse().map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "bad content-length")
                })?;
                if h.content_length > MAX_BODY {
                    return Err(io::Error::new(io::ErrorKind::InvalidData, "body too large"));
                }
            }
            "connection" => h.close = value.eq_ignore_ascii_case("close"),
            "retry-after" => h.retry_after = value.parse().ok(),
            _ => {}
        }
    }
}

/// Reads exactly `len` body bytes as UTF-8.
fn read_body(r: &mut impl BufRead, len: usize) -> io::Result<String> {
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 body"))
}

/// Reads one request off a keep-alive connection. `Ok(None)` means the
/// peer closed cleanly between requests; protocol violations are
/// `io::ErrorKind::InvalidData` errors the server maps to a 400.
pub fn read_request(r: &mut impl BufRead) -> io::Result<Option<Request>> {
    let Some(line) = read_line(r)? else {
        return Ok(None);
    };
    let mut parts = line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) => (m, p, v),
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "malformed request line",
            ))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "unsupported protocol version",
        ));
    }
    let headers = read_headers(r)?;
    let body = read_body(r, headers.content_length)?;
    Ok(Some(Request {
        method: method.to_string(),
        path: path.to_string(),
        body,
        close: headers.close,
    }))
}

/// Writes one request (client side).
pub fn write_request(
    w: &mut impl Write,
    method: &str,
    path: &str,
    body: &str,
    close: bool,
) -> io::Result<()> {
    write!(w, "{method} {path} HTTP/1.1\r\n")?;
    write!(w, "Content-Length: {}\r\n", body.len())?;
    if close {
        write!(w, "Connection: close\r\n")?;
    }
    write!(w, "\r\n{body}")?;
    w.flush()
}

/// Writes one response (server side).
pub fn write_response(w: &mut impl Write, resp: &Response) -> io::Result<()> {
    write!(w, "HTTP/1.1 {} {}\r\n", resp.status, reason(resp.status))?;
    write!(w, "Content-Length: {}\r\n", resp.body.len())?;
    write!(w, "Content-Type: text/plain\r\n")?;
    if let Some(secs) = resp.retry_after {
        write!(w, "Retry-After: {secs}\r\n")?;
    }
    write!(w, "\r\n{}", resp.body)?;
    w.flush()
}

/// Reads one response (client side).
pub fn read_response(r: &mut impl BufRead) -> io::Result<Response> {
    let line = read_line(r)?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "connection closed"))?;
    let status = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed status line"))?;
    let headers = read_headers(r)?;
    let body = read_body(r, headers.content_length)?;
    Ok(Response {
        status,
        retry_after: headers.retry_after,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn request_roundtrips() {
        let mut wire = Vec::new();
        write_request(&mut wire, "POST", "/eval", "query x\n", false).unwrap();
        let req = read_request(&mut BufReader::new(&wire[..]))
            .unwrap()
            .unwrap();
        assert_eq!(
            req,
            Request {
                method: "POST".into(),
                path: "/eval".into(),
                body: "query x\n".into(),
                close: false,
            }
        );
        // Clean EOF after the request: keep-alive loop sees None.
        let mut r = BufReader::new(&wire[..]);
        read_request(&mut r).unwrap();
        assert_eq!(read_request(&mut r).unwrap(), None);
    }

    #[test]
    fn response_roundtrips_with_retry_after() {
        let resp = Response {
            status: 429,
            retry_after: Some(1),
            body: "server at capacity\n".into(),
        };
        let mut wire = Vec::new();
        write_response(&mut wire, &resp).unwrap();
        let back = read_response(&mut BufReader::new(&wire[..])).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn malformed_inputs_are_errors_not_panics() {
        for bad in [
            "GARBAGE\r\n\r\n",
            "GET /x HTTP/2\r\n\r\n",
            "GET /x HTTP/1.1\r\nContent-Length: zebra\r\n\r\n",
            "GET /x HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n",
            "GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n",
            "GET /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nab",
        ] {
            let err = read_request(&mut BufReader::new(bad.as_bytes()));
            assert!(err.is_err(), "{bad:?}");
        }
    }
}
