//! `gfomc-serve` — run the engine as a network service.
//!
//! ```text
//! gfomc-serve [--addr HOST:PORT] [--cache-capacity N]
//!             [--max-queue-depth N] [--threads N]
//!             [--slow-threshold-us MICROS]
//! ```
//!
//! Prints `listening on <addr>` once the socket is bound (with an
//! OS-assigned port resolved, so `--addr 127.0.0.1:0` is scriptable),
//! then serves until killed.

use gfomc_engine::{
    Engine, DEFAULT_CACHE_CAPACITY, DEFAULT_MAX_QUEUE_DEPTH, DEFAULT_SLOW_THRESHOLD_NANOS,
};
use gfomc_pool::WorkerPool;
use gfomc_serve::Server;
use std::io::Write;
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:7070".to_string();
    let mut cache_capacity = DEFAULT_CACHE_CAPACITY;
    let mut max_queue_depth = DEFAULT_MAX_QUEUE_DEPTH;
    let mut threads: Option<usize> = None;
    let mut slow_threshold_nanos = DEFAULT_SLOW_THRESHOLD_NANOS;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        let parsed = match flag.as_str() {
            "--addr" => value("--addr").map(|v| addr = v),
            "--cache-capacity" => value("--cache-capacity").and_then(|v| {
                v.parse()
                    .map(|n| cache_capacity = n)
                    .map_err(|_| format!("bad --cache-capacity '{v}'"))
            }),
            "--max-queue-depth" => value("--max-queue-depth").and_then(|v| {
                v.parse()
                    .map(|n| max_queue_depth = n)
                    .map_err(|_| format!("bad --max-queue-depth '{v}'"))
            }),
            "--threads" => value("--threads").and_then(|v| {
                v.parse()
                    .map(|n| threads = Some(n))
                    .map_err(|_| format!("bad --threads '{v}'"))
            }),
            "--slow-threshold-us" => value("--slow-threshold-us").and_then(|v| {
                v.parse::<u64>()
                    .map(|us| slow_threshold_nanos = us.saturating_mul(1_000))
                    .map_err(|_| format!("bad --slow-threshold-us '{v}'"))
            }),
            "--help" | "-h" => {
                println!(
                    "usage: gfomc-serve [--addr HOST:PORT] [--cache-capacity N] \
                     [--max-queue-depth N] [--threads N] [--slow-threshold-us MICROS]"
                );
                return ExitCode::SUCCESS;
            }
            other => Err(format!("unknown flag '{other}'")),
        };
        if let Err(msg) = parsed {
            eprintln!("gfomc-serve: {msg}");
            return ExitCode::FAILURE;
        }
    }

    let mut builder = Engine::builder()
        .cache_capacity(cache_capacity)
        .max_queue_depth(max_queue_depth)
        .slow_threshold_nanos(slow_threshold_nanos);
    if let Some(n) = threads {
        builder = builder.pool(Arc::new(WorkerPool::new(n)));
    }
    let engine = Arc::new(builder.build());

    let server = match Server::bind(engine, &addr) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("gfomc-serve: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(bound) => {
            // Scripts (the CI smoke job among them) wait for this line.
            println!("listening on {bound}");
            let _ = std::io::stdout().flush();
        }
        Err(e) => {
            eprintln!("gfomc-serve: {e}");
            return ExitCode::FAILURE;
        }
    }
    server.run();
    ExitCode::SUCCESS
}
