//! Blocking client for the gfomc service — shared by `gfomc-cli` and the
//! test suite, so both speak exactly the protocol the server implements.

use crate::http::{read_response, write_request, Response};
use std::io::{self, BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};

/// A persistent keep-alive connection. Requests written on one
/// [`Connection`] are answered in order — the connection is the server's
/// ordering domain.
pub struct Connection {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Connection {
    /// Opens a TCP connection to the service.
    pub fn open(addr: impl ToSocketAddrs) -> io::Result<Connection> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Connection {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    /// Read timeout for responses on this connection. Tests set one so a
    /// server that wrongly blocks (instead of rejecting) fails fast
    /// rather than hanging the suite.
    pub fn set_read_timeout(&self, dur: Option<std::time::Duration>) -> io::Result<()> {
        self.writer.get_ref().set_read_timeout(dur)
    }

    /// One request/response round trip on the keep-alive stream.
    pub fn request(&mut self, method: &str, path: &str, body: &str) -> io::Result<Response> {
        write_request(&mut self.writer, method, path, body, false)?;
        read_response(&mut self.reader)
    }

    /// Writes a request without waiting for the response; pair with
    /// [`read`](Connection::read). Lets a test pipeline several requests
    /// and then check the responses come back in request order.
    pub fn send(&mut self, method: &str, path: &str, body: &str) -> io::Result<()> {
        write_request(&mut self.writer, method, path, body, false)
    }

    /// Reads the next pipelined response.
    pub fn read(&mut self) -> io::Result<Response> {
        read_response(&mut self.reader)
    }
}

/// One-shot client: each call opens a fresh `Connection: close` exchange.
#[derive(Clone, Debug)]
pub struct Client {
    addr: String,
}

impl Client {
    /// A client for the service at `addr` (e.g. `127.0.0.1:7070`).
    pub fn new(addr: impl Into<String>) -> Client {
        Client { addr: addr.into() }
    }

    /// The configured address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// One `POST` exchange on a fresh connection.
    pub fn post(&self, path: &str, body: &str) -> io::Result<Response> {
        self.exchange("POST", path, body)
    }

    /// One `GET` exchange on a fresh connection.
    pub fn get(&self, path: &str) -> io::Result<Response> {
        self.exchange("GET", path, "")
    }

    fn exchange(&self, method: &str, path: &str, body: &str) -> io::Result<Response> {
        let stream = TcpStream::connect(&self.addr)?;
        stream.set_nodelay(true).ok();
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut writer = BufWriter::new(stream);
        write_request(&mut writer, method, path, body, true)?;
        read_response(&mut reader)
    }
}
