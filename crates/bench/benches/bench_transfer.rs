//! E2/E4 — transfer matrices A(p) from block lineages (Lemma 3.19,
//! Proposition 3.20): direct WMC vs matrix-power computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gfomc_core::transfer::{proposition_3_20_holds, transfer_matrix};
use gfomc_query::catalog;

fn bench_transfer(c: &mut Criterion) {
    let q = catalog::h1();
    let mut group = c.benchmark_group("transfer_direct_wmc");
    for p in [1usize, 2, 4, 6] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| transfer_matrix(&q, p))
        });
    }
    group.finish();

    // The Lemma 3.19 shortcut: A(p) from A(1) by matrix power.
    let a1 = transfer_matrix(&q, 1);
    assert!(proposition_3_20_holds(&a1));
    let mut group = c.benchmark_group("transfer_matrix_power");
    for p in [2u32, 4, 6, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| a1.pow(p))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Short measurement windows: these benches regenerate experiment
    // timing series, not micro-optimization data.
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900));
    targets = bench_transfer
}
criterion_main!(benches);
