//! The approximate-inference regime on its first-class workload: the
//! unsafe-query / large-block preset, where exact compilation is off the
//! table and wall-time scales with the *sample budget* instead of the
//! lineage.
//!
//! Six series:
//!
//! * `sampler_scaleN/S` — Karp–Luby estimation at `S` samples on a
//!   `N×N` unsafe block (sampling cost is linear in `S`, near-flat in the
//!   database: the regime the dichotomy says the exact stack cannot offer);
//! * `sampler_parallel/T` — the chunk-seeded plan on `T` OS threads: the
//!   estimate is bit-identical across rows (asserted), only wall-clock
//!   moves, and on a multi-core host the 4-thread row should run ≥2×
//!   faster than the 1-thread row;
//! * `fixed_width_sampler/T` — the raw chunked hit-count loop (word-packed
//!   world bitsets, whole-word canonical scan, no `Rational` until the
//!   estimate) at 1/2/4 workers;
//! * `stopping_rule/{fixed, adaptive}` — the fixed KLM budget against the
//!   empirical-Bernstein adaptive stopper at the same (ε, δ);
//! * `router` — `Engine::evaluate_auto` end to end, including the safety
//!   verdict, lineage grounding, and cost estimate that precede sampling;
//! * `sampler_vs_exact` — head-to-head on a small instance where both
//!   regimes are feasible, to keep the crossover honest.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gfomc_approx::{lineage_sampler, AdaptiveConfig};
use gfomc_engine::workload::unsafe_block_preset;
use gfomc_engine::{Budget, Engine};
use gfomc_query::BipartiteQuery;
use gfomc_tid::Tid;
use rand::{rngs::StdRng, SeedableRng};

const DELTA: f64 = 0.05;

fn preset(scale: u32) -> (BipartiteQuery, Tid) {
    let mut rng = StdRng::seed_from_u64(0xA55E55);
    unsafe_block_preset(&mut rng, 2, scale)
}

fn bench_sampler_scaling(c: &mut Criterion) {
    for scale in [4u32, 6] {
        let (q, tid) = preset(scale);
        let sampler = lineage_sampler(&q, &tid);
        let mut group = c.benchmark_group(&format!("approx_sampler_{scale}x{scale}"));
        for samples in [500u64, 2_000] {
            group.bench_with_input(
                BenchmarkId::from_parameter(samples),
                &samples,
                |b, &samples| {
                    b.iter(|| {
                        let mut rng = StdRng::seed_from_u64(7);
                        criterion::black_box(sampler.estimate(&mut rng, samples, DELTA))
                    })
                },
            );
        }
        group.finish();
    }
}

fn bench_sampler_parallel(c: &mut Criterion) {
    let (q, tid) = preset(6);
    let sampler = lineage_sampler(&q, &tid);
    let samples = 20_000u64;
    // Thread count must never move the estimate — pin it before timing.
    let expect = sampler.estimate_seeded(7, samples, DELTA, 1);
    let mut group = c.benchmark_group("approx_sampler_parallel_6x6");
    for threads in [1usize, 2, 4] {
        assert_eq!(
            expect,
            sampler.estimate_seeded(7, samples, DELTA, threads),
            "estimate moved at {threads} threads"
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| criterion::black_box(sampler.estimate_seeded(7, samples, DELTA, threads)))
            },
        );
    }
    group.finish();
}

fn bench_stopping_rule(c: &mut Criterion) {
    let (q, tid) = preset(5);
    let sampler = lineage_sampler(&q, &tid);
    let eps = 0.05;
    let fixed = sampler.fpras_samples(eps, DELTA);
    let adaptive = sampler.estimate_adaptive(&AdaptiveConfig::new(eps, DELTA, 7));
    assert!(
        adaptive.estimate.samples <= fixed,
        "adaptive {} vs fixed {}",
        adaptive.estimate.samples,
        fixed
    );
    let mut group = c.benchmark_group("approx_stopping_rule_5x5");
    group.bench_function("fixed_klm_budget", |b| {
        b.iter(|| criterion::black_box(sampler.estimate_seeded(7, fixed, DELTA, 1)))
    });
    group.bench_function("adaptive_bernstein", |b| {
        b.iter(|| {
            criterion::black_box(sampler.estimate_adaptive(&AdaptiveConfig::new(eps, DELTA, 7)))
        })
    });
    group.finish();
}

fn bench_router_end_to_end(c: &mut Criterion) {
    let (q, tid) = preset(5);
    // Zero circuit budget pins the sampled route (the refined cost bound
    // would otherwise compile this preset exactly): the series tracks the
    // sampled path end to end — safety verdict, grounding, sampler build,
    // and draws.
    let budget = Budget::default()
        .with_max_circuit_cost(0)
        .with_samples(1_000)
        .expect("positive sample budget");
    c.bench_function("approx_router/unsafe_5x5_sampled_1000s", |b| {
        b.iter(|| {
            let engine = Engine::new();
            criterion::black_box(engine.evaluate_auto(&q, &tid, &budget))
        })
    });
    // The routing win itself: the same instance under the *default*
    // budget now takes the exact compiled path.
    let default_budget = Budget::default();
    c.bench_function("approx_router/unsafe_5x5_rerouted_exact", |b| {
        b.iter(|| {
            let engine = Engine::new();
            let routed = engine.evaluate_auto(&q, &tid, &default_budget);
            assert_eq!(routed.route, gfomc_engine::Route::Compiled);
            criterion::black_box(routed)
        })
    });
}

/// The fixed-width per-sample loop after the bitset refactor: worlds are
/// word-packed `u64` bitsets, the canonical-term scan is whole-word mask
/// arithmetic, and `Rational` appears only at hit-count → estimate. Rows
/// differ only in worker count; the chunk-seeded plan keeps every row's
/// estimate bit-identical (asserted), so the group isolates the fixed-width
/// draw loop's throughput and its thread scaling.
fn bench_fixed_width_sampler(c: &mut Criterion) {
    let (q, tid) = preset(6);
    let sampler = lineage_sampler(&q, &tid);
    let samples = 50_000u64;
    let expect = sampler.karp_luby().hits_in_range(7, 0, samples, 1);
    let mut group = c.benchmark_group("approx_fixed_width_sampler_6x6");
    for threads in [1usize, 2, 4] {
        assert_eq!(
            expect,
            sampler.karp_luby().hits_in_range(7, 0, samples, threads),
            "hit count moved at {threads} threads"
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    criterion::black_box(sampler.karp_luby().hits_in_range(7, 0, samples, threads))
                })
            },
        );
    }
    group.finish();
}

fn bench_sampler_vs_exact(c: &mut Criterion) {
    // 2×2 block: small enough that the compiled circuit is cheap — the
    // sampler should only win once lineages outgrow this regime.
    let (q, tid) = preset(2);
    let mut group = c.benchmark_group("approx_vs_exact_2x2");
    let sampler = lineage_sampler(&q, &tid);
    group.bench_function("sampler_1000s", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            criterion::black_box(sampler.estimate(&mut rng, 1_000, DELTA))
        })
    });
    group.bench_function("compiled_exact", |b| {
        b.iter(|| {
            let compiled = Engine::new().compile(&q, &tid);
            criterion::black_box(compiled.evaluate_db())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sampler_scaling,
    bench_sampler_parallel,
    bench_fixed_width_sampler,
    bench_stopping_rule,
    bench_router_end_to_end,
    bench_sampler_vs_exact
);
criterion_main!(benches);
