//! The approximate-inference regime on its first-class workload: the
//! unsafe-query / large-block preset, where exact compilation is off the
//! table and wall-time scales with the *sample budget* instead of the
//! lineage.
//!
//! Three series:
//!
//! * `sampler_scaleN/S` — Karp–Luby estimation at `S` samples on a
//!   `N×N` unsafe block (sampling cost is linear in `S`, near-flat in the
//!   database: the regime the dichotomy says the exact stack cannot offer);
//! * `router` — `Engine::evaluate_auto` end to end, including the safety
//!   verdict, lineage grounding, and cost estimate that precede sampling;
//! * `sampler_vs_exact` — head-to-head on a small instance where both
//!   regimes are feasible, to keep the crossover honest.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gfomc_approx::lineage_sampler;
use gfomc_engine::workload::unsafe_block_preset;
use gfomc_engine::{Budget, Engine};
use gfomc_query::BipartiteQuery;
use gfomc_tid::Tid;
use rand::{rngs::StdRng, SeedableRng};

const DELTA: f64 = 0.05;

fn preset(scale: u32) -> (BipartiteQuery, Tid) {
    let mut rng = StdRng::seed_from_u64(0xA55E55);
    unsafe_block_preset(&mut rng, 2, scale)
}

fn bench_sampler_scaling(c: &mut Criterion) {
    for scale in [4u32, 6] {
        let (q, tid) = preset(scale);
        let sampler = lineage_sampler(&q, &tid);
        let mut group = c.benchmark_group(&format!("approx_sampler_{scale}x{scale}"));
        for samples in [500u64, 2_000] {
            group.bench_with_input(
                BenchmarkId::from_parameter(samples),
                &samples,
                |b, &samples| {
                    b.iter(|| {
                        let mut rng = StdRng::seed_from_u64(7);
                        criterion::black_box(sampler.estimate(&mut rng, samples, DELTA))
                    })
                },
            );
        }
        group.finish();
    }
}

fn bench_router_end_to_end(c: &mut Criterion) {
    let (q, tid) = preset(5);
    let budget = Budget::default().with_samples(1_000);
    c.bench_function("approx_router/unsafe_5x5_1000s", |b| {
        b.iter(|| {
            let mut engine = Engine::new();
            criterion::black_box(engine.evaluate_auto(&q, &tid, &budget))
        })
    });
}

fn bench_sampler_vs_exact(c: &mut Criterion) {
    // 2×2 block: small enough that the compiled circuit is cheap — the
    // sampler should only win once lineages outgrow this regime.
    let (q, tid) = preset(2);
    let mut group = c.benchmark_group("approx_vs_exact_2x2");
    let sampler = lineage_sampler(&q, &tid);
    group.bench_function("sampler_1000s", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            criterion::black_box(sampler.estimate(&mut rng, 1_000, DELTA))
        })
    });
    group.bench_function("compiled_exact", |b| {
        b.iter(|| {
            let compiled = Engine::new().compile(&q, &tid);
            criterion::black_box(compiled.evaluate_db())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sampler_scaling,
    bench_router_end_to_end,
    bench_sampler_vs_exact
);
criterion_main!(benches);
