//! The engine's headline claim: compile-once / evaluate-many beats N
//! independent WMC runs on a block-TID workload.
//!
//! The workload is the paper's own shape (§3, Theorem 3.4): one block
//! database, one lineage, *many* weight assignments. The `independent_wmc`
//! series re-grounds the query and re-runs Shannon expansion for every
//! assignment (what callers did before `gfomc-engine`); the
//! `compile_once` series compiles the lineage once and prices every
//! assignment with a bottom-up circuit pass.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gfomc_arith::Rational;
use gfomc_engine::workload::{random_block_tid, random_weightings, unsafe_block_preset};
use gfomc_engine::{Engine, TupleWeights};
use gfomc_logic::{wmc, Circuit};
use gfomc_query::{catalog, BipartiteQuery};
use gfomc_tid::{lineage, Tid};
use rand::{rngs::StdRng, SeedableRng};

/// Number of weight assignments per workload — the acceptance bar is ≥ 10.
const N_WEIGHTS: usize = 12;

fn workload(q: &BipartiteQuery, nu: u32, nv: u32) -> (Tid, Vec<TupleWeights>) {
    let mut rng = StdRng::seed_from_u64(0xB10C);
    let tid = random_block_tid(&mut rng, q, nu, nv);
    let support = Engine::new().compile(q, &tid).tuples();
    let weightings = random_weightings(&mut rng, &support, N_WEIGHTS);
    (tid, weightings)
}

/// The legacy path: one full lineage + Shannon expansion per assignment.
fn independent_wmc(q: &BipartiteQuery, tid: &Tid, weightings: &[TupleWeights]) -> usize {
    let mut out = 0;
    for w in weightings {
        let mut db = tid.clone();
        for (&t, p) in w.iter() {
            db.set_prob(t, p.clone());
        }
        let lin = lineage(q, &db);
        let p = wmc(&lin.cnf, lin.vars.weights());
        out += usize::from(!p.is_zero());
    }
    out
}

/// The compiled path: one compilation, then one circuit pass per assignment.
fn compile_once(q: &BipartiteQuery, tid: &Tid, weightings: &[TupleWeights]) -> usize {
    let compiled = Engine::new().compile(q, tid);
    compiled
        .evaluate_batch(weightings)
        .iter()
        .filter(|p| !p.is_zero())
        .count()
}

fn bench_engine_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_batch_h1");
    for (nu, nv) in [(2u32, 2u32), (3, 3)] {
        let q = catalog::h1();
        let (tid, weightings) = workload(&q, nu, nv);
        group.bench_with_input(
            BenchmarkId::new("compile_once", format!("{nu}x{nv}x{N_WEIGHTS}")),
            &(),
            |b, ()| b.iter(|| compile_once(&q, &tid, &weightings)),
        );
        group.bench_with_input(
            BenchmarkId::new("independent_wmc", format!("{nu}x{nv}x{N_WEIGHTS}")),
            &(),
            |b, ()| b.iter(|| independent_wmc(&q, &tid, &weightings)),
        );
    }
    group.finish();
}

/// Parallel batch evaluation: the same compiled circuit priced under a
/// wider weighting sweep on 1/2/4 threads. Results are bit-identical
/// across rows (exact rational arithmetic); only wall-clock moves.
fn bench_engine_batch_parallel(c: &mut Criterion) {
    let q = catalog::h1();
    let mut rng = StdRng::seed_from_u64(0xB10C);
    let tid = random_block_tid(&mut rng, &q, 3, 3);
    let compiled = Engine::new().compile(&q, &tid);
    let weightings = random_weightings(&mut rng, &compiled.tuples(), 64);
    let expect = compiled.evaluate_batch(&weightings);
    let mut group = c.benchmark_group("engine_batch_parallel_h1_3x3_64w");
    for threads in [1usize, 2, 4] {
        assert_eq!(
            expect,
            compiled.evaluate_batch_threads(&weightings, threads)
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| b.iter(|| compiled.evaluate_batch_threads(&weightings, threads)),
        );
    }
    group.finish();
}

/// The compilation cache on a repeated-compile workload: the second and
/// later `Engine::compile` calls for the same canonical lineage are cache
/// hits (an `Arc` bump plus a fresh var table), not recompilations.
fn bench_engine_cache(c: &mut Criterion) {
    let q = catalog::h1();
    let mut rng = StdRng::seed_from_u64(0xB10C);
    let tid = random_block_tid(&mut rng, &q, 3, 3);
    let mut group = c.benchmark_group("engine_compile_cache_h1_3x3");
    group.bench_function("cold", |b| {
        b.iter(|| {
            Engine::builder()
                .cache_capacity(0)
                .build()
                .compile(&q, &tid)
        })
    });
    let engine = Engine::new();
    engine.compile(&q, &tid);
    group.bench_function("hit", |b| b.iter(|| engine.compile(&q, &tid)));
    group.finish();
    assert!(engine.cache_stats().hits > 0);
}

fn bench_engine_batch_h2(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_batch_h2");
    let q = catalog::hk(2);
    let (tid, weightings) = workload(&q, 2, 2);
    group.bench_function(BenchmarkId::new("compile_once", N_WEIGHTS), |b| {
        b.iter(|| compile_once(&q, &tid, &weightings))
    });
    group.bench_function(BenchmarkId::new("independent_wmc", N_WEIGHTS), |b| {
        b.iter(|| independent_wmc(&q, &tid, &weightings))
    });
    group.finish();
}

/// The flat struct-of-arrays forward pass against the recursive tree
/// evaluator, on the same compiled lineage (the seeded 3×3 unsafe-block
/// preset). Both rows return the same `Rational` bit-for-bit — only the
/// traversal differs: dense slices and packed children vs pointer-chased
/// `Box`ed nodes.
fn bench_flat_vs_tree(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0xA55E55);
    let (q, tid) = unsafe_block_preset(&mut rng, 2, 3);
    let lin = lineage(&q, &tid);
    let tree = Circuit::compile(&lin.cnf);
    let flat = tree.flatten();
    let w = lin.vars.weights();
    assert_eq!(flat.eval_exact(w), tree.evaluate(w));
    let mut group = c.benchmark_group("flat_vs_tree_unsafe_3x3");
    group.bench_function("flat_eval_exact", |b| b.iter(|| flat.eval_exact(w)));
    group.bench_function("tree_evaluate", |b| b.iter(|| tree.evaluate(w)));
    group.finish();
}

/// The interval fast path against the exact rational pass on the compiled
/// preset: a full threshold sweep certified from f64 intervals (with exact
/// fallback only where the interval is inconclusive) vs pricing the exact
/// value once and comparing rationally.
fn bench_interval_vs_exact(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0xA55E55);
    let (q, tid) = unsafe_block_preset(&mut rng, 2, 3);
    let compiled = Engine::new().compile(&q, &tid);
    let thresholds: Vec<Rational> = (0..=16).map(|k| Rational::from_ints(k, 16)).collect();
    let exact = compiled.evaluate_db();
    for t in &thresholds {
        assert_eq!(compiled.certify_le_db(t).0, &exact <= t);
    }
    let mut group = c.benchmark_group("interval_vs_exact_unsafe_3x3");
    group.bench_function("interval_certify_sweep", |b| {
        b.iter(|| {
            thresholds
                .iter()
                .filter(|t| compiled.certify_le_db(t).0)
                .count()
        })
    });
    group.bench_function("exact_eval_sweep", |b| {
        b.iter(|| {
            let p = compiled.evaluate_db();
            thresholds.iter().filter(|t| &p <= t).count()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_engine_batch,
    bench_engine_batch_parallel,
    bench_engine_cache,
    bench_engine_batch_h2,
    bench_flat_vs_tree,
    bench_interval_vs_exact
);
criterion_main!(benches);
