//! E11 — the CNF lattice with Möbius function (Definition C.6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gfomc_logic::{Clause, Cnf, Var};
use gfomc_query::MobiusLattice;

fn conj(vars: &[u32]) -> Cnf {
    Cnf::new(vars.iter().map(|&v| Clause::new([Var(v)])))
}

fn bench_lattice(c: &mut Criterion) {
    // Example C.7's two lattices.
    let triangle = [conj(&[1, 2]), conj(&[1, 3]), conj(&[2, 3])];
    c.bench_function("lattice_example_c7a", |b| {
        b.iter(|| MobiusLattice::build(&triangle))
    });
    // Chain families of growing size.
    let mut group = c.benchmark_group("lattice_chain");
    for m in [3usize, 5, 7, 9] {
        let formulas: Vec<Cnf> = (0..m as u32).map(|i| conj(&[i, i + 1])).collect();
        group.bench_with_input(BenchmarkId::from_parameter(m), &formulas, |b, f| {
            b.iter(|| MobiusLattice::build(f))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Short measurement windows: these benches regenerate experiment
    // timing series, not micro-optimization data.
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900));
    targets = bench_lattice
}
criterion_main!(benches);
