//! E10 — the zg(Q) rewriting and the Lemma A.1 probability-preserving
//! database map.

use criterion::{criterion_group, criterion_main, Criterion};
use gfomc_core::zigzag::{pseudo_random_delta, zg_database, zg_query};
use gfomc_query::catalog;
use gfomc_tid::probability;

fn bench_zigzag(c: &mut Criterion) {
    c.bench_function("zg_query_h1", |b| b.iter(|| zg_query(&catalog::h1())));
    c.bench_function("zg_query_a3", |b| {
        b.iter(|| zg_query(&catalog::example_a3()))
    });
    let zq = zg_query(&catalog::h1());
    let delta = pseudo_random_delta(&zq, 2, 2, 42);
    c.bench_function("zg_database_map", |b| b.iter(|| zg_database(&zq, &delta)));
    c.bench_function("lemma_a1_both_sides", |b| {
        b.iter(|| {
            let lhs = probability(&zq.query, &delta);
            let rhs = probability(&catalog::h1(), &zg_database(&zq, &delta));
            assert_eq!(lhs, rhs);
        })
    });
}

criterion_group! {
    name = benches;
    // Short measurement windows: these benches regenerate experiment
    // timing series, not micro-optimization data.
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900));
    targets = bench_zigzag
}
criterion_main!(benches);
