//! E6 — assembling and solving the big system of Theorem 3.6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gfomc_core::big_system;
use gfomc_core::transfer::transfer_matrix;
use gfomc_query::catalog;

fn bench_big_matrix(c: &mut Criterion) {
    let q = catalog::h1();
    let mut group = c.benchmark_group("big_system_build_and_invert");
    for m in [1usize, 2, 3, 4] {
        let z: Vec<_> = (1..=m + 1).map(|p| transfer_matrix(&q, p)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            b.iter(|| {
                let sys = big_system(&z, m);
                assert!(sys.matrix.is_invertible());
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Short measurement windows: these benches regenerate experiment
    // timing series, not micro-optimization data.
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900));
    targets = bench_big_matrix
}
criterion_main!(benches);
