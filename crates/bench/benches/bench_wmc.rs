//! Substrate benchmark — the exact WMC engine on structured CNF families
//! (paths, grids of ground clauses) that mirror block lineages.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gfomc_arith::Rational;
use gfomc_logic::{wmc, Clause, Cnf, ModelCounter, UniformWeight, Var, WmcConfig};

fn path_cnf(n: u32) -> Cnf {
    Cnf::new((0..n).map(|i| Clause::new([Var(i), Var(i + 1)])))
}

fn grid_cnf(n: u32) -> Cnf {
    // Lineage shape of H1 on an n×n database.
    let r = |u: u32| Var(u);
    let t = |v: u32| Var(100 + v);
    let s = |u: u32, v: u32| Var(1000 + u * n + v);
    let mut clauses = Vec::new();
    for u in 0..n {
        for v in 0..n {
            clauses.push(Clause::new([r(u), s(u, v)]));
            clauses.push(Clause::new([s(u, v), t(v)]));
        }
    }
    Cnf::new(clauses)
}

fn bench_wmc(c: &mut Criterion) {
    let w = UniformWeight(Rational::one_half());
    let mut group = c.benchmark_group("wmc_path");
    for n in [8u32, 16, 32, 64] {
        let f = path_cnf(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &f, |b, f| {
            b.iter(|| wmc(f, &w))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("wmc_grid_lineage");
    for n in [2u32, 3, 4] {
        let f = grid_cnf(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &f, |b, f| {
            b.iter(|| wmc(f, &w))
        });
    }
    group.finish();
}

fn bench_wmc_ablation(c: &mut Criterion) {
    // Ablation of the two engine optimizations on the H1 grid lineage.
    let w = UniformWeight(Rational::one_half());
    let f = grid_cnf(3);
    let mut group = c.benchmark_group("wmc_ablation_grid3");
    for (name, cfg) in [
        (
            "full",
            WmcConfig {
                use_components: true,
                use_memo: true,
            },
        ),
        (
            "no_memo",
            WmcConfig {
                use_components: true,
                use_memo: false,
            },
        ),
        (
            "no_components",
            WmcConfig {
                use_components: false,
                use_memo: true,
            },
        ),
        (
            "plain_shannon",
            WmcConfig {
                use_components: false,
                use_memo: false,
            },
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut mc = ModelCounter::with_config(&w, cfg);
                mc.probability(&f)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Short measurement windows: these benches regenerate experiment
    // timing series, not micro-optimization data.
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900));
    targets = bench_wmc, bench_wmc_ablation
}
criterion_main!(benches);
