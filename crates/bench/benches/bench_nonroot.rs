//! E8 — Lemma 1.1's constructive non-root search on block determinants and
//! synthetic degree-2 polynomials.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gfomc_arith::Rational;
use gfomc_core::gfomc_nonroot;
use gfomc_core::small_matrix::block_small_matrix;
use gfomc_poly::{PVar, Poly};
use gfomc_query::catalog;

fn bench_nonroot(c: &mut Criterion) {
    let det = block_small_matrix(&catalog::h1()).determinant();
    c.bench_function("nonroot_block_determinant", |b| {
        b.iter(|| gfomc_nonroot(&det))
    });

    let mut group = c.benchmark_group("nonroot_product_form");
    for n in [2u32, 4, 8] {
        let mut f = Poly::one();
        for i in 0..n {
            let x = Poly::var(PVar(i));
            f = &f * &(&x * &(&Poly::one() - &x));
        }
        group.bench_with_input(BenchmarkId::from_parameter(n), &f, |b, f| {
            b.iter(|| {
                let (_, v) = gfomc_nonroot(f);
                assert_eq!(v, Rational::from_ints(1, 4).pow(n as i32));
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Short measurement windows: these benches regenerate experiment
    // timing series, not micro-optimization data.
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900));
    targets = bench_nonroot
}
criterion_main!(benches);
