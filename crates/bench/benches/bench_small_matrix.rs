//! E3/E9 — the symbolic small matrix and its determinant (Lemma 1.2,
//! Theorem 3.16, Corollary 3.18).

use criterion::{criterion_group, criterion_main, Criterion};
use gfomc_core::small_matrix::{block_small_matrix, corollary_3_18_constant};
use gfomc_query::catalog;

fn bench_small_matrix(c: &mut Criterion) {
    c.bench_function("small_matrix_h1", |b| {
        b.iter(|| {
            let sm = block_small_matrix(&catalog::h1());
            assert!(!sm.is_singular());
            sm
        })
    });
    c.bench_function("small_matrix_h2", |b| {
        b.iter(|| block_small_matrix(&catalog::hk(2)).determinant())
    });
    c.bench_function("corollary_3_18_h1", |b| {
        b.iter(|| corollary_3_18_constant(&catalog::h1()).unwrap())
    });
}

criterion_group! {
    name = benches;
    // Short measurement windows: these benches regenerate experiment
    // timing series, not micro-optimization data.
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900));
    targets = bench_small_matrix
}
criterion_main!(benches);
