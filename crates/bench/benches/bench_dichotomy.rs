//! E7/E14 — the dichotomy picture: the safe side's lifted evaluation scales
//! polynomially in the domain; the unsafe side's exact WMC does not.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gfomc_bench::uniform_db;
use gfomc_query::catalog;
use gfomc_safety::lifted_probability;
use gfomc_tid::probability;

fn bench_dichotomy(c: &mut Criterion) {
    let safe_q = catalog::safe_three_components();
    let mut group = c.benchmark_group("safe_lifted");
    for n in [4u32, 8, 16, 32] {
        let db = uniform_db(&safe_q, n, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &db, |b, db| {
            b.iter(|| lifted_probability(&safe_q, db).unwrap())
        });
    }
    group.finish();

    let hard_q = catalog::h1();
    let mut group = c.benchmark_group("unsafe_exact_wmc");
    for n in [1u32, 2, 3, 4] {
        let db = uniform_db(&hard_q, n, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &db, |b, db| {
            b.iter(|| probability(&hard_q, db))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Short measurement windows: these benches regenerate experiment
    // timing series, not micro-optimization data.
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900));
    targets = bench_dichotomy
}
criterion_main!(benches);
