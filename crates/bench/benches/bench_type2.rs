//! E12 — Type-II machinery: CCP counting, the Möbius block formula of
//! Theorem C.19, and the Q_αβ invertibility check.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gfomc_arith::Rational;
use gfomc_core::ccp::{ccp_counts, pp2cnf_from_ccp, CcpInstance};
use gfomc_core::reduction_type2::{
    mobius_formula_probability, qab_map_is_invertible, theorem_c19_holds,
};
use gfomc_core::Pp2Cnf;
use gfomc_query::catalog;

fn bench_type2(c: &mut Criterion) {
    let q = catalog::example_c15();
    let half = |_s: u32, _u: u32, _v: u32| Rational::one_half();
    let mut group = c.benchmark_group("theorem_c19");
    for (nu, nv) in [(1u32, 1u32), (2, 1), (2, 2)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{nu}x{nv}")),
            &(nu, nv),
            |b, &(nu, nv)| b.iter(|| assert!(theorem_c19_holds(&q, nu, nv, &half))),
        );
    }
    group.finish();

    c.bench_function("mobius_formula_2x2", |b| {
        b.iter(|| mobius_formula_probability(&q, 2, 2, &half))
    });
    c.bench_function("qab_invertibility_c15", |b| {
        b.iter(|| assert!(qab_map_is_invertible(&q)))
    });

    let phi = Pp2Cnf::new(2, 2, vec![(0, 0), (0, 1), (1, 1)]);
    let inst = CcpInstance::from_pp2cnf(&phi);
    c.bench_function("ccp_counts_2x2_3colors", |b| {
        b.iter(|| {
            let counts = ccp_counts(&inst, 3, 3);
            assert_eq!(pp2cnf_from_ccp(&counts), phi.count_models());
        })
    });
}

criterion_group! {
    name = benches;
    // Short measurement windows: these benches regenerate experiment
    // timing series, not micro-optimization data.
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900));
    targets = bench_type2
}
criterion_main!(benches);
