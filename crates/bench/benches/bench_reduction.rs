//! E1/E13 — the Cook reduction `#P2CNF ≤ᴾ FOMC(Q)` (Theorem 3.1), end to
//! end, for growing clause counts and both oracle modes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gfomc_bench::workload_formula;
use gfomc_core::{reduce_p2cnf, OracleMode};
use gfomc_query::catalog;

fn bench_reduction(c: &mut Criterion) {
    let q = catalog::h1();
    let mut group = c.benchmark_group("reduction_factorized");
    for m in [1usize, 2, 3, 4] {
        let phi = workload_formula(m);
        group.bench_with_input(BenchmarkId::from_parameter(m), &phi, |b, phi| {
            b.iter(|| {
                let out = reduce_p2cnf(&q, phi, OracleMode::Factorized);
                assert_eq!(out.model_count, phi.count_models());
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("reduction_full_wmc");
    for m in [1usize, 2] {
        let phi = workload_formula(m);
        group.bench_with_input(BenchmarkId::from_parameter(m), &phi, |b, phi| {
            b.iter(|| {
                let out = reduce_p2cnf(&q, phi, OracleMode::FullWmc);
                assert_eq!(out.model_count, phi.count_models());
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Short measurement windows: these benches regenerate experiment
    // timing series, not micro-optimization data.
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900));
    targets = bench_reduction
}
criterion_main!(benches);
