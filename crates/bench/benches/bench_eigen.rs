//! E5 — exact eigen-decomposition over Q(√d) and the Theorem 3.14
//! conditions (22)-(24).

use criterion::{criterion_group, criterion_main, Criterion};
use gfomc_core::transfer::transfer_matrix;
use gfomc_core::EigenData;
use gfomc_query::catalog;

fn bench_eigen(c: &mut Criterion) {
    let a1 = transfer_matrix(&catalog::h1(), 1);
    c.bench_function("eigen_decompose", |b| b.iter(|| EigenData::decompose(&a1)));
    let e = EigenData::decompose(&a1);
    c.bench_function("eigen_conditions_22_24", |b| {
        b.iter(|| assert!(e.theorem_3_14_conditions()))
    });
    c.bench_function("eigen_power_entry_p20", |b| {
        b.iter(|| e.power_entry(1, 1, 20))
    });
}

criterion_group! {
    name = benches;
    // Short measurement windows: these benches regenerate experiment
    // timing series, not micro-optimization data.
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900));
    targets = bench_eigen
}
criterion_main!(benches);
