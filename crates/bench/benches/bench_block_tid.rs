//! E15 — block databases and Theorem 3.4: the factorized evaluation versus
//! the monolithic WMC oracle.

use criterion::{criterion_group, criterion_main, Criterion};
use gfomc_bench::workload_formula;
use gfomc_core::transfer::transfer_matrix;
use gfomc_core::{block_database, probability_via_factorization};
use gfomc_query::catalog;
use gfomc_tid::probability;

fn bench_block_tid(c: &mut Criterion) {
    let q = catalog::h1();
    let phi = workload_formula(2);
    let t1 = transfer_matrix(&q, 1);
    let t2 = transfer_matrix(&q, 2);

    c.bench_function("block_database_build", |b| {
        b.iter(|| block_database(&q, &phi, &[1, 2]))
    });
    let tid = block_database(&q, &phi, &[1, 2]);
    c.bench_function("oracle_full_wmc", |b| b.iter(|| probability(&q, &tid)));
    c.bench_function("oracle_factorized", |b| {
        b.iter(|| probability_via_factorization(&phi, &[t1.clone(), t2.clone()]))
    });
}

criterion_group! {
    name = benches;
    // Short measurement windows: these benches regenerate experiment
    // timing series, not micro-optimization data.
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900));
    targets = bench_block_tid
}
criterion_main!(benches);
