//! Shared fixtures for the benchmark harness.
//!
//! Each bench target regenerates one experiment from EXPERIMENTS.md; the
//! helpers here build the standard databases and formulas so that the bench
//! files stay declarative.

use gfomc_arith::Rational;
use gfomc_core::P2Cnf;
use gfomc_query::BipartiteQuery;
use gfomc_tid::{Tid, Tuple};

/// A uniform all-½ database over `nu × nv` for the given query.
pub fn uniform_db(q: &BipartiteQuery, nu: u32, nv: u32) -> Tid {
    let left: Vec<u32> = (0..nu).collect();
    let right: Vec<u32> = (1000..1000 + nv).collect();
    let mut tid = Tid::all_present(left.clone(), right.clone());
    for &u in &left {
        tid.set_prob(Tuple::R(u), Rational::one_half());
        for &v in &right {
            for s in q.binary_symbols() {
                tid.set_prob(Tuple::S(s, u, v), Rational::one_half());
            }
        }
    }
    for &v in &right {
        tid.set_prob(Tuple::T(v), Rational::one_half());
    }
    tid
}

/// The standard workload formulas for the reduction benches, by clause count.
pub fn workload_formula(m: usize) -> P2Cnf {
    match m {
        1 => P2Cnf::new(2, vec![(0, 1)]),
        2 => P2Cnf::new(3, vec![(0, 1), (1, 2)]),
        3 => P2Cnf::new(3, vec![(0, 1), (1, 2), (0, 2)]),
        4 => P2Cnf::new(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]),
        5 => P2Cnf::new(4, vec![(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]),
        _ => panic!("no workload for m = {m}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfomc_query::catalog;

    #[test]
    fn fixtures_are_wellformed() {
        let q = catalog::h1();
        let db = uniform_db(&q, 2, 2);
        assert!(db.is_fomc_instance());
        for m in 1..=5 {
            assert_eq!(workload_formula(m).n_clauses(), m);
        }
    }
}
