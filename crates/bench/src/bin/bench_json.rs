//! CI perf-tracking entry point: runs a fixed, small benchmark suite and
//! writes per-bench wall-times as JSON (default `BENCH.json`, or the path
//! given as the first argument).
//!
//! This exists so the perf trajectory accumulates as an artifact per PR.
//! Every record is stamped with the git SHA it was measured at, the bench
//! name, the repetition count behind the median, and — for the sampling
//! benches — the Monte-Carlo sample budget, so entries are comparable
//! across PRs (schema `gfomc-bench-v2`). Timings are medians of a few
//! repetitions on whatever machine CI hands us, so they are *tracking*
//! numbers, not statistics — the CI job must never fail on them, only on
//! compile errors.

use gfomc_approx::lineage_sampler;
use gfomc_arith::Rational;
use gfomc_bench::uniform_db;
use gfomc_core::{reduce_p2cnf, OracleMode, P2Cnf};
use gfomc_engine::workload::{random_block_tid, random_weightings, unsafe_block_preset};
use gfomc_engine::{Budget, Engine, TupleWeights};
use gfomc_logic::{wmc, Clause, Cnf, UniformWeight, Var};
use gfomc_query::{catalog, BipartiteQuery};
use gfomc_safety::lifted_probability;
use gfomc_tid::{lineage, Tid};
use rand::{rngs::StdRng, SeedableRng};
use std::time::Instant;

/// Median wall-time of `reps` runs, in seconds.
fn time_median(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn path_cnf(n: u32) -> Cnf {
    Cnf::new((0..n).map(|i| Clause::new([Var(i), Var(i + 1)])))
}

fn engine_workload(q: &BipartiteQuery, nu: u32, nv: u32, k: usize) -> (Tid, Vec<TupleWeights>) {
    let mut rng = StdRng::seed_from_u64(0xB10C);
    let tid = random_block_tid(&mut rng, q, nu, nv);
    let support = Engine::new().compile(q, &tid).tuples();
    let weightings = random_weightings(&mut rng, &support, k);
    (tid, weightings)
}

/// The commit being measured: `GITHUB_SHA` in CI, `git rev-parse HEAD`
/// locally, `"unknown"` when neither is available.
fn git_sha() -> String {
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        if !sha.is_empty() {
            return sha;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// One stamped record of the tracking series.
struct Entry {
    name: String,
    seconds: f64,
    reps: usize,
    /// Monte-Carlo budget, for the sampling benches only.
    samples: Option<u64>,
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH.json".to_string());
    let reps = 5;
    let sha = git_sha();
    let mut entries: Vec<Entry> = Vec::new();
    let mut record = |name: &str, secs: f64, samples: Option<u64>| {
        println!("{name:<44} {secs:.6}s");
        entries.push(Entry {
            name: name.to_string(),
            seconds: secs,
            reps,
            samples,
        });
    };

    // Substrate: the legacy Shannon counter on a path CNF.
    let half = UniformWeight(Rational::one_half());
    let path = path_cnf(48);
    record(
        "wmc_path_48",
        time_median(reps, || {
            std::hint::black_box(wmc(&path, &half));
        }),
        None,
    );

    // The headline comparison: compile-once/evaluate-many vs N independent
    // WMC runs on a block-TID workload with 12 weight assignments.
    let q = catalog::h1();
    let (tid, weightings) = engine_workload(&q, 3, 3, 12);
    let compile_once = time_median(reps, || {
        let compiled = Engine::new().compile(&q, &tid);
        std::hint::black_box(compiled.evaluate_batch(&weightings));
    });
    record("engine_compile_once_h1_3x3_12w", compile_once, None);
    let independent = time_median(reps, || {
        for w in &weightings {
            let mut db = tid.clone();
            for (&t, p) in w.iter() {
                db.set_prob(t, p.clone());
            }
            let lin = lineage(&q, &db);
            std::hint::black_box(wmc(&lin.cnf, lin.vars.weights()));
        }
    });
    record("wmc_independent_h1_3x3_12w", independent, None);
    let speedup = if compile_once > 0.0 {
        independent / compile_once
    } else {
        0.0
    };
    println!(
        "{:<44} {speedup:.2}x",
        "engine_speedup (independent/compiled)"
    );

    // Lifted (PTIME) evaluation on a safe query over a large domain.
    let safe = catalog::safe_three_components();
    let big = uniform_db(&safe, 24, 24);
    record(
        "lifted_safe_24x24",
        time_median(reps, || {
            std::hint::black_box(lifted_probability(&safe, &big).unwrap());
        }),
        None,
    );

    // One full Cook reduction through the factorized oracle.
    let phi = P2Cnf::new(3, vec![(0, 1), (1, 2), (0, 2)]);
    record(
        "reduction_h1_triangle_factorized",
        time_median(reps, || {
            std::hint::black_box(reduce_p2cnf(&q, &phi, OracleMode::Factorized));
        }),
        None,
    );

    // The approximate regime on the unsafe-query/large-block preset: the
    // Karp–Luby sampler alone, and the full router around it.
    let mut rng = StdRng::seed_from_u64(0xA55E55);
    let (uq, utid) = unsafe_block_preset(&mut rng, 2, 5);
    let sampler = lineage_sampler(&uq, &utid);
    for samples in [500u64, 2_000] {
        record(
            &format!("approx_sampler_unsafe_5x5_{samples}s"),
            time_median(reps, || {
                let mut rng = StdRng::seed_from_u64(7);
                std::hint::black_box(sampler.estimate(&mut rng, samples, 0.05));
            }),
            Some(samples),
        );
    }
    let budget = Budget::default().with_samples(1_000);
    record(
        "approx_router_unsafe_5x5_1000s",
        time_median(reps, || {
            std::hint::black_box(Engine::new().evaluate_auto(&uq, &utid, &budget));
        }),
        Some(budget.samples),
    );

    let json: String = {
        let fields: Vec<String> = entries
            .iter()
            .map(|e| {
                let samples = e
                    .samples
                    .map(|s| format!(", \"samples\": {s}"))
                    .unwrap_or_default();
                format!(
                    "    {{\"name\": \"{}\", \"seconds\": {:.9}, \"reps\": {}{samples}}}",
                    e.name, e.seconds, e.reps
                )
            })
            .collect();
        format!(
            "{{\n  \"schema\": \"gfomc-bench-v2\",\n  \"unit\": \"seconds\",\n  \"git_sha\": \"{sha}\",\n  \"engine_speedup\": {speedup:.4},\n  \"benches\": [\n{}\n  ]\n}}\n",
            fields.join(",\n")
        )
    };
    std::fs::write(&out_path, json).expect("write bench JSON");
    println!("wrote {out_path} (sha {sha})");
}
