//! CI perf-tracking entry point: runs a fixed, small benchmark suite and
//! writes per-bench wall-times as JSON (default `BENCH_pr2.json`, or the
//! path given as the first argument).
//!
//! This exists so the perf trajectory accumulates as an artifact per PR.
//! Timings are medians of a few repetitions on whatever machine CI hands
//! us, so they are *tracking* numbers, not statistics — the CI job must
//! never fail on them, only on compile errors.

use gfomc_arith::Rational;
use gfomc_bench::uniform_db;
use gfomc_core::{reduce_p2cnf, OracleMode, P2Cnf};
use gfomc_engine::workload::{random_block_tid, random_weightings};
use gfomc_engine::{Engine, TupleWeights};
use gfomc_logic::{wmc, Clause, Cnf, UniformWeight, Var};
use gfomc_query::{catalog, BipartiteQuery};
use gfomc_safety::lifted_probability;
use gfomc_tid::{lineage, Tid};
use rand::{rngs::StdRng, SeedableRng};
use std::time::Instant;

/// Median wall-time of `reps` runs, in seconds.
fn time_median(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn path_cnf(n: u32) -> Cnf {
    Cnf::new((0..n).map(|i| Clause::new([Var(i), Var(i + 1)])))
}

fn engine_workload(q: &BipartiteQuery, nu: u32, nv: u32, k: usize) -> (Tid, Vec<TupleWeights>) {
    let mut rng = StdRng::seed_from_u64(0xB10C);
    let tid = random_block_tid(&mut rng, q, nu, nv);
    let support = Engine::new().compile(q, &tid).tuples();
    let weightings = random_weightings(&mut rng, &support, k);
    (tid, weightings)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pr2.json".to_string());
    let reps = 5;
    let mut entries: Vec<(String, f64)> = Vec::new();
    let mut record = |name: &str, secs: f64| {
        println!("{name:<44} {secs:.6}s");
        entries.push((name.to_string(), secs));
    };

    // Substrate: the legacy Shannon counter on a path CNF.
    let half = UniformWeight(Rational::one_half());
    let path = path_cnf(48);
    record(
        "wmc_path_48",
        time_median(reps, || {
            std::hint::black_box(wmc(&path, &half));
        }),
    );

    // The headline comparison: compile-once/evaluate-many vs N independent
    // WMC runs on a block-TID workload with 12 weight assignments.
    let q = catalog::h1();
    let (tid, weightings) = engine_workload(&q, 3, 3, 12);
    let compile_once = time_median(reps, || {
        let compiled = Engine::new().compile(&q, &tid);
        std::hint::black_box(compiled.evaluate_batch(&weightings));
    });
    record("engine_compile_once_h1_3x3_12w", compile_once);
    let independent = time_median(reps, || {
        for w in &weightings {
            let mut db = tid.clone();
            for (&t, p) in w.iter() {
                db.set_prob(t, p.clone());
            }
            let lin = lineage(&q, &db);
            std::hint::black_box(wmc(&lin.cnf, lin.vars.weights()));
        }
    });
    record("wmc_independent_h1_3x3_12w", independent);
    let speedup = if compile_once > 0.0 {
        independent / compile_once
    } else {
        0.0
    };
    println!(
        "{:<44} {speedup:.2}x",
        "engine_speedup (independent/compiled)"
    );

    // Lifted (PTIME) evaluation on a safe query over a large domain.
    let safe = catalog::safe_three_components();
    let big = uniform_db(&safe, 24, 24);
    record(
        "lifted_safe_24x24",
        time_median(reps, || {
            std::hint::black_box(lifted_probability(&safe, &big).unwrap());
        }),
    );

    // One full Cook reduction through the factorized oracle.
    let phi = P2Cnf::new(3, vec![(0, 1), (1, 2), (0, 2)]);
    record(
        "reduction_h1_triangle_factorized",
        time_median(reps, || {
            std::hint::black_box(reduce_p2cnf(&q, &phi, OracleMode::Factorized));
        }),
    );

    let json: String = {
        let fields: Vec<String> = entries
            .iter()
            .map(|(name, secs)| format!("    \"{name}\": {secs:.9}"))
            .collect();
        format!(
            "{{\n  \"schema\": \"gfomc-bench-v1\",\n  \"unit\": \"seconds\",\n  \"engine_speedup\": {speedup:.4},\n  \"benches\": {{\n{}\n  }}\n}}\n",
            fields.join(",\n")
        )
    };
    std::fs::write(&out_path, json).expect("write bench JSON");
    println!("wrote {out_path}");
}
