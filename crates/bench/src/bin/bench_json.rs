//! CI perf-tracking entry point: runs a fixed, small benchmark suite and
//! writes per-bench wall-times as JSON (default `BENCH.json`; pass a path
//! as the first argument to change it). A frozen per-PR snapshot (same
//! schema; default `BENCH_pr8.json`, `--snapshot <path>` to override) is
//! written alongside, so the series accumulates one comparable file per
//! PR.
//!
//! This exists so the perf trajectory accumulates as an artifact per PR.
//! Every record is stamped with the git SHA it was measured at, the bench
//! name, the repetition count behind the median, and — where relevant —
//! the Monte-Carlo sample budget and thread count, so entries are
//! comparable across PRs (schema `gfomc-bench-v8`). Schema v8 adds the
//! stateful priced layer on top of v7:
//!
//! * `weight_updates_per_sec` — steady-state throughput of
//!   `PricedCircuit::update_weight` over a deterministic stream cycling
//!   every variable slot of the 3×3 preset lineage;
//! * `dirty_path_gates_per_update` — the mean dirty-cone size those
//!   updates re-priced; the incremental contract demands it stay
//!   strictly below the circuit's total gate count (otherwise updates
//!   are secretly full recomputes);
//! * `gradient_pass_ns` — one full `gradients()` sweep producing
//!   ∂Pr/∂p_t for every distinct variable at once.
//!
//! Schema v7 added the batch-evaluation layer on top of v6:
//!
//! * `batch_eval_per_weighting_ns` — amortized cost of one weighting when
//!   the 12-weighting workload runs through the batch kernel (one
//!   topological walk, all lanes at once) instead of a serial loop;
//! * `rational_small_path_hit_rate` — fraction of `Rational` ops during
//!   the flat exact passes that stayed on the single-limb `Rat64` fast
//!   path (no bignum allocation);
//! * `threshold_certify_rate` — fraction of the k/16 threshold sweep the
//!   interval lane certified outright (the complement of
//!   `interval_fallback_rate`).
//!
//! Schema v6 added the observability layer on top of v5:
//!
//! * `route_latency_ns` — per-route p50/p95/p99 request latency (and the
//!   underlying count), read from an instrumented engine's
//!   `engine_request_nanos` histograms after a fixed request drill across
//!   the three routes;
//! * `telemetry` — the conservation pair behind the `--check` invariant:
//!   requests issued vs the summed latency-histogram count (observation
//!   is passive and lossless, so the two must be equal).
//!
//! Schema v5 added the serving layer on top of v4:
//!
//! * `serve_rtt_us` — median microseconds for one exact `/eval` round
//!   trip over a real loopback socket against an in-process
//!   `gfomc-serve` server (parse + route + cache hit + serialize +
//!   HTTP overhead);
//! * `serve_queue` — the admission gate's counters after the serving
//!   benches: high-water in-flight depth, admitted, rejected, and the
//!   configured bound.
//!
//! Schema v4 added, on top of v3's per-route timings, parallel-sampler
//! speedup, cache hit/miss counts, and adaptive-vs-fixed sample counts:
//!
//! * `per_gate_eval_ns` — the flat forward pass's exact-evaluation cost
//!   per gate on the compiled 3×3 preset lineage;
//! * `flat_vs_tree_speedup` — the same lineage priced by the flat
//!   struct-of-arrays pass vs the recursive tree evaluator;
//! * `interval_fallback_rate` — the fraction of a k/16 threshold sweep
//!   the interval fast path could *not* certify (`Unknown` → exact
//!   fallback) on that preset;
//! * `host_cpus` — the machine's available parallelism, so thread-scaling
//!   numbers can be read in context (a 1-CPU runner cannot speed up).
//!
//! Timings are medians of a few repetitions on whatever machine CI hands
//! us, so they are *tracking* numbers, not statistics — the CI job must
//! never fail on them. The `--check` flag turns on the **deterministic**
//! perf-smoke assertions only (adaptive never exceeds the fixed budget,
//! the repeated-query cache hit rate is nonzero, thread counts cannot
//! move the estimate, the flat pass is bit-identical to the tree
//! evaluator, every interval certificate agrees with the exact
//! comparison, the `/eval` wire answer is byte-for-byte the direct
//! `evaluate_auto` answer and overload rejects explicitly, the latency
//! histograms conserve the request count, the batch
//! kernel is bit-identical to the serial `evaluate` loop, the `Rat64`
//! small path agrees with bignum arithmetic under a distributive
//! cross-check, threshold-routed `evaluate_auto` verdicts match the
//! exact comparison, and — new in v8 — every incremental
//! `update_weight` leaves the priced value bit-identical to a
//! from-scratch exact pass under the current weights, each slot's
//! gradient equals the central finite difference computed in exact
//! rational arithmetic (the circuit is multilinear in every weight, so
//! the identity is exact, not approximate), and the mean dirty cone
//! stays strictly below the gate count): those are machine-independent invariants, safe to
//! gate CI on. One timing gate is the exception, by design: `--check`
//! also fails if `flat_vs_tree_speedup` drops below 1.0 — the flat core
//! exists to beat the tree it replaced, so a slower flat pass is a
//! regression even on a noisy runner.

use gfomc_approx::{lineage_sampler, AdaptiveConfig};
use gfomc_arith::{small_path_thread_stats, Rational};
use gfomc_bench::uniform_db;
use gfomc_core::{reduce_p2cnf, OracleMode, P2Cnf};
use gfomc_engine::workload::{random_block_tid, random_weightings, unsafe_block_preset};
use gfomc_engine::{AutoResult, Budget, Engine, EvalRequest, SampleMode, TupleWeights};
use gfomc_logic::{wmc, Circuit, Clause, Cnf, PricedCircuit, UniformWeight, Var};
use gfomc_query::{catalog, BipartiteQuery};
use gfomc_safety::lifted_probability;
use gfomc_serve::{Client, Connection, Server};
use gfomc_tid::{lineage, Tid};
use rand::{rngs::StdRng, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Thread count exercised by the parallel benches.
const THREADS: usize = 4;

/// Median wall-time of `reps` runs, in seconds.
fn time_median(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn path_cnf(n: u32) -> Cnf {
    Cnf::new((0..n).map(|i| Clause::new([Var(i), Var(i + 1)])))
}

fn engine_workload(q: &BipartiteQuery, nu: u32, nv: u32, k: usize) -> (Tid, Vec<TupleWeights>) {
    let mut rng = StdRng::seed_from_u64(0xB10C);
    let tid = random_block_tid(&mut rng, q, nu, nv);
    let support = Engine::new().compile(q, &tid).tuples();
    let weightings = random_weightings(&mut rng, &support, k);
    (tid, weightings)
}

/// The commit being measured: `GITHUB_SHA` in CI, `git rev-parse HEAD`
/// locally, `"unknown"` when neither is available.
fn git_sha() -> String {
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        if !sha.is_empty() {
            return sha;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// One stamped record of the tracking series.
struct Entry {
    name: String,
    seconds: f64,
    reps: usize,
    /// Monte-Carlo budget, for the sampling benches only.
    samples: Option<u64>,
    /// Thread count, for the parallel benches only.
    threads: Option<usize>,
}

fn main() {
    let mut out_path = "BENCH.json".to_string();
    // The frozen per-PR snapshot. The default carries the current PR's id
    // and is bumped each PR (PR 2 wrote BENCH_pr2.json the same way);
    // pass `--snapshot <path>` to pin it explicitly.
    let mut snapshot_path = "BENCH_pr10.json".to_string();
    let mut check = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--check" {
            check = true;
        } else if arg == "--snapshot" {
            match args.next() {
                Some(path) => snapshot_path = path,
                None => {
                    eprintln!("--snapshot requires a path argument");
                    std::process::exit(2);
                }
            }
        } else if arg.starts_with('-') {
            // A typo'd flag must fail loudly, not silently become the
            // output path (which would disable the CI perf-smoke gate).
            eprintln!(
                "unknown flag: {arg} (expected --check, --snapshot <path>, or an output path)"
            );
            std::process::exit(2);
        } else {
            out_path = arg;
        }
    }
    let reps = 5;
    let sha = git_sha();
    let mut entries: Vec<Entry> = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    let mut record = |name: &str, secs: f64, samples: Option<u64>, threads: Option<usize>| {
        println!("{name:<44} {secs:.6}s");
        entries.push(Entry {
            name: name.to_string(),
            seconds: secs,
            reps,
            samples,
            threads,
        });
    };

    // Substrate: the legacy Shannon counter on a path CNF.
    let half = UniformWeight(Rational::one_half());
    let path = path_cnf(48);
    record(
        "wmc_path_48",
        time_median(reps, || {
            std::hint::black_box(wmc(&path, &half));
        }),
        None,
        None,
    );

    // The headline comparison: compile-once/evaluate-many vs N independent
    // WMC runs on a block-TID workload with 12 weight assignments.
    let q = catalog::h1();
    let (tid, weightings) = engine_workload(&q, 3, 3, 12);
    let compile_once = time_median(reps, || {
        let compiled = Engine::new().compile(&q, &tid);
        std::hint::black_box(compiled.evaluate_batch(&weightings));
    });
    record("engine_compile_once_h1_3x3_12w", compile_once, None, None);
    let independent = time_median(reps, || {
        for w in &weightings {
            let mut db = tid.clone();
            for (&t, p) in w.iter() {
                db.set_prob(t, p.clone());
            }
            let lin = lineage(&q, &db);
            std::hint::black_box(wmc(&lin.cnf, lin.vars.weights()));
        }
    });
    record("wmc_independent_h1_3x3_12w", independent, None, None);
    let speedup = if compile_once > 0.0 {
        independent / compile_once
    } else {
        0.0
    };
    println!(
        "{:<44} {speedup:.2}x",
        "engine_speedup (independent/compiled)"
    );

    // ------------------------------------------------------------------
    // The batch kernel (schema v7): the same 12 weightings priced as 12
    // lanes of one topological walk. The `--check` invariant is
    // bit-identity with the serial per-weighting `evaluate` loop — the
    // lanes share the gate traversal but never each other's arithmetic.
    // ------------------------------------------------------------------
    let compiled_h1 = Engine::new().compile(&q, &tid);
    let batch_secs = time_median(reps, || {
        std::hint::black_box(compiled_h1.evaluate_batch(&weightings));
    });
    record("engine_eval_batch_h1_3x3_12w", batch_secs, None, None);
    let batch_eval_per_weighting_ns = batch_secs * 1e9 / weightings.len().max(1) as f64;
    println!(
        "{:<44} {batch_eval_per_weighting_ns:.1}ns over {} lanes",
        "batch_eval_per_weighting_ns (batch kernel)",
        weightings.len()
    );
    let serial_loop: Vec<Rational> = weightings.iter().map(|w| compiled_h1.evaluate(w)).collect();
    if compiled_h1.evaluate_batch(&weightings) != serial_loop {
        failures.push("batch kernel diverged from the serial evaluate loop".to_string());
    }

    // Small-path ≡ bignum distributive cross-check: for small operands
    // `a`, `b` the sums/products land on the `Rat64` fast path, while the
    // same values scaled by 2^100 are forced onto the bignum path.
    // Distributivity makes the two routes comparable without touching
    // arith internals: `aB + bB = (a+b)B` and `(aB)(bB) = (ab)B²`.
    let big = Rational::from_ints(2, 1).pow(100);
    let small_ops = [
        (1i64, 3i64),
        (-7, 8),
        (i64::MAX / 2, i64::MAX / 2 + 1),
        (-(i64::MAX / 3), 7),
        (1, i64::MAX),
    ];
    for &(n1, d1) in &small_ops {
        for &(n2, d2) in &small_ops {
            let a = Rational::from_ints(n1, d1);
            let b = Rational::from_ints(n2, d2);
            let (ab, bb) = (&a * &big, &b * &big);
            if &ab + &bb != &(&a + &b) * &big {
                failures.push(format!("small-path add diverged from bignum at {a} + {b}"));
            }
            if &ab - &bb != &(&a - &b) * &big {
                failures.push(format!("small-path sub diverged from bignum at {a} - {b}"));
            }
            if &ab * &bb != &(&a * &b) * &(&big * &big) {
                failures.push(format!("small-path mul diverged from bignum at {a} * {b}"));
            }
        }
    }

    // One full Cook reduction through the factorized oracle.
    let phi = P2Cnf::new(3, vec![(0, 1), (1, 2), (0, 2)]);
    record(
        "reduction_h1_triangle_factorized",
        time_median(reps, || {
            std::hint::black_box(reduce_p2cnf(&q, &phi, OracleMode::Factorized));
        }),
        None,
        None,
    );

    // ------------------------------------------------------------------
    // Per-route wall-clock: the three regimes of `evaluate_auto`, each on
    // its representative instance.
    // ------------------------------------------------------------------
    let budget = Budget::default();

    // Route 1: lifted (safe query, large domain — PTIME, no lineage).
    let safe = catalog::safe_three_components();
    let big = uniform_db(&safe, 24, 24);
    record(
        "lifted_safe_24x24",
        time_median(reps, || {
            std::hint::black_box(lifted_probability(&safe, &big).unwrap());
        }),
        None,
        None,
    );
    let route_lifted = time_median(reps, || {
        std::hint::black_box(Engine::new().evaluate_auto(&safe, &big, &budget));
    });
    record("route_lifted_safe_24x24", route_lifted, None, None);

    // Route 2: compiled (the 3×3 unsafe block the tightened cost bound
    // re-routed from the sampler to the exact circuit path), cold vs
    // cache-hot on one engine.
    let mut rng = StdRng::seed_from_u64(0xA55E55);
    let (cq, ctid) = unsafe_block_preset(&mut rng, 2, 3);
    let route_compiled_cold = time_median(reps, || {
        std::hint::black_box(Engine::new().evaluate_auto(&cq, &ctid, &budget));
    });
    record(
        "route_compiled_unsafe_3x3_cold",
        route_compiled_cold,
        None,
        None,
    );
    let warm = Engine::new();
    warm.evaluate_auto(&cq, &ctid, &budget);
    let route_compiled_cached = time_median(reps, || {
        std::hint::black_box(warm.evaluate_auto(&cq, &ctid, &budget));
    });
    record(
        "route_compiled_unsafe_3x3_cached",
        route_compiled_cached,
        None,
        None,
    );

    // ------------------------------------------------------------------
    // The flat evaluation core on the same 3×3 preset lineage: exact
    // forward pass vs the recursive tree evaluator (bit-identity is a
    // `--check` invariant), per-gate cost, and the interval fast path's
    // certification rate over a k/16 threshold sweep.
    // ------------------------------------------------------------------
    let clin = lineage(&cq, &ctid);
    let tree = Circuit::compile(&clin.cnf);
    let flat = tree.flatten();
    let flat_exact = flat.eval_exact(clin.vars.weights());
    let tree_exact = tree.evaluate(clin.vars.weights());
    if flat_exact != tree_exact {
        failures.push(format!(
            "flat forward pass diverged from the tree evaluator: {flat_exact} vs {tree_exact}"
        ));
    }
    let (hits_before, total_before) = small_path_thread_stats();
    let flat_secs = time_median(reps, || {
        std::hint::black_box(flat.eval_exact(clin.vars.weights()));
    });
    let (hits_after, total_after) = small_path_thread_stats();
    record("flat_eval_exact_unsafe_3x3", flat_secs, None, None);
    let small_hits = hits_after - hits_before;
    let small_total = total_after - total_before;
    let rational_small_path_hit_rate = small_hits as f64 / small_total.max(1) as f64;
    println!(
        "{:<44} {rational_small_path_hit_rate:.4} ({small_hits}/{small_total} ops)",
        "rational_small_path_hit_rate (flat pass)"
    );
    let tree_secs = time_median(reps, || {
        std::hint::black_box(tree.evaluate(clin.vars.weights()));
    });
    record("tree_eval_exact_unsafe_3x3", tree_secs, None, None);
    let per_gate_eval_ns = flat_secs * 1e9 / flat.gate_count().max(1) as f64;
    let flat_vs_tree_speedup = if flat_secs > 0.0 {
        tree_secs / flat_secs
    } else {
        0.0
    };
    println!(
        "{:<44} {per_gate_eval_ns:.1}ns over {} gates",
        "per_gate_eval_ns (flat exact pass)",
        flat.gate_count()
    );
    println!(
        "{:<44} {flat_vs_tree_speedup:.2}x",
        "flat_vs_tree_speedup (same lineage)"
    );
    // The one timing-based gate (see the module docs): the flat core
    // regressing below the tree evaluator it replaced is a perf bug, not
    // runner noise — PR 9 holds a >2x margin on a single CPU.
    if flat_vs_tree_speedup < 1.0 {
        failures.push(format!(
            "flat_vs_tree_speedup fell below 1.0: {flat_vs_tree_speedup:.2}x \
             (flat {flat_secs:.6}s vs tree {tree_secs:.6}s)"
        ));
    }
    let compiled_preset = Engine::new().compile(&cq, &ctid);
    let mut fallbacks = 0usize;
    let mut sweep = 0usize;
    let interval_secs = time_median(reps, || {
        for k in 0..=16i64 {
            let t = Rational::from_ints(k, 16);
            std::hint::black_box(compiled_preset.certify_le_db(&t));
        }
    });
    record(
        "interval_certify_sweep_unsafe_3x3",
        interval_secs,
        None,
        None,
    );
    for k in 0..=16i64 {
        let t = Rational::from_ints(k, 16);
        let (answer, fell_back) = compiled_preset.certify_le_db(&t);
        sweep += 1;
        if fell_back {
            fallbacks += 1;
        }
        if answer != (flat_exact <= t) {
            failures.push(format!(
                "interval-certified comparison wrong at threshold {k}/16"
            ));
        }
    }
    let interval_fallback_rate = fallbacks as f64 / sweep as f64;
    println!(
        "{:<44} {interval_fallback_rate:.4} ({fallbacks}/{sweep} thresholds)",
        "interval_fallback_rate (k/16 sweep)"
    );
    let threshold_certify_rate = (sweep - fallbacks) as f64 / sweep as f64;
    println!(
        "{:<44} {threshold_certify_rate:.4} ({}/{sweep} thresholds)",
        "threshold_certify_rate (k/16 sweep)",
        sweep - fallbacks
    );
    // Threshold-aware routing end to end: the same sweep through
    // `evaluate_auto` with a threshold budget must come back `Certified`
    // with verdicts matching the exact comparison.
    for k in 0..=16i64 {
        let t = Rational::from_ints(k, 16);
        let tb = budget
            .clone()
            .with_threshold(t.clone())
            .expect("k/16 is a probability");
        match warm.evaluate_auto(&cq, &ctid, &tb).result {
            AutoResult::Certified { le, threshold } => {
                if le != (flat_exact <= t) || threshold != t {
                    failures.push(format!(
                        "threshold-routed verdict wrong at {k}/16: le={le}, threshold={threshold}"
                    ));
                }
            }
            other => {
                failures.push(format!(
                    "threshold budget did not certify at {k}/16: got {other:?}"
                ));
            }
        }
    }

    // ------------------------------------------------------------------
    // The stateful priced layer (schema v8): the same 3×3 preset lineage
    // held as a `PricedCircuit`. `weight_updates_per_sec` is the
    // steady-state incremental re-pricing throughput over a deterministic
    // stream cycling every slot; `dirty_path_gates_per_update` is the
    // mean dirty-cone size those updates re-priced (the incremental
    // contract demands it stay strictly below the gate count);
    // `gradient_pass_ns` is one full ∂Pr/∂p_t sweep over all slots. The
    // `--check` invariants: after every update the stateful value is
    // bit-identical to a from-scratch exact pass under the current
    // weights, and each slot's gradient equals the central finite
    // difference in exact rationals — the circuit is multilinear in
    // every weight, so that identity is exact, not approximate.
    // ------------------------------------------------------------------
    let priced_flat = Arc::new(flat.clone());
    let base_weights: Vec<Rational> = priced_flat
        .vars()
        .iter()
        .map(|&v| clin.vars.weights()[&v].clone())
        .collect();
    let slots = base_weights.len();
    // Four passes over every slot with pass- and slot-dependent weights,
    // so each step is a real change with a different dirty cone.
    let stream: Vec<(u32, Rational)> = (0..slots * 4)
        .map(|i| {
            let slot = (i % slots) as u32;
            let w = Rational::from_ints((i / slots) as i64 % 2 + 1, (i % 7) as i64 + 3);
            (slot, w)
        })
        .collect();
    let mut priced = PricedCircuit::new(Arc::clone(&priced_flat), &base_weights);
    let update_secs = time_median(reps, || {
        for (slot, w) in &stream {
            std::hint::black_box(priced.update_weight(*slot, w.clone()));
        }
    });
    record("priced_update_stream_unsafe_3x3", update_secs, None, None);
    let weight_updates_per_sec = stream.len() as f64 / update_secs.max(1e-12);
    println!(
        "{:<44} {weight_updates_per_sec:.0}/s over {} updates",
        "weight_updates_per_sec (priced stream)",
        stream.len()
    );
    let gradient_secs = time_median(reps, || {
        std::hint::black_box(priced.gradients());
    });
    record(
        "priced_gradient_sweep_unsafe_3x3",
        gradient_secs,
        None,
        None,
    );
    let gradient_pass_ns = gradient_secs * 1e9;
    println!(
        "{:<44} {gradient_pass_ns:.1}ns over {slots} slots",
        "gradient_pass_ns (one sweep, all slots)"
    );
    // The deterministic replay behind the numbers: apply the stream to a
    // fresh priced circuit, checking bit-identity against a full exact
    // pass at every step and accumulating the dirty-cone sizes.
    let mut check_priced = PricedCircuit::new(Arc::clone(&priced_flat), &base_weights);
    let mut current: HashMap<Var, Rational> = clin.vars.weights().clone();
    let mut repriced_sum = 0usize;
    for (slot, w) in &stream {
        let stats = check_priced.update_weight(*slot, w.clone());
        repriced_sum += stats.repriced;
        current.insert(priced_flat.vars()[*slot as usize], w.clone());
        if check_priced.value() != flat.eval_exact(&current) {
            failures.push(format!(
                "incremental update at slot {slot} diverged from a full recompute"
            ));
            break;
        }
    }
    let dirty_path_gates_per_update = repriced_sum as f64 / stream.len().max(1) as f64;
    println!(
        "{:<44} {dirty_path_gates_per_update:.1} of {} gates",
        "dirty_path_gates_per_update (mean cone)",
        flat.gate_count()
    );
    if dirty_path_gates_per_update >= flat.gate_count() as f64 {
        failures.push(format!(
            "dirty_path_gates_per_update {dirty_path_gates_per_update:.1} reached the \
             full gate count {} — updates are secretly full recomputes",
            flat.gate_count()
        ));
    }
    // Gradient ≡ central finite difference, in exact arithmetic: for
    // every slot, f(p+h) − f(p−h) must equal 2h·∂f/∂p exactly.
    let grads = check_priced.gradients();
    let h = Rational::from_ints(1, 64);
    let two_h = &h + &h;
    for (slot, g) in grads.iter().enumerate() {
        let v = priced_flat.vars()[slot];
        let p = current[&v].clone();
        let mut hi = current.clone();
        hi.insert(v, &p + &h);
        let mut lo = current.clone();
        lo.insert(v, &p - &h);
        let diff = &flat.eval_exact(&hi) - &flat.eval_exact(&lo);
        if diff != &two_h * g {
            failures.push(format!(
                "gradient at slot {slot} diverged from the central finite difference"
            ));
        }
    }

    // Route 3: sampled. The refined cost bound actually proves the 5×5
    // preset affordable now, so the sampled-route timings pin the route
    // with a zero circuit budget — the series tracks the *sampled path's*
    // cost (grounding + sampler build + draws), not the routing verdict.
    let mut rng = StdRng::seed_from_u64(0xA55E55);
    let (uq, utid) = unsafe_block_preset(&mut rng, 2, 5);
    let sampler = lineage_sampler(&uq, &utid);
    for samples in [500u64, 2_000] {
        record(
            &format!("approx_sampler_unsafe_5x5_{samples}s"),
            time_median(reps, || {
                let mut rng = StdRng::seed_from_u64(7);
                std::hint::black_box(sampler.estimate(&mut rng, samples, 0.05));
            }),
            Some(samples),
            None,
        );
    }
    let fixed_budget = Budget::default()
        .with_max_circuit_cost(0)
        .with_samples(2_000)
        .expect("positive sample budget");
    let route_sampled_fixed = time_median(reps, || {
        std::hint::black_box(Engine::new().evaluate_auto(&uq, &utid, &fixed_budget));
    });
    record(
        "route_sampled_unsafe_5x5_fixed",
        route_sampled_fixed,
        Some(2_000),
        None,
    );
    let adaptive_budget = Budget::default().with_max_circuit_cost(0);
    let route_sampled_adaptive = time_median(reps, || {
        std::hint::black_box(Engine::new().evaluate_auto(&uq, &utid, &adaptive_budget));
    });

    // ------------------------------------------------------------------
    // Adaptive vs fixed sample counts (deterministic; `--check` gates on
    // them).
    // ------------------------------------------------------------------
    let adaptive = sampler.estimate_adaptive(&AdaptiveConfig::new(0.05, 0.05, 0x5EED));
    let klm_budget = sampler.fpras_samples(0.05, 0.05);
    record(
        "route_sampled_unsafe_5x5_adaptive",
        route_sampled_adaptive,
        Some(adaptive.estimate.samples),
        None,
    );
    println!(
        "{:<44} {} of {} (converged: {})",
        "adaptive_samples (vs fixed KLM budget)",
        adaptive.estimate.samples,
        klm_budget,
        adaptive.converged
    );
    if adaptive.estimate.samples > klm_budget {
        failures.push(format!(
            "adaptive sampler drew {} samples, exceeding the fixed budget {}",
            adaptive.estimate.samples, klm_budget
        ));
    }

    // ------------------------------------------------------------------
    // Parallel sampler scaling: the same seeded plan on 1 and 4 threads —
    // the estimates must be bit-identical; only wall-clock may move.
    // ------------------------------------------------------------------
    let par_samples = 50_000u64;
    let serial_est = sampler.estimate_seeded(7, par_samples, 0.05, 1);
    let serial_secs = time_median(reps, || {
        std::hint::black_box(sampler.estimate_seeded(7, par_samples, 0.05, 1));
    });
    record(
        "sampler_seeded_unsafe_5x5_1t",
        serial_secs,
        Some(par_samples),
        Some(1),
    );
    let parallel_est = sampler.estimate_seeded(7, par_samples, 0.05, THREADS);
    let parallel_secs = time_median(reps, || {
        std::hint::black_box(sampler.estimate_seeded(7, par_samples, 0.05, THREADS));
    });
    record(
        &format!("sampler_seeded_unsafe_5x5_{THREADS}t"),
        parallel_secs,
        Some(par_samples),
        Some(THREADS),
    );
    let parallel_speedup = if parallel_secs > 0.0 {
        serial_secs / parallel_secs
    } else {
        0.0
    };
    println!(
        "{:<44} {parallel_speedup:.2}x",
        format!("parallel_sampler_speedup ({THREADS}t vs 1t)")
    );
    if serial_est != parallel_est {
        failures.push(format!(
            "thread count moved the estimate: 1t {serial_est:?} vs {THREADS}t {parallel_est:?}"
        ));
    }

    // ------------------------------------------------------------------
    // Compilation cache on the repeated-query workload: three unsafe
    // queries asked four times each through one engine.
    // ------------------------------------------------------------------
    let mut rng = StdRng::seed_from_u64(0xCAC4E);
    let mut repeated = Vec::new();
    for _ in 0..3 {
        let q = gfomc_engine::workload::random_query(
            &mut rng,
            2,
            2,
            gfomc_engine::workload::SafetyTarget::Unsafe,
        );
        let tid = random_block_tid(&mut rng, &q, 2, 2);
        repeated.push((q, tid));
    }
    let engine = Engine::new();
    let cache_budget = Budget::default()
        .with_mode(SampleMode::Adaptive { epsilon: 0.05 })
        .expect("epsilon in (0, 1)");
    let repeated_secs = time_median(reps, || {
        for (q, tid) in &repeated {
            std::hint::black_box(engine.evaluate_auto(q, tid, &cache_budget));
        }
    });
    record("router_repeated_3q_per_pass", repeated_secs, None, None);
    let cache = engine.cache_stats();
    println!(
        "{:<44} {} hits / {} misses (rate {:.2})",
        "compilation_cache (repeated workload)",
        cache.hits,
        cache.misses,
        cache.hit_rate()
    );
    if cache.hits == 0 {
        failures.push("repeated-query workload produced zero cache hits".to_string());
    }

    // ------------------------------------------------------------------
    // The concurrent front-end: `evaluate_auto_batch` fans a mixed batch
    // across the shared pool with a shared cache. Bit-identity with the
    // serial `evaluate_auto` loop is a deterministic `--check` invariant.
    // ------------------------------------------------------------------
    let batch: Vec<(BipartiteQuery, Tid)> = (0..4).flat_map(|_| repeated.iter().cloned()).collect();
    let batch_budget = Budget::default().with_threads(THREADS);
    let serial_engine = Engine::new();
    let serial_batch: Vec<_> = batch
        .iter()
        .map(|(q, tid)| serial_engine.evaluate_auto(q, tid, &batch_budget))
        .collect();
    let batch_engine = Engine::new();
    let batch_secs = time_median(reps, || {
        std::hint::black_box(batch_engine.evaluate_auto_batch(&batch, &batch_budget));
    });
    record(
        &format!("router_auto_batch_12q_{THREADS}t"),
        batch_secs,
        None,
        Some(THREADS),
    );
    if Engine::new().evaluate_auto_batch(&batch, &batch_budget) != serial_batch {
        failures.push("evaluate_auto_batch differs from the serial evaluate_auto loop".to_string());
    }

    // ------------------------------------------------------------------
    // The serving layer (schema v5): one in-process server on a loopback
    // socket. `serve_rtt_us` tracks a full exact `/eval` round trip on a
    // cache-warm engine; the gate counters land in `serve_queue`. The
    // `--check` invariants: the wire answer is byte-for-byte the direct
    // `evaluate_auto` answer, and a saturated gate rejects with a 429
    // instead of queueing.
    // ------------------------------------------------------------------
    let serve_engine = Arc::new(Engine::new());
    let handle = Server::bind(Arc::clone(&serve_engine), "127.0.0.1:0")
        .expect("bind loopback")
        .spawn()
        .expect("spawn server");
    let serve_req = {
        let mut rng = StdRng::seed_from_u64(0xA55E55);
        let (sq, stid) = unsafe_block_preset(&mut rng, 2, 3);
        EvalRequest::new(sq, stid)
    };
    let serve_body = serve_req.to_string();
    let direct_text = serve_engine
        .evaluate_request(&serve_req)
        .expect("valid budget")
        .to_string();
    let mut conn = Connection::open(handle.addr()).expect("connect");
    // Warm the compilation cache so the RTT tracks serving overhead, not
    // first-compile cost.
    let warmup = conn
        .request("POST", "/eval", &serve_body)
        .expect("round trip");
    if warmup.status != 200 || warmup.body != direct_text {
        failures.push(format!(
            "wire answer diverged from the direct engine call: status {} body {:?} vs {:?}",
            warmup.status, warmup.body, direct_text
        ));
    }
    let serve_rtt = time_median(reps, || {
        let resp = conn
            .request("POST", "/eval", &serve_body)
            .expect("round trip");
        std::hint::black_box(resp);
    });
    record("serve_eval_rtt_unsafe_3x3_warm", serve_rtt, None, None);
    let serve_rtt_us = serve_rtt * 1e6;
    println!(
        "{:<44} {serve_rtt_us:.1}us",
        "serve_rtt_us (loopback /eval, cache-warm)"
    );
    // Overload drill: hold the gate's whole depth, then require an
    // explicit 429 + Retry-After rather than a queued/hanging request.
    let gate = handle.gate();
    let permits: Vec<_> = std::iter::from_fn(|| gate.try_admit()).collect();
    let overload = Client::new(handle.addr().to_string())
        .post("/eval", &serve_body)
        .expect("round trip");
    if overload.status != 429 || overload.retry_after.is_none() {
        failures.push(format!(
            "saturated gate answered {} (retry_after {:?}) instead of 429 + Retry-After",
            overload.status, overload.retry_after
        ));
    }
    drop(permits);
    let serve_queue = gate.stats();
    println!(
        "{:<44} high water {} / depth {}, {} admitted, {} rejected",
        "serve_queue (admission gate)",
        serve_queue.high_water,
        serve_queue.max_depth,
        serve_queue.admitted,
        serve_queue.rejected
    );
    handle.stop();

    // ------------------------------------------------------------------
    // Observability (schema v6): a fixed request drill across the three
    // routes on one instrumented engine, then the per-route latency
    // quantiles straight out of its `engine_request_nanos` histograms.
    // The `--check` invariant is conservation: observation is passive and
    // lossless, so the summed histogram count must equal the requests
    // issued exactly.
    // ------------------------------------------------------------------
    let obs_engine = Engine::new();
    let obs_reps = 5usize;
    let route_workloads = [
        ("lifted", &safe, &big, &budget),
        ("compiled", &cq, &ctid, &budget),
        ("sampled", &uq, &utid, &adaptive_budget),
    ];
    for (_, q, tid, b) in &route_workloads {
        for _ in 0..obs_reps {
            let req = EvalRequest::new((*q).clone(), (*tid).clone()).with_budget((*b).clone());
            obs_engine.evaluate_request(&req).expect("valid budget");
        }
    }
    let issued = (route_workloads.len() * obs_reps) as u64;
    let latency_snaps = obs_engine
        .registry()
        .histograms_named("engine_request_nanos");
    let observed: u64 = latency_snaps.iter().map(|(_, snap)| snap.count).sum();
    let mut route_latency: Vec<(&str, u64, u64, u64, u64)> = Vec::new();
    for (route, _, _, _) in &route_workloads {
        let snap = latency_snaps.iter().find_map(|(labels, snap)| {
            labels
                .iter()
                .any(|(k, v)| k == "route" && v == route)
                .then_some(snap)
        });
        match snap {
            Some(snap) => {
                println!(
                    "{:<44} p50 {}ns / p95 {}ns / p99 {}ns ({} reqs)",
                    format!("route_latency_ns ({route})"),
                    snap.p50(),
                    snap.p95(),
                    snap.p99(),
                    snap.count
                );
                route_latency.push((route, snap.p50(), snap.p95(), snap.p99(), snap.count));
            }
            None => {
                failures.push(format!(
                    "route {route} drew no latency histogram despite {obs_reps} requests"
                ));
                route_latency.push((route, 0, 0, 0, 0));
            }
        }
    }
    println!(
        "{:<44} {observed} observed / {issued} issued",
        "telemetry_conservation (histogram vs issued)"
    );
    if observed != issued {
        failures.push(format!(
            "latency histograms counted {observed} requests but {issued} were issued"
        ));
    }
    if obs_engine
        .registry()
        .counter_value("engine_requests_total", &[])
        != issued
    {
        failures.push(format!(
            "engine_requests_total diverged from the {issued} requests issued"
        ));
    }
    let route_latency_json: String = route_latency
        .iter()
        .map(|(route, p50, p95, p99, count)| {
            format!("\"{route}\": {{\"p50\": {p50}, \"p95\": {p95}, \"p99\": {p99}, \"count\": {count}}}")
        })
        .collect::<Vec<_>>()
        .join(", ");

    let json: String = {
        let fields: Vec<String> = entries
            .iter()
            .map(|e| {
                let samples = e
                    .samples
                    .map(|s| format!(", \"samples\": {s}"))
                    .unwrap_or_default();
                let threads = e
                    .threads
                    .map(|t| format!(", \"threads\": {t}"))
                    .unwrap_or_default();
                format!(
                    "    {{\"name\": \"{}\", \"seconds\": {:.9}, \"reps\": {}{samples}{threads}}}",
                    e.name, e.seconds, e.reps
                )
            })
            .collect();
        format!(
            concat!(
                "{{\n",
                "  \"schema\": \"gfomc-bench-v8\",\n",
                "  \"unit\": \"seconds\",\n",
                "  \"git_sha\": \"{sha}\",\n",
                "  \"threads\": {threads},\n",
                "  \"host_cpus\": {cpus},\n",
                "  \"engine_speedup\": {speedup:.4},\n",
                "  \"parallel_sampler_speedup\": {par:.4},\n",
                "  \"per_gate_eval_ns\": {gate_ns:.2},\n",
                "  \"flat_vs_tree_speedup\": {flat_speedup:.4},\n",
                "  \"interval_fallback_rate\": {fallback:.4},\n",
                "  \"batch_eval_per_weighting_ns\": {batch_ns:.2},\n",
                "  \"rational_small_path_hit_rate\": {small_rate:.4},\n",
                "  \"threshold_certify_rate\": {certify_rate:.4},\n",
                "  \"weight_updates_per_sec\": {upd_rate:.2},\n",
                "  \"dirty_path_gates_per_update\": {dirty:.2},\n",
                "  \"gradient_pass_ns\": {grad_ns:.2},\n",
                "  \"cache\": {{\"hits\": {hits}, \"misses\": {misses}, \"hit_rate\": {rate:.4}}},\n",
                "  \"adaptive\": {{\"samples\": {asamples}, \"fixed_budget\": {klm}, \"converged\": {conv}}},\n",
                "  \"serve_rtt_us\": {rtt_us:.2},\n",
                "  \"serve_queue\": {{\"high_water\": {qhigh}, \"max_depth\": {qmax}, ",
                "\"admitted\": {qadm}, \"rejected\": {qrej}}},\n",
                "  \"route_latency_ns\": {{{route_latency}}},\n",
                "  \"telemetry\": {{\"requests\": {issued}, \"histogram_count\": {observed}}},\n",
                "  \"benches\": [\n{fields}\n  ]\n",
                "}}\n"
            ),
            sha = sha,
            threads = THREADS,
            cpus = std::thread::available_parallelism().map_or(0, |n| n.get()),
            speedup = speedup,
            par = parallel_speedup,
            gate_ns = per_gate_eval_ns,
            flat_speedup = flat_vs_tree_speedup,
            fallback = interval_fallback_rate,
            batch_ns = batch_eval_per_weighting_ns,
            small_rate = rational_small_path_hit_rate,
            certify_rate = threshold_certify_rate,
            upd_rate = weight_updates_per_sec,
            dirty = dirty_path_gates_per_update,
            grad_ns = gradient_pass_ns,
            hits = cache.hits,
            misses = cache.misses,
            rate = cache.hit_rate(),
            asamples = adaptive.estimate.samples,
            klm = klm_budget,
            conv = adaptive.converged,
            rtt_us = serve_rtt_us,
            qhigh = serve_queue.high_water,
            qmax = serve_queue.max_depth,
            qadm = serve_queue.admitted,
            qrej = serve_queue.rejected,
            route_latency = route_latency_json,
            issued = issued,
            observed = observed,
            fields = fields.join(",\n")
        )
    };
    std::fs::write(&out_path, &json).expect("write bench JSON");
    println!("wrote {out_path} (sha {sha})");
    // Per-PR snapshot next to the rolling series: the perf trajectory
    // accumulates one frozen schema-v8 file per PR, and CI uploads both
    // as artifacts.
    if out_path != snapshot_path {
        std::fs::write(&snapshot_path, &json).expect("write bench snapshot");
        println!("wrote {snapshot_path} (sha {sha})");
    }

    if check {
        if failures.is_empty() {
            println!("perf-smoke: all deterministic invariants hold");
        } else {
            for f in &failures {
                eprintln!("perf-smoke FAILURE: {f}");
            }
            std::process::exit(1);
        }
    }
}
