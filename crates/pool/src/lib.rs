//! # gfomc-pool
//!
//! A persistent worker pool for the workspace's parallel hot paths —
//! chunk-seeded sampling (`gfomc-approx`), batched circuit evaluation
//! (`gfomc-logic`), and the engine's concurrent query front-end
//! (`gfomc-engine`).
//!
//! Before this crate, every parallel call site opened its own
//! `std::thread::scope`, paying OS thread spawn/join for each batch and
//! each sampling round. The pool spawns its workers **once** and reuses
//! them across calls; call sites fan work out through [`WorkerPool::scope`]
//! (or the [`WorkerPool::broadcast`] convenience) and block until their
//! jobs complete.
//!
//! ## Scheduling model
//!
//! Jobs are *self-scheduling*: a fan-out call spawns one job per logical
//! worker, and the jobs claim work items (sample chunks, batch indices)
//! from a shared atomic cursor — an idle worker steals the next pending
//! item rather than being assigned a fixed slice, so stragglers cannot
//! serialize a batch. On top of that, the **caller participates**: while a
//! scope waits for its jobs it steals them back from its own queue and runs
//! them inline. Two consequences:
//!
//! * a pool with *fewer threads than requested workers* (even zero) still
//!   completes every scope — degraded to inline execution, never deadlock;
//! * nested scopes are safe: a pool worker whose job opens an inner scope
//!   drains that scope's jobs itself if no other worker is free.
//!
//! ## Determinism
//!
//! The pool schedules *who* runs a job, never *what* the job computes. All
//! workspace call sites partition work into items whose results are merged
//! by commutative integer addition or scattered into per-item output slots,
//! so results are bit-identical for every pool size and worker count — the
//! same guarantee the per-call `thread::scope` code provided, now without
//! the per-call spawn cost.
//!
//! ```
//! use gfomc_pool::WorkerPool;
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! let pool = WorkerPool::new(4);
//! let sum = AtomicU64::new(0);
//! pool.broadcast(4, |worker| {
//!     sum.fetch_add(worker as u64 + 1, Ordering::Relaxed);
//! });
//! assert_eq!(sum.load(Ordering::Relaxed), 1 + 2 + 3 + 4);
//! ```

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;

/// Lifetime totals of a pool's scheduling activity — incremented with
/// relaxed atomics on the job-completion path, so keeping them costs one
/// add per job, never a lock.
#[derive(Debug, Default)]
struct PoolCounters {
    /// Scope jobs run to completion (by workers and stealing callers).
    jobs: AtomicU64,
    /// The subset of `jobs` a scope owner stole back and ran inline.
    steals: AtomicU64,
    /// [`WorkerPool::broadcast`] calls (including inline `workers <= 1`).
    broadcasts: AtomicU64,
}

/// Point-in-time snapshot of a pool's scheduling counters — the pool's
/// contribution to `/status` and `/metrics`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Persistent worker threads ([`WorkerPool::threads`]).
    pub threads: usize,
    /// Scope jobs run to completion over the pool's lifetime.
    pub jobs: u64,
    /// Jobs a waiting scope owner stole back and ran inline instead of
    /// idling — nonzero steals mean callers outpace the workers.
    pub steals: u64,
    /// [`WorkerPool::broadcast`] fan-outs issued.
    pub broadcasts: u64,
}

/// A lifetime-erased scope job. Erasure is sound because a scope never
/// returns (even by unwind) before every one of its jobs has run to
/// completion — see [`WorkerPool::scope`].
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Poison-tolerant lock. Jobs run with no pool lock held, so a panicking
/// job cannot poison these mutexes mid-update; recovering the guard keeps
/// the pool usable even if a *caller* thread panics at an awkward time.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Jobs of one scope plus the count of spawned-but-unfinished jobs.
struct ScopeState {
    jobs: VecDeque<Job>,
    pending: usize,
}

/// The part of a scope shared between its owner and the pool workers.
struct ScopeShared {
    state: Mutex<ScopeState>,
    /// Signalled whenever `pending` hits zero.
    done: Condvar,
    /// First panic payload raised by a job, replayed at scope exit.
    panic: Mutex<Option<Box<dyn std::any::Any + Send + 'static>>>,
    /// The owning pool's counters, bumped as this scope's jobs complete.
    counters: Arc<PoolCounters>,
}

impl ScopeShared {
    fn new(counters: Arc<PoolCounters>) -> Arc<Self> {
        Arc::new(ScopeShared {
            state: Mutex::new(ScopeState {
                jobs: VecDeque::new(),
                pending: 0,
            }),
            done: Condvar::new(),
            panic: Mutex::new(None),
            counters,
        })
    }

    /// Pops and runs one queued job of this scope, if any is still queued.
    /// Returns whether a job ran. A job panic is captured (first payload
    /// wins) and the pending count is decremented either way. `stolen`
    /// marks a scope owner running its own job inline (vs a pool worker).
    fn run_one(&self, stolen: bool) -> bool {
        let job = lock(&self.state).jobs.pop_front();
        let Some(job) = job else {
            return false;
        };
        if let Err(payload) = catch_unwind(AssertUnwindSafe(job)) {
            let mut slot = lock(&self.panic);
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        self.counters.jobs.fetch_add(1, Ordering::Relaxed);
        if stolen {
            self.counters.steals.fetch_add(1, Ordering::Relaxed);
        }
        let mut st = lock(&self.state);
        st.pending -= 1;
        if st.pending == 0 {
            self.done.notify_all();
        }
        true
    }
}

/// State shared by the pool's worker threads: a queue of *tickets*, each
/// naming a scope with at least one queued job.
struct PoolShared {
    tickets: Mutex<VecDeque<Arc<ScopeShared>>>,
    available: Condvar,
    shutdown: AtomicBool,
    /// Worker-thread count, fixed at construction. A pool with no workers
    /// never receives tickets (nobody would drain them); its scopes run
    /// entirely on the caller-steals path.
    workers: usize,
}

/// A persistent pool of OS worker threads (see the crate docs).
///
/// Created once and shared — per engine, or process-wide via
/// [`WorkerPool::global`]. Dropping the pool joins its workers; scopes
/// borrow the pool, so no scope can outlive it.
#[derive(Debug)]
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
    counters: Arc<PoolCounters>,
}

impl std::fmt::Debug for PoolShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolShared")
            .field("shutdown", &self.shutdown.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl WorkerPool {
    /// A pool with `threads` persistent OS workers. `threads == 0` is
    /// legal: every scope then runs its jobs on the calling thread (the
    /// caller-steals rule), which is handy for tests and tiny machines.
    pub fn new(threads: usize) -> Self {
        let shared = Arc::new(PoolShared {
            tickets: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            workers: threads,
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("gfomc-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            workers,
            counters: Arc::new(PoolCounters::default()),
        }
    }

    /// The process-wide shared pool, created on first use with one worker
    /// per available CPU minus one (the calling thread always participates
    /// in its own scopes), clamped to [1, 16].
    pub fn global() -> &'static Arc<WorkerPool> {
        static GLOBAL: OnceLock<Arc<WorkerPool>> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let n = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2);
            Arc::new(WorkerPool::new(n.saturating_sub(1).clamp(1, 16)))
        })
    }

    /// Number of persistent worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Point-in-time snapshot of the pool's scheduling counters. Totals
    /// are exact once traffic quiesces; mid-traffic reads may observe a
    /// job's `jobs` bump before its `steals` bump.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            threads: self.workers.len(),
            jobs: self.counters.jobs.load(Ordering::Relaxed),
            steals: self.counters.steals.load(Ordering::Relaxed),
            broadcasts: self.counters.broadcasts.load(Ordering::Relaxed),
        }
    }

    /// Runs `f` with a [`PoolScope`] through which jobs borrowing local
    /// state (`'env`) can be spawned onto the pool. Does not return —
    /// **even by unwind** — until every spawned job has run to completion;
    /// the first job panic is replayed on the caller after the scope
    /// drains.
    ///
    /// While waiting, the calling thread steals this scope's still-queued
    /// jobs and runs them inline, so progress never depends on a pool
    /// worker being free.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&PoolScope<'_, 'env>) -> R,
    {
        let shared = ScopeShared::new(Arc::clone(&self.counters));
        let result = {
            // The guard waits on drop, so the borrow checker's promise —
            // jobs never outlive `'env` — holds even if `f` unwinds.
            let _wait = WaitGuard(&shared);
            let scope = PoolScope {
                pool: &self.shared,
                shared: Arc::clone(&shared),
                _env: PhantomData,
            };
            f(&scope)
        };
        if let Some(payload) = lock(&shared.panic).take() {
            resume_unwind(payload);
        }
        result
    }

    /// Convenience fan-out: runs `f(worker)` for `workers` logical workers
    /// and blocks until all return. Worker 0 is the calling thread itself;
    /// the rest are pool jobs (stolen back by the caller if every pool
    /// thread is busy). `workers <= 1` runs `f(0)` inline with no pool
    /// round-trip.
    pub fn broadcast<F>(&self, workers: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        self.counters.broadcasts.fetch_add(1, Ordering::Relaxed);
        if workers <= 1 {
            f(0);
            return;
        }
        self.scope(|scope| {
            let f = &f;
            for w in 1..workers {
                scope.spawn(move || f(w));
            }
            f(0);
        });
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.available.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Blocks until the scope's pending count is zero, helping with the
/// scope's own queued jobs first.
struct WaitGuard<'a>(&'a ScopeShared);

impl Drop for WaitGuard<'_> {
    fn drop(&mut self) {
        loop {
            if self.0.run_one(true) {
                continue;
            }
            let mut st = lock(&self.0.state);
            loop {
                if st.pending == 0 {
                    return;
                }
                if !st.jobs.is_empty() {
                    // A job is still queued: steal it back (outer loop)
                    // instead of idling on a busy pool.
                    break;
                }
                // Jobs are in flight on pool workers; wait for the last
                // one. (Spurious wakeups just re-run this check.)
                st = self
                    .0
                    .done
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            drop(st);
        }
    }
}

/// Handle for spawning borrowed jobs onto the pool — see
/// [`WorkerPool::scope`].
pub struct PoolScope<'pool, 'env> {
    pool: &'pool PoolShared,
    shared: Arc<ScopeShared>,
    /// `'env` must be invariant (as in `std::thread::Scope`): a covariant
    /// `'env` could be shrunk to let a job borrow data that dies before
    /// the scope's wait.
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'env> PoolScope<'_, 'env> {
    /// Queues `f` to run on a pool worker (or on the scope owner while it
    /// waits). Returns immediately; completion is awaited by the enclosing
    /// [`WorkerPool::scope`] call.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(f);
        // SAFETY: the enclosing `scope` call blocks (on return *and* on
        // unwind, via `WaitGuard`) until `pending == 0`, and `pending` only
        // reaches zero after every queued job has been popped and run to
        // completion. The erased closure therefore never outlives `'env`.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(job)
        };
        {
            let mut st = lock(&self.shared.state);
            st.pending += 1;
            st.jobs.push_back(job);
        }
        // One ticket per job: an idle worker claims the ticket, then pops
        // whatever job of this scope is still queued (maybe none, if the
        // owner already stole it — the ticket is then a cheap no-op). With
        // no workers, nobody would ever drain the ticket queue, so don't
        // grow it: the scope owner runs every job itself.
        if self.pool.workers > 0 {
            lock(&self.pool.tickets).push_back(Arc::clone(&self.shared));
            self.pool.available.notify_one();
        }
    }
}

/// The worker main loop: claim a ticket, run one job of its scope, repeat.
fn worker_loop(pool: &PoolShared) {
    loop {
        let ticket = {
            let mut q = lock(&pool.tickets);
            loop {
                if let Some(t) = q.pop_front() {
                    break Some(t);
                }
                if pool.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                q = pool
                    .available
                    .wait(q)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        match ticket {
            Some(scope) => {
                scope.run_one(false);
            }
            None => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn broadcast_runs_every_worker_exactly_once() {
        let pool = WorkerPool::new(3);
        for workers in [1usize, 2, 4, 9] {
            let mask = AtomicUsize::new(0);
            pool.broadcast(workers, |w| {
                mask.fetch_or(1 << w, Ordering::Relaxed);
            });
            assert_eq!(mask.load(Ordering::Relaxed), (1 << workers) - 1);
        }
    }

    #[test]
    fn zero_thread_pool_still_completes_scopes() {
        let pool = WorkerPool::new(0);
        let count = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    count.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn zero_thread_pool_does_not_accumulate_tickets() {
        // With no workers to drain the ticket queue, spawns must not grow
        // it — a serving loop on a 0-thread pool would otherwise leak one
        // Arc per job for the pool's lifetime.
        let pool = WorkerPool::new(0);
        for _ in 0..50 {
            pool.scope(|s| {
                for _ in 0..4 {
                    s.spawn(|| {});
                }
            });
        }
        assert!(lock(&pool.shared.tickets).is_empty());
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        // Every outer job opens an inner scope: with a single pool worker,
        // the inner jobs can only make progress because blocked scopes
        // steal their own work back.
        let pool = WorkerPool::new(1);
        let count = AtomicUsize::new(0);
        pool.scope(|outer| {
            for _ in 0..4 {
                let pool = &pool;
                let count = &count;
                outer.spawn(move || {
                    pool.scope(|inner| {
                        for _ in 0..4 {
                            inner.spawn(|| {
                                count.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn jobs_borrow_caller_state() {
        let pool = WorkerPool::new(2);
        let data = [1u64, 2, 3, 4, 5];
        let sum = Mutex::new(0u64);
        pool.scope(|s| {
            for chunk in data.chunks(2) {
                let sum = &sum;
                s.spawn(move || {
                    *lock(sum) += chunk.iter().sum::<u64>();
                });
            }
        });
        assert_eq!(*lock(&sum), 15);
    }

    #[test]
    fn job_panics_propagate_to_the_scope_owner() {
        let pool = WorkerPool::new(2);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("job boom"));
            });
        }));
        assert!(caught.is_err());
        // The pool survives a panicked job.
        let ok = AtomicUsize::new(0);
        pool.broadcast(2, |_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn global_pool_is_shared_and_sized() {
        let a = WorkerPool::global();
        let b = WorkerPool::global();
        assert!(Arc::ptr_eq(a, b));
        assert!(a.threads() >= 1);
    }

    #[test]
    fn stats_count_jobs_steals_and_broadcasts() {
        let pool = WorkerPool::new(2);
        assert_eq!(
            pool.stats(),
            PoolStats {
                threads: 2,
                ..PoolStats::default()
            }
        );
        pool.broadcast(4, |_| {});
        pool.scope(|s| {
            for _ in 0..5 {
                s.spawn(|| {});
            }
        });
        let stats = pool.stats();
        // broadcast(4) spawns 3 pool jobs (worker 0 is the caller).
        assert_eq!(stats.jobs, 3 + 5, "{stats:?}");
        assert_eq!(stats.broadcasts, 1);
        assert!(stats.steals <= stats.jobs);

        // On a zero-thread pool every job is a caller steal.
        let inline = WorkerPool::new(0);
        inline.scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {});
            }
        });
        let stats = inline.stats();
        assert_eq!((stats.jobs, stats.steals), (4, 4), "{stats:?}");
    }

    #[test]
    fn pool_drop_joins_workers() {
        let pool = WorkerPool::new(4);
        let count = AtomicUsize::new(0);
        pool.broadcast(8, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        drop(pool);
        assert_eq!(count.load(Ordering::Relaxed), 8);
    }
}
