//! # gfomc-obs
//!
//! Observability primitives for the gfomc engine and its serving layer,
//! std-only and dependency-free:
//!
//! * [`Counter`] — a lock-free monotone event counter.
//! * [`Histogram`] — a lock-free latency histogram on a fixed 64-bucket
//!   log2 nanosecond scale. Recording is one atomic add per event;
//!   [`HistogramSnapshot`]s are mergeable (associative and commutative,
//!   conserving count and sum exactly) and answer p50/p95/p99 queries
//!   with a value guaranteed to lie inside the bucket that contains the
//!   requested rank.
//! * [`Registry`] — a named store of counters, histograms, and gauges
//!   behind one handle. Registration takes a lock; recording through the
//!   returned [`Arc`] handles is lock-free. One store renders both the
//!   Prometheus text exposition ([`Registry::render_prometheus`]) and the
//!   line-oriented `key value` form ([`Registry::render_plain`]) the
//!   `/status` endpoint speaks, so the two views cannot drift apart.
//! * [`Trace`] — a per-request phase record (timed spans plus routing
//!   facts) with a line-oriented `Display`/`FromStr` pair that
//!   round-trips exactly, in the same grammar style as the engine's wire
//!   format.
//! * [`SlowLog`] — a fixed-capacity ring buffer of the traces of
//!   requests slower than a threshold.
//!
//! Everything here is **passive**: nothing in this crate touches query
//! evaluation, so results are bit-identical with telemetry on or off —
//! the invariant the engine's trace-identity test asserts.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Number of histogram buckets. Bucket `i < 63` holds values whose
/// binary magnitude is `i` bits (inclusive upper bound `2^i − 1`); the
/// last bucket is unbounded.
pub const BUCKETS: usize = 64;

/// Poison-tolerant lock: observability state is a set of plain values,
/// so recovering from a panicked writer is always safe.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The bucket a value falls into: 0 for 0, otherwise the bit length of
/// the value, saturated into the last bucket.
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros() as usize).min(BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the last bucket,
/// which is unbounded — rendered `+Inf` in the Prometheus exposition).
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Inclusive lower bound of bucket `i`.
pub fn bucket_lower_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        _ => 1u64 << (i - 1).min(62),
    }
}

/// A monotone event counter. Incrementing is one relaxed atomic add —
/// safe to share across any number of threads without coordination.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A lock-free latency histogram on the fixed log2 nanosecond scale.
///
/// Each [`Histogram::record`] touches exactly one bucket plus the count
/// and sum atomics, so concurrent recorders never contend on a lock.
/// Under concurrent traffic a [`Histogram::snapshot`] is a point-in-time
/// read of each atomic; once traffic quiesces, `count` equals the sum of
/// the buckets exactly (the conservation law the proptests assert).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation (a duration in nanoseconds).
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (slot, bucket) in buckets.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`Histogram`]'s state: mergeable and
/// queryable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts on the fixed log2 scale.
    pub buckets: [u64; BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values, modulo 2⁶⁴ — irrelevant for
    /// nanosecond timings, which would need centuries of recorded time
    /// to wrap.
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// The bucket-wise sum of two snapshots. Merging is associative and
    /// commutative, and conserves `count` and `sum` exactly — the
    /// algebra that lets per-thread or per-shard histograms be combined
    /// into one fleet view.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let mut out = *self;
        for (slot, b) in out.buckets.iter_mut().zip(&other.buckets) {
            *slot += b;
        }
        out.count += other.count;
        // Modular, matching the recorder's atomic accumulator.
        out.sum = out.sum.wrapping_add(other.sum);
        out
    }

    /// True iff nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The `q`-quantile (`0 < q ≤ 1`) as the inclusive upper bound of
    /// the bucket containing the rank-`⌈q·count⌉` observation — so the
    /// answer is guaranteed to lie in the same bucket as the true
    /// order statistic. Returns 0 on an empty snapshot.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            cumulative += b;
            if cumulative >= rank {
                return bucket_upper_bound(i);
            }
        }
        // Unreachable when count == Σ buckets; mid-traffic snapshots can
        // briefly disagree, and the last bucket bound is the safe answer.
        u64::MAX
    }

    /// The median (see [`HistogramSnapshot::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// The 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// The 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

/// A metric identity: name plus sorted label pairs.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct MetricKey {
    name: String,
    labels: Vec<(String, String)>,
}

impl MetricKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> MetricKey {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }

    /// `{k="v",…}`, or the empty string without labels; `extra` appends
    /// one more pair (the histogram `le` label).
    fn label_block(&self, extra: Option<(&str, &str)>) -> String {
        let mut pairs: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{v}\""))
            .collect();
        if let Some((k, v)) = extra {
            pairs.push(format!("{k}=\"{v}\""));
        }
        if pairs.is_empty() {
            String::new()
        } else {
            format!("{{{}}}", pairs.join(","))
        }
    }
}

/// The metrics store: named counters, histograms, and gauges behind one
/// handle.
///
/// Registration ([`Registry::counter`], [`Registry::histogram`]) locks a
/// `BTreeMap` once and hands back an [`Arc`] handle; recording through
/// the handle is lock-free, so hot paths register at startup (or on
/// first use) and never touch the maps again. Gauges are plain values
/// overwritten at scrape time ([`Registry::set_gauge`]) — the bridge for
/// state owned elsewhere (gate depth, pool counters, cache occupancy).
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<MetricKey, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<MetricKey, Arc<Histogram>>>,
    gauges: Mutex<BTreeMap<MetricKey, u64>>,
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter registered under `name` + `labels`, created at zero
    /// on first use. The same identity always returns the same counter.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let key = MetricKey::new(name, labels);
        Arc::clone(lock(&self.counters).entry(key).or_default())
    }

    /// The histogram registered under `name` + `labels`, created empty
    /// on first use.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let key = MetricKey::new(name, labels);
        Arc::clone(lock(&self.histograms).entry(key).or_default())
    }

    /// Sets (or creates) a gauge — a point-in-time value the scraper
    /// overwrites on every render.
    pub fn set_gauge(&self, name: &str, labels: &[(&str, &str)], value: u64) {
        lock(&self.gauges).insert(MetricKey::new(name, labels), value);
    }

    /// The current value of a counter (0 if never registered) — a test
    /// and bench convenience.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        lock(&self.counters)
            .get(&MetricKey::new(name, labels))
            .map_or(0, |c| c.get())
    }

    /// A snapshot of one histogram, if registered.
    pub fn histogram_snapshot(
        &self,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Option<HistogramSnapshot> {
        lock(&self.histograms)
            .get(&MetricKey::new(name, labels))
            .map(|h| h.snapshot())
    }

    /// Every histogram registered under `name`, as `(labels, snapshot)`
    /// pairs in label order.
    pub fn histograms_named(&self, name: &str) -> Vec<(Vec<(String, String)>, HistogramSnapshot)> {
        lock(&self.histograms)
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(k, h)| (k.labels.clone(), h.snapshot()))
            .collect()
    }

    /// The Prometheus text exposition of the whole store: `# TYPE` lines
    /// per metric family, counters and gauges as single samples,
    /// histograms as cumulative `le` buckets plus `_sum` and `_count`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_family = String::new();
        for (key, counter) in lock(&self.counters).iter() {
            if key.name != last_family {
                out.push_str(&format!("# TYPE {} counter\n", key.name));
                last_family.clone_from(&key.name);
            }
            out.push_str(&format!(
                "{}{} {}\n",
                key.name,
                key.label_block(None),
                counter.get()
            ));
        }
        last_family.clear();
        for (key, value) in lock(&self.gauges).iter() {
            if key.name != last_family {
                out.push_str(&format!("# TYPE {} gauge\n", key.name));
                last_family.clone_from(&key.name);
            }
            out.push_str(&format!("{}{} {value}\n", key.name, key.label_block(None)));
        }
        last_family.clear();
        for (key, histogram) in lock(&self.histograms).iter() {
            if key.name != last_family {
                out.push_str(&format!("# TYPE {} histogram\n", key.name));
                last_family.clone_from(&key.name);
            }
            let snap = histogram.snapshot();
            let mut cumulative = 0u64;
            for (i, &b) in snap.buckets.iter().enumerate() {
                cumulative += b;
                let le = if i == BUCKETS - 1 {
                    "+Inf".to_string()
                } else {
                    bucket_upper_bound(i).to_string()
                };
                out.push_str(&format!(
                    "{}_bucket{} {cumulative}\n",
                    key.name,
                    key.label_block(Some(("le", &le)))
                ));
            }
            out.push_str(&format!(
                "{}_sum{} {}\n",
                key.name,
                key.label_block(None),
                snap.sum
            ));
            out.push_str(&format!(
                "{}_count{} {}\n",
                key.name,
                key.label_block(None),
                snap.count
            ));
        }
        out
    }

    /// The same store as `key value` lines — the `/status` rendering.
    /// Counters and gauges print verbatim; each histogram contributes
    /// `_count`, `_sum`, and `_p50`/`_p95`/`_p99` lines. Because both
    /// renderings read one store, a key present here is present on
    /// `/metrics` under the same name.
    pub fn render_plain(&self) -> String {
        let mut out = String::new();
        for (key, counter) in lock(&self.counters).iter() {
            out.push_str(&format!(
                "{}{} {}\n",
                key.name,
                key.label_block(None),
                counter.get()
            ));
        }
        for (key, value) in lock(&self.gauges).iter() {
            out.push_str(&format!("{}{} {value}\n", key.name, key.label_block(None)));
        }
        for (key, histogram) in lock(&self.histograms).iter() {
            let snap = histogram.snapshot();
            let labels = key.label_block(None);
            out.push_str(&format!("{}_count{labels} {}\n", key.name, snap.count));
            out.push_str(&format!("{}_sum{labels} {}\n", key.name, snap.sum));
            out.push_str(&format!("{}_p50{labels} {}\n", key.name, snap.p50()));
            out.push_str(&format!("{}_p95{labels} {}\n", key.name, snap.p95()));
            out.push_str(&format!("{}_p99{labels} {}\n", key.name, snap.p99()));
        }
        out
    }
}

/// One request's phase record: named timed spans in execution order,
/// plus the routing facts the engine learned along the way.
///
/// Serializes to line-oriented text (one `span <name> <nanos>` line per
/// span, one `<key> <value>` line per set fact, always a final
/// `total <nanos>`) and parses back exactly — the same grammar style as
/// the engine's request/response wire format, which is what lets a
/// trace ride inside an `EvalResponse` body.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    /// `(phase name, nanoseconds)` in execution order. Phase names are
    /// single words (no whitespace) so the line grammar round-trips.
    /// The engine's vocabulary: `parse` / `route` / `compile` /
    /// `evaluate` phases on the evaluation routes, and `open` /
    /// `update` / `explain` on session requests (the latter two summed
    /// across a request's ops;
    /// per-op latencies go to the `engine_update_nanos` /
    /// `engine_explain_nanos` histograms instead).
    pub spans: Vec<(String, u64)>,
    /// The route taken (`lifted` / `compiled` / `sampled`, or `session`
    /// for stateful session requests).
    pub route: Option<String>,
    /// Compiled route: whether the circuit came from the cache.
    pub cache_hit: Option<bool>,
    /// Unsafe queries: the flat-gate cost estimate that priced the
    /// route decision.
    pub gates: Option<u64>,
    /// Sampled route: Monte-Carlo samples drawn.
    pub samples: Option<u64>,
    /// Sampled route (adaptive mode): rounds before stopping.
    pub rounds: Option<u64>,
    /// Compiled route: interval-evaluation fallbacks to exact
    /// arithmetic during this request.
    pub fallbacks: Option<u64>,
    /// End-to-end nanoseconds (what the slow log thresholds on).
    pub total_nanos: u64,
}

impl Trace {
    /// A fresh, empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Appends one timed span. `name` must be a single word.
    pub fn push_span(&mut self, name: &str, nanos: u64) {
        debug_assert!(
            !name.is_empty() && !name.contains(char::is_whitespace),
            "span names must be single words: {name:?}"
        );
        self.spans.push((name.to_string(), nanos));
    }

    /// The duration of the first span named `name`, if recorded.
    pub fn span(&self, name: &str) -> Option<u64> {
        self.spans
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, nanos)| nanos)
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, nanos) in &self.spans {
            writeln!(f, "span {name} {nanos}")?;
        }
        if let Some(route) = &self.route {
            writeln!(f, "route {route}")?;
        }
        if let Some(hit) = self.cache_hit {
            writeln!(f, "cache {}", if hit { "hit" } else { "miss" })?;
        }
        if let Some(gates) = self.gates {
            writeln!(f, "gates {gates}")?;
        }
        if let Some(samples) = self.samples {
            writeln!(f, "samples {samples}")?;
        }
        if let Some(rounds) = self.rounds {
            writeln!(f, "rounds {rounds}")?;
        }
        if let Some(fallbacks) = self.fallbacks {
            writeln!(f, "fallbacks {fallbacks}")?;
        }
        writeln!(f, "total {}", self.total_nanos)
    }
}

/// Failure to parse a [`Trace`] body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceParseError(pub String);

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed trace: {}", self.0)
    }
}

impl std::error::Error for TraceParseError {}

impl FromStr for Trace {
    type Err = TraceParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut trace = Trace::new();
        let mut total: Option<u64> = None;
        let parse_u64 = |what: &str, w: &str| -> Result<u64, TraceParseError> {
            w.parse()
                .map_err(|_| TraceParseError(format!("bad {what} '{w}'")))
        };
        for line in s.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (key, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
            let rest = rest.trim();
            let dup = |what: &str| TraceParseError(format!("duplicate '{what}' line"));
            match key {
                "span" => {
                    let (name, nanos) = rest
                        .split_once(char::is_whitespace)
                        .ok_or_else(|| TraceParseError(format!("bad span line '{line}'")))?;
                    trace
                        .spans
                        .push((name.to_string(), parse_u64("span nanos", nanos.trim())?));
                }
                "route" => {
                    if rest.is_empty() || rest.contains(char::is_whitespace) {
                        return Err(TraceParseError(format!("bad route '{rest}'")));
                    }
                    if trace.route.replace(rest.to_string()).is_some() {
                        return Err(dup("route"));
                    }
                }
                "cache" => {
                    let hit = match rest {
                        "hit" => true,
                        "miss" => false,
                        other => return Err(TraceParseError(format!("bad cache state '{other}'"))),
                    };
                    if trace.cache_hit.replace(hit).is_some() {
                        return Err(dup("cache"));
                    }
                }
                "gates" => {
                    if trace.gates.replace(parse_u64("gates", rest)?).is_some() {
                        return Err(dup("gates"));
                    }
                }
                "samples" => {
                    if trace.samples.replace(parse_u64("samples", rest)?).is_some() {
                        return Err(dup("samples"));
                    }
                }
                "rounds" => {
                    if trace.rounds.replace(parse_u64("rounds", rest)?).is_some() {
                        return Err(dup("rounds"));
                    }
                }
                "fallbacks" => {
                    if trace
                        .fallbacks
                        .replace(parse_u64("fallbacks", rest)?)
                        .is_some()
                    {
                        return Err(dup("fallbacks"));
                    }
                }
                "total" => {
                    if total.replace(parse_u64("total", rest)?).is_some() {
                        return Err(dup("total"));
                    }
                }
                other => return Err(TraceParseError(format!("unknown trace line '{other}'"))),
            }
        }
        trace.total_nanos = total.ok_or_else(|| TraceParseError("missing 'total' line".into()))?;
        Ok(trace)
    }
}

/// A fixed-capacity ring buffer of the [`Trace`]s of slow requests.
///
/// A trace is admitted when its `total_nanos` reaches the threshold;
/// once the buffer is full, the oldest admitted trace is dropped. The
/// serving layer renders the buffer on `GET /slow`.
#[derive(Debug)]
pub struct SlowLog {
    threshold_nanos: u64,
    capacity: usize,
    entries: Mutex<VecDeque<Trace>>,
}

impl SlowLog {
    /// A slow log admitting traces of at least `threshold_nanos`,
    /// keeping the most recent `capacity` of them (0 disables logging).
    pub fn new(threshold_nanos: u64, capacity: usize) -> SlowLog {
        SlowLog {
            threshold_nanos,
            capacity,
            entries: Mutex::new(VecDeque::new()),
        }
    }

    /// The admission threshold in nanoseconds.
    pub fn threshold_nanos(&self) -> u64 {
        self.threshold_nanos
    }

    /// The buffer capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Offers one trace; it is cloned into the buffer only if it is
    /// slow enough (so the fast path never allocates).
    pub fn record(&self, trace: &Trace) {
        if self.capacity == 0 || trace.total_nanos < self.threshold_nanos {
            return;
        }
        let mut entries = lock(&self.entries);
        if entries.len() == self.capacity {
            entries.pop_front();
        }
        entries.push_back(trace.clone());
    }

    /// Number of traces currently buffered.
    pub fn len(&self) -> usize {
        lock(&self.entries).len()
    }

    /// True iff nothing slow has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The buffered traces, oldest first.
    pub fn snapshot(&self) -> Vec<Trace> {
        lock(&self.entries).iter().cloned().collect()
    }

    /// The `/slow` rendering: a `slowlog` header line, then each trace
    /// introduced by a `trace <ordinal>` line — every line a
    /// `key value…` pair in the trace grammar.
    pub fn render(&self) -> String {
        let entries = self.snapshot();
        let mut out = format!(
            "slowlog count {} threshold_nanos {} capacity {}\n",
            entries.len(),
            self.threshold_nanos,
            self.capacity
        );
        for (i, trace) in entries.iter().enumerate() {
            out.push_str(&format!("trace {}\n", i + 1));
            out.push_str(&trace.to_string());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn bucket_bounds_partition_the_u64_line() {
        // Every value lands in exactly the bucket whose bounds bracket it.
        for v in [0u64, 1, 2, 3, 4, 255, 256, 1 << 20, u64::MAX / 2, u64::MAX] {
            let i = bucket_index(v);
            assert!(bucket_lower_bound(i) <= v, "{v}");
            assert!(v <= bucket_upper_bound(i), "{v}");
        }
        // Bounds are strictly monotone and adjacent.
        for i in 1..BUCKETS {
            assert_eq!(bucket_lower_bound(i), bucket_upper_bound(i - 1) + 1, "{i}");
        }
        assert_eq!(bucket_upper_bound(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn histogram_conserves_count_and_sum() {
        let h = Histogram::new();
        let values = [0u64, 1, 17, 1000, 1 << 40];
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, values.len() as u64);
        assert_eq!(snap.sum, values.iter().sum::<u64>());
        assert_eq!(snap.buckets.iter().sum::<u64>(), snap.count);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Arc::new(Histogram::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let h = Arc::clone(&h);
                thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 8_000);
        assert_eq!(snap.buckets.iter().sum::<u64>(), 8_000);
    }

    #[test]
    fn quantiles_fall_in_the_right_bucket() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        // Rank 50 of 1..=100 is 50: bucket 6 (32..=63), upper bound 63.
        assert_eq!(snap.p50(), 63);
        // Rank 95 is 95: bucket 7 (64..=127), upper bound 127.
        assert_eq!(snap.p95(), 127);
        // Rank 1 is value 1: bucket 1, whose sole member (and bound) is 1.
        assert_eq!(snap.quantile(0.01), 1);
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0);
    }

    #[test]
    fn merge_is_the_bucket_wise_sum() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(5);
        a.record(1 << 30);
        b.record(5);
        let merged = a.snapshot().merge(&b.snapshot());
        assert_eq!(merged.count, 3);
        assert_eq!(merged.sum, 10 + (1 << 30));
        assert_eq!(
            merged,
            b.snapshot().merge(&a.snapshot()),
            "merge must commute"
        );
    }

    #[test]
    fn registry_handles_are_shared_and_lockfree_to_record() {
        let reg = Registry::new();
        let c1 = reg.counter("requests_total", &[("route", "lifted")]);
        let c2 = reg.counter("requests_total", &[("route", "lifted")]);
        c1.inc();
        c2.inc();
        assert_eq!(
            reg.counter_value("requests_total", &[("route", "lifted")]),
            2
        );
        // Label order does not split the identity.
        let h1 = reg.histogram("lat", &[("a", "1"), ("b", "2")]);
        let h2 = reg.histogram("lat", &[("b", "2"), ("a", "1")]);
        h1.record(7);
        assert_eq!(h2.snapshot().count, 1);
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let reg = Registry::new();
        reg.counter("requests_total", &[("route", "lifted")]).inc();
        reg.set_gauge("queue_depth", &[], 3);
        reg.histogram("request_nanos", &[("route", "lifted")])
            .record(100);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE requests_total counter\n"));
        assert!(text.contains("requests_total{route=\"lifted\"} 1\n"));
        assert!(text.contains("# TYPE queue_depth gauge\n"));
        assert!(text.contains("queue_depth 3\n"));
        assert!(text.contains("# TYPE request_nanos histogram\n"));
        assert!(text.contains("request_nanos_bucket{route=\"lifted\",le=\"+Inf\"} 1\n"));
        assert!(text.contains("request_nanos_sum{route=\"lifted\"} 100\n"));
        assert!(text.contains("request_nanos_count{route=\"lifted\"} 1\n"));
        // Cumulative le buckets are monotone non-decreasing.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket{")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "{line}");
            last = v;
        }
        // Plain rendering reads the same store: same keys, same values.
        let plain = reg.render_plain();
        assert!(plain.contains("requests_total{route=\"lifted\"} 1\n"));
        assert!(plain.contains("queue_depth 3\n"));
        assert!(plain.contains("request_nanos_count{route=\"lifted\"} 1\n"));
    }

    #[test]
    fn trace_roundtrips_through_text() {
        let mut trace = Trace::new();
        trace.push_span("parse", 1_200);
        trace.push_span("route", 300);
        trace.push_span("compile", 90_000);
        trace.route = Some("compiled".into());
        trace.cache_hit = Some(false);
        trace.gates = Some(512);
        trace.fallbacks = Some(0);
        trace.total_nanos = 95_000;
        let text = trace.to_string();
        assert_eq!(text.parse::<Trace>().unwrap(), trace);
        // A minimal trace (defaults only) round-trips too.
        let minimal = Trace::new();
        assert_eq!(minimal.to_string().parse::<Trace>().unwrap(), minimal);
    }

    #[test]
    fn trace_parse_rejects_malformed_bodies() {
        for bad in [
            "",                       // missing total
            "span parse\ntotal 1\n",  // span without nanos
            "cache maybe\ntotal 1\n", // bad cache state
            "total 1\ntotal 2\n",     // duplicate
            "unknown 3\ntotal 1\n",   // unknown key
            "route two words\ntotal 1\n",
        ] {
            assert!(bad.parse::<Trace>().is_err(), "{bad:?}");
        }
    }

    #[test]
    fn slow_log_thresholds_and_rings() {
        let log = SlowLog::new(100, 2);
        let mut fast = Trace::new();
        fast.total_nanos = 99;
        log.record(&fast);
        assert!(log.is_empty(), "below threshold is not logged");
        for total in [100, 200, 300] {
            let mut t = Trace::new();
            t.total_nanos = total;
            log.record(&t);
        }
        let entries = log.snapshot();
        assert_eq!(entries.len(), 2, "ring keeps the most recent entries");
        assert_eq!(entries[0].total_nanos, 200);
        assert_eq!(entries[1].total_nanos, 300);
        let text = log.render();
        assert!(text.starts_with("slowlog count 2 threshold_nanos 100 capacity 2\n"));
        assert!(text.contains("trace 1\n"));
        assert!(text.contains("total 300\n"));
    }
}
