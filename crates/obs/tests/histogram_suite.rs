//! Property suite for the histogram core — the algebra the fleet-wide
//! latency views depend on:
//!
//! * **Conservation**: after any sequence of records, `count` equals the
//!   bucket sum exactly and `sum` equals the value sum exactly.
//! * **Merge algebra**: snapshot merging is associative and commutative
//!   (per-thread and per-shard histograms combine into one view in any
//!   order) and conserves count and sum.
//! * **Monotone bounds**: bucket bounds strictly increase and tile the
//!   whole `u64` line with no gap and no overlap.
//! * **Percentile-within-bucket**: every quantile readout lands in the
//!   same bucket as the true order statistic of the recorded values.

use gfomc_obs::{
    bucket_index, bucket_lower_bound, bucket_upper_bound, Histogram, HistogramSnapshot, BUCKETS,
};
use proptest::prelude::*;

/// Records every value into a fresh histogram.
fn histogram_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

/// Value generator spanning every magnitude: small counts, mid-range
/// latencies, and near-overflow outliers all hit distinct buckets.
fn value() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..16,
        1u64..100_000,
        1u64..(1 << 40),
        Just(u64::MAX),
        any::<u64>(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn count_and_sum_are_conserved(values in proptest::collection::vec(value(), 0..200)) {
        let snap = histogram_of(&values);
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(snap.buckets.iter().sum::<u64>(), snap.count);
        // Wrapping sum mirrors the histogram's modular accumulator, so
        // the law holds even for near-MAX outlier mixes.
        let expect_sum = values.iter().fold(0u64, |acc, &v| acc.wrapping_add(v));
        prop_assert_eq!(snap.sum, expect_sum);
    }

    #[test]
    fn merge_commutes_and_conserves(
        a in proptest::collection::vec(value(), 0..100),
        b in proptest::collection::vec(value(), 0..100),
    ) {
        let (sa, sb) = (histogram_of(&a), histogram_of(&b));
        let merged = sa.merge(&sb);
        prop_assert_eq!(merged, sb.merge(&sa));
        prop_assert_eq!(merged.count, sa.count + sb.count);
        prop_assert_eq!(merged.sum, sa.sum.wrapping_add(sb.sum));
        // Merging two streams equals recording their concatenation.
        let mut all = a.clone();
        all.extend_from_slice(&b);
        prop_assert_eq!(merged, histogram_of(&all));
    }

    #[test]
    fn merge_associates(
        a in proptest::collection::vec(value(), 0..60),
        b in proptest::collection::vec(value(), 0..60),
        c in proptest::collection::vec(value(), 0..60),
    ) {
        let (sa, sb, sc) = (histogram_of(&a), histogram_of(&b), histogram_of(&c));
        prop_assert_eq!(sa.merge(&sb).merge(&sc), sa.merge(&sb.merge(&sc)));
    }

    #[test]
    fn every_value_lands_between_its_bucket_bounds(v in value()) {
        let i = bucket_index(v);
        prop_assert!(i < BUCKETS);
        prop_assert!(bucket_lower_bound(i) <= v);
        prop_assert!(v <= bucket_upper_bound(i));
    }

    #[test]
    fn quantile_lands_in_the_order_statistic_bucket(
        values in proptest::collection::vec(value(), 1..200),
        q_permille in 1u64..1000,
    ) {
        let q = q_permille as f64 / 1000.0;
        let snap = histogram_of(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        // The rank the quantile definition targets, 1-based.
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let order_statistic = sorted[rank - 1];
        let got = snap.quantile(q);
        prop_assert_eq!(
            bucket_index(got),
            bucket_index(order_statistic),
            "q={} rank={} stat={} got={}",
            q,
            rank,
            order_statistic,
            got
        );
        // And the readout is the bucket's inclusive upper bound, so it
        // never understates the order statistic.
        prop_assert!(got >= order_statistic);
    }
}

#[test]
fn bucket_bounds_are_strictly_monotone_and_tile_u64() {
    for i in 1..BUCKETS {
        assert!(bucket_upper_bound(i) > bucket_upper_bound(i - 1), "{i}");
        assert!(bucket_lower_bound(i) > bucket_lower_bound(i - 1), "{i}");
        assert_eq!(
            bucket_lower_bound(i),
            bucket_upper_bound(i - 1) + 1,
            "no gap, no overlap at {i}"
        );
    }
    assert_eq!(bucket_lower_bound(0), 0);
    assert_eq!(bucket_upper_bound(BUCKETS - 1), u64::MAX);
}
