//! Exact rational numbers in lowest terms.

use crate::integer::{Integer, Sign};
use crate::natural::Natural;
use crate::rat64::{self, Rat64};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// An exact rational number `numer / denom`.
///
/// Invariants: `denom > 0`, and `gcd(|numer|, denom) == 1` (zero is `0/1`).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rational {
    numer: Integer,
    denom: Natural,
}

impl Rational {
    /// The constant zero.
    pub fn zero() -> Self {
        Rational {
            numer: Integer::zero(),
            denom: Natural::one(),
        }
    }

    /// The constant one.
    pub fn one() -> Self {
        Rational {
            numer: Integer::one(),
            denom: Natural::one(),
        }
    }

    /// The constant one half — the workhorse probability of the paper.
    pub fn one_half() -> Self {
        Rational::from_ints(1, 2)
    }

    /// Builds `n / d` from machine integers. Panics if `d == 0`.
    pub fn from_ints(n: i64, d: i64) -> Self {
        Rational::new(Integer::from(n), Integer::from(d))
    }

    /// Builds `n / d` from big integers, reducing to lowest terms.
    /// Panics if `d == 0`.
    pub fn new(n: Integer, d: Integer) -> Self {
        assert!(!d.is_zero(), "rational with zero denominator");
        let sign_flip = d.is_negative();
        let n = if sign_flip { -n } else { n };
        let d = d.into_magnitude();
        let g = n.magnitude().gcd(&d);
        if g.is_one() || n.is_zero() {
            if n.is_zero() {
                return Rational::zero();
            }
            return Rational { numer: n, denom: d };
        }
        let (nq, _) = n.magnitude().div_rem(&g);
        let (dq, _) = d.div_rem(&g);
        Rational {
            numer: Integer::from_sign_magnitude(n.sign(), nq),
            denom: dq,
        }
    }

    /// The (signed) numerator.
    pub fn numer(&self) -> &Integer {
        &self.numer
    }

    /// The (positive) denominator.
    pub fn denom(&self) -> &Natural {
        &self.denom
    }

    /// True iff zero.
    pub fn is_zero(&self) -> bool {
        self.numer.is_zero()
    }

    /// True iff one.
    pub fn is_one(&self) -> bool {
        self.numer.is_one() && self.denom.is_one()
    }

    /// True iff strictly negative.
    pub fn is_negative(&self) -> bool {
        self.numer.is_negative()
    }

    /// True iff strictly positive.
    pub fn is_positive(&self) -> bool {
        self.numer.is_positive()
    }

    /// True iff the value lies in the closed interval `[0, 1]` — i.e. is a
    /// valid probability.
    pub fn is_probability(&self) -> bool {
        !self.is_negative() && self.numer.magnitude() <= &self.denom
    }

    /// Absolute value.
    pub fn abs(&self) -> Rational {
        Rational {
            numer: self.numer.abs(),
            denom: self.denom.clone(),
        }
    }

    /// Multiplicative inverse; panics on zero.
    pub fn recip(&self) -> Rational {
        assert!(!self.is_zero(), "reciprocal of zero");
        Rational::new(
            Integer::from_sign_magnitude(self.numer.sign(), self.denom.clone()),
            Integer::from_sign_magnitude(Sign::Positive, self.numer.magnitude().clone()),
        )
    }

    /// `self ^ exp` for a signed exponent (negative exponents invert).
    pub fn pow(&self, exp: i32) -> Rational {
        if exp == 0 {
            return Rational::one();
        }
        let base = if exp < 0 { self.recip() } else { self.clone() };
        let e = exp.unsigned_abs();
        Rational {
            numer: base.numer.pow(e),
            denom: base.denom.pow(e),
        }
    }

    /// `1 - self`: the complement of a probability.
    pub fn complement(&self) -> Rational {
        &Rational::one() - self
    }

    /// Lossy conversion to `f64` (reporting only).
    pub fn to_f64(&self) -> f64 {
        self.numer.to_f64() / self.denom.to_f64()
    }

    /// This value as a machine-word rational, if numerator and denominator
    /// both fit one limb. The [`Rat64`] inherits the lowest-terms
    /// invariant, so no re-reduction happens in either direction.
    pub fn to_rat64(&self) -> Option<Rat64> {
        let n = self.numer.to_i64()?;
        let d = self.denom.to_u64()?;
        Some(Rat64::from_reduced(n, d))
    }

    /// Builds a rational from parts **already in lowest terms** with
    /// `den > 0` — the return road from [`Rat64`] results, which maintain
    /// exactly this invariant. Crate-internal: external callers go through
    /// [`Rational::new`], which reduces.
    pub(crate) fn from_reduced_parts(num: i64, den: u64) -> Rational {
        Rational {
            numer: Integer::from(num),
            denom: Natural::from(den),
        }
    }

    fn add_rat(&self, other: &Rational) -> Rational {
        // Small-limb fast path: both operands fit machine words, and the
        // op itself reports overflow instead of wrapping. Bit-identical to
        // the bignum path (both canonicalize to lowest terms).
        match (self.to_rat64(), other.to_rat64()) {
            (Some(a), Some(b)) => {
                if let Some(r) = a.checked_add(b) {
                    return r.into();
                }
            }
            _ => rat64::record_miss(),
        }
        self.add_big(other)
    }

    /// The bignum addition path (also the reference the property suite
    /// pins the fast path against).
    pub(crate) fn add_big(&self, other: &Rational) -> Rational {
        // n1/d1 + n2/d2 = (n1*d2 + n2*d1) / (d1*d2); `new` re-reduces.
        let d1 = Integer::from(self.denom.clone());
        let d2 = Integer::from(other.denom.clone());
        Rational::new(&self.numer * &d2 + &other.numer * &d1, d1 * d2)
    }

    fn sub_rat(&self, other: &Rational) -> Rational {
        match (self.to_rat64(), other.to_rat64()) {
            (Some(a), Some(b)) => {
                if let Some(r) = a.checked_sub(b) {
                    return r.into();
                }
            }
            _ => rat64::record_miss(),
        }
        self.add_big(&(-other))
    }

    fn mul_rat(&self, other: &Rational) -> Rational {
        match (self.to_rat64(), other.to_rat64()) {
            (Some(a), Some(b)) => {
                if let Some(r) = a.checked_mul(b) {
                    return r.into();
                }
            }
            _ => rat64::record_miss(),
        }
        self.mul_big(other)
    }

    /// The bignum multiplication path (fast-path reference).
    pub(crate) fn mul_big(&self, other: &Rational) -> Rational {
        Rational::new(
            &self.numer * &other.numer,
            Integer::from(&self.denom * &other.denom),
        )
    }

    /// Parses `"a/b"` or `"a"` in decimal (with optional leading `-`).
    pub fn from_decimal(s: &str) -> Option<Rational> {
        match s.split_once('/') {
            Some((n, d)) => {
                let n = Integer::from_decimal(n.trim())?;
                let d = Integer::from_decimal(d.trim())?;
                if d.is_zero() {
                    None
                } else {
                    Some(Rational::new(n, d))
                }
            }
            None => Some(Rational::new(
                Integer::from_decimal(s.trim())?,
                Integer::one(),
            )),
        }
    }
}

impl From<i64> for Rational {
    fn from(v: i64) -> Self {
        Rational {
            numer: Integer::from(v),
            denom: Natural::one(),
        }
    }
}

impl From<Integer> for Rational {
    fn from(v: Integer) -> Self {
        Rational {
            numer: v,
            denom: Natural::one(),
        }
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b <=> c/d  iff  a*d <=> c*b  (b, d > 0).
        let lhs = &self.numer * &Integer::from(other.denom.clone());
        let rhs = &other.numer * &Integer::from(self.denom.clone());
        lhs.cmp(&rhs)
    }
}

macro_rules! forward_binop {
    ($trait:ident, $method:ident, $impl:ident) => {
        impl $trait<&Rational> for &Rational {
            type Output = Rational;
            fn $method(self, rhs: &Rational) -> Rational {
                self.$impl(rhs)
            }
        }
        impl $trait<Rational> for Rational {
            type Output = Rational;
            fn $method(self, rhs: Rational) -> Rational {
                (&self).$impl(&rhs)
            }
        }
        impl $trait<&Rational> for Rational {
            type Output = Rational;
            fn $method(self, rhs: &Rational) -> Rational {
                (&self).$impl(rhs)
            }
        }
        impl $trait<Rational> for &Rational {
            type Output = Rational;
            fn $method(self, rhs: Rational) -> Rational {
                self.$impl(&rhs)
            }
        }
    };
}

forward_binop!(Add, add, add_rat);
forward_binop!(Mul, mul, mul_rat);

impl Sub<&Rational> for &Rational {
    type Output = Rational;
    fn sub(self, rhs: &Rational) -> Rational {
        self.sub_rat(rhs)
    }
}
impl Sub<Rational> for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        (&self).sub(&rhs)
    }
}
impl Sub<&Rational> for Rational {
    type Output = Rational;
    fn sub(self, rhs: &Rational) -> Rational {
        (&self).sub(rhs)
    }
}
impl Sub<Rational> for &Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        self.sub(&rhs)
    }
}

impl Div<&Rational> for &Rational {
    type Output = Rational;
    fn div(self, rhs: &Rational) -> Rational {
        self.mul_rat(&rhs.recip())
    }
}
impl Div<Rational> for Rational {
    type Output = Rational;
    fn div(self, rhs: Rational) -> Rational {
        (&self).div(&rhs)
    }
}
impl Div<&Rational> for Rational {
    type Output = Rational;
    fn div(self, rhs: &Rational) -> Rational {
        (&self).div(rhs)
    }
}
impl Div<Rational> for &Rational {
    type Output = Rational;
    fn div(self, rhs: Rational) -> Rational {
        self.div(&rhs)
    }
}

impl Neg for &Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            numer: -&self.numer,
            denom: self.denom.clone(),
        }
    }
}
impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            numer: -self.numer,
            denom: self.denom,
        }
    }
}

impl AddAssign<&Rational> for Rational {
    fn add_assign(&mut self, rhs: &Rational) {
        *self = self.add_rat(rhs);
    }
}
impl SubAssign<&Rational> for Rational {
    fn sub_assign(&mut self, rhs: &Rational) {
        *self = (&*self).sub(rhs);
    }
}
impl MulAssign<&Rational> for Rational {
    fn mul_assign(&mut self, rhs: &Rational) {
        *self = self.mul_rat(rhs);
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.denom.is_one() {
            write!(f, "{}", self.numer)
        } else {
            write!(f, "{}/{}", self.numer, self.denom)
        }
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_ints(n, d)
    }

    #[test]
    fn reduces_to_lowest_terms() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, 4), r(-1, 2));
        assert_eq!(r(2, -4), r(-1, 2));
        assert_eq!(r(-2, -4), r(1, 2));
        assert_eq!(r(0, 7), Rational::zero());
    }

    #[test]
    fn arithmetic_basics() {
        assert_eq!(r(1, 2) + r(1, 3), r(5, 6));
        assert_eq!(r(1, 2) - r(1, 3), r(1, 6));
        assert_eq!(r(2, 3) * r(3, 4), r(1, 2));
        assert_eq!(r(1, 2) / r(1, 4), r(2, 1));
    }

    #[test]
    fn ordering() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(-1, 2) < r(0, 1));
        assert_eq!(r(2, 4).cmp(&r(1, 2)), Ordering::Equal);
    }

    #[test]
    fn recip_and_pow() {
        assert_eq!(r(2, 3).recip(), r(3, 2));
        assert_eq!(r(-2, 3).recip(), r(-3, 2));
        assert_eq!(r(2, 3).pow(2), r(4, 9));
        assert_eq!(r(2, 3).pow(-2), r(9, 4));
        assert_eq!(r(5, 7).pow(0), Rational::one());
    }

    #[test]
    fn complement_of_probability() {
        assert_eq!(r(1, 2).complement(), r(1, 2));
        assert_eq!(r(1, 3).complement(), r(2, 3));
        assert_eq!(Rational::one().complement(), Rational::zero());
    }

    #[test]
    fn probability_range_check() {
        assert!(r(1, 2).is_probability());
        assert!(Rational::zero().is_probability());
        assert!(Rational::one().is_probability());
        assert!(!r(3, 2).is_probability());
        assert!(!r(-1, 2).is_probability());
    }

    #[test]
    fn parse_and_display() {
        assert_eq!(Rational::from_decimal("3/6").unwrap(), r(1, 2));
        assert_eq!(Rational::from_decimal("-5").unwrap(), r(-5, 1));
        assert_eq!(Rational::from_decimal("1/0"), None);
        assert_eq!(r(1, 2).to_string(), "1/2");
        assert_eq!(r(4, 2).to_string(), "2");
    }

    #[test]
    fn to_f64_close() {
        assert!((r(1, 3).to_f64() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn one_half_constant() {
        assert_eq!(Rational::one_half(), r(1, 2));
    }
}
