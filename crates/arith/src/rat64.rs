//! Machine-word rationals: the small-limb fast path of [`Rational`].
//!
//! Profiling the flat circuit evaluator showed that on realistic block-TID
//! workloads *every* gate value fits a single 64-bit limb, yet each
//! [`Rational`] add/mul pays several `Vec<u64>` allocations plus a full
//! bignum GCD. [`Rat64`] is the escape hatch: an `i64/u64` rational in
//! lowest terms whose ops run entirely in machine registers (products in
//! `i128`/`u128`, reduction by a word-sized binary GCD) and report
//! overflow as `None` instead of wrapping, so callers can fall back to the
//! bignum path losslessly.
//!
//! Exactness contract: a `Rat64` is always in lowest terms with a positive
//! denominator (zero is `0/1`), i.e. exactly the canonical form
//! [`Rational`] maintains — converting a `Rat64` result back to `Rational`
//! is **bit-identical** to running the same op through the bignum path.
//! The arith property suite pins this for add/mul/sub under adversarial
//! operands.
//!
//! The module also keeps per-thread telemetry (`[small_path_thread_stats]`)
//! counting fast-path hits vs bignum fallbacks, exported by the benchmark
//! series as `rational_small_path_hit_rate`.

use crate::rational::Rational;
use std::cell::Cell;

thread_local! {
    /// Fast-path ops completed without spilling to bignum (this thread).
    static SMALL_HITS: Cell<u64> = const { Cell::new(0) };
    /// Ops that fell back to the bignum path — operand or result did not
    /// fit machine words (this thread).
    static SMALL_MISSES: Cell<u64> = const { Cell::new(0) };
}

/// Records one completed fast-path op on this thread.
#[inline]
pub(crate) fn record_hit() {
    SMALL_HITS.with(|c| c.set(c.get() + 1));
}

/// Records one bignum fallback on this thread.
#[inline]
pub(crate) fn record_miss() {
    SMALL_MISSES.with(|c| c.set(c.get() + 1));
}

/// `(hits, total)` small-path counters for the current thread: `hits`
/// ops ran entirely in machine words, `total − hits` fell back to bignum.
/// Monotone; read before/after a workload and subtract to attribute.
pub fn small_path_thread_stats() -> (u64, u64) {
    let hits = SMALL_HITS.with(Cell::get);
    let misses = SMALL_MISSES.with(Cell::get);
    (hits, hits + misses)
}

/// Word-sized GCD (Stein's algorithm); `gcd(0, n) == n`.
#[inline]
fn gcd_u64(mut a: u64, mut b: u64) -> u64 {
    if a == 0 {
        return b;
    }
    if b == 0 {
        return a;
    }
    let shift = (a | b).trailing_zeros();
    a >>= a.trailing_zeros();
    loop {
        b >>= b.trailing_zeros();
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        b -= a;
        if b == 0 {
            return a << shift;
        }
    }
}

/// Double-word GCD for the unreduced cross-multiplied sums of `add`.
#[inline]
fn gcd_u128(mut a: u128, mut b: u128) -> u128 {
    if a == 0 {
        return b;
    }
    if b == 0 {
        return a;
    }
    let shift = (a | b).trailing_zeros();
    a >>= a.trailing_zeros();
    loop {
        b >>= b.trailing_zeros();
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        b -= a;
        if b == 0 {
            return a << shift;
        }
    }
}

/// A rational `num / den` in machine words.
///
/// Invariants (identical to [`Rational`]): `den > 0`,
/// `gcd(|num|, den) == 1`, and zero is `0/1`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Rat64 {
    num: i64,
    den: u64,
}

impl Rat64 {
    /// The constant zero (`0/1`).
    pub const ZERO: Rat64 = Rat64 { num: 0, den: 1 };
    /// The constant one (`1/1`).
    pub const ONE: Rat64 = Rat64 { num: 1, den: 1 };

    /// Wraps parts that are **already in lowest terms** with `den > 0`
    /// (zero as `0/1`). Debug-asserted, not re-reduced — this is how
    /// [`Rational::to_rat64`] transfers its own invariant.
    #[inline]
    pub fn from_reduced(num: i64, den: u64) -> Rat64 {
        debug_assert!(den > 0, "Rat64 with zero denominator");
        debug_assert!(num != 0 || den == 1, "Rat64 zero must be 0/1");
        debug_assert_eq!(gcd_u64(num.unsigned_abs(), den), 1, "not in lowest terms");
        Rat64 { num, den }
    }

    /// The (signed) numerator.
    #[inline]
    pub fn num(&self) -> i64 {
        self.num
    }

    /// The (positive) denominator.
    #[inline]
    pub fn den(&self) -> u64 {
        self.den
    }

    /// True iff zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// True iff one.
    #[inline]
    pub fn is_one(&self) -> bool {
        self.num == 1 && self.den == 1
    }

    /// Normalizes an exact double-word quotient into a `Rat64`, or `None`
    /// when the reduced parts exceed machine words.
    #[inline]
    fn reduce_128(num: i128, den: u128) -> Option<Rat64> {
        debug_assert!(den > 0);
        if num == 0 {
            return Some(Rat64::ZERO);
        }
        let g = gcd_u128(num.unsigned_abs(), den);
        let n = num / g as i128;
        let d = den / g;
        match (i64::try_from(n), u64::try_from(d)) {
            (Ok(num), Ok(den)) => Some(Rat64 { num, den }),
            _ => None,
        }
    }

    /// `self + n2/d2` with the addend's numerator pre-widened, the shared
    /// core of [`Rat64::checked_add`] / [`Rat64::checked_sub`].
    #[inline]
    fn add_core(self, n2: i128, d2: u64) -> Option<Rat64> {
        // Each cross product has magnitude < 2^127, so only the final sum
        // can overflow the i128.
        let t1 = self.num as i128 * d2 as i128;
        let t2 = n2 * self.den as i128;
        let num = t1.checked_add(t2)?;
        let den = self.den as u128 * d2 as u128;
        Rat64::reduce_128(num, den)
    }

    /// `self + other`, or `None` if any intermediate or the reduced result
    /// exceeds machine words. Records a fast-path hit/miss either way.
    #[inline]
    pub fn checked_add(self, other: Rat64) -> Option<Rat64> {
        match self.add_core(other.num as i128, other.den) {
            Some(r) => {
                record_hit();
                Some(r)
            }
            None => {
                record_miss();
                None
            }
        }
    }

    /// `self - other` (see [`Rat64::checked_add`]).
    #[inline]
    pub fn checked_sub(self, other: Rat64) -> Option<Rat64> {
        match self.add_core(-(other.num as i128), other.den) {
            Some(r) => {
                record_hit();
                Some(r)
            }
            None => {
                record_miss();
                None
            }
        }
    }

    /// `self * other`, or `None` on machine-word overflow. Cross-reduces
    /// first (`gcd(|n1|, d2)`, `gcd(|n2|, d1)`), so the products are of
    /// already-coprime parts and the result needs no further reduction.
    #[inline]
    pub fn checked_mul(self, other: Rat64) -> Option<Rat64> {
        if self.num == 0 || other.num == 0 {
            record_hit();
            return Some(Rat64::ZERO);
        }
        let g1 = gcd_u64(self.num.unsigned_abs(), other.den);
        let g2 = gcd_u64(other.num.unsigned_abs(), self.den);
        let num = (self.num as i128 / g1 as i128) * (other.num as i128 / g2 as i128);
        let den = (self.den / g2) as u128 * (other.den / g1) as u128;
        match (i64::try_from(num), u64::try_from(den)) {
            (Ok(num), Ok(den)) => {
                record_hit();
                Some(Rat64 { num, den })
            }
            _ => {
                record_miss();
                None
            }
        }
    }

    /// `1 - self`, or `None` if the numerator leaves `i64`. The result
    /// shares the denominator and `gcd(d − n, d) = gcd(n, d) = 1`, so no
    /// reduction is needed.
    #[inline]
    pub fn complement(self) -> Option<Rat64> {
        let num = self.den as i128 - self.num as i128;
        if num == 0 {
            return Some(Rat64::ZERO);
        }
        i64::try_from(num)
            .ok()
            .map(|num| Rat64 { num, den: self.den })
    }
}

impl From<Rat64> for Rational {
    fn from(r: Rat64) -> Rational {
        Rational::from_reduced_parts(r.num, r.den)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rat(n: i64, d: i64) -> Rational {
        Rational::from_ints(n, d)
    }

    fn r64(n: i64, d: i64) -> Rat64 {
        rat(n, d).to_rat64().expect("fits machine words")
    }

    #[test]
    fn constants_and_accessors() {
        assert!(Rat64::ZERO.is_zero());
        assert!(Rat64::ONE.is_one());
        assert_eq!(r64(3, 6).num(), 1);
        assert_eq!(r64(3, 6).den(), 2);
    }

    #[test]
    fn ops_match_bignum() {
        let cases = [(1i64, 2i64), (-3, 7), (5, 8), (0, 1), (7, 1)];
        for &(an, ad) in &cases {
            for &(bn, bd) in &cases {
                let (a, b) = (r64(an, ad), r64(bn, bd));
                let (ra, rb) = (rat(an, ad), rat(bn, bd));
                assert_eq!(
                    Rational::from(a.checked_add(b).unwrap()),
                    &ra + &rb,
                    "{ra} + {rb}"
                );
                assert_eq!(
                    Rational::from(a.checked_sub(b).unwrap()),
                    &ra - &rb,
                    "{ra} - {rb}"
                );
                assert_eq!(
                    Rational::from(a.checked_mul(b).unwrap()),
                    &ra * &rb,
                    "{ra} * {rb}"
                );
            }
        }
    }

    #[test]
    fn complement_matches_bignum() {
        for &(n, d) in &[(0i64, 1i64), (1, 1), (1, 2), (3, 8), (1, 1 << 60)] {
            assert_eq!(
                Rational::from(r64(n, d).complement().unwrap()),
                rat(n, d).complement()
            );
        }
    }

    #[test]
    fn overflow_spills_to_none() {
        // (2^62 + 1)/2 squared: the numerator needs ~124 bits.
        let big = r64((1 << 62) + 1, 2);
        assert_eq!(big.checked_mul(big), None);
        // 1/2^62 + 1/(2^62 - 1): denominators coprime, the reduced result
        // keeps a ~124-bit denominator.
        let a = r64(1, 1 << 62);
        let b = r64(1, (1 << 62) - 1);
        assert_eq!(a.checked_add(b), None);
    }

    #[test]
    fn zero_normalizes_to_canonical_form() {
        let half = r64(1, 2);
        let z = half.checked_sub(half).unwrap();
        assert_eq!(z, Rat64::ZERO);
        assert_eq!(z.den(), 1);
        assert_eq!(half.checked_mul(Rat64::ZERO).unwrap(), Rat64::ZERO);
    }

    #[test]
    fn thread_stats_move() {
        let (h0, t0) = small_path_thread_stats();
        let _ = r64(1, 2).checked_add(r64(1, 3)).unwrap();
        let (h1, t1) = small_path_thread_stats();
        assert!(h1 > h0 && t1 > t0);
    }

    #[test]
    fn gcd_helpers() {
        assert_eq!(gcd_u64(0, 5), 5);
        assert_eq!(gcd_u64(12, 18), 6);
        assert_eq!(gcd_u64(u64::MAX, u64::MAX - 1), 1);
        assert_eq!(gcd_u128(1 << 100, 1 << 64), 1 << 64);
    }
}
