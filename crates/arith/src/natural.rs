//! Arbitrary-precision unsigned integers.
//!
//! [`Natural`] is a little-endian vector of `u64` limbs with no trailing zero
//! limbs (the canonical representation of zero is the empty vector). All
//! arithmetic is exact; the implementation favours clarity over asymptotic
//! sophistication (schoolbook multiplication and Knuth's Algorithm D for
//! division), which is ample for the operand sizes arising in the paper's
//! reductions (probabilities are dyadic rationals of modest height).

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Rem, Shl, Shr, Sub, SubAssign};

/// An arbitrary-precision unsigned integer.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Natural {
    /// Little-endian limbs; invariant: no trailing zeros.
    limbs: Vec<u64>,
}

impl Natural {
    /// The constant zero.
    pub fn zero() -> Self {
        Natural { limbs: Vec::new() }
    }

    /// The constant one.
    pub fn one() -> Self {
        Natural { limbs: vec![1] }
    }

    /// Builds a natural from raw little-endian limbs, normalizing trailing zeros.
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        Natural { limbs }
    }

    /// Read-only view of the little-endian limbs.
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// True iff `self == 0`.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True iff `self == 1`.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// True iff the value is even (zero counts as even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of significant bits (0 for zero).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => self.limbs.len() * 64 - top.leading_zeros() as usize,
        }
    }

    /// Returns `self` as `u64` if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Returns `self` as `u128` if it fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some(self.limbs[0] as u128 | (self.limbs[1] as u128) << 64),
            _ => None,
        }
    }

    /// Lossy conversion to `f64` (for reporting only, never for logic).
    pub fn to_f64(&self) -> f64 {
        let mut acc = 0.0f64;
        for &l in self.limbs.iter().rev() {
            acc = acc * 1.8446744073709552e19 + l as f64;
        }
        acc
    }

    /// Compares two naturals.
    fn cmp_limbs(a: &[u64], b: &[u64]) -> Ordering {
        if a.len() != b.len() {
            return a.len().cmp(&b.len());
        }
        for (x, y) in a.iter().rev().zip(b.iter().rev()) {
            match x.cmp(y) {
                Ordering::Equal => {}
                o => return o,
            }
        }
        Ordering::Equal
    }

    /// `self + other`.
    fn add_nat(&self, other: &Natural) -> Natural {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &a) in long.iter().enumerate() {
            let b = short.get(i).copied().unwrap_or(0);
            let (s1, c1) = a.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            out.push(carry);
        }
        Natural::from_limbs(out)
    }

    /// `self - other`; panics on underflow (callers check ordering first).
    fn sub_nat(&self, other: &Natural) -> Natural {
        debug_assert!(Self::cmp_limbs(&self.limbs, &other.limbs) != Ordering::Less);
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, u1) = self.limbs[i].overflowing_sub(b);
            let (d2, u2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (u1 as u64) + (u2 as u64);
        }
        assert_eq!(borrow, 0, "Natural subtraction underflow");
        Natural::from_limbs(out)
    }

    /// Schoolbook multiplication.
    fn mul_nat(&self, other: &Natural) -> Natural {
        if self.is_zero() || other.is_zero() {
            return Natural::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let t = out[i + j] as u128 + a as u128 * b as u128 + carry;
                out[i + j] = t as u64;
                carry = t >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let t = out[k] as u128 + carry;
                out[k] = t as u64;
                carry = t >> 64;
                k += 1;
            }
        }
        Natural::from_limbs(out)
    }

    /// Multiply by a single limb in place.
    fn mul_small(&self, m: u64) -> Natural {
        if m == 0 || self.is_zero() {
            return Natural::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u128;
        for &l in &self.limbs {
            let t = l as u128 * m as u128 + carry;
            out.push(t as u64);
            carry = t >> 64;
        }
        if carry != 0 {
            out.push(carry as u64);
        }
        Natural::from_limbs(out)
    }

    /// `self + small`.
    fn add_small(&self, a: u64) -> Natural {
        self.add_nat(&Natural::from(a))
    }

    /// Divides by a single limb, returning (quotient, remainder).
    fn div_rem_small(&self, d: u64) -> (Natural, u64) {
        assert!(d != 0, "division by zero");
        let mut out = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            out[i] = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        (Natural::from_limbs(out), rem as u64)
    }

    /// Full division with remainder (Knuth Algorithm D).
    pub fn div_rem(&self, divisor: &Natural) -> (Natural, Natural) {
        assert!(!divisor.is_zero(), "division by zero");
        match Self::cmp_limbs(&self.limbs, &divisor.limbs) {
            Ordering::Less => return (Natural::zero(), self.clone()),
            Ordering::Equal => return (Natural::one(), Natural::zero()),
            Ordering::Greater => {}
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.div_rem_small(divisor.limbs[0]);
            return (q, Natural::from(r));
        }
        // Normalize so the top limb of the divisor has its high bit set.
        let shift = divisor.limbs.last().unwrap().leading_zeros() as usize;
        let u = self.shl_bits(shift);
        let v = divisor.shl_bits(shift);
        let n = v.limbs.len();
        let m = u.limbs.len() - n;
        let mut un = u.limbs.clone();
        un.push(0);
        let vn = &v.limbs;
        let mut q = vec![0u64; m + 1];
        let vtop = vn[n - 1] as u128;
        let vsec = vn[n - 2] as u128;
        for j in (0..=m).rev() {
            let hi = (un[j + n] as u128) << 64 | un[j + n - 1] as u128;
            let mut qhat = hi / vtop;
            let mut rhat = hi % vtop;
            // Refine qhat (at most two corrections).
            while qhat >= 1u128 << 64 || qhat * vsec > (rhat << 64 | un[j + n - 2] as u128) {
                qhat -= 1;
                rhat += vtop;
                if rhat >= 1u128 << 64 {
                    break;
                }
            }
            // Multiply and subtract: un[j..j+n+1] -= qhat * vn.
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let p = qhat * vn[i] as u128 + carry;
                carry = p >> 64;
                let t = un[j + i] as i128 - (p as u64) as i128 - borrow;
                un[j + i] = t as u64;
                borrow = if t < 0 { 1 } else { 0 };
            }
            let t = un[j + n] as i128 - carry as i128 - borrow;
            un[j + n] = t as u64;
            if t < 0 {
                // qhat was one too large: add back.
                qhat -= 1;
                let mut carry = 0u128;
                for i in 0..n {
                    let s = un[j + i] as u128 + vn[i] as u128 + carry;
                    un[j + i] = s as u64;
                    carry = s >> 64;
                }
                un[j + n] = un[j + n].wrapping_add(carry as u64);
            }
            q[j] = qhat as u64;
        }
        let quotient = Natural::from_limbs(q);
        let remainder = Natural::from_limbs(un[..n].to_vec()).shr_bits(shift);
        (quotient, remainder)
    }

    /// Left shift by `bits`.
    pub fn shl_bits(&self, bits: usize) -> Natural {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let limb_shift = bits / 64;
        let bit_shift = bits % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        Natural::from_limbs(out)
    }

    /// Right shift by `bits`.
    pub fn shr_bits(&self, bits: usize) -> Natural {
        let limb_shift = bits / 64;
        if limb_shift >= self.limbs.len() {
            return Natural::zero();
        }
        let bit_shift = bits % 64;
        let src = &self.limbs[limb_shift..];
        if bit_shift == 0 {
            return Natural::from_limbs(src.to_vec());
        }
        let mut out = Vec::with_capacity(src.len());
        for i in 0..src.len() {
            let lo = src[i] >> bit_shift;
            let hi = if i + 1 < src.len() {
                src[i + 1] << (64 - bit_shift)
            } else {
                0
            };
            out.push(lo | hi);
        }
        Natural::from_limbs(out)
    }

    /// Greatest common divisor (binary GCD).
    pub fn gcd(&self, other: &Natural) -> Natural {
        let mut a = self.clone();
        let mut b = other.clone();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let ta = a.trailing_zeros();
        let tb = b.trailing_zeros();
        let common = ta.min(tb);
        a = a.shr_bits(ta);
        b = b.shr_bits(tb);
        loop {
            match Self::cmp_limbs(&a.limbs, &b.limbs) {
                Ordering::Equal => break,
                Ordering::Greater => {
                    a = a.sub_nat(&b);
                    a = a.shr_bits(a.trailing_zeros());
                }
                Ordering::Less => {
                    b = b.sub_nat(&a);
                    b = b.shr_bits(b.trailing_zeros());
                }
            }
        }
        a.shl_bits(common)
    }

    /// Number of trailing zero bits (0 for the value zero).
    pub fn trailing_zeros(&self) -> usize {
        for (i, &l) in self.limbs.iter().enumerate() {
            if l != 0 {
                return i * 64 + l.trailing_zeros() as usize;
            }
        }
        0
    }

    /// `self ^ exp` by square-and-multiply.
    pub fn pow(&self, mut exp: u32) -> Natural {
        let mut base = self.clone();
        let mut acc = Natural::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = acc.mul_nat(&base);
            }
            exp >>= 1;
            if exp > 0 {
                base = base.mul_nat(&base);
            }
        }
        acc
    }

    /// Integer square root (floor), via Newton iteration.
    pub fn isqrt(&self) -> Natural {
        if self.limbs.len() <= 1 {
            return Natural::from((self.to_u64().unwrap() as f64).sqrt() as u64);
        }
        // Initial guess: 2^(ceil(bit_len/2)).
        let mut x = Natural::one().shl_bits(self.bit_len() / 2 + 1);
        loop {
            // x' = (x + self/x) / 2
            let (d, _) = self.div_rem(&x);
            let nx = x.add_nat(&d).shr_bits(1);
            if Self::cmp_limbs(&nx.limbs, &x.limbs) != Ordering::Less {
                break;
            }
            x = nx;
        }
        x
    }

    /// True iff `self` is a perfect square; returns the root if so.
    pub fn perfect_sqrt(&self) -> Option<Natural> {
        let r = self.isqrt();
        if &r.clone() * &r == *self {
            Some(r)
        } else {
            None
        }
    }

    /// Parses a decimal string.
    pub fn from_decimal(s: &str) -> Option<Natural> {
        if s.is_empty() || !s.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        let mut acc = Natural::zero();
        for b in s.bytes() {
            acc = acc.mul_small(10).add_small((b - b'0') as u64);
        }
        Some(acc)
    }
}

impl From<u64> for Natural {
    fn from(v: u64) -> Self {
        if v == 0 {
            Natural::zero()
        } else {
            Natural { limbs: vec![v] }
        }
    }
}

impl From<u128> for Natural {
    fn from(v: u128) -> Self {
        Natural::from_limbs(vec![v as u64, (v >> 64) as u64])
    }
}

impl From<u32> for Natural {
    fn from(v: u32) -> Self {
        Natural::from(v as u64)
    }
}

impl PartialOrd for Natural {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Natural {
    fn cmp(&self, other: &Self) -> Ordering {
        Natural::cmp_limbs(&self.limbs, &other.limbs)
    }
}

macro_rules! forward_binop {
    ($trait:ident, $method:ident, $impl:ident) => {
        impl $trait<&Natural> for &Natural {
            type Output = Natural;
            fn $method(self, rhs: &Natural) -> Natural {
                self.$impl(rhs)
            }
        }
        impl $trait<Natural> for Natural {
            type Output = Natural;
            fn $method(self, rhs: Natural) -> Natural {
                (&self).$impl(&rhs)
            }
        }
        impl $trait<&Natural> for Natural {
            type Output = Natural;
            fn $method(self, rhs: &Natural) -> Natural {
                (&self).$impl(rhs)
            }
        }
        impl $trait<Natural> for &Natural {
            type Output = Natural;
            fn $method(self, rhs: Natural) -> Natural {
                self.$impl(&rhs)
            }
        }
    };
}

forward_binop!(Add, add, add_nat);
forward_binop!(Sub, sub, sub_nat);
forward_binop!(Mul, mul, mul_nat);

impl AddAssign<&Natural> for Natural {
    fn add_assign(&mut self, rhs: &Natural) {
        *self = self.add_nat(rhs);
    }
}

impl SubAssign<&Natural> for Natural {
    fn sub_assign(&mut self, rhs: &Natural) {
        *self = self.sub_nat(rhs);
    }
}

impl MulAssign<&Natural> for Natural {
    fn mul_assign(&mut self, rhs: &Natural) {
        *self = self.mul_nat(rhs);
    }
}

impl Rem<&Natural> for &Natural {
    type Output = Natural;
    fn rem(self, rhs: &Natural) -> Natural {
        self.div_rem(rhs).1
    }
}

impl Shl<usize> for &Natural {
    type Output = Natural;
    fn shl(self, bits: usize) -> Natural {
        self.shl_bits(bits)
    }
}

impl Shr<usize> for &Natural {
    type Output = Natural;
    fn shr(self, bits: usize) -> Natural {
        self.shr_bits(bits)
    }
}

impl fmt::Display for Natural {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        // Repeated division by 10^19 (largest power of ten in a u64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut digits: Vec<String> = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_small(CHUNK);
            digits.push(r.to_string());
            cur = q;
        }
        let mut out = String::new();
        for (i, d) in digits.iter().rev().enumerate() {
            if i == 0 {
                out.push_str(d);
            } else {
                out.push_str(&format!("{:0>19}", d));
            }
        }
        write!(f, "{out}")
    }
}

impl fmt::Debug for Natural {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u64) -> Natural {
        Natural::from(v)
    }

    #[test]
    fn zero_and_one() {
        assert!(Natural::zero().is_zero());
        assert!(Natural::one().is_one());
        assert!(!Natural::one().is_zero());
        assert_eq!(n(0), Natural::zero());
    }

    #[test]
    fn add_small_values() {
        assert_eq!(n(2) + n(3), n(5));
        assert_eq!(n(0) + n(7), n(7));
    }

    #[test]
    fn add_with_carry_across_limbs() {
        let a = Natural::from(u64::MAX);
        let b = n(1);
        let s = &a + &b;
        assert_eq!(s.limbs(), &[0, 1]);
    }

    #[test]
    fn sub_basic() {
        assert_eq!(n(10) - n(3), n(7));
        assert_eq!(n(5) - n(5), n(0));
    }

    #[test]
    fn sub_with_borrow() {
        let a = Natural::from_limbs(vec![0, 1]); // 2^64
        assert_eq!(a - n(1), Natural::from(u64::MAX));
    }

    #[test]
    #[should_panic]
    fn sub_underflow_panics() {
        let _ = n(1) - n(2);
    }

    #[test]
    fn mul_basic() {
        assert_eq!(n(6) * n(7), n(42));
        assert_eq!(n(0) * n(7), n(0));
    }

    #[test]
    fn mul_large() {
        let a = Natural::from(u64::MAX);
        let sq = &a * &a;
        // (2^64-1)^2 = 2^128 - 2^65 + 1
        let expect = Natural::from(u128::MAX - 2 * (u64::MAX as u128) - 1 + u64::MAX as u128);
        // Direct: (2^64-1)^2 = 0xFFFFFFFFFFFFFFFE_0000000000000001
        assert_eq!(sq.limbs(), &[1, u64::MAX - 1]);
        let _ = expect;
    }

    #[test]
    fn div_rem_small_divisor() {
        let (q, r) = n(100).div_rem(&n(7));
        assert_eq!((q, r), (n(14), n(2)));
    }

    #[test]
    fn div_rem_multi_limb() {
        let a = Natural::from(u128::MAX);
        let b = Natural::from(u64::MAX);
        let (q, r) = a.div_rem(&b);
        // (2^128 - 1) = (2^64+1)(2^64-1) + 0... actually 2^128-1 = (2^64-1)(2^64+1)
        assert_eq!(&q * &b + r, Natural::from(u128::MAX));
    }

    #[test]
    fn div_rem_roundtrip_exhaustive_small() {
        for a in 0..50u64 {
            for b in 1..20u64 {
                let (q, r) = n(a).div_rem(&n(b));
                assert_eq!(q, n(a / b));
                assert_eq!(r, n(a % b));
            }
        }
    }

    #[test]
    fn shifts() {
        assert_eq!(n(1).shl_bits(70).shr_bits(70), n(1));
        assert_eq!(n(5).shl_bits(3), n(40));
        assert_eq!(n(40).shr_bits(3), n(5));
        assert_eq!(n(0).shl_bits(100), n(0));
    }

    #[test]
    fn gcd_basic() {
        assert_eq!(n(12).gcd(&n(18)), n(6));
        assert_eq!(n(0).gcd(&n(5)), n(5));
        assert_eq!(n(5).gcd(&n(0)), n(5));
        assert_eq!(n(17).gcd(&n(13)), n(1));
        assert_eq!(n(48).gcd(&n(36)), n(12));
    }

    #[test]
    fn pow_basic() {
        assert_eq!(n(2).pow(10), n(1024));
        assert_eq!(n(3).pow(0), n(1));
        assert_eq!(
            n(10).pow(20),
            Natural::from(100_000_000_000_000_000_000u128)
        );
    }

    #[test]
    fn isqrt_basic() {
        assert_eq!(n(0).isqrt(), n(0));
        assert_eq!(n(15).isqrt(), n(3));
        assert_eq!(n(16).isqrt(), n(4));
        assert_eq!(n(17).isqrt(), n(4));
        let big = n(12345).pow(6);
        assert_eq!(big.isqrt(), n(12345).pow(3));
    }

    #[test]
    fn perfect_sqrt_detects() {
        assert_eq!(n(49).perfect_sqrt(), Some(n(7)));
        assert_eq!(n(50).perfect_sqrt(), None);
    }

    #[test]
    fn display_roundtrip() {
        let v = n(2).pow(100);
        assert_eq!(v.to_string(), "1267650600228229401496703205376");
        assert_eq!(Natural::from_decimal(&v.to_string()), Some(v));
        assert_eq!(Natural::from_decimal("0"), Some(n(0)));
        assert_eq!(Natural::from_decimal(""), None);
        assert_eq!(Natural::from_decimal("12a"), None);
    }

    #[test]
    fn ordering() {
        assert!(n(3) < n(5));
        assert!(Natural::from(u128::MAX) > Natural::from(u64::MAX));
    }

    #[test]
    fn bit_len() {
        assert_eq!(n(0).bit_len(), 0);
        assert_eq!(n(1).bit_len(), 1);
        assert_eq!(n(255).bit_len(), 8);
        assert_eq!(n(256).bit_len(), 9);
        assert_eq!(n(1).shl_bits(200).bit_len(), 201);
    }

    #[test]
    fn trailing_zeros() {
        assert_eq!(n(8).trailing_zeros(), 3);
        assert_eq!(n(1).shl_bits(130).trailing_zeros(), 130);
    }
}
