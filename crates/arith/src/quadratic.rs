//! Exact arithmetic in a real quadratic extension `Q(√d)`.
//!
//! The eigenvalues of the paper's 2×2 transfer matrix `A(1)` (Lemma 3.21) are
//! `(tr ± √disc)/2` where `disc = (z₁₁ - z₀₀)² + 4·z₀₁·z₁₀` is a positive
//! rational that is generally not a perfect square. To verify the conditions
//! of Theorem 3.14 — `λ₁ ≠ ±λ₂ ≠ 0`, `bᵢ ≠ 0`, `aᵢbⱼ ≠ aⱼbᵢ` — *exactly*, we
//! compute in the field `Q(√d)` rather than with floating point.
//!
//! An element is `a + b·√d` with `a, b ∈ Q` and a fixed positive radicand
//! `d ∈ Q`. Elements of different fields cannot be mixed (checked at runtime).
//! When `d` is a perfect square of a rational the representation still works;
//! [`QuadExt::is_rational`] then requires `b = 0`, so callers that need a
//! canonical rational should use [`QuadExt::to_rational`].

use crate::rational::Rational;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// An element `a + b·√d` of the real quadratic field `Q(√d)`, `d > 0`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct QuadExt {
    a: Rational,
    b: Rational,
    d: Rational,
}

impl QuadExt {
    /// Embeds a rational into `Q(√d)`.
    pub fn rational(a: Rational, d: Rational) -> Self {
        assert!(d.is_positive(), "radicand must be positive");
        QuadExt {
            a,
            b: Rational::zero(),
            d,
        }
    }

    /// Builds `a + b·√d`.
    pub fn new(a: Rational, b: Rational, d: Rational) -> Self {
        assert!(d.is_positive(), "radicand must be positive");
        QuadExt { a, b, d }
    }

    /// `√d` itself.
    pub fn sqrt_d(d: Rational) -> Self {
        QuadExt::new(Rational::zero(), Rational::one(), d)
    }

    /// The rational part `a`.
    pub fn rational_part(&self) -> &Rational {
        &self.a
    }

    /// The coefficient `b` of `√d`.
    pub fn radical_part(&self) -> &Rational {
        &self.b
    }

    /// The radicand `d`.
    pub fn radicand(&self) -> &Rational {
        &self.d
    }

    /// Zero in the same field as `self`.
    pub fn zero_like(&self) -> Self {
        QuadExt::rational(Rational::zero(), self.d.clone())
    }

    /// One in the same field as `self`.
    pub fn one_like(&self) -> Self {
        QuadExt::rational(Rational::one(), self.d.clone())
    }

    /// True iff the element equals zero.
    pub fn is_zero(&self) -> bool {
        self.a.is_zero() && self.b.is_zero()
    }

    /// True iff the element has no radical component.
    pub fn is_rational(&self) -> bool {
        self.b.is_zero()
    }

    /// Returns the value as a rational if `b = 0`.
    pub fn to_rational(&self) -> Option<Rational> {
        if self.b.is_zero() {
            Some(self.a.clone())
        } else {
            None
        }
    }

    /// Galois conjugate `a - b·√d`.
    pub fn conjugate(&self) -> Self {
        QuadExt {
            a: self.a.clone(),
            b: -&self.b,
            d: self.d.clone(),
        }
    }

    /// Field norm `(a + b√d)(a - b√d) = a² - b²·d ∈ Q`.
    pub fn norm(&self) -> Rational {
        &(&self.a * &self.a) - &(&(&self.b * &self.b) * &self.d)
    }

    /// Sign of the real number `a + b·√d` (`-1`, `0`, or `+1`),
    /// computed exactly: compare `a` against `-b·√d` by squaring.
    pub fn signum(&self) -> i32 {
        let sa = sign(&self.a);
        let sb = sign(&self.b);
        if sb == 0 {
            return sa;
        }
        if sa == 0 {
            return sb;
        }
        if sa == sb {
            return sa;
        }
        // Opposite signs: |a| vs |b|·√d  ⇔  a² vs b²·d.
        let a2 = &self.a * &self.a;
        let b2d = &(&self.b * &self.b) * &self.d;
        match a2.cmp(&b2d) {
            std::cmp::Ordering::Greater => sa,
            std::cmp::Ordering::Less => sb,
            std::cmp::Ordering::Equal => 0,
        }
    }

    /// True iff strictly positive as a real number.
    pub fn is_positive(&self) -> bool {
        self.signum() > 0
    }

    /// Multiplicative inverse; panics on zero.
    pub fn recip(&self) -> Self {
        let n = self.norm();
        assert!(!n.is_zero(), "reciprocal of zero in Q(sqrt d)");
        let c = self.conjugate();
        QuadExt {
            a: &c.a / &n,
            b: &c.b / &n,
            d: self.d.clone(),
        }
    }

    /// `self ^ exp` for `exp ≥ 0`.
    pub fn pow(&self, mut exp: u32) -> Self {
        let mut base = self.clone();
        let mut acc = self.one_like();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            exp >>= 1;
            if exp > 0 {
                base = &base * &base;
            }
        }
        acc
    }

    /// Lossy conversion to `f64` (reporting only).
    pub fn to_f64(&self) -> f64 {
        self.a.to_f64() + self.b.to_f64() * self.d.to_f64().sqrt()
    }

    fn check_same_field(&self, other: &Self) {
        assert_eq!(
            self.d, other.d,
            "mixing elements of different quadratic fields"
        );
    }
}

fn sign(r: &Rational) -> i32 {
    if r.is_zero() {
        0
    } else if r.is_positive() {
        1
    } else {
        -1
    }
}

impl Add<&QuadExt> for &QuadExt {
    type Output = QuadExt;
    fn add(self, rhs: &QuadExt) -> QuadExt {
        self.check_same_field(rhs);
        QuadExt {
            a: &self.a + &rhs.a,
            b: &self.b + &rhs.b,
            d: self.d.clone(),
        }
    }
}

impl Sub<&QuadExt> for &QuadExt {
    type Output = QuadExt;
    fn sub(self, rhs: &QuadExt) -> QuadExt {
        self.check_same_field(rhs);
        QuadExt {
            a: &self.a - &rhs.a,
            b: &self.b - &rhs.b,
            d: self.d.clone(),
        }
    }
}

impl Mul<&QuadExt> for &QuadExt {
    type Output = QuadExt;
    fn mul(self, rhs: &QuadExt) -> QuadExt {
        self.check_same_field(rhs);
        // (a1 + b1√d)(a2 + b2√d) = a1a2 + b1b2·d + (a1b2 + a2b1)√d.
        QuadExt {
            a: &(&self.a * &rhs.a) + &(&(&self.b * &rhs.b) * &self.d),
            b: &(&self.a * &rhs.b) + &(&self.b * &rhs.a),
            d: self.d.clone(),
        }
    }
}

impl Div<&QuadExt> for &QuadExt {
    type Output = QuadExt;
    // Division in Q(√d) is multiplication by the conjugate-based inverse.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: &QuadExt) -> QuadExt {
        self * &rhs.recip()
    }
}

impl Neg for &QuadExt {
    type Output = QuadExt;
    fn neg(self) -> QuadExt {
        QuadExt {
            a: -&self.a,
            b: -&self.b,
            d: self.d.clone(),
        }
    }
}

impl fmt::Display for QuadExt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.b.is_zero() {
            write!(f, "{}", self.a)
        } else if self.a.is_zero() {
            write!(f, "({})*sqrt({})", self.b, self.d)
        } else {
            write!(f, "{} + ({})*sqrt({})", self.a, self.b, self.d)
        }
    }
}

impl fmt::Debug for QuadExt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_ints(n, d)
    }

    fn q(a: (i64, i64), b: (i64, i64), d: i64) -> QuadExt {
        QuadExt::new(r(a.0, a.1), r(b.0, b.1), r(d, 1))
    }

    #[test]
    fn sqrt2_squares_to_two() {
        let s = QuadExt::sqrt_d(r(2, 1));
        let two = &s * &s;
        assert_eq!(two.to_rational(), Some(r(2, 1)));
    }

    #[test]
    fn field_axioms_spot() {
        let x = q((1, 2), (3, 4), 5);
        let y = q((2, 3), (-1, 2), 5);
        let z = q((-1, 1), (1, 3), 5);
        // Distributivity.
        let lhs = &x * &(&y + &z);
        let rhs = &(&x * &y) + &(&x * &z);
        assert_eq!(lhs, rhs);
        // Inverse.
        let inv = x.recip();
        assert_eq!((&x * &inv).to_rational(), Some(Rational::one()));
    }

    #[test]
    fn norm_matches_product_with_conjugate() {
        let x = q((3, 1), (2, 1), 7);
        let prod = &x * &x.conjugate();
        assert_eq!(prod.to_rational(), Some(x.norm()));
        assert_eq!(x.norm(), r(9 - 4 * 7, 1));
    }

    #[test]
    fn signum_exact() {
        // 3 - 2√2 > 0 since 9 > 8.
        assert_eq!(q((3, 1), (-2, 1), 2).signum(), 1);
        // 2 - 2√2 < 0 since 4 < 8.
        assert_eq!(q((2, 1), (-2, 1), 2).signum(), -1);
        // -3 + 2√2 < 0.
        assert_eq!(q((-3, 1), (2, 1), 2).signum(), -1);
        // -2 + 2√2 > 0.
        assert_eq!(q((-2, 1), (2, 1), 2).signum(), 1);
        // 2 - √4 = 0 (d a perfect square is permitted representationally).
        assert_eq!(q((2, 1), (-1, 1), 4).signum(), 0);
        assert_eq!(q((0, 1), (0, 1), 3).signum(), 0);
        assert_eq!(q((0, 1), (5, 1), 3).signum(), 1);
        assert_eq!(q((7, 1), (0, 1), 3).signum(), 1);
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let x = q((1, 1), (1, 1), 3);
        let mut acc = x.one_like();
        for _ in 0..5 {
            acc = &acc * &x;
        }
        assert_eq!(x.pow(5), acc);
        assert_eq!(x.pow(0), x.one_like());
    }

    #[test]
    #[should_panic]
    fn mixing_fields_panics() {
        let x = QuadExt::sqrt_d(r(2, 1));
        let y = QuadExt::sqrt_d(r(3, 1));
        let _ = &x + &y;
    }

    #[test]
    fn golden_ratio_identity() {
        // φ = (1+√5)/2 satisfies φ² = φ + 1.
        let phi = QuadExt::new(r(1, 2), r(1, 2), r(5, 1));
        assert_eq!(&phi * &phi, &phi + &phi.one_like());
    }

    #[test]
    fn div_roundtrip() {
        let x = q((5, 3), (1, 7), 11);
        let y = q((2, 1), (-3, 5), 11);
        let z = &(&x / &y) * &y;
        assert_eq!(z, x);
    }
}
