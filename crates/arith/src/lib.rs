//! # gfomc-arith
//!
//! Exact arbitrary-precision arithmetic for the `gfomc` workspace:
//!
//! * [`Natural`] — unsigned big integers (limb vector, schoolbook ops);
//! * [`Integer`] — signed big integers (sign + magnitude);
//! * [`Rational`] — rationals in lowest terms, the universal probability and
//!   coefficient type of the workspace;
//! * [`Rat64`] — machine-word rationals, the small-limb fast path behind
//!   `Rational` add/mul/sub and the flat evaluator's batch lanes: ops run
//!   in `i128`/`u128` registers and spill to bignum on overflow,
//!   bit-identically;
//! * [`QuadExt`] — elements of a real quadratic field `Q(√d)`, used for the
//!   exact eigenvalue computations of the paper's transfer matrices;
//! * [`Interval`] — outward-rounded `f64` enclosures of exact rationals,
//!   the certified fast path of interval-first circuit evaluation: any
//!   comparison the interval decides ([`Certifies::Proven`]) is decided
//!   correctly, and only [`Certifies::Unknown`] escalates to exact
//!   arithmetic.
//!
//! All query probabilities in a tuple-independent database with rational tuple
//! probabilities are rational, and the hardness reductions of Kenig & Suciu
//! (PODS 2021) hinge on exact algebraic facts (non-singularity of matrices,
//! non-vanishing of determinants), so the entire workspace computes exactly —
//! floating point appears only in human-facing reporting.

pub mod integer;
pub mod interval;
pub mod natural;
pub mod quadratic;
pub mod rat64;
pub mod rational;

pub use integer::{Integer, Sign};
pub use interval::{Certifies, Interval};
pub use natural::Natural;
pub use quadratic::QuadExt;
pub use rat64::{small_path_thread_stats, Rat64};
pub use rational::Rational;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_natural() -> impl Strategy<Value = Natural> {
        proptest::collection::vec(any::<u64>(), 0..4).prop_map(Natural::from_limbs)
    }

    fn arb_integer() -> impl Strategy<Value = Integer> {
        (any::<i64>()).prop_map(Integer::from)
    }

    fn arb_rational() -> impl Strategy<Value = Rational> {
        (any::<i32>(), 1..10_000i64).prop_map(|(n, d)| Rational::from_ints(n as i64, d))
    }

    /// Operands engineered to straddle the [`Rat64`] fast path: limb
    /// boundaries, `±1/2^60`, `u64::MAX`-adjacent numerators, plus
    /// uniform noise. Built via `Rational::new`, so each operand is
    /// canonical before the op under test runs.
    fn arb_smallpath_rational() -> impl Strategy<Value = Rational> {
        let num = prop_oneof![
            Just(0i64),
            Just(1),
            Just(-1),
            Just(i64::MAX),
            Just(i64::MIN + 1),
            Just((1i64 << 62) + 1),
            Just((1i64 << 32) - 1),
            Just(1i64 << 32),
            Just(i64::MAX - 1),
            any::<i64>(),
        ];
        let den = prop_oneof![
            Just(1u64),
            Just(2),
            Just(1u64 << 60),
            Just((1u64 << 60) - 1),
            Just(1u64 << 32),
            Just((1u64 << 32) + 1),
            Just(u64::MAX),
            Just(u64::MAX - 1),
            any::<u64>().prop_map(|d| d | 1),
        ];
        (num, den).prop_map(|(n, d)| {
            Rational::new(
                Integer::from(n),
                Integer::from_sign_magnitude(Sign::Positive, Natural::from(d)),
            )
        })
    }

    proptest! {
        #[test]
        fn natural_add_commutes(a in arb_natural(), b in arb_natural()) {
            prop_assert_eq!(&a + &b, &b + &a);
        }

        #[test]
        fn natural_add_associates(a in arb_natural(), b in arb_natural(), c in arb_natural()) {
            prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        }

        #[test]
        fn natural_mul_commutes(a in arb_natural(), b in arb_natural()) {
            prop_assert_eq!(&a * &b, &b * &a);
        }

        #[test]
        fn natural_mul_distributes(a in arb_natural(), b in arb_natural(), c in arb_natural()) {
            prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        }

        #[test]
        fn natural_div_rem_roundtrip(a in arb_natural(), b in arb_natural()) {
            prop_assume!(!b.is_zero());
            let (q, r) = a.div_rem(&b);
            prop_assert!(r < b);
            prop_assert_eq!(&(&q * &b) + &r, a);
        }

        #[test]
        fn natural_gcd_divides(a in arb_natural(), b in arb_natural()) {
            prop_assume!(!a.is_zero() && !b.is_zero());
            let g = a.gcd(&b);
            prop_assert!((&a % &g).is_zero());
            prop_assert!((&b % &g).is_zero());
        }

        #[test]
        fn natural_shift_roundtrip(a in arb_natural(), s in 0usize..200) {
            prop_assert_eq!(a.shl_bits(s).shr_bits(s), a);
        }

        #[test]
        fn natural_display_parse_roundtrip(a in arb_natural()) {
            prop_assert_eq!(Natural::from_decimal(&a.to_string()), Some(a));
        }

        #[test]
        fn natural_isqrt_bounds(a in arb_natural()) {
            let r = a.isqrt();
            prop_assert!(&r * &r <= a);
            let r1 = &r + &Natural::one();
            prop_assert!(&r1 * &r1 > a);
        }

        #[test]
        fn integer_ring_laws(a in arb_integer(), b in arb_integer(), c in arb_integer()) {
            prop_assert_eq!(&a + &b, &b + &a);
            prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
            prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
            prop_assert_eq!(&a - &a, Integer::zero());
        }

        #[test]
        fn integer_div_rem_roundtrip(a in arb_integer(), b in arb_integer()) {
            prop_assume!(!b.is_zero());
            let (q, r) = a.div_rem(&b);
            prop_assert_eq!(&(&q * &b) + &r, a.clone());
            prop_assert!(r.magnitude() < b.magnitude());
        }

        #[test]
        fn rational_field_laws(a in arb_rational(), b in arb_rational(), c in arb_rational()) {
            prop_assert_eq!(&a + &b, &b + &a);
            prop_assert_eq!(&a * &b, &b * &a);
            prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
            prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        }

        #[test]
        fn rational_recip_inverse(a in arb_rational()) {
            prop_assume!(!a.is_zero());
            prop_assert_eq!(&a * &a.recip(), Rational::one());
        }

        #[test]
        fn rational_parse_roundtrip(a in arb_rational()) {
            prop_assert_eq!(Rational::from_decimal(&a.to_string()), Some(a));
        }

        #[test]
        fn rational_order_translation_invariant(a in arb_rational(), b in arb_rational(), c in arb_rational()) {
            prop_assert_eq!(a < b, &a + &c < &b + &c);
        }

        // ------------------------------------------------------------------
        // Small-limb fast path ≡ bignum path, bit-identically: the public
        // ops (which take the Rat64 road when operands fit machine words)
        // must equal the crate-internal bignum reference on every operand
        // pair, including the adversarial boundary values.
        // ------------------------------------------------------------------

        #[test]
        fn rational_add_small_path_matches_bignum(
            a in arb_smallpath_rational(), b in arb_smallpath_rational(),
        ) {
            prop_assert_eq!(&a + &b, a.add_big(&b));
        }

        #[test]
        fn rational_sub_small_path_matches_bignum(
            a in arb_smallpath_rational(), b in arb_smallpath_rational(),
        ) {
            prop_assert_eq!(&a - &b, a.add_big(&-&b));
        }

        #[test]
        fn rational_mul_small_path_matches_bignum(
            a in arb_smallpath_rational(), b in arb_smallpath_rational(),
        ) {
            prop_assert_eq!(&a * &b, a.mul_big(&b));
        }

        #[test]
        fn rat64_ops_match_bignum_when_defined(
            a in arb_smallpath_rational(), b in arb_smallpath_rational(),
        ) {
            if let (Some(x), Some(y)) = (a.to_rat64(), b.to_rat64()) {
                if let Some(s) = x.checked_add(y) {
                    prop_assert_eq!(Rational::from(s), a.add_big(&b));
                }
                if let Some(d) = x.checked_sub(y) {
                    prop_assert_eq!(Rational::from(d), a.add_big(&-&b));
                }
                if let Some(p) = x.checked_mul(y) {
                    prop_assert_eq!(Rational::from(p), a.mul_big(&b));
                }
                if let Some(c) = x.complement() {
                    prop_assert_eq!(Rational::from(c), Rational::one().add_big(&-&a));
                }
            }
        }

        #[test]
        fn rational_roundtrips_through_rat64(a in arb_smallpath_rational()) {
            if let Some(small) = a.to_rat64() {
                prop_assert_eq!(Rational::from(small), a);
            }
        }

        #[test]
        fn quadext_field_laws(
            a1 in arb_rational(), b1 in arb_rational(),
            a2 in arb_rational(), b2 in arb_rational(),
        ) {
            let d = Rational::from_ints(7, 1);
            let x = QuadExt::new(a1, b1, d.clone());
            let y = QuadExt::new(a2, b2, d.clone());
            prop_assert_eq!(&x + &y, &y + &x);
            prop_assert_eq!(&x * &y, &y * &x);
            if !x.is_zero() {
                prop_assert_eq!((&x * &x.recip()).to_rational(), Some(Rational::one()));
            }
        }

        #[test]
        fn quadext_norm_multiplicative(
            a1 in arb_rational(), b1 in arb_rational(),
            a2 in arb_rational(), b2 in arb_rational(),
        ) {
            let d = Rational::from_ints(3, 1);
            let x = QuadExt::new(a1, b1, d.clone());
            let y = QuadExt::new(a2, b2, d);
            prop_assert_eq!((&x * &y).norm(), &x.norm() * &y.norm());
        }

        #[test]
        fn quadext_signum_consistent_with_f64(
            a in arb_rational(), b in arb_rational(),
        ) {
            let d = Rational::from_ints(5, 1);
            let x = QuadExt::new(a, b, d);
            let approx = x.to_f64();
            if approx.abs() > 1e-6 {
                prop_assert_eq!(x.signum(), if approx > 0.0 { 1 } else { -1 });
            }
        }
    }

    /// Overflow-crossing regression: a computation that starts on the
    /// small path, spills to bignum mid-way (two-limb denominator), then
    /// reduces back into machine words — every leg must stay exact and
    /// canonical.
    #[test]
    fn rational_overflow_crossing_round_trip() {
        let tiny_a = Rational::from_ints(1, 2).pow(62); // 1/2^62
        let tiny_b = Rational::one() / Rational::from_ints((1 << 62) - 1, 1);
        // Small + small whose exact sum needs a ~124-bit denominator.
        let spilled = &tiny_a + &tiny_b;
        assert_eq!(spilled.to_rat64(), None, "sum must spill past one limb");
        let reference = tiny_a.add_big(&tiny_b);
        assert_eq!(spilled, reference);
        // Multiplying the spilled value by its own denominator crosses
        // back: the product is the integer (2^62 - 1) + 2^62 = 2^63 - 1,
        // the spill's numerator — a one-limb value again.
        let denom_int = Rational::from(Integer::from_sign_magnitude(
            Sign::Positive,
            spilled.denom().clone(),
        ));
        let back = &spilled * &denom_int;
        assert_eq!(
            back,
            Rational::from(Integer::from_sign_magnitude(
                Sign::Positive,
                spilled.numer().magnitude().clone(),
            ))
        );
        assert!(back.to_rat64().is_some(), "product must re-fit one limb");
        // And the whole loop agrees with the bignum-only reference.
        assert_eq!(back, spilled.mul_big(&denom_int));
    }
}
