//! Outward-rounded `f64` interval arithmetic with certified comparisons.
//!
//! The workspace computes probabilities exactly ([`Rational`]), but exact
//! arithmetic pays a bignum tax on every gate of every circuit evaluation.
//! Most consumers do not need the exact value — they need a *comparison*
//! (is the probability within a routing budget? on which side of a CI
//! endpoint?). This module supplies the cheap first pass: an interval
//! `[lo, hi]` of hardware doubles that is **certified** to contain the
//! exact value, so any comparison decided by the interval is decided
//! correctly, and only undecided comparisons fall back to exact
//! re-evaluation.
//!
//! Soundness rests on two facts:
//!
//! * **Directed conversion.** A probability `p = n/d` is bracketed on the
//!   dyadic grid `k/2^53`: `⌊n·2^53/d⌋ ≤ p·2^53 ≤ ⌈n·2^53/d⌉`, and both
//!   endpoints are exactly representable (`k ≤ 2^53` fits the mantissa;
//!   division by the power of two `2^53` is exact). No reliance on lossy
//!   `to_f64` rounding.
//! * **Outward rounding.** IEEE-754 round-to-nearest guarantees the true
//!   result of `x ∘ y` lies within one ulp of the computed result, so
//!   nudging the computed bound one ulp outward ([`f64::next_down`] /
//!   [`f64::next_up`]) re-establishes the enclosure after every `add`,
//!   `mul`, and `one_minus`.
//!
//! Comparisons return a [`Certifies`] verdict: `Proven(b)` only when the
//! intervals (or the interval and an exact threshold) are disjoint in the
//! deciding direction, `Unknown` otherwise — the interval layer never
//! guesses.

use crate::integer::Integer;
use crate::natural::Natural;
use crate::rational::Rational;

/// `2^53` as an `f64` (exact).
const TWO_POW_53: f64 = 9_007_199_254_740_992.0;

/// The outcome of a comparison asked of the interval layer.
///
/// `Proven(b)` is a *certificate*: the enclosure mathematically implies the
/// answer `b`. `Unknown` means the interval is too wide to decide and the
/// caller must escalate to exact arithmetic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Certifies {
    /// The enclosure decides the comparison: the answer is `bool`.
    Proven(bool),
    /// The enclosure straddles the threshold; exact fallback required.
    Unknown,
}

impl Certifies {
    /// True iff the comparison was decided (either way).
    pub fn is_proven(self) -> bool {
        matches!(self, Certifies::Proven(_))
    }

    /// The decided answer, if any.
    pub fn proven(self) -> Option<bool> {
        match self {
            Certifies::Proven(b) => Some(b),
            Certifies::Unknown => None,
        }
    }
}

/// A closed interval `[lo, hi]` of doubles certified to contain one exact
/// real value.
///
/// Invariant: `lo ≤ hi` and both are finite for every interval produced by
/// this module's constructors and operations on finite inputs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Interval {
    /// Certified lower bound.
    pub lo: f64,
    /// Certified upper bound.
    pub hi: f64,
}

/// One ulp downward, pinned at infinities.
#[inline]
fn down(x: f64) -> f64 {
    if x.is_finite() {
        x.next_down()
    } else {
        x
    }
}

/// One ulp upward, pinned at infinities.
#[inline]
fn up(x: f64) -> f64 {
    if x.is_finite() {
        x.next_up()
    } else {
        x
    }
}

/// The exact rational value of a finite double (every finite `f64` is a
/// dyadic rational `±m·2^e`).
fn dyadic(x: f64) -> Rational {
    assert!(x.is_finite(), "dyadic conversion needs a finite double");
    let bits = x.to_bits();
    let negative = bits >> 63 == 1;
    let biased = ((bits >> 52) & 0x7ff) as i64;
    let frac = bits & ((1u64 << 52) - 1);
    let (mantissa, exp) = if biased == 0 {
        (frac, -1074i64) // subnormal (or ±0)
    } else {
        (frac | (1u64 << 52), biased - 1075)
    };
    let mag = Natural::from(mantissa);
    let (numer, denom) = if exp >= 0 {
        (mag.shl_bits(exp as usize), Natural::one())
    } else {
        (mag, Natural::one().shl_bits((-exp) as usize))
    };
    let mut numer = Integer::from(numer);
    if negative {
        numer = &numer * &Integer::neg_one();
    }
    Rational::new(numer, Integer::from(denom))
}

impl Interval {
    /// The exact point `[0, 0]`.
    pub const ZERO: Interval = Interval { lo: 0.0, hi: 0.0 };

    /// The exact point `[1, 1]`.
    pub const ONE: Interval = Interval { lo: 1.0, hi: 1.0 };

    /// An interval from explicit bounds. Panics if `lo > hi` or either
    /// bound is NaN.
    pub fn new(lo: f64, hi: f64) -> Interval {
        assert!(lo <= hi, "interval bounds out of order: [{lo}, {hi}]");
        Interval { lo, hi }
    }

    /// The degenerate interval `[x, x]`.
    pub fn point(x: f64) -> Interval {
        assert!(!x.is_nan(), "interval point must not be NaN");
        Interval { lo: x, hi: x }
    }

    /// Directed-rounding conversion of a probability `p ∈ [0, 1]`.
    ///
    /// Brackets `p` on the dyadic grid `k/2^53` by one exact integer
    /// division: `lo = ⌊p·2^53⌋/2^53`, `hi = ⌈p·2^53⌉/2^53`. Both
    /// endpoints are exactly representable, so the enclosure is certified
    /// and at most one grid step (`2^-53`) wide — collapsing to a point
    /// whenever `p` itself lies on the grid (e.g. `0`, `1`, `1/2`).
    pub fn from_probability(p: &Rational) -> Interval {
        assert!(p.is_probability(), "from_probability needs p in [0, 1]");
        let scaled = p.numer().magnitude().shl_bits(53);
        let (q, r) = scaled.div_rem(p.denom());
        let q = q
            .to_u64()
            .expect("p <= 1 keeps the scaled floor within 2^53");
        let lo = q as f64 / TWO_POW_53;
        let hi = if r.is_zero() {
            lo
        } else {
            (q + 1) as f64 / TWO_POW_53
        };
        Interval { lo, hi }
    }

    /// Directed-rounding conversion of an arbitrary rational.
    ///
    /// Probabilities take the exact dyadic-grid path of
    /// [`Interval::from_probability`]; everything else goes through the
    /// (lossy, Horner-accumulated) `to_f64` conversions with an outward
    /// nudge generous enough to cover their worst-case accumulated
    /// rounding (two ulps per limb of numerator and denominator, plus the
    /// final division).
    pub fn from_rational(x: &Rational) -> Interval {
        if x.is_probability() {
            return Interval::from_probability(x);
        }
        let approx = x.to_f64();
        if !approx.is_finite() {
            let bound = if approx > 0.0 { f64::MAX } else { f64::MIN };
            return if approx > 0.0 {
                Interval {
                    lo: bound,
                    hi: f64::INFINITY,
                }
            } else {
                Interval {
                    lo: f64::NEG_INFINITY,
                    hi: bound,
                }
            };
        }
        let limbs = x.numer().magnitude().limbs().len() + x.denom().limbs().len();
        let nudges = 2 * limbs + 4;
        let (mut lo, mut hi) = (approx, approx);
        for _ in 0..nudges {
            lo = down(lo);
            hi = up(hi);
        }
        Interval { lo, hi }
    }

    /// The exact rational endpoints of the enclosure.
    pub fn to_rational_bounds(&self) -> (Rational, Rational) {
        (dyadic(self.lo), dyadic(self.hi))
    }

    /// Width `hi − lo` (an upper bound on the conversion/rounding slack).
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// True iff the exact value `x` is consistent with this enclosure.
    pub fn contains(&self, x: &Rational) -> bool {
        let (lo, hi) = self.to_rational_bounds();
        &lo <= x && x <= &hi
    }

    /// Certified sum: `[down(lo+lo'), up(hi+hi')]`.
    pub fn add(&self, other: &Interval) -> Interval {
        Interval {
            lo: down(self.lo + other.lo),
            hi: up(self.hi + other.hi),
        }
    }

    /// Certified product (general sign handling: min/max over the four
    /// endpoint products, nudged outward).
    pub fn mul(&self, other: &Interval) -> Interval {
        let ll = self.lo * other.lo;
        let lh = self.lo * other.hi;
        let hl = self.hi * other.lo;
        let hh = self.hi * other.hi;
        Interval {
            lo: down(ll.min(lh).min(hl).min(hh)),
            hi: up(ll.max(lh).max(hl).max(hh)),
        }
    }

    /// Certified complement `1 − x`: `[down(1−hi), up(1−lo)]`.
    pub fn one_minus(&self) -> Interval {
        Interval {
            lo: down(1.0 - self.hi),
            hi: up(1.0 - self.lo),
        }
    }

    /// Intersects with `[0, 1]`.
    ///
    /// Sound only when the enclosed value is known to be a probability
    /// (circuit gate values under probability weights are): intersecting
    /// with a known superset tightens the enclosure without losing the
    /// value, undoing the outward nudges' drift past the exact endpoints.
    pub fn clamp_unit(&self) -> Interval {
        Interval {
            lo: self.lo.clamp(0.0, 1.0),
            hi: self.hi.clamp(0.0, 1.0),
        }
    }

    /// Does the enclosed value satisfy `x < y` for `y` enclosed by
    /// `other`? Proven only when the enclosures are disjoint.
    pub fn proves_lt(&self, other: &Interval) -> Certifies {
        if self.hi < other.lo {
            Certifies::Proven(true)
        } else if self.lo >= other.hi {
            Certifies::Proven(false)
        } else {
            Certifies::Unknown
        }
    }

    /// Does the enclosed value satisfy `x ≤ y` for `y` enclosed by `other`?
    pub fn proves_le(&self, other: &Interval) -> Certifies {
        if self.hi <= other.lo {
            Certifies::Proven(true)
        } else if self.lo > other.hi {
            Certifies::Proven(false)
        } else {
            Certifies::Unknown
        }
    }

    /// Does the enclosed value satisfy `x ≤ t` for an **exact** rational
    /// threshold `t`? The endpoints are compared exactly (every finite
    /// double is a dyadic rational), so the verdict is certified.
    pub fn proves_le_rational(&self, t: &Rational) -> Certifies {
        if &dyadic(self.hi) <= t {
            Certifies::Proven(true)
        } else if &dyadic(self.lo) > t {
            Certifies::Proven(false)
        } else {
            Certifies::Unknown
        }
    }

    /// Does the enclosed value satisfy `x < t` for an exact threshold `t`?
    pub fn proves_lt_rational(&self, t: &Rational) -> Certifies {
        if &dyadic(self.hi) < t {
            Certifies::Proven(true)
        } else if &dyadic(self.lo) >= t {
            Certifies::Proven(false)
        } else {
            Certifies::Unknown
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_ints(n, d)
    }

    /// `1/2^60` — denominator far below the dyadic grid step.
    fn tiny() -> Rational {
        let denom = Integer::from(Natural::one().shl_bits(60));
        Rational::new(Integer::one(), denom)
    }

    #[test]
    fn grid_points_convert_exactly() {
        for p in [r(0, 1), r(1, 1), r(1, 2), r(3, 4), r(1, 8)] {
            let iv = Interval::from_probability(&p);
            assert_eq!(iv.lo, iv.hi, "{p:?} lies on the dyadic grid");
            assert!(iv.contains(&p));
        }
    }

    #[test]
    fn one_third_is_bracketed_within_one_grid_step() {
        let p = r(1, 3);
        let iv = Interval::from_probability(&p);
        assert!(iv.lo < iv.hi);
        assert!(iv.contains(&p));
        assert!(iv.width() <= 1.0 / TWO_POW_53 + f64::EPSILON);
        let (lo, hi) = iv.to_rational_bounds();
        assert!(lo < p && p < hi);
    }

    #[test]
    fn adversarially_tiny_probability_is_enclosed() {
        let p = tiny();
        let iv = Interval::from_probability(&p);
        assert_eq!(iv.lo, 0.0, "floor of 2^53/2^60 is zero");
        assert_eq!(iv.hi, 1.0 / TWO_POW_53);
        assert!(iv.contains(&p));
        // The enclosure cannot decide p ≤ 1/2^59 (grid too coarse)…
        assert_eq!(
            iv.proves_le_rational(&Rational::new(
                Integer::one(),
                Integer::from(Natural::one().shl_bits(59)),
            )),
            Certifies::Unknown
        );
        // …but easily decides p ≤ 1/4.
        assert_eq!(iv.proves_le_rational(&r(1, 4)), Certifies::Proven(true));
    }

    #[test]
    fn adversarially_near_one_probability_is_enclosed() {
        let p = Rational::one() - tiny();
        let iv = Interval::from_probability(&p);
        assert!(iv.contains(&p));
        assert_eq!(iv.hi, 1.0);
        assert!(iv.lo < 1.0);
        // Cannot prove p ≤ 1 − 1/2^59, can prove p ≤ 1.
        assert_eq!(
            iv.proves_le_rational(&(Rational::one() - &tiny() - &tiny())),
            Certifies::Unknown
        );
        assert_eq!(
            iv.proves_le_rational(&Rational::one()),
            Certifies::Proven(true)
        );
    }

    #[test]
    fn dyadic_roundtrips_exactly() {
        // Moderate magnitudes round-trip through the lossy to_f64 (which is
        // exact when numerator and denominator each fit one limb).
        for x in [0.0, 1.0, 0.5, 0.1, 1.0 / 3.0, 1024.0, 3.5e9] {
            let d = dyadic(x);
            assert_eq!(d.to_f64(), x, "{x} must round-trip");
            assert_eq!(dyadic(-x).to_f64(), -x);
        }
        // Extreme magnitudes overflow to_f64's intermediate conversions, so
        // verify exactness structurally instead: adjacent doubles map to
        // strictly ordered rationals, and known dyadics match exactly.
        assert_eq!(dyadic(0.5), r(1, 2));
        assert_eq!(
            dyadic(1.0 / TWO_POW_53),
            Rational::new(Integer::one(), Integer::from(Natural::one().shl_bits(53)))
        );
        for x in [1e-300, f64::MIN_POSITIVE, 1e300] {
            assert!(dyadic(x) > Rational::zero());
            assert!(dyadic(x.next_up()) > dyadic(x), "{x}");
        }
    }

    #[test]
    fn arithmetic_preserves_enclosure() {
        // Deterministic sweep over a grid of awkward rationals.
        let mut probs = vec![r(1, 3), r(2, 7), r(5, 11), tiny(), Rational::one() - tiny()];
        for k in 0..=6 {
            probs.push(r(k, 6));
        }
        for a in &probs {
            for b in &probs {
                let ia = Interval::from_probability(a);
                let ib = Interval::from_probability(b);
                let sum = a + b;
                assert!(ia.add(&ib).contains(&sum), "{a:?} + {b:?}");
                let prod = a * b;
                assert!(ia.mul(&ib).contains(&prod), "{a:?} * {b:?}");
                assert!(
                    ia.mul(&ib).clamp_unit().contains(&prod),
                    "clamp keeps products of probabilities: {a:?} * {b:?}"
                );
                assert!(ia.one_minus().contains(&a.complement()), "1 - {a:?}");
            }
        }
    }

    #[test]
    fn comparisons_never_certify_a_wrong_answer() {
        let probs = [r(1, 3), r(1, 2), r(2, 3), tiny(), Rational::one() - tiny()];
        for a in &probs {
            let ia = Interval::from_probability(a);
            for t in &probs {
                if let Certifies::Proven(ans) = ia.proves_le_rational(t) {
                    assert_eq!(ans, a <= t, "{a:?} <= {t:?}");
                }
                if let Certifies::Proven(ans) = ia.proves_lt_rational(t) {
                    assert_eq!(ans, a < t, "{a:?} < {t:?}");
                }
                let it = Interval::from_probability(t);
                if let Certifies::Proven(ans) = ia.proves_lt(&it) {
                    assert_eq!(ans, a < t, "interval {a:?} < {t:?}");
                }
                if let Certifies::Proven(ans) = ia.proves_le(&it) {
                    assert_eq!(ans, a <= t, "interval {a:?} <= {t:?}");
                }
            }
        }
    }

    #[test]
    fn certifies_accessors() {
        assert!(Certifies::Proven(true).is_proven());
        assert!(!Certifies::Unknown.is_proven());
        assert_eq!(Certifies::Proven(false).proven(), Some(false));
        assert_eq!(Certifies::Unknown.proven(), None);
    }

    #[test]
    fn from_rational_handles_non_probabilities() {
        for x in [r(7, 3), r(-5, 2), r(1_000_000, 7)] {
            let iv = Interval::from_rational(&x);
            assert!(iv.contains(&x), "{x:?}");
        }
    }
}
