//! Arbitrary-precision signed integers, as a sign + [`Natural`] magnitude.

use crate::natural::Natural;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Sign of an [`Integer`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Sign {
    /// Strictly negative.
    Negative,
    /// Zero.
    Zero,
    /// Strictly positive.
    Positive,
}

/// An arbitrary-precision signed integer.
///
/// Invariant: `sign == Sign::Zero` iff `magnitude == 0`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Integer {
    sign: Sign,
    magnitude: Natural,
}

impl Integer {
    /// The constant zero.
    pub fn zero() -> Self {
        Integer {
            sign: Sign::Zero,
            magnitude: Natural::zero(),
        }
    }

    /// The constant one.
    pub fn one() -> Self {
        Integer {
            sign: Sign::Positive,
            magnitude: Natural::one(),
        }
    }

    /// The constant minus one.
    pub fn neg_one() -> Self {
        Integer {
            sign: Sign::Negative,
            magnitude: Natural::one(),
        }
    }

    /// Builds an integer from a sign and magnitude, normalizing zero.
    pub fn from_sign_magnitude(sign: Sign, magnitude: Natural) -> Self {
        if magnitude.is_zero() {
            Integer::zero()
        } else {
            assert!(sign != Sign::Zero, "nonzero magnitude with zero sign");
            Integer { sign, magnitude }
        }
    }

    /// The sign.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The absolute value as a natural.
    pub fn magnitude(&self) -> &Natural {
        &self.magnitude
    }

    /// Consumes `self`, returning the magnitude.
    pub fn into_magnitude(self) -> Natural {
        self.magnitude
    }

    /// True iff zero.
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// True iff one.
    pub fn is_one(&self) -> bool {
        self.sign == Sign::Positive && self.magnitude.is_one()
    }

    /// True iff strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Negative
    }

    /// True iff strictly positive.
    pub fn is_positive(&self) -> bool {
        self.sign == Sign::Positive
    }

    /// Absolute value.
    pub fn abs(&self) -> Integer {
        Integer::from_sign_magnitude(
            if self.is_zero() {
                Sign::Zero
            } else {
                Sign::Positive
            },
            self.magnitude.clone(),
        )
    }

    /// Truncated division with remainder: `self = q * d + r`, `|r| < |d|`,
    /// `r` has the sign of `self`.
    pub fn div_rem(&self, d: &Integer) -> (Integer, Integer) {
        assert!(!d.is_zero(), "division by zero");
        let (qm, rm) = self.magnitude.div_rem(&d.magnitude);
        let q_sign = match (self.sign, d.sign) {
            (Sign::Zero, _) => Sign::Zero,
            (a, b) if a == b => Sign::Positive,
            _ => Sign::Negative,
        };
        (
            Integer::from_sign_magnitude(if qm.is_zero() { Sign::Zero } else { q_sign }, qm),
            Integer::from_sign_magnitude(if rm.is_zero() { Sign::Zero } else { self.sign }, rm),
        )
    }

    /// Exact division; panics if not divisible.
    pub fn div_exact(&self, d: &Integer) -> Integer {
        let (q, r) = self.div_rem(d);
        assert!(r.is_zero(), "div_exact: not divisible");
        q
    }

    /// Greatest common divisor (nonnegative).
    pub fn gcd(&self, other: &Integer) -> Natural {
        self.magnitude.gcd(&other.magnitude)
    }

    /// `self ^ exp`.
    pub fn pow(&self, exp: u32) -> Integer {
        let mag = self.magnitude.pow(exp);
        let sign = match self.sign {
            Sign::Zero => {
                if exp == 0 {
                    return Integer::one();
                }
                Sign::Zero
            }
            Sign::Positive => Sign::Positive,
            Sign::Negative => {
                if exp.is_multiple_of(2) {
                    Sign::Positive
                } else {
                    Sign::Negative
                }
            }
        };
        Integer::from_sign_magnitude(sign, mag)
    }

    /// Lossy conversion to `f64` (reporting only).
    pub fn to_f64(&self) -> f64 {
        let m = self.magnitude.to_f64();
        match self.sign {
            Sign::Negative => -m,
            _ => m,
        }
    }

    /// Returns `self` as `i64` if it fits.
    pub fn to_i64(&self) -> Option<i64> {
        let m = self.magnitude.to_u64()?;
        match self.sign {
            Sign::Zero => Some(0),
            Sign::Positive => i64::try_from(m).ok(),
            Sign::Negative => {
                if m <= i64::MAX as u64 + 1 {
                    Some((m as i64).wrapping_neg())
                } else {
                    None
                }
            }
        }
    }

    fn add_int(&self, other: &Integer) -> Integer {
        match (self.sign, other.sign) {
            (Sign::Zero, _) => other.clone(),
            (_, Sign::Zero) => self.clone(),
            (a, b) if a == b => Integer::from_sign_magnitude(a, &self.magnitude + &other.magnitude),
            _ => match self.magnitude.cmp(&other.magnitude) {
                Ordering::Equal => Integer::zero(),
                Ordering::Greater => {
                    Integer::from_sign_magnitude(self.sign, &self.magnitude - &other.magnitude)
                }
                Ordering::Less => {
                    Integer::from_sign_magnitude(other.sign, &other.magnitude - &self.magnitude)
                }
            },
        }
    }

    fn mul_int(&self, other: &Integer) -> Integer {
        let sign = match (self.sign, other.sign) {
            (Sign::Zero, _) | (_, Sign::Zero) => return Integer::zero(),
            (a, b) if a == b => Sign::Positive,
            _ => Sign::Negative,
        };
        Integer::from_sign_magnitude(sign, &self.magnitude * &other.magnitude)
    }

    fn neg_int(&self) -> Integer {
        let sign = match self.sign {
            Sign::Zero => Sign::Zero,
            Sign::Positive => Sign::Negative,
            Sign::Negative => Sign::Positive,
        };
        Integer {
            sign,
            magnitude: self.magnitude.clone(),
        }
    }

    /// Parses a decimal string with optional leading `-`.
    pub fn from_decimal(s: &str) -> Option<Integer> {
        let (sign, digits) = match s.strip_prefix('-') {
            Some(rest) => (Sign::Negative, rest),
            None => (Sign::Positive, s),
        };
        let mag = Natural::from_decimal(digits)?;
        Some(if mag.is_zero() {
            Integer::zero()
        } else {
            Integer::from_sign_magnitude(sign, mag)
        })
    }
}

impl From<i64> for Integer {
    fn from(v: i64) -> Self {
        match v.cmp(&0) {
            Ordering::Equal => Integer::zero(),
            Ordering::Greater => {
                Integer::from_sign_magnitude(Sign::Positive, Natural::from(v as u64))
            }
            Ordering::Less => Integer::from_sign_magnitude(
                Sign::Negative,
                Natural::from((v as i128).unsigned_abs() as u64),
            ),
        }
    }
}

impl From<u64> for Integer {
    fn from(v: u64) -> Self {
        if v == 0 {
            Integer::zero()
        } else {
            Integer::from_sign_magnitude(Sign::Positive, Natural::from(v))
        }
    }
}

impl From<Natural> for Integer {
    fn from(n: Natural) -> Self {
        if n.is_zero() {
            Integer::zero()
        } else {
            Integer::from_sign_magnitude(Sign::Positive, n)
        }
    }
}

impl PartialOrd for Integer {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Integer {
    fn cmp(&self, other: &Self) -> Ordering {
        let rank = |s: Sign| match s {
            Sign::Negative => 0,
            Sign::Zero => 1,
            Sign::Positive => 2,
        };
        match rank(self.sign).cmp(&rank(other.sign)) {
            Ordering::Equal => match self.sign {
                Sign::Zero => Ordering::Equal,
                Sign::Positive => self.magnitude.cmp(&other.magnitude),
                Sign::Negative => other.magnitude.cmp(&self.magnitude),
            },
            o => o,
        }
    }
}

macro_rules! forward_binop {
    ($trait:ident, $method:ident, $impl:ident) => {
        impl $trait<&Integer> for &Integer {
            type Output = Integer;
            fn $method(self, rhs: &Integer) -> Integer {
                self.$impl(rhs)
            }
        }
        impl $trait<Integer> for Integer {
            type Output = Integer;
            fn $method(self, rhs: Integer) -> Integer {
                (&self).$impl(&rhs)
            }
        }
        impl $trait<&Integer> for Integer {
            type Output = Integer;
            fn $method(self, rhs: &Integer) -> Integer {
                (&self).$impl(rhs)
            }
        }
        impl $trait<Integer> for &Integer {
            type Output = Integer;
            fn $method(self, rhs: Integer) -> Integer {
                self.$impl(&rhs)
            }
        }
    };
}

forward_binop!(Add, add, add_int);
forward_binop!(Mul, mul, mul_int);

impl Sub<&Integer> for &Integer {
    type Output = Integer;
    fn sub(self, rhs: &Integer) -> Integer {
        self.add_int(&rhs.neg_int())
    }
}
impl Sub<Integer> for Integer {
    type Output = Integer;
    fn sub(self, rhs: Integer) -> Integer {
        (&self).sub(&rhs)
    }
}
impl Sub<&Integer> for Integer {
    type Output = Integer;
    fn sub(self, rhs: &Integer) -> Integer {
        (&self).sub(rhs)
    }
}
impl Sub<Integer> for &Integer {
    type Output = Integer;
    fn sub(self, rhs: Integer) -> Integer {
        self.sub(&rhs)
    }
}

impl Neg for &Integer {
    type Output = Integer;
    fn neg(self) -> Integer {
        self.neg_int()
    }
}
impl Neg for Integer {
    type Output = Integer;
    fn neg(self) -> Integer {
        self.neg_int()
    }
}

impl AddAssign<&Integer> for Integer {
    fn add_assign(&mut self, rhs: &Integer) {
        *self = self.add_int(rhs);
    }
}
impl SubAssign<&Integer> for Integer {
    fn sub_assign(&mut self, rhs: &Integer) {
        *self = (&*self).sub(rhs);
    }
}
impl MulAssign<&Integer> for Integer {
    fn mul_assign(&mut self, rhs: &Integer) {
        *self = self.mul_int(rhs);
    }
}

impl fmt::Display for Integer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sign == Sign::Negative {
            write!(f, "-")?;
        }
        write!(f, "{}", self.magnitude)
    }
}

impl fmt::Debug for Integer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i(v: i64) -> Integer {
        Integer::from(v)
    }

    #[test]
    fn construction_and_signs() {
        assert!(i(0).is_zero());
        assert!(i(5).is_positive());
        assert!(i(-5).is_negative());
        assert_eq!(i(-5).abs(), i(5));
    }

    #[test]
    fn add_mixed_signs() {
        assert_eq!(i(3) + i(4), i(7));
        assert_eq!(i(3) + i(-4), i(-1));
        assert_eq!(i(-3) + i(4), i(1));
        assert_eq!(i(-3) + i(-4), i(-7));
        assert_eq!(i(5) + i(-5), i(0));
    }

    #[test]
    fn sub_and_neg() {
        assert_eq!(i(3) - i(10), i(-7));
        assert_eq!(-i(4), i(-4));
        assert_eq!(-i(0), i(0));
    }

    #[test]
    fn mul_signs() {
        assert_eq!(i(3) * i(-4), i(-12));
        assert_eq!(i(-3) * i(-4), i(12));
        assert_eq!(i(0) * i(-4), i(0));
    }

    #[test]
    fn div_rem_truncates_toward_zero() {
        let (q, r) = i(7).div_rem(&i(2));
        assert_eq!((q, r), (i(3), i(1)));
        let (q, r) = i(-7).div_rem(&i(2));
        assert_eq!((q, r), (i(-3), i(-1)));
        let (q, r) = i(7).div_rem(&i(-2));
        assert_eq!((q, r), (i(-3), i(1)));
        let (q, r) = i(-7).div_rem(&i(-2));
        assert_eq!((q, r), (i(3), i(-1)));
    }

    #[test]
    fn pow_signs() {
        assert_eq!(i(-2).pow(3), i(-8));
        assert_eq!(i(-2).pow(4), i(16));
        assert_eq!(i(0).pow(0), i(1));
        assert_eq!(i(0).pow(3), i(0));
    }

    #[test]
    fn ordering_across_signs() {
        assert!(i(-10) < i(-2));
        assert!(i(-2) < i(0));
        assert!(i(0) < i(1));
        assert!(i(1) < i(100));
    }

    #[test]
    fn parse_and_display() {
        assert_eq!(Integer::from_decimal("-123").unwrap(), i(-123));
        assert_eq!(Integer::from_decimal("0").unwrap(), i(0));
        assert_eq!(Integer::from_decimal("-0").unwrap(), i(0));
        assert_eq!(i(-123).to_string(), "-123");
    }

    #[test]
    fn to_i64_bounds() {
        assert_eq!(i(i64::MAX).to_i64(), Some(i64::MAX));
        assert_eq!(i(i64::MIN + 1).to_i64(), Some(i64::MIN + 1));
        let big = Integer::from(Natural::from(u64::MAX));
        assert_eq!(big.to_i64(), None);
    }

    #[test]
    fn gcd_ignores_sign() {
        assert_eq!(i(-12).gcd(&i(18)), Natural::from(6u64));
    }
}
