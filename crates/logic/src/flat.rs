//! Flat struct-of-arrays circuits with interval-first evaluation.
//!
//! The pointer-y [`Node`] tree of [`crate::circuit`] is the *compilation*
//! representation: easy to grow, memoize, and extract. It is a poor
//! *evaluation* representation — every `Product` owns a heap
//! `Vec<NodeId>`, every gate visit chases it, and every leaf and decision
//! re-queries the weight function (a hash lookup plus a `Rational` clone
//! per gate per weighting). [`FlatCircuit`] is the evaluation form the
//! compile-once / evaluate-many workloads of the paper's §3 block
//! constructions deserve:
//!
//! * **dense `u32` ids in topological order** — gate `g`'s children all
//!   have ids `< g`, so evaluation is one forward loop, no recursion, no
//!   hashing;
//! * **struct-of-arrays layout** — parallel slices `ops` / `var_slot` /
//!   `(off, len)` spans into one packed `children` vector: no per-gate
//!   allocation anywhere;
//! * **a distinct-variable slot table** — weights are resolved *once per
//!   distinct variable* into a dense slice ([`FlatCircuit::resolve_weights`]),
//!   and the per-gate loop just indexes it;
//! * **interval-first evaluation** — [`FlatCircuit::eval_interval_with`]
//!   prices every gate in certified outward-rounded `f64`
//!   ([`Interval`]) at a few nanoseconds per gate; callers that only need
//!   a comparison consult the certified verdict ([`Certifies`]) and fall
//!   back to the exact pass ([`FlatCircuit::eval_exact_with`], or the
//!   per-gate [`FlatCircuit::eval_exact_at`] with its sparse overlay)
//!   only when the enclosure cannot decide. Whenever an output
//!   `Rational` (not just a comparison) is demanded, the exact pass runs
//!   in full — results stay bit-identical to the tree evaluator.
//!
//! Exactness contract: for every circuit and every weight function,
//! `flat.eval_exact(w) == tree.evaluate(w) == wmc_brute_force(f, w)`
//! (`Rational` equality, i.e. bit identity in lowest terms) — enforced by
//! `tests/flat_suite.rs` and the engine's property suites.

use crate::circuit::{Circuit, Compiler, EvalArena, Node, Valuation};
use crate::cnf::Var;
use crate::wmc::WeightFn;
use gfomc_arith::{Certifies, Interval, Rational};
use gfomc_pool::WorkerPool;
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Process-wide count of interval-evaluation fallbacks to exact
/// arithmetic in [`FlatCircuit::le_exact`] — a telemetry counter: it
/// observes the decision, never influences it.
static INTERVAL_FALLBACKS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Per-thread slice of [`INTERVAL_FALLBACKS`]. The compiled route
    /// evaluates on the request's own thread, so a before/after read of
    /// this cell attributes fallbacks to one request exactly.
    static INTERVAL_FALLBACKS_THREAD: Cell<u64> = const { Cell::new(0) };
}

/// Total [`FlatCircuit::le_exact`] interval→exact fallbacks across the
/// process (monotone; exported to the engine's `/metrics` gauges).
pub fn interval_fallbacks_total() -> u64 {
    INTERVAL_FALLBACKS.load(Ordering::Relaxed)
}

/// This thread's share of [`interval_fallbacks_total`] — read it before
/// and after an evaluation to attribute fallbacks to that evaluation.
pub fn interval_fallbacks_thread() -> u64 {
    INTERVAL_FALLBACKS_THREAD.with(Cell::get)
}

/// Gate opcode of a [`FlatCircuit`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum Op {
    /// The constant `0` (`⊥`).
    False,
    /// The constant `1` (`⊤`).
    True,
    /// A positive literal: value `w(v)` for the gate's slot variable.
    Leaf,
    /// Decomposable product of the gate's children.
    Product,
    /// Shannon split `w(v)·hi + (1 − w(v))·lo`; children are `[hi, lo]`.
    Decision,
}

/// Slot sentinel for gates without a variable.
const NO_SLOT: u32 = u32::MAX;

/// A flat, topologically ordered, struct-of-arrays arithmetic circuit.
///
/// Produced by [`Circuit::flatten`] (single root) or
/// [`Compiler::finish_flat`] (whole multi-rooted pool, ids preserved).
/// Gate ids are dense `u32`s with children before parents; the layout is
/// four parallel slices plus one packed child vector — no per-gate heap
/// allocation:
///
/// ```text
/// gate g:   ops[g]       opcode
///           var_slot[g]  index into vars() for Leaf/Decision, unused otherwise
///           off[g]..off[g]+len[g]   g's children inside `children`
/// ```
#[derive(Clone, Debug)]
pub struct FlatCircuit {
    ops: Vec<Op>,
    var_slot: Vec<u32>,
    off: Vec<u32>,
    len: Vec<u32>,
    children: Vec<u32>,
    vars: Vec<Var>,
    root: u32,
}

impl FlatCircuit {
    fn from_pool(nodes: &[Node], root: u32) -> FlatCircuit {
        let n = nodes.len();
        let mut ops = Vec::with_capacity(n);
        let mut var_slot = Vec::with_capacity(n);
        let mut off = Vec::with_capacity(n);
        let mut len = Vec::with_capacity(n);
        let mut children = Vec::new();
        let mut vars: Vec<Var> = Vec::new();
        let mut slot_of: HashMap<Var, u32> = HashMap::new();
        let intern = |v: Var, vars: &mut Vec<Var>, slot_of: &mut HashMap<Var, u32>| {
            *slot_of.entry(v).or_insert_with(|| {
                vars.push(v);
                (vars.len() - 1) as u32
            })
        };
        for node in nodes {
            let start = children.len() as u32;
            let (op, slot) = match node {
                Node::False => (Op::False, NO_SLOT),
                Node::True => (Op::True, NO_SLOT),
                Node::Leaf(v) => (Op::Leaf, intern(*v, &mut vars, &mut slot_of)),
                Node::Product(kids) => {
                    children.extend(kids.iter().map(|k| k.0));
                    (Op::Product, NO_SLOT)
                }
                Node::Decision { var, hi, lo } => {
                    children.push(hi.0);
                    children.push(lo.0);
                    (Op::Decision, intern(*var, &mut vars, &mut slot_of))
                }
            };
            ops.push(op);
            var_slot.push(slot);
            off.push(start);
            len.push(children.len() as u32 - start);
        }
        FlatCircuit {
            ops,
            var_slot,
            off,
            len,
            children,
            vars,
            root,
        }
    }

    /// Number of gates (including the two constants) — the unit of the
    /// engine's cache-admission cost and of
    /// `gfomc_safety::CircuitCostEstimate`.
    pub fn gate_count(&self) -> usize {
        self.ops.len()
    }

    /// The root gate id.
    pub fn root(&self) -> u32 {
        self.root
    }

    /// The opcode of a gate.
    pub fn op(&self, gate: u32) -> Op {
        self.ops[gate as usize]
    }

    /// The distinct variables of the circuit, in slot order.
    pub fn vars(&self) -> &[Var] {
        &self.vars
    }

    /// Number of Shannon-split gates.
    pub fn decision_count(&self) -> usize {
        self.ops.iter().filter(|o| **o == Op::Decision).count()
    }

    /// The packed children of a gate.
    #[inline]
    fn kids(&self, g: usize) -> &[u32] {
        let off = self.off[g] as usize;
        &self.children[off..off + self.len[g] as usize]
    }

    /// Resolves `w` into one exact weight per distinct variable, in slot
    /// order — the per-weighting setup that lets the per-gate loop index a
    /// dense slice instead of re-querying `w` at every leaf and decision.
    pub fn resolve_weights<W: WeightFn>(&self, w: &W, out: &mut Vec<Rational>) {
        out.clear();
        out.reserve(self.vars.len());
        for &v in &self.vars {
            let p = w.weight(v);
            assert!(p.is_probability(), "weight out of [0,1] for {v:?}");
            out.push(p);
        }
    }

    /// The exact forward pass: one value per gate into `values`.
    fn eval_exact_into(&self, w: &[Rational], values: &mut Vec<Rational>) {
        values.clear();
        values.reserve(self.ops.len());
        for g in 0..self.ops.len() {
            let val = match self.ops[g] {
                Op::True => Rational::one(),
                Op::False => Rational::zero(),
                Op::Leaf => w[self.var_slot[g] as usize].clone(),
                Op::Product => {
                    let mut acc = Rational::one();
                    for &k in self.kids(g) {
                        acc = &acc * &values[k as usize];
                        if acc.is_zero() {
                            break;
                        }
                    }
                    acc
                }
                Op::Decision => {
                    let p = &w[self.var_slot[g] as usize];
                    let kids = self.kids(g);
                    let hi = &values[kids[0] as usize];
                    let lo = &values[kids[1] as usize];
                    &(p * hi) + &(&p.complement() * lo)
                }
            };
            values.push(val);
        }
    }

    /// The interval forward pass: one certified enclosure per gate.
    ///
    /// Every gate value of a monotone circuit under probability weights is
    /// itself a probability, so each step intersects with `[0, 1]`
    /// ([`Interval::clamp_unit`]) to undo the outward nudges' drift.
    fn eval_interval_into(&self, w: &[Interval], out: &mut Vec<Interval>) {
        out.clear();
        out.reserve(self.ops.len());
        for g in 0..self.ops.len() {
            let iv = match self.ops[g] {
                Op::True => Interval::ONE,
                Op::False => Interval::ZERO,
                Op::Leaf => w[self.var_slot[g] as usize],
                Op::Product => {
                    let mut acc = Interval::ONE;
                    for &k in self.kids(g) {
                        acc = acc.mul(&out[k as usize]).clamp_unit();
                    }
                    acc
                }
                Op::Decision => {
                    let p = &w[self.var_slot[g] as usize];
                    let kids = self.kids(g);
                    let hi = &out[kids[0] as usize];
                    let lo = &out[kids[1] as usize];
                    p.mul(hi).add(&p.one_minus().mul(lo)).clamp_unit()
                }
            };
            out.push(iv);
        }
    }

    /// `Pr(F, w)` exactly, reusing the arena's slabs across weightings.
    /// Bit-identical to [`Circuit::evaluate_with`] on the tree form.
    pub fn eval_exact_with<W: WeightFn>(&self, w: &W, arena: &mut EvalArena) -> Rational {
        self.resolve_weights(w, &mut arena.slot_weights);
        self.eval_exact_into(&arena.slot_weights, &mut arena.values);
        arena.values[self.root as usize].clone()
    }

    /// `Pr(F, w)` exactly, with a throwaway arena.
    pub fn eval_exact<W: WeightFn>(&self, w: &W) -> Rational {
        let mut arena = EvalArena::with_capacity(self.gate_count());
        self.eval_exact_with(w, &mut arena)
    }

    /// A certified enclosure of `Pr(F, w)` — the fast path. Converts each
    /// distinct weight with directed rounding, then runs the interval
    /// forward pass (plain `Copy` doubles, no heap traffic).
    pub fn eval_interval_with<W: WeightFn>(&self, w: &W, arena: &mut EvalArena) -> Interval {
        self.resolve_weights(w, &mut arena.slot_weights);
        arena.slot_intervals.clear();
        arena
            .slot_intervals
            .extend(arena.slot_weights.iter().map(Interval::from_probability));
        let (slots, intervals) = (&arena.slot_intervals, &mut arena.intervals);
        self.eval_interval_into(slots, intervals);
        intervals[self.root as usize]
    }

    /// A certified enclosure of `Pr(F, w)`, with a throwaway arena.
    pub fn eval_interval<W: WeightFn>(&self, w: &W) -> Interval {
        let mut arena = EvalArena::new();
        self.eval_interval_with(w, &mut arena)
    }

    /// Exact value of a single gate, re-pricing **only the gates reachable
    /// from it** through the arena's sparse overlay.
    ///
    /// This is the per-gate fallback of interval-first evaluation: after a
    /// fast interval pass, a caller that needs one undecided gate exactly
    /// pays for that gate's cone, not the whole pool — and repeated calls
    /// share the overlay, so common sub-cones are priced once. The overlay
    /// is keyed to one (circuit, weighting) pair; callers switching either
    /// must reset it via [`EvalArena::default`]-fresh slabs (the engine's
    /// evaluate paths do this by construction, resolving weights first).
    ///
    /// `w` must be the slot-resolved weights from
    /// [`FlatCircuit::resolve_weights`].
    pub fn eval_exact_at(
        &self,
        gate: u32,
        w: &[Rational],
        overlay: &mut Vec<Option<Rational>>,
    ) -> Rational {
        if overlay.len() < self.ops.len() {
            overlay.resize(self.ops.len(), None);
        }
        let mut stack: Vec<(u32, bool)> = vec![(gate, false)];
        while let Some((g, expanded)) = stack.pop() {
            let gi = g as usize;
            if overlay[gi].is_some() {
                continue;
            }
            if !expanded {
                match self.ops[gi] {
                    Op::True => overlay[gi] = Some(Rational::one()),
                    Op::False => overlay[gi] = Some(Rational::zero()),
                    Op::Leaf => {
                        overlay[gi] = Some(w[self.var_slot[gi] as usize].clone());
                    }
                    Op::Product | Op::Decision => {
                        stack.push((g, true));
                        stack.extend(self.kids(gi).iter().map(|&k| (k, false)));
                    }
                }
            } else {
                let val = match self.ops[gi] {
                    Op::Product => {
                        let mut acc = Rational::one();
                        for &k in self.kids(gi) {
                            let kid = overlay[k as usize].as_ref().expect("child priced");
                            acc = &acc * kid;
                            if acc.is_zero() {
                                break;
                            }
                        }
                        acc
                    }
                    Op::Decision => {
                        let p = &w[self.var_slot[gi] as usize];
                        let kids = self.kids(gi);
                        let hi = overlay[kids[0] as usize].as_ref().expect("child priced");
                        let lo = overlay[kids[1] as usize].as_ref().expect("child priced");
                        &(p * hi) + &(&p.complement() * lo)
                    }
                    _ => unreachable!("constants and leaves priced on first visit"),
                };
                overlay[gi] = Some(val);
            }
        }
        overlay[gate as usize].clone().expect("root priced")
    }

    /// Certified verdict for `Pr(F, w) ≤ t` from the interval pass alone
    /// — [`Certifies::Unknown`] when the enclosure straddles `t`.
    pub fn proves_le<W: WeightFn>(&self, w: &W, t: &Rational, arena: &mut EvalArena) -> Certifies {
        self.eval_interval_with(w, arena).proves_le_rational(t)
    }

    /// Definite answer for `Pr(F, w) ≤ t`: interval fast path first, exact
    /// re-pricing of the root's cone only on [`Certifies::Unknown`].
    /// Returns `(answer, fell_back_to_exact)`.
    pub fn le_exact<W: WeightFn>(
        &self,
        w: &W,
        t: &Rational,
        arena: &mut EvalArena,
    ) -> (bool, bool) {
        match self.proves_le(w, t, arena) {
            Certifies::Proven(b) => (b, false),
            Certifies::Unknown => {
                INTERVAL_FALLBACKS.fetch_add(1, Ordering::Relaxed);
                INTERVAL_FALLBACKS_THREAD.with(|c| c.set(c.get() + 1));
                arena.overlay.clear();
                let exact = self.eval_exact_at(self.root, &arena.slot_weights, &mut arena.overlay);
                (&exact <= t, true)
            }
        }
    }

    /// Evaluates **every** gate exactly under `w` in one forward pass —
    /// the flat analogue of [`Compiler::evaluate_all`] for multi-rooted
    /// pools built by [`Compiler::finish_flat`] (ids are preserved, so
    /// `NodeId`s returned by [`Compiler::compile`] index the result).
    pub fn evaluate_all<W: WeightFn>(&self, w: &W) -> Valuation {
        let mut arena = EvalArena::with_capacity(self.gate_count());
        self.resolve_weights(w, &mut arena.slot_weights);
        self.eval_exact_into(&arena.slot_weights, &mut arena.values);
        Valuation {
            values: std::mem::take(&mut arena.values),
        }
    }

    /// Exact batch evaluation, one arena reused across the whole batch.
    /// Output order matches input order.
    pub fn evaluate_batch<W: WeightFn>(&self, weights: &[W]) -> Vec<Rational> {
        let mut arena = EvalArena::with_capacity(self.gate_count());
        weights
            .iter()
            .map(|w| self.eval_exact_with(w, &mut arena))
            .collect()
    }

    /// [`FlatCircuit::evaluate_batch`] fanned across `workers` logical
    /// workers of a [`WorkerPool`]. Workers claim batch indices from a
    /// shared cursor, each with a worker-local arena; exact rational
    /// arithmetic makes the output identical to the serial batch for every
    /// worker count.
    pub fn evaluate_batch_on<W: WeightFn + Sync>(
        &self,
        pool: &WorkerPool,
        weights: &[W],
        workers: usize,
    ) -> Vec<Rational> {
        let workers = workers.max(1).min(weights.len().max(1));
        if workers == 1 {
            return self.evaluate_batch(weights);
        }
        let cursor = AtomicUsize::new(0);
        let mut out: Vec<Option<Rational>> = vec![None; weights.len()];
        let slots = Mutex::new(&mut out);
        pool.broadcast(workers, |_| {
            let mut arena = EvalArena::with_capacity(self.gate_count());
            let mut local: Vec<(usize, Rational)> = Vec::new();
            loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= weights.len() {
                    break;
                }
                local.push((i, self.eval_exact_with(&weights[i], &mut arena)));
            }
            let mut slots = slots.lock().expect("batch output lock");
            for (i, value) in local {
                slots[i] = Some(value);
            }
        });
        out.into_iter()
            .map(|v| v.expect("every batch index evaluated"))
            .collect()
    }
}

impl Circuit {
    /// Flattens a self-contained circuit into its struct-of-arrays
    /// evaluation form. Gate ids and the gate count are preserved 1:1.
    pub fn flatten(&self) -> FlatCircuit {
        FlatCircuit::from_pool(self.nodes(), self.root().0)
    }
}

impl Compiler {
    /// Flattens the compiler's entire multi-rooted pool, preserving ids —
    /// `NodeId`s handed out by [`Compiler::compile`] remain valid gate
    /// ids of the result (the nominal root is the last gate; use
    /// [`FlatCircuit::evaluate_all`] and index by compile-time ids).
    pub fn finish_flat(&self) -> FlatCircuit {
        let root = (self.node_count() - 1) as u32;
        FlatCircuit::from_pool(self.nodes(), root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::{Clause, Cnf};
    use crate::wmc::UniformWeight;

    fn cl(vs: &[u32]) -> Clause {
        Clause::new(vs.iter().map(|&i| Var(i)))
    }

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_ints(n, d)
    }

    #[test]
    fn flatten_preserves_counts_and_values() {
        let f = Cnf::new([cl(&[1, 2]), cl(&[2, 3]), cl(&[3, 4])]);
        let tree = Circuit::compile(&f);
        let flat = tree.flatten();
        assert_eq!(flat.gate_count(), tree.node_count());
        assert_eq!(flat.decision_count(), tree.decision_count());
        assert_eq!(flat.root(), tree.root().0);
        for k in 0..=4 {
            let w = UniformWeight(r(k, 4));
            assert_eq!(flat.eval_exact(&w), tree.evaluate(&w));
        }
    }

    #[test]
    fn interval_encloses_exact_value() {
        let f = Cnf::new([cl(&[1, 2]), cl(&[2, 3])]);
        let flat = Circuit::compile(&f).flatten();
        for w in [r(1, 2), r(1, 3), r(2, 7)] {
            let w = UniformWeight(w);
            let exact = flat.eval_exact(&w);
            assert!(flat.eval_interval(&w).contains(&exact));
        }
    }

    #[test]
    fn per_gate_fallback_matches_forward_pass() {
        let f = Cnf::new([cl(&[1, 2]), cl(&[2, 3]), cl(&[3, 4]), cl(&[1, 4])]);
        let flat = Circuit::compile(&f).flatten();
        let w = UniformWeight(r(1, 3));
        let mut arena = EvalArena::new();
        let full = flat.eval_exact_with(&w, &mut arena);
        let mut overlay = Vec::new();
        let at = flat.eval_exact_at(flat.root(), &arena.slot_weights, &mut overlay);
        assert_eq!(at, full);
        // The overlay memoizes: re-asking is answered without re-pricing.
        assert_eq!(
            flat.eval_exact_at(flat.root(), &arena.slot_weights, &mut overlay),
            full
        );
    }

    #[test]
    fn le_exact_decides_correctly_with_and_without_fallback() {
        let f = Cnf::new([cl(&[1, 2]), cl(&[2, 3])]);
        let flat = Circuit::compile(&f).flatten();
        let w = UniformWeight(r(1, 2));
        let exact = flat.eval_exact(&w); // 5/8
        let mut arena = EvalArena::new();
        // Far threshold: interval decides, no fallback.
        let (ans, fell_back) = flat.le_exact(&w, &r(3, 4), &mut arena);
        assert!(ans && !fell_back);
        // Threshold equal to the value: the outward nudges widen the
        // enclosure past it, so this exercises the exact fallback.
        let (ans, _) = flat.le_exact(&w, &exact, &mut arena);
        assert!(ans);
        let (ans, _) = flat.le_exact(&w, &r(1, 2), &mut arena);
        assert!(!ans);
    }

    #[test]
    fn pool_flattening_preserves_compile_ids() {
        let mut comp = Compiler::new();
        let f = Cnf::new([cl(&[1, 2]), cl(&[2, 3])]);
        let g = Cnf::new([cl(&[1, 2]), cl(&[2, 3]), cl(&[4])]);
        let rf = comp.compile(&f);
        let rg = comp.compile(&g);
        let flat = comp.finish_flat();
        assert_eq!(flat.gate_count(), comp.node_count());
        let w = UniformWeight(Rational::one_half());
        let flat_vals = flat.evaluate_all(&w);
        let tree_vals = comp.evaluate_all(&w);
        assert_eq!(flat_vals.value(rf), tree_vals.value(rf));
        assert_eq!(flat_vals.value(rg), tree_vals.value(rg));
    }

    #[test]
    fn flat_batch_matches_serial_and_parallel() {
        let f = Cnf::new([cl(&[1, 2]), cl(&[2, 3]), cl(&[3, 4]), cl(&[1, 4])]);
        let flat = Circuit::compile(&f).flatten();
        let weights: Vec<UniformWeight> = (0..=8).map(|k| UniformWeight(r(k, 8))).collect();
        let serial = flat.evaluate_batch(&weights);
        let pool = WorkerPool::new(2);
        for workers in [1usize, 2, 3, 16] {
            assert_eq!(serial, flat.evaluate_batch_on(&pool, &weights, workers));
        }
    }
}
